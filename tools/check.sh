#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite twice —
# once as a normal RelWithDebInfo build, once with ASan + UBSan
# (-DNFV_SANITIZE=ON).  Usage: tools/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
run_sanitized=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  run_sanitized=0
fi

run_suite() {
  local build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ctest ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite build

if [[ "${run_sanitized}" -eq 1 ]]; then
  run_suite build-asan -DNFV_SANITIZE=ON
fi

echo "check.sh: all suites green"
