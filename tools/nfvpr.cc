// nfvpr — command-line front-end for the library.
//
//   nfvpr generate-topology --kind star --nodes 10 > dc.topo
//   nfvpr generate-workload --vnfs 12 --requests 100 > peak.wl
//   nfvpr place    --topology dc.topo --workload peak.wl --algorithm BFDSU
//   nfvpr schedule --workload peak.wl --vnf 0 --algorithm RCKK
//   nfvpr pipeline --topology dc.topo --workload peak.wl
//                  --metrics-out run.json --trace-out trace.json
//   nfvpr simulate --topology dc.topo --workload peak.wl --duration 60
//   nfvpr chaos    --nodes 8 --events 20 --max-down 3 --seed 21
//   nfvpr report   --in run.json                   # pretty-print
//   nfvpr report   --in run.json --baseline old.json   # diff
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "nfv/common/cli.h"
#include "nfv/common/error.h"
#include "nfv/common/table.h"
#include "nfv/core/joint_optimizer.h"
#include "nfv/core/report_builder.h"
#include "nfv/core/resilience.h"
#include "nfv/core/sim_builder.h"
#include "nfv/core/solver.h"
#include "nfv/core/tail_prediction.h"
#include "nfv/exec/thread_pool.h"
#include "nfv/obs/flight_recorder.h"
#include "nfv/obs/lifecycle.h"
#include "nfv/obs/metrics.h"
#include "nfv/obs/report.h"
#include "nfv/obs/timeline.h"
#include "nfv/obs/trace.h"
#include "nfv/placement/algorithm.h"
#include "nfv/placement/metrics.h"
#include "nfv/scheduling/algorithm.h"
#include "nfv/scheduling/metrics.h"
#include "nfv/serve/checkpoint.h"
#include "nfv/serve/engine.h"
#include "nfv/shard/placement.h"
#include "nfv/sim/des.h"
#include "nfv/topology/builders.h"
#include "nfv/topology/io.h"
#include "nfv/workload/btrace.h"
#include "nfv/workload/event_stream.h"
#include "nfv/workload/generator.h"
#include "nfv/workload/io.h"

namespace {

int usage() {
  std::fputs(
      "nfvpr — NFV chain placement & request scheduling toolkit\n"
      "\n"
      "subcommands:\n"
      "  generate-topology  emit a topology file (star/leafspine/fattree/random)\n"
      "  generate-workload  emit a workload file from the VNF catalog\n"
      "  place              run a placement algorithm, print the assignment\n"
      "  schedule           run a scheduler for one VNF, print instance loads\n"
      "  pipeline           run the full two-phase optimization (Eq. 16)\n"
      "  tail               per-request latency tail predictions (p50/p95/p99)\n"
      "  simulate           optimize, then replay packet-level and compare\n"
      "  chaos              replay a seeded failure storm through the\n"
      "                     resilience controller's escalation ladder\n"
      "  generate-trace     emit an event trace (nfvpr.trace/1, or /2 with\n"
      "                     node churn; --binary for compact nfvpr.btrace/1)\n"
      "                     from a workload\n"
      "  transcode-trace    convert an event trace text <-> binary\n"
      "                     (byte-exact round trip in both directions)\n"
      "  serve              replay an event trace through the online serving\n"
      "                     engine (admission, bounded migration, scale out/in,\n"
      "                     node-failure evacuation, checkpoint/resume,\n"
      "                     streaming telemetry: --snapshot-every,\n"
      "                     --timeline-out, --lifecycle-out, --flight-recorder;\n"
      "                     text and binary traces auto-detected by magic)\n"
      "  analyze-timeline   summarize a timeline stream (nfvpr.timeline/1):\n"
      "                     aggregates, worst windows, --fail-on CI gates\n"
      "  report             pretty-print a run report, or diff two reports\n"
      "\n"
      "place/schedule/pipeline/simulate/chaos/serve accept --metrics-out\n"
      "<path> (JSON run report), --trace-out <path> (Chrome trace-event JSON)\n"
      "and --threads N (parallel fan-out; results are identical for any N).\n"
      "place/schedule/pipeline/serve also accept --shards K (sharded solve:\n"
      "canonical partition, K sub-solves in flight; results are identical\n"
      "for any K — see DESIGN.md §12).\n"
      "place/pipeline/serve also accept --solver bfdsu|pso|lp|portfolio\n"
      "(race placement backends under --budget-ms / --work-budget; with\n"
      "--deterministic-budget results are bit-identical for any --threads\n"
      "— see DESIGN.md §17).\n"
      "\n"
      "run 'nfvpr <subcommand> --help' for flags.\n"
      "\n"
      "exit codes: 0 ok, 1 runtime error, 2 usage, 3 infeasible result,\n"
      "            4 infeasible problem (nfv::InfeasibleError),\n"
      "            5 invalid argument (failed precondition)\n",
      stderr);
  return 2;
}

/// Exit code for a false parse(): 0 when --help was asked for, 2 (usage
/// error) otherwise.
int parse_exit(const nfv::CliParser& cli) {
  return cli.help_requested() ? 0 : 2;
}

nfv::topo::Topology read_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open topology file " + path);
  return nfv::topo::load_topology(in);
}

nfv::workload::Workload read_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open workload file " + path);
  return nfv::workload::load_workload(in);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Registers --threads on a subcommand and owns the worker pool for the
/// command's lifetime.  Results are bit-identical for any thread count
/// (DESIGN.md §10), so --threads is purely a wall-clock knob.
class ThreadsFlag {
 public:
  explicit ThreadsFlag(nfv::CliParser& cli)
      : threads_(cli.add_int(
            "threads", 'j', "worker threads for parallel fan-out (>= 1)", 1)) {
  }

  /// Validates the value and installs a process-global pool when > 1.
  /// Returns false on out-of-range input (callers exit 2: usage error).
  [[nodiscard]] bool install() {
    if (threads_ < 1) {
      std::fprintf(stderr, "--threads must be >= 1 (got %lld)\n",
                   static_cast<long long>(threads_));
      return false;
    }
    if (threads_ > 1) {
      pool_.emplace(static_cast<std::uint32_t>(threads_));
      scope_.emplace(*pool_);
    }
    return true;
  }

  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(threads_);
  }

 private:
  const std::int64_t& threads_;
  std::optional<nfv::exec::ThreadPool> pool_;
  std::optional<nfv::exec::ScopedPool> scope_;
};

/// Registers --shards on a subcommand.  The partition is canonical —
/// derived from the model alone (DESIGN.md §12) — so like --threads this
/// is purely a wall-clock knob: results are byte-identical for any K.
class ShardsFlag {
 public:
  /// Sentinel default: CliParser cannot tell "absent" from "default", so
  /// the off state is a value no user would pass.
  static constexpr std::int64_t kOff =
      std::numeric_limits<std::int64_t>::min();

  explicit ShardsFlag(nfv::CliParser& cli)
      : shards_(cli.add_int(
            "shards", 'S',
            "sharded solve with at most K sub-instances in flight (>= 1; "
            "off when omitted; results identical for any K)", kOff)) {}

  /// Returns false on 0/negative input (callers exit 2: usage error).
  [[nodiscard]] bool validate() const {
    if (shards_ != kOff && shards_ < 1) {
      std::fprintf(stderr, "--shards must be >= 1 (got %lld)\n",
                   static_cast<long long>(shards_));
      return false;
    }
    return true;
  }

  [[nodiscard]] bool enabled() const { return shards_ != kOff; }

  [[nodiscard]] nfv::shard::ShardConfig config() const {
    nfv::shard::ShardConfig cfg;
    if (enabled()) {
      cfg.policy = nfv::shard::ShardPolicy::kFixed;
      cfg.shards = static_cast<std::uint32_t>(shards_);
    }
    return cfg;
  }

 private:
  const std::int64_t& shards_;
};

/// One summary line for a sharded solve; printed only when a sharded
/// solve actually ran, so single-component runs stay byte-identical to
/// their unsharded twins.
void print_shard_stats(const nfv::shard::ShardStats& s,
                       std::FILE* out = stdout) {
  if (!s.enabled) return;
  std::fprintf(out,
      "sharded solve         : %llu shards (%llu components, %llu splits), "
      "%llu repair + %llu drain moves, %llu boundary requests%s\n",
      static_cast<unsigned long long>(s.shards),
      static_cast<unsigned long long>(s.components),
      static_cast<unsigned long long>(s.splits),
      static_cast<unsigned long long>(s.repair_moves),
      static_cast<unsigned long long>(s.drain_moves),
      static_cast<unsigned long long>(s.boundary_requests),
      s.fallback_monolithic ? " — FELL BACK to monolithic" : "");
}

/// Registers the --solver flag family (DESIGN.md §17) on a subcommand.
/// Off when --solver is omitted — the command keeps its legacy path and
/// byte-identical output.  The knobs are validated even when off, so a
/// nonsense value never silently rides along.
class SolverFlags {
 public:
  explicit SolverFlags(nfv::CliParser& cli)
      : solver_(cli.add_string(
            "solver", '\0',
            "race placement backends: bfdsu|pso|lp|portfolio (races all "
            "three; off when omitted)",
            "")),
        budget_ms_(cli.add_double(
            "budget-ms", '\0',
            "wall-clock budget for the race in ms (0 = none; anytime "
            "backends stop at the deadline)",
            0.0)),
        work_budget_(cli.add_int(
            "work-budget", '\0',
            "work units (placement iterations) per backend (0 = backend "
            "defaults)",
            0)),
        deterministic_(cli.add_flag(
            "deterministic-budget", '\0',
            "ignore the clock: effort derives from --work-budget only, so "
            "results are bit-identical for any --threads/--shards")),
        pso_swarm_(cli.add_int("pso-swarm", '\0', "PSO particles", 16)),
        pso_iters_(cli.add_int("pso-iters", '\0', "PSO sweeps", 48)),
        lp_iters_(cli.add_int("lp-iters", '\0', "LP subgradient steps", 240)) {
  }

  [[nodiscard]] bool enabled() const { return !solver_.empty(); }

  /// Returns false (callers exit 2: usage error) on an unknown solver id
  /// or an out-of-range knob.
  [[nodiscard]] bool validate() const {
    try {
      (void)config();
      return true;
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return false;
    }
  }

  [[nodiscard]] nfv::core::SolverConfig config() const {
    nfv::core::SolverConfig cfg;
    if (enabled()) cfg.solver = solver_;
    cfg.budget_ms = budget_ms_;
    // Negative values wrap to huge unsigned ones, which the range checks
    // in SolverConfig::validate reject.
    cfg.work_budget = static_cast<std::uint64_t>(work_budget_);
    cfg.deterministic_budget = deterministic_;
    cfg.pso_swarm = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(pso_swarm_));
    cfg.pso_iterations = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(pso_iters_));
    cfg.lp_iterations = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(lp_iters_));
    if (pso_swarm_ < 0 || pso_iters_ < 0 || lp_iters_ < 0 ||
        work_budget_ < 0) {
      throw std::invalid_argument("solver spec: knobs must be >= 0");
    }
    cfg.validate();
    return cfg;
  }

 private:
  const std::string& solver_;
  const double& budget_ms_;
  const std::int64_t& work_budget_;
  const bool& deterministic_;
  const std::int64_t& pso_swarm_;
  const std::int64_t& pso_iters_;
  const std::int64_t& lp_iters_;
};

/// One human-readable line for a finished race.
void print_solver_outcome(const nfv::core::SolverOutcome& outcome,
                          std::FILE* out = stdout) {
  std::string detail;
  for (const nfv::core::BackendRun& b : outcome.backends) {
    if (!detail.empty()) detail += ", ";
    detail += b.id;
    detail += b.feasible ? "" : " (infeasible)";
  }
  std::fprintf(out, "solver race           : %s wins [%s]%s\n",
               outcome.winner.c_str(), detail.c_str(),
               outcome.deterministic ? " (deterministic budget)" : "");
}

/// Registers --metrics-out / --trace-out on a subcommand and owns the
/// telemetry sinks.  activate() installs them globally after parse();
/// finish() uninstalls them and writes the files.  Commands call finish()
/// on infeasible exits too, so a failed run still leaves evidence behind.
class Telemetry {
 public:
  explicit Telemetry(nfv::CliParser& cli)
      : metrics_out_(cli.add_string("metrics-out", '\0',
                                    "write a JSON run report here", "")),
        trace_out_(cli.add_string("trace-out", '\0',
                                  "write Chrome trace-event JSON here", "")) {
  }

  void activate() {
    if (!metrics_out_.empty()) {
      registry_ = std::make_unique<nfv::obs::MetricsRegistry>();
      install_metrics_.emplace(*registry_);
    }
    if (!trace_out_.empty()) {
      tracer_ = std::make_unique<nfv::obs::Tracer>();
      install_tracing_.emplace(*tracer_);
    }
  }

  /// True when --metrics-out was given (commands may run extra stages,
  /// e.g. pipeline's DES replay, only when someone is watching).
  [[nodiscard]] bool metrics_enabled() const { return registry_ != nullptr; }

  void finish(nfv::core::ReportInputs inputs) {
    if (registry_ != nullptr) {
      install_metrics_.reset();  // uninstall before snapshotting
      inputs.metrics = registry_.get();
      const nfv::obs::RunReport report = nfv::core::build_run_report(inputs);
      std::ofstream os(metrics_out_);
      if (!os) throw std::runtime_error("cannot open " + metrics_out_);
      nfv::obs::write_run_report(report, os);
      registry_.reset();
    }
    if (tracer_ != nullptr) {
      install_tracing_.reset();
      std::ofstream os(trace_out_);
      if (!os) throw std::runtime_error("cannot open " + trace_out_);
      tracer_->write_json(os);
      tracer_.reset();
    }
  }

 private:
  const std::string& metrics_out_;
  const std::string& trace_out_;
  std::unique_ptr<nfv::obs::MetricsRegistry> registry_;
  std::unique_ptr<nfv::obs::Tracer> tracer_;
  std::optional<nfv::obs::ScopedMetrics> install_metrics_;
  std::optional<nfv::obs::ScopedTracing> install_tracing_;
};

int cmd_generate_topology(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr generate-topology", "emit a topology file");
  const auto& kind =
      cli.add_string("kind", 'k', "star|leafspine|fattree|random", "star");
  const auto& nodes = cli.add_int("nodes", 'n', "compute nodes (star/random)", 10);
  const auto& cap_min = cli.add_double("cap-min", '\0', "min capacity", 1000.0);
  const auto& cap_max = cli.add_double("cap-max", '\0', "max capacity", 5000.0);
  const auto& latency = cli.add_double("latency", 'l', "per-link latency", 1e-4);
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 1);
  const auto& fat_k = cli.add_int("fat-k", '\0', "fat-tree arity (even)", 4);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  nfv::Rng rng(static_cast<std::uint64_t>(seed));
  const nfv::topo::CapacitySpec cap{cap_min, cap_max};
  const nfv::topo::LinkSpec link{latency};
  nfv::topo::Topology t;
  if (kind == "star") {
    t = nfv::topo::make_star(static_cast<std::size_t>(nodes), cap, link, rng);
  } else if (kind == "leafspine") {
    t = nfv::topo::make_leaf_spine(2, 4,
                                   std::max<std::size_t>(1,
                                       static_cast<std::size_t>(nodes) / 4),
                                   cap, link, rng);
  } else if (kind == "fattree") {
    t = nfv::topo::make_fat_tree(static_cast<std::size_t>(fat_k), cap, link,
                                 rng);
  } else if (kind == "random") {
    t = nfv::topo::make_random_connected(static_cast<std::size_t>(nodes), 3.0,
                                         cap, link, rng);
  } else {
    std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
    return 1;
  }
  nfv::topo::save_topology(t, std::cout);
  return 0;
}

int cmd_generate_workload(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr generate-workload", "emit a workload file");
  const auto& vnfs = cli.add_int("vnfs", 'f', "VNF count", 12);
  const auto& requests = cli.add_int("requests", 'n', "request count", 100);
  const auto& templates =
      cli.add_int("templates", 't', "chain templates (0 = unlimited)", 0);
  const auto& delivery =
      cli.add_double("delivery-prob", 'p', "P per request", 0.98);
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 1);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  nfv::workload::WorkloadConfig cfg;
  cfg.vnf_count = static_cast<std::uint32_t>(vnfs);
  cfg.request_count = static_cast<std::uint32_t>(requests);
  cfg.chain_template_count = static_cast<std::uint32_t>(templates);
  cfg.delivery_prob = delivery;
  nfv::Rng rng(static_cast<std::uint64_t>(seed));
  const auto w = nfv::workload::WorkloadGenerator(cfg).generate(rng);
  nfv::workload::save_workload(w, std::cout);
  return 0;
}

int cmd_place(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr place", "run a placement algorithm");
  const auto& topology_file = cli.add_string("topology", 't', "topology file", "");
  const auto& workload_file = cli.add_string("workload", 'w', "workload file", "");
  const auto& algorithm = cli.add_string(
      "algorithm", 'a', "BFDSU|CABP|SA|PSO|LP|FFD|NAH|BFD|WFD|FF|NFD|Exact",
      "BFDSU");
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 1);
  ThreadsFlag threads(cli);
  ShardsFlag shards(cli);
  SolverFlags solver(cli);
  Telemetry tele(cli);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (!threads.install()) return 2;
  if (!shards.validate()) return 2;
  if (!solver.validate()) return 2;
  if (solver.enabled() && shards.enabled()) {
    std::fputs("nfvpr place: --solver and --shards are mutually exclusive\n",
               stderr);
    return 2;
  }
  std::unique_ptr<nfv::placement::PlacementAlgorithm> algo;
  if (!solver.enabled()) {
    // --solver overrides --algorithm, so the name is only resolved (and
    // rejected) on the legacy path.
    algo = nfv::placement::make_placement_algorithm(algorithm);
    if (!algo) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
      return 2;
    }
  }
  nfv::core::SystemModel model;
  model.topology = read_topology(topology_file);
  model.workload = read_workload(workload_file);
  const auto problem =
      nfv::placement::make_problem(model.topology, model.workload);
  tele.activate();
  nfv::shard::ShardStats shard_stats;
  nfv::placement::Placement placement;
  nfv::core::SolverOutcome race;  // report/summary shell for --solver
  if (solver.enabled()) {
    nfv::core::JointConfig jcfg;
    jcfg.exec.threads = threads.count();
    const nfv::core::SolverConfig scfg = solver.config();
    const nfv::core::PortfolioDriver driver(jcfg, scfg);
    nfv::core::PlacementOutcome raced =
        driver.place(problem, static_cast<std::uint64_t>(seed));
    placement = std::move(raced.placement);
    race.winner = raced.winner;
    race.deterministic = scfg.deterministic_budget;
    race.budget_work = scfg.work_budget;
    race.budget_ms = scfg.budget_ms;
    race.backends = std::move(raced.backends);
  } else if (shards.enabled()) {
    placement = nfv::shard::place_sharded(problem, *algo, shards.config(),
                                          static_cast<std::uint64_t>(seed),
                                          &shard_stats);
  } else {
    nfv::Rng rng(static_cast<std::uint64_t>(seed));
    placement = algo->place(problem, rng);
  }

  // The report carries the placement section only; scheduling/request
  // sections stay absent for a placement-only run.
  nfv::core::JointResult partial;
  partial.placement = placement;
  partial.shard_stats = shard_stats;
  if (placement.feasible) {
    partial.placement_metrics = nfv::placement::evaluate(problem, placement);
  }
  nfv::core::ReportInputs inputs;
  inputs.command = "place";
  inputs.seed = static_cast<std::uint64_t>(seed);
  inputs.placement_algorithm =
      solver.enabled() ? nfv::core::PortfolioDriver::backend_algorithm(
                             race.winner)
                       : algorithm;
  inputs.model = &model;
  inputs.result = &partial;
  if (solver.enabled()) {
    inputs.solver = &race;
    inputs.solver_id = solver.config().solver;
  }
  tele.finish(inputs);

  if (!placement.feasible) {
    std::puts("INFEASIBLE — not every VNF fits");
    return 3;
  }
  const auto& metrics = partial.placement_metrics;
  nfv::Table table({"vnf", "node", "footprint"});
  table.set_precision(1);
  for (std::size_t f = 0; f < model.workload.vnfs.size(); ++f) {
    table.add_row({model.workload.vnfs[f].name,
                   model.topology.label(*placement.assignment[f]),
                   model.workload.vnfs[f].total_demand()});
  }
  std::fputs(table.markdown().c_str(), stdout);
  std::printf(
      "\nnodes in service %zu / %zu, avg utilization %.1f%%, occupation "
      "%.0f, iterations %llu\n",
      metrics.nodes_in_service, model.topology.compute_count(),
      100.0 * metrics.avg_utilization_of_used, metrics.resource_occupation,
      static_cast<unsigned long long>(placement.iterations));
  print_shard_stats(shard_stats);
  if (solver.enabled()) print_solver_outcome(race);
  return 0;
}

int cmd_schedule(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr schedule", "schedule one VNF's requests");
  const auto& workload_file = cli.add_string("workload", 'w', "workload file", "");
  const auto& vnf = cli.add_int("vnf", 'f', "VNF index", 0);
  const auto& algorithm = cli.add_string(
      "algorithm", 'a', "RCKK|CGA|CGA-online|LPT|RR|KK-fwd|CKK|DP2", "RCKK");
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 1);
  ThreadsFlag threads(cli);
  // A single VNF is always one shard, so --shards is validated for
  // interface symmetry and is otherwise the identity here.
  ShardsFlag shards(cli);
  Telemetry tele(cli);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (!threads.install()) return 2;
  if (!shards.validate()) return 2;
  const auto workload = read_workload(workload_file);
  if (static_cast<std::size_t>(vnf) >= workload.vnfs.size()) {
    std::fprintf(stderr, "vnf index out of range (have %zu)\n",
                 workload.vnfs.size());
    return 1;
  }
  const auto problem = nfv::sched::make_problem(
      workload, nfv::VnfId{static_cast<std::uint32_t>(vnf)});
  const auto algo = nfv::sched::make_scheduling_algorithm(algorithm);
  if (!algo) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
    return 2;
  }
  tele.activate();
  nfv::Rng rng(static_cast<std::uint64_t>(seed));
  const auto schedule = algo->schedule(problem, rng);
  const auto metrics = nfv::sched::evaluate(problem, schedule);
  const auto admission = nfv::sched::apply_admission(problem, schedule);

  // Single-VNF run: the structured sections do not apply; the registry
  // snapshot (scheduler work counters, spans) is the payload.
  nfv::core::ReportInputs inputs;
  inputs.command = "schedule";
  inputs.seed = static_cast<std::uint64_t>(seed);
  inputs.scheduling_algorithm = algorithm;
  tele.finish(inputs);

  nfv::Table table({"instance", "requests", "load pps", "rho", "W"});
  table.set_precision(4);
  std::vector<long long> counts(problem.instance_count, 0);
  for (const auto k : schedule.instance_of) ++counts[k];
  for (std::uint32_t k = 0; k < problem.instance_count; ++k) {
    const double rho = metrics.utilization[k];
    table.add_row({static_cast<long long>(k), counts[k],
                   metrics.instance_load[k], rho,
                   rho < 1.0 ? (rho > 0.0
                                    ? (rho / (1.0 - rho)) /
                                          metrics.instance_load[k]
                                    : 1.0 / (problem.mean_prob() *
                                             problem.service_rate))
                             : -1.0});
  }
  std::fputs(table.markdown().c_str(), stdout);
  std::printf("\navg W %.5f, imbalance %.2f, rejection %.2f%%, work %llu\n",
              metrics.avg_response, metrics.imbalance,
              100.0 * admission.rejection_rate,
              static_cast<unsigned long long>(schedule.work));
  return metrics.stable ? 0 : 3;
}

int cmd_pipeline(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr pipeline", "full two-phase optimization");
  const auto& topology_file = cli.add_string("topology", 't', "topology file", "");
  const auto& workload_file = cli.add_string("workload", 'w', "workload file", "");
  const auto& placer = cli.add_string("placement", 'p', "placement algorithm",
                                      "BFDSU");
  const auto& scheduler =
      cli.add_string("scheduling", 'q', "scheduling algorithm", "RCKK");
  const auto& link = cli.add_double("link-latency", 'l',
                                    "L of Eq. 16 (default: topology mean)",
                                    -1.0);
  const auto& sim_duration = cli.add_double(
      "sim-duration", '\0',
      "DES replay seconds for the run report (0 = skip; only runs when "
      "--metrics-out is set)",
      20.0);
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 1);
  const auto& report_out = cli.add_string(
      "report-out", '\0',
      "write the run report here (deterministic: no registry snapshot, "
      "byte-identical for any --threads/--shards)", "");
  ThreadsFlag threads(cli);
  ShardsFlag shards(cli);
  SolverFlags solver(cli);
  Telemetry tele(cli);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (!threads.install()) return 2;
  if (!shards.validate()) return 2;
  if (!solver.validate()) return 2;
  // Unknown algorithm names are usage errors, surfaced before any file is
  // read (--solver supplies its own placement backends).
  if (!solver.enabled() &&
      nfv::placement::make_placement_algorithm(placer) == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", placer.c_str());
    return 2;
  }
  if (nfv::sched::make_scheduling_algorithm(scheduler) == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", scheduler.c_str());
    return 2;
  }
  nfv::core::SystemModel model;
  model.topology = read_topology(topology_file);
  model.workload = read_workload(workload_file);
  nfv::core::JointConfig cfg;
  cfg.placement_algorithm = placer;
  cfg.scheduling_algorithm = scheduler;
  if (link >= 0.0) cfg.link_latency = link;
  cfg.exec.threads = threads.count();
  cfg.shard = shards.config();
  tele.activate();
  nfv::core::SolverOutcome race;  // populated only with --solver
  nfv::core::JointResult result;
  if (solver.enabled()) {
    race = nfv::core::PortfolioDriver(cfg, solver.config())
               .run(model, static_cast<std::uint64_t>(seed));
    result = std::move(race.result);
  } else {
    result = nfv::core::JointOptimizer(cfg).run(
        model, static_cast<std::uint64_t>(seed));
  }

  nfv::core::ReportInputs inputs;
  inputs.command = "pipeline";
  inputs.seed = static_cast<std::uint64_t>(seed);
  inputs.placement_algorithm =
      solver.enabled() ? nfv::core::PortfolioDriver::backend_algorithm(
                             race.winner)
                       : placer;
  inputs.scheduling_algorithm = scheduler;
  inputs.model = &model;
  inputs.result = &result;
  if (solver.enabled()) {
    inputs.solver = &race;
    inputs.solver_id = solver.config().solver;
  }

  if (!report_out.empty()) {
    // The deterministic report: structured sections only, no
    // metrics-registry snapshot (exec counters vary with --threads; this
    // file must not).  Written on infeasible runs too.
    const nfv::obs::RunReport report = nfv::core::build_run_report(inputs);
    std::ofstream os(report_out);
    if (!os) throw std::runtime_error("cannot open " + report_out);
    nfv::obs::write_run_report(report, os);
  }

  if (!result.feasible) {
    tele.finish(inputs);
    std::puts("INFEASIBLE — placement failed");
    return 3;
  }

  // A metrics-observed pipeline also replays the deployment packet-level,
  // so the run report carries measured DES counters next to the analytic
  // Eq. 16 numbers.
  std::optional<nfv::sim::SimResult> sim;
  if (tele.metrics_enabled() && sim_duration > 0.0) {
    const auto build = nfv::core::build_sim_network(model, result);
    nfv::sim::SimConfig sim_cfg;
    sim_cfg.duration = sim_duration;
    sim_cfg.warmup = sim_duration * 0.1;
    sim_cfg.seed = static_cast<std::uint64_t>(seed) + 1;
    sim = nfv::sim::simulate(build.network, sim_cfg);
    inputs.sim = &*sim;
  }
  tele.finish(inputs);

  std::printf("nodes in service      : %zu / %zu\n",
              result.placement_metrics.nodes_in_service,
              model.topology.compute_count());
  std::printf("avg node utilization  : %.1f%%\n",
              100.0 * result.placement_metrics.avg_utilization_of_used);
  std::printf("avg instance response : %.5f\n", result.avg_response);
  std::printf("avg request latency   : %.5f (Eq. 16)\n",
              result.avg_total_latency);
  std::printf("job rejection rate    : %.2f%%\n",
              100.0 * result.job_rejection_rate);
  print_shard_stats(result.shard_stats);
  if (solver.enabled()) print_solver_outcome(race);
  if (sim) {
    std::printf("DES replay events     : %llu (%.0f s)\n",
                static_cast<unsigned long long>(sim->events_processed),
                sim_duration);
  }
  return 0;
}

int cmd_tail(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr tail", "per-request latency tail predictions");
  const auto& topology_file = cli.add_string("topology", 't', "topology file", "");
  const auto& workload_file = cli.add_string("workload", 'w', "workload file", "");
  const auto& top = cli.add_int("top", 'n', "show the N busiest requests", 10);
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 1);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  nfv::core::SystemModel model;
  model.topology = read_topology(topology_file);
  model.workload = read_workload(workload_file);
  const auto result = nfv::core::JointOptimizer{nfv::core::JointConfig{}}.run(
      model, static_cast<std::uint64_t>(seed));
  if (!result.feasible) {
    std::puts("INFEASIBLE — placement failed");
    return 3;
  }
  std::vector<std::size_t> order;
  for (std::size_t r = 0; r < result.requests.size(); ++r) {
    if (result.requests[r].admitted) order.push_back(r);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return model.workload.requests[a].arrival_rate >
           model.workload.requests[b].arrival_rate;
  });
  nfv::Table table({"request", "rate pps", "chain len", "mean", "p50",
                    "p95", "p99", "method"});
  table.set_precision(5);
  for (std::size_t i = 0;
       i < order.size() && i < static_cast<std::size_t>(top); ++i) {
    const auto id = nfv::RequestId{static_cast<std::uint32_t>(order[i])};
    const auto p = nfv::core::predict_request_tail(model, result, id);
    table.add_row({static_cast<long long>(id.value()),
                   model.workload.requests[id.index()].arrival_rate,
                   static_cast<long long>(
                       model.workload.requests[id.index()].chain.size()),
                   p.mean, p.p50, p.p95, p.p99,
                   std::string(p.exact ? "closed form" : "sampled")});
  }
  std::fputs(table.markdown().c_str(), stdout);
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr simulate", "optimize then replay packet-level");
  const auto& topology_file = cli.add_string("topology", 't', "topology file", "");
  const auto& workload_file = cli.add_string("workload", 'w', "workload file", "");
  const auto& duration = cli.add_double("duration", 'd', "simulated seconds", 60.0);
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 1);
  ThreadsFlag threads(cli);
  Telemetry tele(cli);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (!threads.install()) return 2;
  nfv::core::SystemModel model;
  model.topology = read_topology(topology_file);
  model.workload = read_workload(workload_file);
  tele.activate();
  const auto result = nfv::core::JointOptimizer{nfv::core::JointConfig{}}.run(
      model, static_cast<std::uint64_t>(seed));

  nfv::core::ReportInputs inputs;
  inputs.command = "simulate";
  inputs.seed = static_cast<std::uint64_t>(seed);
  inputs.model = &model;
  inputs.result = &result;

  if (!result.feasible) {
    tele.finish(inputs);
    std::puts("INFEASIBLE — placement failed");
    return 3;
  }
  const auto build = nfv::core::build_sim_network(model, result);
  nfv::sim::SimConfig sim_cfg;
  sim_cfg.duration = duration;
  sim_cfg.warmup = duration * 0.1;
  sim_cfg.seed = static_cast<std::uint64_t>(seed) + 1;
  const auto sim = nfv::sim::simulate(build.network, sim_cfg);
  inputs.sim = &sim;
  tele.finish(inputs);

  double predicted = 0.0;
  double measured = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < sim.flows.size(); ++i) {
    if (sim.flows[i].delivered == 0) continue;
    const auto id = build.flow_request[i];
    const auto w = static_cast<double>(sim.flows[i].delivered);
    predicted += result.requests[id.index()].total_latency() * w;
    measured += sim.flows[i].end_to_end.mean() * w;
    weight += w;
  }
  std::printf("events processed  : %llu\n",
              static_cast<unsigned long long>(sim.events_processed));
  std::printf("predicted latency : %.5f (Eq. 16 analytic)\n",
              predicted / weight);
  std::printf("measured latency  : %.5f (packet-level DES)\n",
              measured / weight);
  std::printf("difference        : %.1f%%\n",
              100.0 * (measured - predicted) / predicted);
  return 0;
}

int cmd_chaos(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr chaos",
                     "replay a failure storm through the resilience ladder");
  const auto& topology_file = cli.add_string("topology", 't', "topology file", "");
  const auto& workload_file = cli.add_string("workload", 'w', "workload file", "");
  const auto& nodes =
      cli.add_int("nodes", 'n', "compute nodes (generated topology)", 8);
  const auto& events = cli.add_int("events", 'e', "churn events", 20);
  const auto& max_down =
      cli.add_int("max-down", 'd', "max concurrently down nodes", 3);
  const auto& interval =
      cli.add_double("interval", 'i', "mean inter-event seconds", 5.0);
  const auto& demand = cli.add_double(
      "demand", 'D', "per-instance demand (generated workload)", 150.0);
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 21);
  ThreadsFlag threads(cli);
  Telemetry tele(cli);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (!threads.install()) return 2;

  nfv::Rng rng(static_cast<std::uint64_t>(seed));
  nfv::core::SystemModel model;
  if (!topology_file.empty()) {
    model.topology = read_topology(topology_file);
  } else {
    model.topology = nfv::topo::make_star(
        static_cast<std::size_t>(nodes),
        nfv::topo::CapacitySpec{1000.0, 1800.0}, nfv::topo::LinkSpec{2e-4},
        rng);
  }
  if (!workload_file.empty()) {
    model.workload = read_workload(workload_file);
  } else {
    nfv::workload::WorkloadConfig wcfg;
    wcfg.vnf_count = 12;
    wcfg.request_count = 80;
    wcfg.fixed_demand_per_instance = demand;
    wcfg.chain_template_count = 10;
    model.workload = nfv::workload::WorkloadGenerator(wcfg).generate(rng);
  }

  nfv::Rng storm_rng(static_cast<std::uint64_t>(seed));
  const auto churn = nfv::core::make_failure_storm(
      model.topology.compute_count(), static_cast<std::size_t>(events),
      storm_rng, interval, static_cast<std::size_t>(max_down));

  tele.activate();
  nfv::core::ResilienceController controller(
      model, {}, static_cast<std::uint64_t>(seed));

  nfv::core::ReportInputs inputs;
  inputs.command = "chaos";
  inputs.seed = static_cast<std::uint64_t>(seed);
  inputs.model = &model;

  if (controller.served_fraction() <= 0.0) {
    tele.finish(inputs);
    std::fprintf(stderr,
                 "nfvpr chaos: the pristine model is infeasible — nothing "
                 "deployed, no storm to survive\n");
    return 3;
  }
  std::printf("deployed %zu VNFs / %zu requests; initial availability %.4f\n\n",
              model.workload.vnfs.size(), model.workload.requests.size(),
              controller.served_fraction());

  nfv::Table table({"t", "node", "event", "resolution", "migr", "shed",
                    "restored", "ttr s", "avail"});
  table.set_precision(3);
  for (const auto& e : churn) {
    const auto report = controller.on_event(e);
    table.add_row({report.time, model.topology.label(report.node),
                   std::string(report.node_up ? "UP" : "DOWN"),
                   std::string(nfv::core::to_string(report.resolution)),
                   static_cast<long long>(report.vnfs_migrated),
                   static_cast<long long>(report.requests_shed),
                   static_cast<long long>(report.requests_restored),
                   report.time_to_recover, report.availability});
  }
  inputs.resilience = controller.history();
  tele.finish(inputs);
  std::fputs(table.markdown().c_str(), stdout);

  double worst = 1.0;
  double ttr_sum = 0.0;
  std::size_t failures = 0;
  for (const auto& r : controller.history()) {
    worst = std::min(worst, r.availability);
    if (!r.node_up) {
      ttr_sum += r.time_to_recover;
      ++failures;
    }
  }
  std::printf(
      "\nfinal availability %.4f (worst %.4f), %zu requests shed, "
      "mean time-to-recover %.2f s over %zu failures\n",
      controller.served_fraction(), worst, controller.shed_count(),
      failures > 0 ? ttr_sum / static_cast<double>(failures) : 0.0, failures);
  return 0;
}

int cmd_generate_trace(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr generate-trace",
                     "emit an event trace (nfvpr.trace/1) from a workload");
  const auto& workload_file = cli.add_string("workload", 'w', "workload file", "");
  const auto& events = cli.add_int("events", 'e', "event count", 500);
  const auto& interarrival =
      cli.add_double("mean-interarrival", 'i', "mean seconds between events",
                     0.05);
  const auto& population = cli.add_int(
      "population", 'n', "target live-request population", 40);
  const auto& rate_change = cli.add_double(
      "rate-change-fraction", 'r', "fraction of events that are RATE_CHANGE",
      0.15);
  const auto& sigma = cli.add_double(
      "sigma-log", '\0', "lognormal spread of arrival rates (0 = uniform)",
      0.0);
  const auto& delivery =
      cli.add_double("delivery-prob", 'p', "P_r per request", 0.98);
  const auto& churn_nodes = cli.add_int(
      "churn-nodes", '\0',
      "interleave MTBF/MTTR node churn for this many nodes (0 = off; "
      "emits schema nfvpr.trace/2)", 0);
  const auto& mtbf = cli.add_double(
      "mtbf", '\0', "mean seconds between failures per churned node", 2.0);
  const auto& mttr = cli.add_double(
      "mttr", '\0', "mean seconds to repair per churned node", 0.5);
  const auto& ramp_amplitude = cli.add_double(
      "ramp-amplitude", '\0',
      "sinusoidal rate swing in [0, 1) around the sampled rate (0 = off)",
      0.0);
  const auto& ramp_period = cli.add_double(
      "ramp-period", '\0', "period of the rate ramp in trace seconds", 0.0);
  const auto& burst_every = cli.add_double(
      "burst-every", '\0',
      "burst cycle length in trace seconds (0 = no bursts)", 0.0);
  const auto& burst_length = cli.add_double(
      "burst-length", '\0', "burst duration within each cycle", 0.0);
  const auto& burst_factor = cli.add_double(
      "burst-factor", '\0', "rate multiplier (>= 1) inside a burst", 1.0);
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 1);
  const auto& binary = cli.add_flag(
      "binary", 'b',
      "emit the compact binary format (nfvpr.btrace/1) instead of JSON");
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (workload_file.empty()) {
    std::fputs("nfvpr generate-trace: --workload is required\n", stderr);
    return 2;
  }
  if (churn_nodes < 0) {
    std::fputs("nfvpr generate-trace: --churn-nodes must be >= 0\n", stderr);
    return 2;
  }
  const auto base = read_workload(workload_file);
  nfv::workload::EventStreamConfig cfg;
  cfg.event_count = static_cast<std::size_t>(events);
  cfg.mean_interarrival = interarrival;
  cfg.target_population = static_cast<std::size_t>(population);
  cfg.rate_change_fraction = rate_change;
  cfg.delivery_prob = delivery;
  cfg.rate_sigma_log = sigma;
  cfg.churn_node_count = static_cast<std::size_t>(churn_nodes);
  cfg.node_mtbf = mtbf;
  cfg.node_mttr = mttr;
  cfg.ramp_amplitude = ramp_amplitude;
  cfg.ramp_period = ramp_period;
  cfg.burst_every = burst_every;
  cfg.burst_length = burst_length;
  cfg.burst_factor = burst_factor;
  nfv::Rng rng(static_cast<std::uint64_t>(seed));
  const auto trace =
      nfv::workload::EventStreamGenerator(base, cfg).generate(rng);
  if (binary) {
    nfv::workload::save_binary_trace(trace, std::cout);
  } else {
    nfv::workload::save_event_trace(trace, std::cout);
  }
  return 0;
}

int cmd_transcode_trace(int argc, const char* const* argv) {
  nfv::CliParser cli(
      "nfvpr transcode-trace",
      "convert an event trace between text (nfvpr.trace/1|2) and binary "
      "(nfvpr.btrace/1); both directions round-trip byte-exactly");
  const auto& in = cli.add_string("in", 'i', "input trace ('-' = stdin)", "-");
  const auto& out =
      cli.add_string("out", 'o', "output file ('-' = stdout)", "-");
  const auto& to = cli.add_string(
      "to", '\0',
      "target format: auto | text | binary (auto flips the input format)",
      "auto");
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (to != "auto" && to != "text" && to != "binary") {
    std::fprintf(stderr,
                 "nfvpr transcode-trace: --to must be auto, text or binary "
                 "(got '%s')\n",
                 to.c_str());
    return 2;
  }
  try {
    std::string input;
    if (in == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      input = ss.str();
    } else {
      input = read_file(in);
    }
    const bool from_binary = nfv::workload::is_binary_trace(input);
    const auto trace = from_binary
                           ? nfv::workload::load_binary_trace(input)
                           : nfv::workload::load_event_trace(input);
    const bool to_binary = to == "binary" || (to == "auto" && !from_binary);
    const auto emit = [&](std::ostream& os) {
      if (to_binary) {
        nfv::workload::save_binary_trace(trace, os);
      } else {
        nfv::workload::save_event_trace(trace, os);
      }
    };
    if (out == "-") {
      emit(std::cout);
    } else {
      std::ofstream os(out, std::ios::binary);
      if (!os) throw std::runtime_error("cannot open " + out);
      emit(os);
    }
    return 0;
  } catch (const nfv::workload::TraceParseError& e) {
    std::fprintf(stderr, "nfvpr transcode-trace: bad trace: %s\n", e.what());
    return 2;
  }
}

int cmd_serve(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr serve",
                     "replay an event trace through the online serving engine");
  const auto& topology_file = cli.add_string("topology", 't', "topology file", "");
  const auto& workload_file = cli.add_string(
      "workload", 'w', "workload file (VNF catalog; requests ignored)", "");
  const auto& trace_file = cli.add_string(
      "trace", 'T',
      "event trace (nfvpr.trace/1, /2, or binary nfvpr.btrace/1)", "");
  const auto& headroom = cli.add_double(
      "headroom", 'H', "stability margin in [0, 1)", 0.10);
  const auto& rebalance = cli.add_double(
      "rebalance-threshold", 'R', "relative imbalance that triggers a "
      "bounded rebalance", 0.25);
  const auto& budget = cli.add_int(
      "migration-budget", 'K', "max request moves per rebalance", 4);
  const auto& queue_cap = cli.add_int(
      "queue-capacity", 'Q', "waiting room size (0 rejects immediately)", 64);
  const auto& link = cli.add_double(
      "link-latency", 'l', "L of Eq. 16 (default: topology mean)", -1.0);
  const auto& overload_window = cli.add_int(
      "overload-window", '\0',
      "events of sustained pressure before degraded mode (0 disables)", 32);
  const auto& degraded_headroom = cli.add_double(
      "degraded-headroom", '\0',
      "tightened headroom while degraded (>= --headroom, < 1)", 0.25);
  const auto& checkpoint_out = cli.add_string(
      "checkpoint-out", '\0',
      "write a crash-safe checkpoint (nfvpr.checkpoint/1) here", "");
  const auto& checkpoint_every = cli.add_int(
      "checkpoint-every", '\0',
      "rewrite --checkpoint-out every N events (0: only at the end)", 0);
  const auto& resume_file = cli.add_string(
      "resume", '\0',
      "resume from this checkpoint (engine config comes from the file; "
      "the final report is byte-identical to the uninterrupted run)", "");
  const auto& report_out = cli.add_string(
      "report-out", '\0',
      "write the serve run report here (deterministic: no registry "
      "snapshot, byte-identical for any --threads)", "");
  const auto& with_events = cli.add_flag(
      "events-log", '\0', "include per-event decisions in the report");
  const auto& snapshot_every = cli.add_double(
      "snapshot-every", '\0',
      "close a timeline window every N trace-time units (event-time driven; "
      "the stream is byte-identical for any --threads/--shards; 0 = off)",
      0.0);
  const auto& timeline_span = cli.add_int(
      "timeline-span", '\0',
      "windows in the sliding admission-wait percentile span (>= 1)", 8);
  const auto& timeline_out = cli.add_string(
      "timeline-out", '\0',
      "write the nfvpr.timeline/1 JSONL stream here ('-' = stdout, human "
      "summary moves to stderr); requires --snapshot-every", "");
  const auto& lifecycle_out = cli.add_string(
      "lifecycle-out", '\0',
      "write per-request lifecycle spans (Chrome trace-event JSON, schema "
      "nfvpr.lifecycle/1) here", "");
  const auto& flight_cap = cli.add_int(
      "flight-recorder", '\0',
      "flight-recorder ring capacity: last K engine decisions (>= 1)", 256);
  const auto& flight_out = cli.add_string(
      "flight-recorder-out", '\0',
      "enable the flight recorder and dump the ring (nfvpr.flight/1) here "
      "on crash and on every checkpoint write", "");
  const auto& flight_dump_on_exit = cli.add_flag(
      "flight-recorder-dump-on-exit", '\0',
      "also dump the flight-recorder ring on normal exit (requires "
      "--flight-recorder-out)");
  const auto& autoscale = cli.add_string(
      "autoscale", '\0',
      "elastic per-VNF instance sizing: off, reactive (utilization bands + "
      "hysteresis), or predictive (EWMA forecast + safety margin)", "off");
  const auto& as_interval = cli.add_double(
      "as-interval", '\0',
      "autoscale decision cadence in trace-time units", 0.5);
  const auto& as_high = cli.add_double(
      "as-high", '\0', "scale-out utilization watermark in (0, 1]", 0.80);
  const auto& as_low = cli.add_double(
      "as-low", '\0', "scale-in utilization watermark in [0, --as-high)",
      0.30);
  const auto& as_cooldown = cli.add_int(
      "as-cooldown", '\0',
      "decision windows a VNF stays silent after an action", 2);
  const auto& as_step = cli.add_int(
      "as-step", '\0', "max instances opened/drained per VNF per window", 1);
  const auto& as_alpha = cli.add_double(
      "as-alpha", '\0', "predictive EWMA smoothing factor in (0, 1]", 0.30);
  const auto& as_forecast = cli.add_double(
      "as-forecast", '\0',
      "predictive look-ahead horizon in decision windows", 2.0);
  const auto& as_margin = cli.add_double(
      "as-margin", '\0',
      "predictive fractional capacity headroom above the forecast", 0.15);
  const auto& seed = cli.add_int("seed", 's', "RNG seed (recorded only; the "
                                 "engine is deterministic)", 1);
  ThreadsFlag threads(cli);
  // --shards runs an offline sharded re-solve of the live state after the
  // replay — the consolidation gap between online serving and a
  // from-scratch sharded optimum.  --solver races placement backends in
  // that same offline re-solve (DESIGN.md §17).
  ShardsFlag shards(cli);
  SolverFlags solver(cli);
  Telemetry tele(cli);
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (!threads.install()) return 2;
  if (!shards.validate()) return 2;
  if (!solver.validate()) return 2;
  if (topology_file.empty() || workload_file.empty() || trace_file.empty()) {
    std::fputs("nfvpr serve: --topology, --workload and --trace are required\n",
               stderr);
    return 2;
  }
  if (budget < 0 || queue_cap < 0 || overload_window < 0 ||
      checkpoint_every < 0) {
    std::fputs("nfvpr serve: flag value out of range\n", stderr);
    return 2;
  }
  if (timeline_span < 1) {
    std::fputs("nfvpr serve: --timeline-span must be >= 1\n", stderr);
    return 2;
  }
  if (flight_cap < 1) {
    std::fputs("nfvpr serve: --flight-recorder must be >= 1\n", stderr);
    return 2;
  }
  if (flight_dump_on_exit && flight_out.empty()) {
    std::fputs(
        "nfvpr serve: --flight-recorder-dump-on-exit requires "
        "--flight-recorder-out\n",
        stderr);
    return 2;
  }
  nfv::serve::ServeConfig cfg;
  cfg.headroom = headroom;
  cfg.rebalance_threshold = rebalance;
  cfg.migration_budget = static_cast<std::uint32_t>(budget);
  cfg.queue_capacity = static_cast<std::size_t>(queue_cap);
  if (link >= 0.0) cfg.link_latency = link;
  cfg.overload_window = static_cast<std::size_t>(overload_window);
  cfg.degraded_headroom = degraded_headroom;
  cfg.snapshot_every = snapshot_every;
  cfg.timeline_span = static_cast<std::size_t>(timeline_span);
  cfg.lifecycle = !lifecycle_out.empty();
  const auto policy = nfv::serve::parse_scale_policy(autoscale);
  if (!policy) {
    std::fprintf(stderr,
                 "nfvpr serve: unknown --autoscale policy '%s' (expected "
                 "off, reactive, or predictive)\n",
                 autoscale.c_str());
    return 2;
  }
  if (as_cooldown < 0 || as_step < 1) {
    std::fputs("nfvpr serve: autoscale flag value out of range\n", stderr);
    return 2;
  }
  cfg.autoscale.policy = *policy;
  cfg.autoscale.scale_interval = as_interval;
  cfg.autoscale.high_watermark = as_high;
  cfg.autoscale.low_watermark = as_low;
  cfg.autoscale.cooldown_windows = static_cast<std::uint32_t>(as_cooldown);
  cfg.autoscale.max_step = static_cast<std::uint32_t>(as_step);
  cfg.autoscale.ewma_alpha = as_alpha;
  cfg.autoscale.forecast_windows = as_forecast;
  cfg.autoscale.safety_margin = as_margin;
  try {
    // NaN and out-of-range policy knobs are CLI misuse, not a runtime
    // failure: map the precondition throw to the usage exit code.
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "nfvpr serve: invalid config: %s\n", e.what());
    return 2;
  }

  try {
    const auto topology = read_topology(topology_file);
    const auto workload = read_workload(workload_file);
    // The trace format is auto-detected by magic: binary nfvpr.btrace/1
    // streams through the zero-allocation decoder in micro-batches; text
    // traces materialize fully (the loader pre-validates the whole file).
    const std::string trace_bytes = read_file(trace_file);
    const bool binary_trace = nfv::workload::is_binary_trace(trace_bytes);
    std::optional<nfv::workload::EventTrace> trace;
    std::optional<nfv::workload::BinaryTraceDecoder> decoder;
    std::uint64_t total_events = 0;
    std::uint32_t trace_vnfs = 0;
    if (binary_trace) {
      decoder.emplace(trace_bytes);
      total_events = decoder->event_count();
      trace_vnfs = decoder->vnf_count();
    } else {
      trace.emplace(nfv::workload::load_event_trace(trace_bytes));
      total_events = trace->events.size();
      trace_vnfs = trace->vnf_count;
    }
    if (trace_vnfs > workload.vnfs.size()) {
      std::fprintf(stderr,
                   "nfvpr serve: trace references %u VNFs but the workload "
                   "defines only %zu\n",
                   trace_vnfs, workload.vnfs.size());
      return 2;
    }

    tele.activate();
    std::uint64_t start = 0;
    std::optional<nfv::serve::ServeEngine> engine;
    if (!resume_file.empty()) {
      nfv::serve::BinaryTraceCursor bcursor;
      bool has_bcursor = false;
      engine.emplace(nfv::serve::restore_checkpoint(
          read_file(resume_file), topology, workload.vnfs, &start, &bcursor,
          &has_bcursor));
      if (start > total_events) {
        std::fprintf(stderr,
                     "nfvpr serve: checkpoint cursor %llu is past the end of "
                     "the trace (%llu events)\n",
                     static_cast<unsigned long long>(start),
                     static_cast<unsigned long long>(total_events));
        return 2;
      }
      if (binary_trace) {
        if (has_bcursor) {
          // O(1) resume: land the decoder exactly where the checkpointed
          // run left it (offset + XOR delta base).
          decoder->seek(bcursor.byte_offset, start, bcursor.time_bits);
        } else {
          // Checkpoint from a text-trace run: hop record to record.
          decoder->skip(start);
        }
      }
    } else {
      engine.emplace(topology, workload.vnfs, cfg);
    }
    // On --resume the effective config comes from the checkpoint; the
    // output flags must agree with what the engine actually recorded.
    if (!timeline_out.empty() && engine->config().snapshot_every <= 0.0) {
      std::fputs("nfvpr serve: --timeline-out requires --snapshot-every > 0\n",
                 stderr);
      return 2;
    }
    if (!lifecycle_out.empty() && !engine->config().lifecycle) {
      std::fputs(
          "nfvpr serve: --lifecycle-out given but the resumed checkpoint "
          "was recorded without a lifecycle log\n",
          stderr);
      return 2;
    }

    std::optional<nfv::obs::FlightRecorder> flight;
    std::optional<nfv::obs::ScopedFlightRecorder> flight_scope;
    if (!flight_out.empty()) {
      flight.emplace(static_cast<std::size_t>(flight_cap));
      flight_scope.emplace(*flight);
    }
    const auto dump_flight = [&]() {
      if (!flight) return;
      std::ofstream os(flight_out);
      if (!os) throw std::runtime_error("cannot open " + flight_out);
      flight->dump_json(os);
    };

    const auto maybe_checkpoint = [&](std::uint64_t applied, bool final) {
      if (checkpoint_out.empty()) return;
      const auto every = static_cast<std::uint64_t>(checkpoint_every);
      if (!final && (every == 0 || applied % every != 0)) return;
      std::ofstream os(checkpoint_out);
      if (!os) throw std::runtime_error("cannot open " + checkpoint_out);
      if (binary_trace) {
        // Binary runs record the decoder position so --resume can seek
        // instead of re-hopping every earlier record.
        const nfv::serve::BinaryTraceCursor bcur{decoder->byte_offset(),
                                                 decoder->last_time_bits()};
        nfv::serve::save_checkpoint(*engine, applied, os, &bcur);
      } else {
        nfv::serve::save_checkpoint(*engine, applied, os);
      }
      // A checkpoint marks a moment someone may later debug from; pin the
      // decision ring that led here next to it.
      dump_flight();
    };
    try {
      if (binary_trace) {
        // Stream micro-batches; each chunk ends at the next checkpoint
        // boundary so checkpoints land at the same event counts (and thus
        // the same states) as the per-event text loop.
        const auto every = static_cast<std::uint64_t>(checkpoint_every);
        std::uint64_t applied = start;
        while (applied < total_events) {
          std::uint64_t limit = total_events - applied;
          if (!checkpoint_out.empty() && every > 0) {
            const std::uint64_t boundary = ((applied / every) + 1) * every;
            limit = std::min(limit, boundary - applied);
          }
          const std::uint64_t n = engine->replay_binary(*decoder, 256, limit);
          if (n == 0) break;  // decoder ran dry (count_ was trusted above)
          applied += n;
          maybe_checkpoint(applied, applied == total_events);
        }
        if (total_events == 0) maybe_checkpoint(0, true);
      } else {
        for (std::uint64_t i = start; i < total_events; ++i) {
          engine->on_event(trace->events[i]);
          maybe_checkpoint(i + 1, i + 1 == total_events);
        }
        if (total_events == 0) maybe_checkpoint(0, true);
      }
    } catch (...) {
      // Crash dump: the last K decisions are exactly what a post-mortem
      // needs, and the ring is still intact here.
      dump_flight();
      throw;
    }
    if (flight_dump_on_exit) dump_flight();
    const auto summary = engine->summary();

    const nfv::obs::ServeSection section =
        nfv::serve::make_serve_section(*engine, with_events);
    if (!report_out.empty()) {
      // The deterministic report: serve section only, no metrics-registry
      // snapshot (exec counters vary with --threads; this file must not).
      nfv::core::ReportInputs rinputs;
      rinputs.command = "serve";
      rinputs.seed = static_cast<std::uint64_t>(seed);
      rinputs.serve = &section;
      const nfv::obs::RunReport report = nfv::core::build_run_report(rinputs);
      std::ofstream os(report_out);
      if (!os) throw std::runtime_error("cannot open " + report_out);
      nfv::obs::write_run_report(report, os);
    }
    nfv::core::ReportInputs inputs;
    inputs.command = "serve";
    inputs.seed = static_cast<std::uint64_t>(seed);
    inputs.serve = &section;
    tele.finish(inputs);

    if (!timeline_out.empty()) {
      const nfv::obs::TimelineDoc tdoc = engine->timeline_doc();
      if (timeline_out == "-") {
        nfv::obs::write_timeline(tdoc, std::cout);
      } else {
        std::ofstream os(timeline_out);
        if (!os) throw std::runtime_error("cannot open " + timeline_out);
        nfv::obs::write_timeline(tdoc, os);
      }
    }
    if (!lifecycle_out.empty()) {
      std::ofstream os(lifecycle_out);
      if (!os) throw std::runtime_error("cannot open " + lifecycle_out);
      const double trace_end =
          engine->log().empty() ? 0.0 : engine->log().back().time;
      nfv::obs::write_lifecycle_trace(engine->lifecycle_log(), trace_end, os);
    }

    // With the timeline on stdout the stream must stay machine-parseable,
    // so the human summary moves to stderr.
    std::FILE* hout = timeline_out == "-" ? stderr : stdout;
    std::fprintf(hout, "events                : %llu (%llu arrivals)\n",
                static_cast<unsigned long long>(summary.events),
                static_cast<unsigned long long>(summary.arrivals));
    std::fprintf(hout, "admitted              : %llu (+%llu from queue, +%llu "
                "retried), %llu rejected\n",
                static_cast<unsigned long long>(summary.admitted),
                static_cast<unsigned long long>(summary.admitted_from_queue),
                static_cast<unsigned long long>(summary.retry_admitted),
                static_cast<unsigned long long>(summary.rejected));
    std::fprintf(hout, "shed                  : %llu (+%llu fault, +%llu overload)\n",
                static_cast<unsigned long long>(summary.shed),
                static_cast<unsigned long long>(summary.shed_fault),
                static_cast<unsigned long long>(summary.shed_overload));
    std::fprintf(hout, "admission rate        : %.1f%%\n",
                100.0 * summary.admission_rate);
    std::fprintf(hout, "migrations            : %llu over %llu rebalances "
                "(max %llu per pass, K=%lld)\n",
                static_cast<unsigned long long>(summary.migrations),
                static_cast<unsigned long long>(summary.rebalances),
                static_cast<unsigned long long>(
                    summary.max_migrations_per_rebalance),
                static_cast<long long>(budget));
    std::fprintf(hout, "scale out / in        : %llu / %llu\n",
                static_cast<unsigned long long>(summary.scale_outs),
                static_cast<unsigned long long>(summary.scale_ins));
    std::fprintf(hout, "live at end           : %llu requests on %llu instances "
                "(%llu nodes), %llu queued, %llu retrying\n",
                static_cast<unsigned long long>(summary.live_requests),
                static_cast<unsigned long long>(summary.active_instances),
                static_cast<unsigned long long>(summary.nodes_in_service),
                static_cast<unsigned long long>(summary.queued_requests),
                static_cast<unsigned long long>(summary.retry_queued));
    if (summary.node_downs + summary.node_ups > 0) {
      std::fprintf(hout, "node churn            : %llu down / %llu up, "
                  "%llu instances closed\n",
                  static_cast<unsigned long long>(summary.node_downs),
                  static_cast<unsigned long long>(summary.node_ups),
                  static_cast<unsigned long long>(summary.instances_closed));
      std::fprintf(hout, "evacuations           : %llu requests (%llu migrations), "
                  "%llu parked\n",
                  static_cast<unsigned long long>(summary.evacuated_requests),
                  static_cast<unsigned long long>(
                      summary.evacuation_migrations),
                  static_cast<unsigned long long>(summary.parked));
    }
    if (summary.degradations > 0) {
      std::fprintf(hout, "degraded mode         : entered %llu times "
                  "(%llu events)\n",
                  static_cast<unsigned long long>(summary.degradations),
                  static_cast<unsigned long long>(summary.degraded_events));
    }
    if (engine->config().autoscale.enabled()) {
      std::fprintf(
          hout,
          "autoscale (%s)  : %llu decisions, %llu opened / %llu drained, "
          "%llu flaps, %llu cooldown-blocked\n",
          std::string(nfv::serve::to_string(engine->config().autoscale.policy))
              .c_str(),
          static_cast<unsigned long long>(summary.autoscale_decisions),
          static_cast<unsigned long long>(summary.autoscale_scale_outs),
          static_cast<unsigned long long>(summary.autoscale_scale_ins),
          static_cast<unsigned long long>(summary.autoscale_flaps),
          static_cast<unsigned long long>(summary.autoscale_blocked_cooldown));
      std::fprintf(hout,
                   "instance-seconds      : %.4f (%llu draining at end)\n",
                   summary.instance_seconds,
                   static_cast<unsigned long long>(summary.draining_instances));
    }
    std::fprintf(hout, "availability          : %.4f\n", summary.availability);
    std::fprintf(hout, "predicted latency     : mean %.5f s, p99 %.5f s (Eq. 16)\n",
                summary.mean_predicted_latency,
                summary.p99_predicted_latency);
    if ((shards.enabled() || solver.enabled()) &&
        summary.live_requests > 0) {
      // Offline sharded re-solve of the live state: the consolidation gap
      // between the online deployment and a from-scratch optimum.  With
      // --solver the re-solve races placement backends (DESIGN.md §17).
      try {
        nfv::core::SystemModel live_model;
        live_model.topology = topology;
        live_model.workload = engine->live_workload();
        nfv::core::JointConfig jcfg;
        jcfg.shard = shards.config();
        if (link >= 0.0) jcfg.link_latency = link;
        nfv::core::SolverOutcome race;
        nfv::core::JointResult offline;
        if (solver.enabled()) {
          race = nfv::core::PortfolioDriver(jcfg, solver.config())
                     .run(live_model, static_cast<std::uint64_t>(seed));
          offline = std::move(race.result);
        } else {
          offline = nfv::core::JointOptimizer(jcfg).run(
              live_model, static_cast<std::uint64_t>(seed));
        }
        if (offline.feasible) {
          std::fprintf(
              hout,
              "offline sharded solve : %zu nodes vs %llu live "
              "(avg latency %.5f s)\n",
              offline.placement_metrics.nodes_in_service,
              static_cast<unsigned long long>(summary.nodes_in_service),
              offline.avg_total_latency);
          print_shard_stats(offline.shard_stats, hout);
          if (solver.enabled()) print_solver_outcome(race, hout);
        } else {
          std::fprintf(hout, "%s\n", "offline sharded solve : infeasible");
        }
      } catch (const std::exception& e) {
        // A live state the offline solver cannot model (e.g. a VNF with
        // no live members) skips the comparison, never fails the replay.
        std::fprintf(hout, "offline sharded solve : skipped (%s)\n", e.what());
      }
    }
    if (summary.arrivals > 0 &&
        summary.admitted + summary.admitted_from_queue == 0) {
      std::fprintf(hout, "%s\n", "INFEASIBLE — no arrival could be admitted");
      return 3;
    }
    return 0;
  } catch (const nfv::workload::TraceParseError& e) {
    // A malformed or inconsistent trace is misuse of the CLI, not a
    // runtime failure: exit 2 like any other usage error.
    std::fprintf(stderr, "nfvpr serve: bad trace: %s\n", e.what());
    return 2;
  } catch (const nfv::serve::CheckpointParseError& e) {
    // Likewise for a truncated, corrupt, or mismatched checkpoint.
    std::fprintf(stderr, "nfvpr serve: bad checkpoint: %s\n", e.what());
    return 2;
  }
}

int cmd_analyze_timeline(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr analyze-timeline",
                     "summarize a timeline stream (nfvpr.timeline/1)");
  const auto& in = cli.add_string(
      "in", 'i', "timeline JSONL file ('-' = stdin)", "-");
  const auto& top = cli.add_int(
      "top", 'n', "show the N worst windows by availability", 3);
  const auto& fail_on = cli.add_string(
      "fail-on", '\0',
      "exit 3 when 'name<thr' or 'name>thr' holds for a whole-stream "
      "aggregate, e.g. availability_min<0.95 or shed_total>10", "");
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (top < 0) {
    std::fputs("nfvpr analyze-timeline: --top must be >= 0\n", stderr);
    return 2;
  }

  // Parse --fail-on before reading the stream: a malformed expression is a
  // usage error regardless of the input.
  std::string fail_name;
  char fail_op = '\0';
  double fail_threshold = 0.0;
  if (!fail_on.empty()) {
    const std::size_t pos = fail_on.find_first_of("<>");
    std::size_t consumed = 0;
    if (pos != std::string::npos && pos > 0) {
      fail_name = fail_on.substr(0, pos);
      fail_op = fail_on[pos];
      try {
        fail_threshold = std::stod(fail_on.substr(pos + 1), &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
    }
    if (fail_op == '\0' || consumed != fail_on.size() - fail_name.size() - 1) {
      std::fprintf(stderr,
                   "nfvpr analyze-timeline: bad --fail-on expression '%s' "
                   "(expected name<value or name>value)\n",
                   fail_on.c_str());
      return 2;
    }
  }

  std::string text;
  if (in == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    text = read_file(in);
  }
  try {
    const nfv::obs::TimelineDoc doc = nfv::obs::load_timeline(text);
    const nfv::obs::TimelineAggregates agg =
        nfv::obs::aggregate_timeline(doc.records);
    const auto values = nfv::obs::aggregate_values(agg);

    std::printf("timeline: %llu windows of %g s, %llu nodes\n",
                static_cast<unsigned long long>(agg.windows),
                doc.snapshot_every,
                static_cast<unsigned long long>(doc.nodes));
    std::size_t width = 0;
    for (const auto& [name, value] : values) {
      width = std::max(width, name.size());
    }
    for (const auto& [name, value] : values) {
      std::printf("  %-*s : %.17g\n", static_cast<int>(width), name.c_str(),
                  value);
    }

    if (top > 0 && !doc.records.empty()) {
      // Worst windows by availability (ties break to the earlier window so
      // the table is deterministic).
      std::vector<std::size_t> order(doc.records.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return doc.records[a].availability <
                                doc.records[b].availability;
                       });
      nfv::Table table({"window", "t_start", "avail", "offered", "carried",
                        "shed", "queued", "down"});
      table.set_precision(4);
      for (std::size_t i = 0;
           i < order.size() && i < static_cast<std::size_t>(top); ++i) {
        const nfv::obs::TimelineRecord& r = doc.records[order[i]];
        table.add_row({static_cast<long long>(r.window), r.t_start,
                       r.availability, r.offered_rate, r.carried_rate,
                       static_cast<long long>(r.shed),
                       static_cast<long long>(r.queued),
                       static_cast<long long>(r.nodes_down)});
      }
      std::printf("\nworst windows:\n");
      std::fputs(table.markdown().c_str(), stdout);
    }

    if (!fail_on.empty()) {
      const auto it =
          std::find_if(values.begin(), values.end(),
                       [&](const auto& nv) { return nv.first == fail_name; });
      if (it == values.end()) {
        std::fprintf(stderr,
                     "nfvpr analyze-timeline: unknown aggregate '%s' in "
                     "--fail-on\n",
                     fail_name.c_str());
        return 2;
      }
      const bool violated = fail_op == '<' ? it->second < fail_threshold
                                           : it->second > fail_threshold;
      if (violated) {
        std::fprintf(stderr,
                     "nfvpr analyze-timeline: FAIL %s = %.17g violates "
                     "%s%c%.17g (worst window %llu @ t=%.17g)\n",
                     fail_name.c_str(), it->second, fail_name.c_str(),
                     fail_op, fail_threshold,
                     static_cast<unsigned long long>(agg.worst_window),
                     agg.worst_window_t_start);
        return 3;
      }
      std::printf("\nfail-on check ok: %s = %.17g\n", fail_name.c_str(),
                  it->second);
    }
    return 0;
  } catch (const nfv::obs::TimelineParseError& e) {
    // Malformed input is CLI misuse, matching the trace/checkpoint policy.
    std::fprintf(stderr, "nfvpr analyze-timeline: bad timeline: %s\n",
                 e.what());
    return 2;
  }
}

int cmd_report(int argc, const char* const* argv) {
  nfv::CliParser cli("nfvpr report",
                     "pretty-print a run report, or diff two reports");
  const auto& in = cli.add_string("in", 'i', "run report JSON (current)", "");
  const auto& baseline = cli.add_string(
      "baseline", 'b', "baseline report to diff --in against", "");
  const auto& threshold = cli.add_double(
      "threshold", '\0',
      "min |%change| for a directional metric to count as a "
      "regression/improvement",
      1.0);
  const auto& fail_on_regression = cli.add_flag(
      "fail-on-regression", '\0', "exit 3 when the diff finds regressions");
  if (!cli.parse(argc, argv)) return parse_exit(cli);
  if (in.empty()) {
    std::fputs("nfvpr report: --in is required\n", stderr);
    return 2;
  }
  const nfv::obs::JsonValue current =
      nfv::obs::load_run_report(read_file(in));
  if (baseline.empty()) {
    std::fputs(nfv::obs::pretty_print_report(current).c_str(), stdout);
    return 0;
  }
  const nfv::obs::JsonValue base =
      nfv::obs::load_run_report(read_file(baseline));
  const auto diff = nfv::obs::diff_reports(base, current, threshold);
  std::fputs(nfv::obs::render_diff(diff).c_str(), stdout);
  if (fail_on_regression && diff.regressions > 0) return 3;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string subcommand = argv[1];
  // Asking for help is not a usage error.
  if (subcommand == "--help" || subcommand == "-h" || subcommand == "help") {
    (void)usage();
    return 0;
  }
  // Shift argv so each subcommand parser sees its own flags.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (subcommand == "generate-topology") {
      return cmd_generate_topology(sub_argc, sub_argv);
    }
    if (subcommand == "generate-workload") {
      return cmd_generate_workload(sub_argc, sub_argv);
    }
    if (subcommand == "place") return cmd_place(sub_argc, sub_argv);
    if (subcommand == "schedule") return cmd_schedule(sub_argc, sub_argv);
    if (subcommand == "pipeline") return cmd_pipeline(sub_argc, sub_argv);
    if (subcommand == "tail") return cmd_tail(sub_argc, sub_argv);
    if (subcommand == "simulate") return cmd_simulate(sub_argc, sub_argv);
    if (subcommand == "chaos") return cmd_chaos(sub_argc, sub_argv);
    if (subcommand == "generate-trace") {
      return cmd_generate_trace(sub_argc, sub_argv);
    }
    if (subcommand == "transcode-trace") {
      return cmd_transcode_trace(sub_argc, sub_argv);
    }
    if (subcommand == "serve") return cmd_serve(sub_argc, sub_argv);
    if (subcommand == "analyze-timeline") {
      return cmd_analyze_timeline(sub_argc, sub_argv);
    }
    if (subcommand == "report") return cmd_report(sub_argc, sub_argv);
  } catch (const nfv::InfeasibleError& e) {
    // Well-formed input that no algorithm can satisfy (e.g. a VNF larger
    // than every node): distinct from misuse and from internal failures.
    std::fprintf(stderr, "nfvpr %s: infeasible: %s\n", subcommand.c_str(),
                 e.what());
    return 4;
  } catch (const std::invalid_argument& e) {
    // Failed precondition (NFV_REQUIRE): the input itself is malformed.
    std::fprintf(stderr, "nfvpr %s: invalid argument: %s\n",
                 subcommand.c_str(), e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nfvpr %s: %s\n", subcommand.c_str(), e.what());
    return 1;
  }
  return usage();
}
