#!/usr/bin/env bash
# End-to-end CLI contract test for nfvpr: exit codes (0 ok, 2 usage),
# telemetry file emission, and the report pretty/diff round trip.
# Usage: cli_exit_codes.sh /path/to/nfvpr
set -u

NFVPR=${1:?usage: cli_exit_codes.sh /path/to/nfvpr}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

failures=0

expect_exit() {
  local want=$1
  local label=$2
  shift 2
  "$@" > "$WORK/out.txt" 2> "$WORK/err.txt"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label — expected exit $want, got $got" >&2
    sed 's/^/  stderr: /' "$WORK/err.txt" >&2
    failures=$((failures + 1))
  else
    echo "ok: $label"
  fi
}

expect_contains() {
  local file=$1
  local needle=$2
  local label=$3
  if ! grep -q -- "$needle" "$file"; then
    echo "FAIL: $label — '$needle' not found in $file" >&2
    failures=$((failures + 1))
  else
    echo "ok: $label"
  fi
}

# --- exit codes -----------------------------------------------------------
expect_exit 2 "no subcommand is a usage error" "$NFVPR"
expect_exit 2 "unknown subcommand is a usage error" "$NFVPR" frobnicate
expect_exit 0 "top-level --help exits 0" "$NFVPR" --help
expect_exit 0 "subcommand --help exits 0" "$NFVPR" pipeline --help
expect_exit 2 "unknown flag is a usage error" "$NFVPR" pipeline --bogus
expect_exit 2 "missing flag value is a usage error" "$NFVPR" pipeline --seed
expect_exit 2 "report without --in is a usage error" "$NFVPR" report

# --threads must be a positive integer on every parallel-capable subcommand.
for sub in place schedule pipeline simulate chaos serve; do
  expect_exit 2 "$sub --threads 0 is a usage error" "$NFVPR" "$sub" --threads 0
  expect_exit 2 "$sub --threads x is a usage error" "$NFVPR" "$sub" --threads x
done

# --shards must be a positive integer on every shard-capable subcommand.
for sub in place schedule pipeline serve; do
  expect_exit 2 "$sub --shards 0 is a usage error" "$NFVPR" "$sub" --shards 0
  expect_exit 2 "$sub --shards x is a usage error" "$NFVPR" "$sub" --shards x
done

# --- end-to-end telemetry -------------------------------------------------
expect_exit 0 "generate-topology" \
  sh -c "'$NFVPR' generate-topology --nodes 8 --seed 3 > '$WORK/dc.topo'"
expect_exit 0 "generate-workload" \
  sh -c "'$NFVPR' generate-workload --vnfs 8 --requests 40 --seed 3 \
         > '$WORK/peak.wl'"
expect_exit 0 "pipeline with telemetry" \
  "$NFVPR" pipeline -t "$WORK/dc.topo" -w "$WORK/peak.wl" --seed 3 \
  --sim-duration 5 --metrics-out "$WORK/run.json" \
  --trace-out "$WORK/trace.json"

expect_contains "$WORK/run.json" '"schema": "nfvpr.run_report/1"' \
  "run report carries the schema tag"
expect_contains "$WORK/run.json" '"instance_load"' \
  "run report has per-instance loads"
expect_contains "$WORK/run.json" 'placement.bfdsu.passes' \
  "run report has BFDSU counters"
expect_contains "$WORK/run.json" 'sim.des.events' \
  "run report has DES counters"
expect_contains "$WORK/trace.json" '"ph": "X"' \
  "trace file has complete events"
expect_contains "$WORK/trace.json" 'core.joint.run' \
  "trace file has the joint-run span"

# --- threading is a wall-clock knob only ----------------------------------
expect_exit 0 "pipeline serial reference" \
  sh -c "'$NFVPR' pipeline -t '$WORK/dc.topo' -w '$WORK/peak.wl' --seed 5 \
         > '$WORK/serial.txt'"
expect_exit 0 "pipeline threaded run" \
  sh -c "'$NFVPR' pipeline -t '$WORK/dc.topo' -w '$WORK/peak.wl' --seed 5 \
         --threads 4 > '$WORK/threaded.txt'"
if cmp -s "$WORK/serial.txt" "$WORK/threaded.txt"; then
  echo "ok: --threads 4 output is identical to serial"
else
  echo "FAIL: --threads 4 output differs from serial" >&2
  diff "$WORK/serial.txt" "$WORK/threaded.txt" | sed 's/^/  /' >&2
  failures=$((failures + 1))
fi

# --- sharding is a wall-clock knob only -----------------------------------
# One chain covering every VNF => one incidence component => sharding is
# the identity: the sharded pipeline must match the unsharded one byte for
# byte, report included (DESIGN.md §12).
cat > "$WORK/single.wl" <<'EOF'
vnf a 0 10 2 50
vnf b 1 10 2 50
vnf c 2 10 2 50
request 3.0 0.98 0 1 2
request 2.0 0.98 2 1 0
EOF
expect_exit 0 "pipeline unsharded reference" \
  sh -c "'$NFVPR' pipeline -t '$WORK/dc.topo' -w '$WORK/single.wl' --seed 7 \
         --metrics-out '$WORK/plain.json' > '$WORK/plain.txt'"
expect_exit 0 "pipeline sharded run" \
  sh -c "'$NFVPR' pipeline -t '$WORK/dc.topo' -w '$WORK/single.wl' --seed 7 \
         --shards 4 --metrics-out '$WORK/shard.json' > '$WORK/shard.txt'"
for pair in "plain.txt shard.txt stdout" "plain.json shard.json report"; do
  set -- $pair
  if cmp -s "$WORK/$1" "$WORK/$2"; then
    echo "ok: --shards 4 $3 is identical on a one-component instance"
  else
    echo "FAIL: --shards 4 $3 differs on a one-component instance" >&2
    diff "$WORK/$1" "$WORK/$2" | sed 's/^/  /' >&2
    failures=$((failures + 1))
  fi
done

# Two disjoint chains => two components => a real sharded solve; the
# fan-out cap and thread count must still never change the answer.
cat > "$WORK/two.wl" <<'EOF'
vnf a 0 10 2 50
vnf b 1 10 2 50
vnf c 2 10 2 50
vnf d 3 10 2 50
request 3.0 0.98 0 1
request 2.0 0.98 1 0
request 4.0 0.98 2 3
request 1.0 0.98 3 2
EOF
expect_exit 0 "sharded pipeline, 2 shards serial" \
  sh -c "'$NFVPR' pipeline -t '$WORK/dc.topo' -w '$WORK/two.wl' --seed 7 \
         --shards 2 -j 1 > '$WORK/s2.txt'"
expect_exit 0 "sharded pipeline, 5 shards threaded" \
  sh -c "'$NFVPR' pipeline -t '$WORK/dc.topo' -w '$WORK/two.wl' --seed 7 \
         --shards 5 -j 8 > '$WORK/s5.txt'"
if cmp -s "$WORK/s2.txt" "$WORK/s5.txt"; then
  echo "ok: --shards 2 -j 1 and --shards 5 -j 8 outputs are identical"
else
  echo "FAIL: sharded outputs differ across fan-out/thread counts" >&2
  diff "$WORK/s2.txt" "$WORK/s5.txt" | sed 's/^/  /' >&2
  failures=$((failures + 1))
fi

# --- solver portfolio (DESIGN.md §17) --------------------------------------
# Unknown algorithm names and solver ids are usage errors, not runtime
# failures.
expect_exit 2 "place unknown --algorithm exits 2" \
  "$NFVPR" place -t "$WORK/dc.topo" -w "$WORK/peak.wl" --algorithm NOPE
expect_exit 2 "schedule unknown --algorithm exits 2" \
  "$NFVPR" schedule -w "$WORK/peak.wl" --algorithm NOPE
expect_exit 2 "pipeline unknown placement algorithm exits 2" \
  "$NFVPR" pipeline -t "$WORK/dc.topo" -w "$WORK/peak.wl" -p NOPE
expect_exit 2 "pipeline unknown scheduling algorithm exits 2" \
  "$NFVPR" pipeline -t "$WORK/dc.topo" -w "$WORK/peak.wl" -q NOPE
for sub in place pipeline serve; do
  expect_exit 2 "$sub unknown --solver exits 2" \
    "$NFVPR" "$sub" -t "$WORK/dc.topo" -w "$WORK/peak.wl" --solver bogus
done
expect_exit 2 "--pso-swarm 0 exits 2" \
  "$NFVPR" pipeline -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  --solver pso --pso-swarm 0
expect_exit 2 "negative --budget-ms exits 2" \
  "$NFVPR" pipeline -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  --solver portfolio --budget-ms=-1
expect_exit 2 "place --solver with --shards exits 2" \
  "$NFVPR" place -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  --solver portfolio --shards 2

# Under --deterministic-budget the race is thread-count free: stdout and
# the report are byte-identical for any -j.
expect_exit 0 "portfolio pipeline, serial" \
  sh -c "'$NFVPR' pipeline -t '$WORK/dc.topo' -w '$WORK/peak.wl' --seed 7 \
         --solver portfolio --deterministic-budget --work-budget 32 \
         --report-out '$WORK/race1.json' -j 1 > '$WORK/race1.txt'"
expect_exit 0 "portfolio pipeline, 8 threads" \
  sh -c "'$NFVPR' pipeline -t '$WORK/dc.topo' -w '$WORK/peak.wl' --seed 7 \
         --solver portfolio --deterministic-budget --work-budget 32 \
         --report-out '$WORK/race8.json' -j 8 > '$WORK/race8.txt'"
for pair in "race1.txt race8.txt stdout" "race1.json race8.json report"; do
  set -- $pair
  if cmp -s "$WORK/$1" "$WORK/$2"; then
    echo "ok: --solver portfolio $3 is byte-identical across -j1/-j8"
  else
    echo "FAIL: --solver portfolio $3 differs between -j1 and -j8" >&2
    diff "$WORK/$1" "$WORK/$2" | sed 's/^/  /' >&2
    failures=$((failures + 1))
  fi
done
expect_contains "$WORK/race1.txt" 'solver race' \
  "pipeline prints the race summary"
expect_contains "$WORK/race1.json" '"solver"' \
  "race report carries the solver section"

# --- serve: trace validation and deterministic replay ---------------------
expect_exit 0 "serve --help exits 0" "$NFVPR" serve --help
expect_exit 2 "serve without --trace is a usage error" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl"
expect_exit 0 "generate-trace" \
  sh -c "'$NFVPR' generate-trace --workload '$WORK/peak.wl' --events 120 \
         --seed 3 > '$WORK/live.trace.json'"

# A trace whose timestamps go backwards is an invalid argument (exit 2).
cat > "$WORK/bad.trace.json" <<'EOF'
{"schema": "nfvpr.trace/1", "vnf_count": 8, "events": [
  {"t": 1.0, "kind": "REQ_ARRIVE", "request": 0, "rate": 5.0,
   "delivery_prob": 0.98, "chain": [0]},
  {"t": 0.5, "kind": "REQ_DEPART", "request": 0}
]}
EOF
expect_exit 2 "non-monotonic trace timestamps exit 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/bad.trace.json"

expect_exit 0 "serve replay, serial" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/live.trace.json" --report-out "$WORK/serve1.json" -j 1
expect_exit 0 "serve replay, 8 threads" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/live.trace.json" --report-out "$WORK/serve8.json" -j 8
if cmp -s "$WORK/serve1.json" "$WORK/serve8.json"; then
  echo "ok: serve -j 1 and -j 8 reports are byte-identical"
else
  echo "FAIL: serve reports differ between -j 1 and -j 8" >&2
  diff "$WORK/serve1.json" "$WORK/serve8.json" | sed 's/^/  /' >&2
  failures=$((failures + 1))
fi
expect_contains "$WORK/serve1.json" '"serve"' \
  "serve report carries the serve section"

# --- serve: config validation maps to usage errors ------------------------
expect_exit 2 "NaN --headroom exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/live.trace.json" --headroom nan
expect_exit 2 "out-of-range --headroom exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/live.trace.json" --headroom 1.0
expect_exit 2 "negative --rebalance-threshold exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/live.trace.json" --rebalance-threshold=-0.5
expect_exit 2 "--degraded-headroom below --headroom exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/live.trace.json" --headroom 0.3 --degraded-headroom 0.1

# --- serve: node churn (nfvpr.trace/2) and checkpoint/resume ---------------
expect_exit 0 "generate-trace with churn" \
  sh -c "'$NFVPR' generate-trace --workload '$WORK/peak.wl' --events 150 \
         --seed 5 --churn-nodes 3 --mtbf 2 --mttr 0.5 \
         > '$WORK/churn.trace.json'"
expect_contains "$WORK/churn.trace.json" 'nfvpr.trace/2' \
  "churn trace carries the /2 schema"

# A NODE_DOWN for a node the topology does not have is trace misuse.
sed 's/"node": [0-9]*/"node": 99/' "$WORK/churn.trace.json" \
  > "$WORK/badnode.trace.json"
expect_exit 2 "unknown node id in a /2 trace exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/badnode.trace.json"

expect_exit 0 "serve churn replay with checkpointing" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --checkpoint-out "$WORK/full.ckpt.json" \
  --report-out "$WORK/churn_full.json" --events-log
cp "$WORK/out.txt" "$WORK/churn_full.txt"
expect_contains "$WORK/churn_full.txt" 'availability' \
  "serve summary reports availability"

# Kill mid-trace (simulated by a truncated trace), then resume over the
# full trace: stdout and the report must be byte-identical to the
# uninterrupted run.
python3 - "$WORK" <<'EOF'
import json, sys
work = sys.argv[1]
trace = json.load(open(work + '/churn.trace.json'))
trace['events'] = trace['events'][:70]
json.dump(trace, open(work + '/churn.part.json', 'w'))
EOF
expect_exit 0 "serve prefix writes a checkpoint" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.part.json" --checkpoint-out "$WORK/mid.ckpt.json"
expect_exit 0 "serve --resume finishes the trace" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --resume "$WORK/mid.ckpt.json" \
  --report-out "$WORK/churn_resumed.json" --events-log
if cmp -s "$WORK/out.txt" "$WORK/churn_full.txt"; then
  echo "ok: resumed stdout is byte-identical to the uninterrupted run"
else
  echo "FAIL: resumed stdout differs from the uninterrupted run" >&2
  diff "$WORK/out.txt" "$WORK/churn_full.txt" | sed 's/^/  /' >&2
  failures=$((failures + 1))
fi
if cmp -s "$WORK/churn_resumed.json" "$WORK/churn_full.json"; then
  echo "ok: resumed report is byte-identical to the uninterrupted run"
else
  echo "FAIL: resumed report differs from the uninterrupted run" >&2
  diff "$WORK/churn_resumed.json" "$WORK/churn_full.json" | sed 's/^/  /' >&2
  failures=$((failures + 1))
fi

# Corrupt checkpoints are usage errors with a one-line diagnostic.
head -c 150 "$WORK/mid.ckpt.json" > "$WORK/trunc.ckpt.json"
expect_exit 2 "--resume on a truncated checkpoint exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --resume "$WORK/trunc.ckpt.json"
expect_contains "$WORK/err.txt" 'bad checkpoint' \
  "truncated checkpoint diagnostic names the checkpoint"
sed 's/nfvpr.checkpoint\/1/nfvpr.checkpoint\/9/' "$WORK/mid.ckpt.json" \
  > "$WORK/wrong.ckpt.json"
expect_exit 2 "--resume on a wrong-schema checkpoint exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --resume "$WORK/wrong.ckpt.json"
sed 's/"cursor": [0-9]*/"cursor": 999999/' "$WORK/mid.ckpt.json" \
  > "$WORK/past.ckpt.json"
expect_exit 2 "--resume past the end of the trace exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --resume "$WORK/past.ckpt.json"

# --- serve: elastic autoscaling (DESIGN.md §16) ---------------------------
expect_exit 2 "--autoscale bogus exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --autoscale bogus
expect_exit 2 "NaN --as-high exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --autoscale reactive --as-high nan
expect_exit 2 "--as-low above --as-high exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --autoscale reactive --as-low 0.9 --as-high 0.5
expect_exit 2 "--as-step 0 exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --autoscale predictive --as-step 0
expect_exit 2 "out-of-range --as-alpha exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --autoscale predictive --as-alpha 1.5

# A ramp + burst trace through both policies: the autoscale block reaches
# stdout and the report, and -j never changes a byte.
expect_exit 0 "generate-trace with a rate profile" \
  sh -c "'$NFVPR' generate-trace --workload '$WORK/peak.wl' --events 150 \
         --seed 5 --churn-nodes 3 --mtbf 2 --mttr 0.5 \
         --ramp-amplitude 0.5 --ramp-period 4 \
         --burst-every 3 --burst-length 1 --burst-factor 2 \
         > '$WORK/ramp.trace.json'"
# generate-trace config violations ride the NFV_REQUIRE path (exit 5),
# like every other generator flag.
expect_exit 5 "--ramp-amplitude without --ramp-period exits 5" \
  sh -c "'$NFVPR' generate-trace --workload '$WORK/peak.wl' \
         --ramp-amplitude 0.5 > /dev/null"
for policy in reactive predictive; do
  expect_exit 0 "serve --autoscale $policy, serial" \
    "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
    -T "$WORK/ramp.trace.json" --autoscale "$policy" \
    --report-out "$WORK/as_$policy.j1.json" -j 1
  cp "$WORK/out.txt" "$WORK/as_$policy.j1.txt"
  expect_contains "$WORK/as_$policy.j1.txt" "autoscale ($policy)" \
    "serve summary reports the $policy autoscaler"
  expect_contains "$WORK/as_$policy.j1.json" '"autoscale"' \
    "$policy report carries the autoscale section"
  expect_exit 0 "serve --autoscale $policy, 8 threads" \
    "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
    -T "$WORK/ramp.trace.json" --autoscale "$policy" \
    --report-out "$WORK/as_$policy.j8.json" -j 8
  if cmp -s "$WORK/out.txt" "$WORK/as_$policy.j1.txt" &&
     cmp -s "$WORK/as_$policy.j1.json" "$WORK/as_$policy.j8.json"; then
    echo "ok: autoscaled $policy output is byte-identical across -j1/-j8"
  else
    echo "FAIL: autoscaled $policy output differs between -j1 and -j8" >&2
    failures=$((failures + 1))
  fi
done

# An autoscale-off run must not mention the subsystem anywhere (the PR 8
# byte-compatibility guard, CLI edition).
expect_exit 0 "serve with autoscaling off writes a clean checkpoint" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/ramp.trace.json" --checkpoint-out "$WORK/off.ckpt.json" \
  --report-out "$WORK/off.json"
if grep -q -e autoscale -e draining \
     "$WORK/off.ckpt.json" "$WORK/off.json" "$WORK/out.txt"; then
  echo "FAIL: autoscale-off run mentions the subsystem" >&2
  failures=$((failures + 1))
else
  echo "ok: autoscale-off checkpoint/report/stdout carry no subsystem trace"
fi

# Autoscaled checkpoint/resume: kill mid-trace, resume, byte-identical.
python3 - "$WORK" <<'EOF'
import json, sys
work = sys.argv[1]
trace = json.load(open(work + '/ramp.trace.json'))
trace['events'] = trace['events'][:70]
json.dump(trace, open(work + '/ramp.part.json', 'w'))
EOF
expect_exit 0 "autoscaled full run for the resume reference" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/ramp.trace.json" --autoscale predictive \
  --report-out "$WORK/as_full.json"
expect_exit 0 "autoscaled prefix writes a checkpoint" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/ramp.part.json" --autoscale predictive \
  --checkpoint-out "$WORK/as.ckpt.json"
expect_contains "$WORK/as.ckpt.json" 'autoscale_policy' \
  "autoscaled checkpoint records the policy"
expect_exit 0 "autoscaled --resume finishes the trace" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/ramp.trace.json" --resume "$WORK/as.ckpt.json" \
  --report-out "$WORK/as_resumed.json" -j 8
if cmp -s "$WORK/as_resumed.json" "$WORK/as_full.json"; then
  echo "ok: autoscaled resumed report is byte-identical"
else
  echo "FAIL: autoscaled resumed report differs from the full run" >&2
  diff "$WORK/as_resumed.json" "$WORK/as_full.json" | sed 's/^/  /' >&2
  failures=$((failures + 1))
fi

# --- binary traces (nfvpr.btrace/1) and transcode-trace -------------------
expect_exit 0 "transcode-trace --help exits 0" "$NFVPR" transcode-trace --help
expect_exit 2 "transcode-trace --to bogus is a usage error" \
  "$NFVPR" transcode-trace --in "$WORK/churn.trace.json" --to bogus
expect_exit 2 "transcode-trace on junk input exits 2" \
  sh -c "echo 'not a trace' | '$NFVPR' transcode-trace"

expect_exit 0 "generate-trace --binary" \
  sh -c "'$NFVPR' generate-trace --workload '$WORK/peak.wl' --events 150 \
         --seed 5 --churn-nodes 3 --mtbf 2 --mttr 0.5 --binary \
         > '$WORK/churn.btrace'"
if head -c 6 "$WORK/churn.btrace" | grep -q 'NFVBT1'; then
  echo "ok: binary trace starts with the NFVBT1 magic"
else
  echo "FAIL: generate-trace --binary did not emit the NFVBT1 magic" >&2
  failures=$((failures + 1))
fi

# Both transcoding directions are byte-exact, and --binary equals
# generate-trace | transcode-trace.
expect_exit 0 "transcode text -> binary" \
  "$NFVPR" transcode-trace --in "$WORK/churn.trace.json" \
  --out "$WORK/churn.t2b.btrace"
if cmp -s "$WORK/churn.t2b.btrace" "$WORK/churn.btrace"; then
  echo "ok: transcoded binary equals generate-trace --binary"
else
  echo "FAIL: transcoded binary differs from generate-trace --binary" >&2
  failures=$((failures + 1))
fi
expect_exit 0 "transcode binary -> text" \
  "$NFVPR" transcode-trace --in "$WORK/churn.btrace" \
  --out "$WORK/churn.b2t.json"
if cmp -s "$WORK/churn.b2t.json" "$WORK/churn.trace.json"; then
  echo "ok: binary -> text round trip is byte-exact"
else
  echo "FAIL: binary -> text round trip is not byte-exact" >&2
  failures=$((failures + 1))
fi

# serve auto-detects the binary format and must produce a byte-identical
# report; a truncated binary trace is a usage error.
expect_exit 0 "serve on the binary trace" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.btrace" --report-out "$WORK/churn_binary.json" --events-log
if cmp -s "$WORK/churn_binary.json" "$WORK/churn_full.json"; then
  echo "ok: binary-trace serve report is byte-identical to the text run"
else
  echo "FAIL: binary-trace serve report differs from the text run" >&2
  failures=$((failures + 1))
fi
head -c 40 "$WORK/churn.btrace" > "$WORK/trunc.btrace"
expect_exit 2 "serve on a truncated binary trace exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/trunc.btrace"

# --- serve: streaming telemetry (DESIGN.md §14) ---------------------------
expect_exit 2 "--snapshot-every -1 exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --snapshot-every -1
expect_exit 2 "--snapshot-every nan exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --snapshot-every nan
expect_exit 2 "--timeline-span 0 exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --snapshot-every 0.5 --timeline-span 0
expect_exit 2 "--timeline-out without --snapshot-every exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --timeline-out "$WORK/t.timeline"
expect_exit 2 "--flight-recorder 0 exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --flight-recorder 0 \
  --flight-recorder-out "$WORK/f.json"
expect_exit 2 "--flight-recorder-dump-on-exit without out path exits 2" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --flight-recorder-dump-on-exit

expect_exit 0 "serve with full telemetry" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --snapshot-every 0.5 \
  --timeline-out "$WORK/churn.timeline" \
  --lifecycle-out "$WORK/churn.lifecycle.json" \
  --flight-recorder-out "$WORK/churn.flight.json" \
  --flight-recorder-dump-on-exit -j 1
expect_contains "$WORK/churn.timeline" 'nfvpr.timeline/1' \
  "timeline stream carries its schema"
expect_contains "$WORK/churn.lifecycle.json" '"ph": "X"' \
  "lifecycle renders chrome trace spans"
expect_contains "$WORK/churn.flight.json" 'nfvpr.flight/1' \
  "flight recorder dump carries its schema"

# The timeline stream is part of the determinism contract: any -j yields
# the same bytes.
expect_exit 0 "serve telemetry at -j 8" \
  "$NFVPR" serve -t "$WORK/dc.topo" -w "$WORK/peak.wl" \
  -T "$WORK/churn.trace.json" --snapshot-every 0.5 \
  --timeline-out "$WORK/churn.j8.timeline" -j 8
if cmp -s "$WORK/churn.timeline" "$WORK/churn.j8.timeline"; then
  echo "ok: timeline is byte-identical across -j1/-j8"
else
  echo "FAIL: timeline differs between -j1 and -j8" >&2
  failures=$((failures + 1))
fi

expect_exit 0 "analyze-timeline reads the stream" \
  "$NFVPR" analyze-timeline --in "$WORK/churn.timeline"
expect_contains "$WORK/out.txt" 'availability_min' \
  "analyze-timeline prints the aggregate list"
expect_exit 0 "analyze-timeline passing --fail-on" \
  "$NFVPR" analyze-timeline --in "$WORK/churn.timeline" \
  --fail-on 'availability_min<0'
expect_exit 3 "analyze-timeline violated --fail-on exits 3" \
  "$NFVPR" analyze-timeline --in "$WORK/churn.timeline" \
  --fail-on 'availability_min<2'
expect_exit 2 "analyze-timeline malformed --fail-on exits 2" \
  "$NFVPR" analyze-timeline --in "$WORK/churn.timeline" \
  --fail-on 'availability_min~0.5'
expect_exit 2 "analyze-timeline unknown aggregate exits 2" \
  "$NFVPR" analyze-timeline --in "$WORK/churn.timeline" \
  --fail-on 'no_such_metric<1'
expect_exit 2 "analyze-timeline on junk input exits 2" \
  sh -c "echo 'not a timeline' | '$NFVPR' analyze-timeline"

# --- report pretty-print and diff ----------------------------------------
expect_exit 0 "report pretty-print" "$NFVPR" report --in "$WORK/run.json"
expect_exit 0 "self-diff is clean" \
  "$NFVPR" report --in "$WORK/run.json" --baseline "$WORK/run.json" \
  --fail-on-regression

# A second run with a different seed gives a comparable-but-different
# report; the diff must render without failing (regressions may or may not
# clear the threshold, so no --fail-on-regression here).
expect_exit 0 "pipeline baseline run" \
  "$NFVPR" pipeline -t "$WORK/dc.topo" -w "$WORK/peak.wl" --seed 4 \
  --sim-duration 5 --metrics-out "$WORK/base.json"
expect_exit 0 "cross-seed diff renders" \
  "$NFVPR" report --in "$WORK/run.json" --baseline "$WORK/base.json"

if [ "$failures" -ne 0 ]; then
  echo "$failures check(s) failed" >&2
  exit 1
fi
echo "all CLI exit-code checks passed"
