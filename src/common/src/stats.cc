#include "nfv/common/stats.h"

#include <algorithm>
#include <cmath>

#include "nfv/common/error.h"

namespace nfv {

void OnlineStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const { return nfv::mean(samples_); }

double SampleSet::stddev() const {
  OnlineStats s;
  for (const double x : samples_) s.add(x);
  return s.stddev();
}

double SampleSet::quantile(double q) const {
  NFV_REQUIRE(!samples_.empty());
  NFV_REQUIRE(q >= 0.0 && q <= 1.0);
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double quantile(std::span<const double> samples, double q) {
  NFV_REQUIRE(!samples.empty());
  NFV_REQUIRE(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double ci95_halfwidth(const OnlineStats& stats) {
  if (stats.count() < 2) return 0.0;
  return 1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
}

}  // namespace nfv
