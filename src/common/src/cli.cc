#include "nfv/common/cli.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "nfv/common/error.h"

namespace nfv {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliParser::~CliParser() = default;

CliParser::Flag& CliParser::add(std::string name, char short_name,
                                std::string help, Kind kind) {
  NFV_REQUIRE(!name.empty());
  NFV_REQUIRE(find(name) == nullptr);
  NFV_REQUIRE(short_name == '\0' || find_short(short_name) == nullptr);
  auto flag = std::make_unique<Flag>();
  flag->name = std::move(name);
  flag->short_name = short_name;
  flag->help = std::move(help);
  flag->kind = kind;
  flags_.push_back(std::move(flag));
  return *flags_.back();
}

const std::int64_t& CliParser::add_int(std::string name, char short_name,
                                       std::string help,
                                       std::int64_t default_value) {
  Flag& f = add(std::move(name), short_name, std::move(help), Kind::kInt);
  f.int_value = default_value;
  return f.int_value;
}

const double& CliParser::add_double(std::string name, char short_name,
                                    std::string help, double default_value) {
  Flag& f = add(std::move(name), short_name, std::move(help), Kind::kDouble);
  f.double_value = default_value;
  return f.double_value;
}

const std::string& CliParser::add_string(std::string name, char short_name,
                                         std::string help,
                                         std::string default_value) {
  Flag& f = add(std::move(name), short_name, std::move(help), Kind::kString);
  f.string_value = std::move(default_value);
  return f.string_value;
}

const bool& CliParser::add_flag(std::string name, char short_name,
                                std::string help) {
  Flag& f = add(std::move(name), short_name, std::move(help), Kind::kBool);
  return f.bool_value;
}

CliParser::Flag* CliParser::find(std::string_view name) {
  for (const auto& f : flags_) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

CliParser::Flag* CliParser::find_short(char short_name) {
  for (const auto& f : flags_) {
    if (f->short_name == short_name) return f.get();
  }
  return nullptr;
}

bool CliParser::apply_value(Flag& flag, std::string_view value) {
  switch (flag.kind) {
    case Kind::kInt: {
      auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(),
                                       flag.int_value);
      return ec == std::errc{} && ptr == value.data() + value.size();
    }
    case Kind::kDouble: {
      // from_chars for double is not universally available; use strtod on a
      // NUL-terminated copy.
      std::string copy(value);
      char* end = nullptr;
      flag.double_value = std::strtod(copy.c_str(), &end);
      return end == copy.c_str() + copy.size() && !copy.empty();
    }
    case Kind::kString:
      flag.string_value = std::string(value);
      return true;
    case Kind::kBool:
      return false;  // switches take no value
  }
  return false;
}

bool CliParser::parse(int argc, const char* const* argv) {
  help_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    Flag* flag = nullptr;
    std::string_view inline_value;
    bool has_inline = false;
    if (arg.starts_with("--")) {
      std::string_view body = arg.substr(2);
      if (const auto eq = body.find('='); eq != std::string_view::npos) {
        inline_value = body.substr(eq + 1);
        has_inline = true;
        body = body.substr(0, eq);
      }
      flag = find(body);
    } else if (arg.size() == 2 && arg[0] == '-') {
      flag = find_short(arg[1]);
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "%s: unknown argument '%s'\n%s", program_.c_str(),
                   std::string(arg).c_str(), usage().c_str());
      return false;
    }
    if (flag->kind == Kind::kBool) {
      if (has_inline) {
        std::fprintf(stderr, "%s: switch --%s takes no value\n",
                     program_.c_str(), flag->name.c_str());
        return false;
      }
      flag->bool_value = true;
      continue;
    }
    std::string_view value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --%s expects a value\n", program_.c_str(),
                     flag->name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!apply_value(*flag, value)) {
      std::fprintf(stderr, "%s: bad value '%s' for --%s\n", program_.c_str(),
                   std::string(value).c_str(), flag->name.c_str());
      return false;
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& f : flags_) {
    os << "  --" << f->name;
    if (f->short_name != '\0') os << ", -" << f->short_name;
    switch (f->kind) {
      case Kind::kInt:
        os << " <int>     (default " << f->int_value << ")";
        break;
      case Kind::kDouble:
        os << " <float>   (default " << f->double_value << ")";
        break;
      case Kind::kString:
        os << " <string>  (default \"" << f->string_value << "\")";
        break;
      case Kind::kBool:
        break;
    }
    os << "\n      " << f->help << "\n";
  }
  os << "  --help, -h\n      Show this message.\n";
  return os.str();
}

}  // namespace nfv
