#include "nfv/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "nfv/common/error.h"

namespace nfv {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  NFV_REQUIRE(hi > lo);
  NFV_REQUIRE(buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / bucket_width_);
    i = std::min(i, counts_.size() - 1);  // guard FP edge at hi_
    ++counts_[i];
  }
}

void Histogram::merge(const Histogram& other) {
  NFV_REQUIRE(lo_ == other.lo_);
  NFV_REQUIRE(hi_ == other.hi_);
  NFV_REQUIRE(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  NFV_REQUIRE(i < counts_.size());
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  NFV_REQUIRE(i < counts_.size());
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  NFV_REQUIRE(total_ > 0);
  NFV_REQUIRE(q >= 0.0 && q <= 1.0);
  const auto target = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::size_t cumulative = underflow_;
  if (cumulative >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      return bucket_lo(i) + bucket_width_ / 2.0;
    }
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "[%10.4f, %10.4f) %8zu ",
                  bucket_lo(i), bucket_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0) out += "overflow:  " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace nfv
