#include "nfv/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "nfv/common/error.h"

namespace nfv {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  NFV_REQUIRE(hi > lo);
  NFV_REQUIRE(buckets > 0);
}

void Histogram::add(double x) {
  if (total_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / bucket_width_);
    i = std::min(i, counts_.size() - 1);  // guard FP edge at hi_
    ++counts_[i];
  }
}

void Histogram::merge(const Histogram& other) {
  NFV_REQUIRE(lo_ == other.lo_);
  NFV_REQUIRE(hi_ == other.hi_);
  NFV_REQUIRE(counts_.size() == other.counts_.size());
  if (other.total_ > 0) {
    if (total_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::min() const {
  NFV_REQUIRE(total_ > 0);
  return min_;
}

double Histogram::max() const {
  NFV_REQUIRE(total_ > 0);
  return max_;
}

double Histogram::bucket_lo(std::size_t i) const {
  NFV_REQUIRE(i < counts_.size());
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  NFV_REQUIRE(i < counts_.size());
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  NFV_REQUIRE(total_ > 0);
  NFV_REQUIRE(q >= 0.0 && q <= 1.0);
  // The extremes are tracked exactly; everything in between interpolates
  // within the bucket that holds the target rank and is then clamped to
  // [min, max] so a bucket edge can never be reported when the samples
  // themselves sit strictly inside it.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto target = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(total_)));
  const auto clamp = [&](double x) {
    return std::min(std::max(x, min_), max_);
  };
  if (underflow_ >= target) return clamp(lo_);
  std::size_t cumulative = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (cumulative + counts_[i] >= target) {
      const double frac = static_cast<double>(target - cumulative) /
                          static_cast<double>(counts_[i]);
      return clamp(bucket_lo(i) + frac * bucket_width_);
    }
    cumulative += counts_[i];
  }
  return clamp(hi_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "[%10.4f, %10.4f) %8zu ",
                  bucket_lo(i), bucket_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0) out += "overflow:  " + std::to_string(overflow_) + "\n";
  return out;
}

void Histogram::restore(const std::vector<std::size_t>& counts,
                        std::size_t underflow, std::size_t overflow,
                        double min, double max) {
  NFV_REQUIRE(counts.size() == counts_.size());
  counts_ = counts;
  underflow_ = underflow;
  overflow_ = overflow;
  total_ = underflow + overflow;
  for (const std::size_t c : counts) total_ += c;
  NFV_REQUIRE(total_ == 0 || min <= max);
  min_ = min;
  max_ = max;
}

WindowedHistogram::WindowedHistogram(double lo, double hi, std::size_t buckets,
                                     std::size_t span)
    : lo_(lo), hi_(hi), buckets_(buckets), span_(span) {
  NFV_REQUIRE(span > 0);
  windows_.emplace_back(lo, hi, buckets);
}

void WindowedHistogram::add(double x) { windows_.back().add(x); }

void WindowedHistogram::rotate() {
  windows_.emplace_back(lo_, hi_, buckets_);
  if (windows_.size() > span_) windows_.pop_front();
}

Histogram WindowedHistogram::merged() const {
  Histogram out(lo_, hi_, buckets_);
  for (const Histogram& w : windows_) out.merge(w);
  return out;
}

void WindowedHistogram::restore(std::deque<Histogram> windows) {
  NFV_REQUIRE(!windows.empty() && windows.size() <= span_);
  for (const Histogram& w : windows) {
    NFV_REQUIRE(w.lo() == lo_ && w.hi() == hi_ &&
                w.bucket_count() == buckets_);
  }
  windows_ = std::move(windows);
}

}  // namespace nfv
