#include "nfv/common/rng.h"

#include <cmath>
#include <numbers>

namespace nfv {

std::uint64_t Rng::below(std::uint64_t n) {
  NFV_REQUIRE(n > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NFV_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::exponential(double rate) {
  NFV_REQUIRE(rate > 0.0);
  // -log(1 - U) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / rate;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::lognormal(double mu_log, double sigma_log) {
  NFV_REQUIRE(sigma_log >= 0.0);
  return std::exp(mu_log + sigma_log * normal());
}

std::uint64_t Rng::poisson(double mean) {
  NFV_REQUIRE(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // PTRS transformed-rejection (Hörmann 1993) for large means.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    const double log_mean = std::log(mean);
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * log_mean - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  NFV_REQUIRE(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    NFV_REQUIRE(w >= 0.0);
    total += w;
  }
  NFV_REQUIRE(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive-weight entry.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace nfv
