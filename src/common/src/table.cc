#include "nfv/common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "nfv/common/error.h"

namespace nfv {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NFV_REQUIRE(!headers_.empty());
}

Table::Table(std::initializer_list<std::string_view> headers) {
  NFV_REQUIRE(headers.size() > 0);
  headers_.reserve(headers.size());
  for (const auto h : headers) headers_.emplace_back(h);
}

void Table::add_row(std::vector<Cell> row) {
  NFV_REQUIRE(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void Table::set_precision(int digits) {
  NFV_REQUIRE(digits >= 0 && digits <= 17);
  precision_ = digits;
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  NFV_REQUIRE(row < rows_.size() && col < headers_.size());
  return rows_[row][col];
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision_,
                std::get<double>(cell));
  return buf;
}

std::string Table::markdown() const {
  std::vector<std::size_t> width(headers_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    cells[r].reserve(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      cells[r].push_back(format_cell(rows_[r][c]));
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << std::string(width[c], '-') << " |";
  }
  os << '\n';
  for (const auto& row : cells) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(format_cell(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.markdown();
}

}  // namespace nfv
