// Online and batch statistics used by the benchmark harness and the
// discrete-event simulator.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace nfv {

/// Welford online accumulator for mean / variance / extrema.
/// Numerically stable for long simulator runs.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator (parallel reduction, Chan et al.).
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects raw samples for quantile queries; use when the sample count is
/// bounded (per-run metrics), not for per-packet streams.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated quantile, q in [0, 1]. Sorts a copy on demand and
  /// caches the sorted order until the next add().
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  [[nodiscard]] std::span<const double> samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily rebuilt cache
};

/// Linear-interpolated quantile of an unsorted sample span (copies + sorts).
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> samples);

/// Half-width of the normal-approximation 95% confidence interval of the
/// sample mean; 0 for fewer than two samples.
[[nodiscard]] double ci95_halfwidth(const OnlineStats& stats);

}  // namespace nfv
