// Deterministic pseudo-random number generation and the distributions used
// throughout the simulator.
//
// Every stochastic component takes an explicit Rng (or a seed) — there is no
// global RNG state, so any experiment is reproducible from its seed and runs
// can be fanned out as seed + run_index.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "nfv/common/error.h"

namespace nfv {

/// SplitMix64: used to seed the main generator and as a cheap standalone
/// stream (Steele et al., "Fast splittable pseudorandom number generators").
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t(min)() { return 0; }
  static constexpr std::uint64_t(max)() { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library's main generator.
/// Satisfies UniformRandomBitGenerator, so it also works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from a SplitMix64 stream, as recommended
  /// by the xoshiro authors.
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t(min)() { return 0; }
  static constexpr std::uint64_t(max)() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Rejection-free Lemire reduction.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed sample with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// PTRS rejection for large).
  std::uint64_t poisson(double mean);

  /// Lognormal sample: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i].  Weights must be non-negative with a positive sum.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derives an independent child stream; stream i of a given parent is
  /// stable across runs.
  Rng fork(std::uint64_t stream) {
    return Rng(next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace nfv
