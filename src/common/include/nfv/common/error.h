// Error handling for the nfv libraries.
//
// Library invariants are checked with NFV_REQUIRE (throws std::invalid_argument
// for precondition violations, which callers can trigger with bad input) and
// NFV_CHECK (throws nfv::InternalError for broken internal invariants).
#pragma once

#include <stdexcept>
#include <string>

namespace nfv {

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a model is infeasible (e.g. total VNF demand exceeds total
/// node capacity, or an instance would be unstable at any assignment).
class InfeasibleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* cond, const char* file,
                                            int line) {
  throw std::invalid_argument(std::string("precondition failed: ") + cond +
                              " at " + file + ":" + std::to_string(line));
}
[[noreturn]] inline void throw_internal(const char* cond, const char* file,
                                        int line) {
  throw InternalError(std::string("invariant failed: ") + cond + " at " +
                      file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace nfv

/// Precondition on caller-supplied input; throws std::invalid_argument.
#define NFV_REQUIRE(cond)                                         \
  do {                                                            \
    if (!(cond)) {                                                \
      ::nfv::detail::throw_precondition(#cond, __FILE__, __LINE__); \
    }                                                             \
  } while (false)

/// Internal invariant; throws nfv::InternalError.
#define NFV_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::nfv::detail::throw_internal(#cond, __FILE__, __LINE__); \
    }                                                          \
  } while (false)
