// Result-table rendering for the benchmark harness: GitHub-flavoured
// Markdown (human inspection) and CSV (plotting pipelines).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace nfv {

/// A table cell: text, integer, or floating point (printed with the table's
/// precision).
using Cell = std::variant<std::string, long long, double>;

/// Column-oriented table builder.
///
///   Table t({"requests", "BFDSU", "FFD"});
///   t.add_row({30LL, 0.917, 0.686});
///   std::cout << t.markdown();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  Table(std::initializer_list<std::string_view> headers);

  /// Appends a row; must match the header width.
  void add_row(std::vector<Cell> row);

  /// Digits after the decimal point for double cells (default 4).
  void set_precision(int digits);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }
  [[nodiscard]] const Cell& at(std::size_t row, std::size_t col) const;
  [[nodiscard]] const std::string& header(std::size_t i) const {
    return headers_[i];
  }

  /// GitHub-flavoured Markdown with aligned columns.
  [[nodiscard]] std::string markdown() const;

  /// RFC-4180-style CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string csv() const;

  /// Writes markdown() to the stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  [[nodiscard]] std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace nfv
