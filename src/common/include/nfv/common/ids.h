// Strong identifier types for the NFV domain.
//
// Raw integers for node / VNF / request / instance identifiers are easy to
// swap by accident (see the z_{r,k}^f indexing in the paper, which mixes
// three index spaces).  Each domain entity therefore gets its own opaque
// integer wrapper; conversion back to the underlying value is explicit.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace nfv {

/// CRTP-free strong-typedef over an integer.  `Tag` makes distinct
/// instantiations incompatible with each other.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type value) : value_(value) {}

  /// Underlying integer, for indexing into dense per-entity arrays.
  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  /// Convenience alias of value() usable directly as a container index.
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  underlying_type value_ = 0;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  return os << id.value();
}

struct NodeIdTag {};
struct VnfIdTag {};
struct RequestIdTag {};
struct LinkIdTag {};

/// Identifier of a compute node v ∈ V.
using NodeId = StrongId<NodeIdTag>;
/// Identifier of a VNF f ∈ F (a replica counts as a new VNF, Eq. 2).
using VnfId = StrongId<VnfIdTag>;
/// Identifier of a request r ∈ R.
using RequestId = StrongId<RequestIdTag>;
/// Identifier of a link e ∈ E.
using LinkId = StrongId<LinkIdTag>;

/// Index of a service instance k ∈ [0, M_f) within one VNF.  Kept as a plain
/// integer because it is only meaningful relative to a VnfId.
using InstanceIndex = std::uint32_t;

}  // namespace nfv

template <typename Tag>
struct std::hash<nfv::StrongId<Tag>> {
  std::size_t operator()(nfv::StrongId<Tag> id) const noexcept {
    return std::hash<typename nfv::StrongId<Tag>::underlying_type>{}(id.value());
  }
};
