// Fixed-width bucket histogram for latency distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nfv {

/// Histogram over [lo, hi) with `buckets` equal-width buckets plus an
/// underflow and an overflow bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  /// Merges another histogram (parallel reduction, mirroring
  /// OnlineStats::merge).  Bucket geometries must match exactly.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Approximate quantile from bucket midpoints (requires count() > 0).
  [[nodiscard]] double quantile(double q) const;

  /// ASCII rendering, one bucket per row, bars scaled to `width` columns.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace nfv
