// Fixed-width bucket histogram for latency distributions.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace nfv {

/// Histogram over [lo, hi) with `buckets` equal-width buckets plus an
/// underflow and an overflow bucket.  The exact minimum and maximum of the
/// added samples are tracked alongside the buckets so extreme quantiles
/// (p0/p100) are exact instead of bucket-resolution approximations.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  /// Merges another histogram (parallel reduction, mirroring
  /// OnlineStats::merge).  Bucket geometries must match exactly.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  /// Exact smallest / largest sample seen (require count() > 0).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Inclusive lower edge of bucket i.
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Quantile estimate (requires count() > 0): linear interpolation inside
  /// the bucket holding the target rank, clamped to the exact [min, max] of
  /// the samples — so q=0 returns the minimum, q=1 the maximum, and a
  /// single-sample histogram returns that sample for every q.
  [[nodiscard]] double quantile(double q) const;

  /// ASCII rendering, one bucket per row, bars scaled to `width` columns.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

  /// Restores serialized state (checkpointing); `counts` must match the
  /// constructed bucket count and the totals must be consistent.
  void restore(const std::vector<std::size_t>& counts, std::size_t underflow,
               std::size_t overflow, double min, double max);

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
  double min_ = 0.0;  ///< valid only when total_ > 0
  double max_ = 0.0;
};

/// Sliding-window histogram: a ring of at most `span` per-window Histogram
/// slots over a shared geometry.  Samples land in the newest slot;
/// `rotate()` opens a new window and drops the oldest once `span` is
/// exceeded; `merged()` folds the ring into one Histogram (Histogram::merge
/// is associative, so a windowed view computed incrementally equals one
/// computed from scratch — the same merge contract the parallel reductions
/// rely on).
class WindowedHistogram {
 public:
  WindowedHistogram(double lo, double hi, std::size_t buckets,
                    std::size_t span);

  /// Adds a sample to the current (newest) window.
  void add(double x);

  /// Closes the current window and opens a fresh one, evicting the oldest
  /// window when more than `span` would remain.
  void rotate();

  /// All retained windows merged oldest-to-newest.
  [[nodiscard]] Histogram merged() const;

  [[nodiscard]] std::size_t span() const { return span_; }
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }
  [[nodiscard]] const Histogram& window(std::size_t i) const {
    return windows_[i];
  }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_; }

  /// Replaces the retained windows with `windows` (checkpointing); each
  /// must share this geometry and there must be 1..span of them.
  void restore(std::deque<Histogram> windows);

 private:
  double lo_;
  double hi_;
  std::size_t buckets_;
  std::size_t span_;
  std::deque<Histogram> windows_;  ///< oldest first; back() is current
};

}  // namespace nfv
