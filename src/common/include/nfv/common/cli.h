// Minimal command-line flag parser for the bench and example binaries.
//
//   CliParser cli("bench_fig05", "Utilization vs. request count");
//   const auto& runs = cli.add_int("runs", 'r', "Monte-Carlo repetitions", 100);
//   const auto& seed = cli.add_int("seed", 's', "base RNG seed", 42);
//   if (!cli.parse(argc, argv)) return 1;   // --help or bad input
//   run(runs, seed);
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace nfv {

/// Declarative flag parser; supports --name value, --name=value, -n value,
/// boolean switches, and generates --help text.  Registered value slots have
/// stable addresses for the parser's lifetime.
class CliParser {
 public:
  CliParser(std::string program, std::string description);
  ~CliParser();
  CliParser(const CliParser&) = delete;
  CliParser& operator=(const CliParser&) = delete;

  /// Registers an integer flag; the returned reference is filled by parse().
  const std::int64_t& add_int(std::string name, char short_name,
                              std::string help, std::int64_t default_value);
  /// Registers a floating-point flag.
  const double& add_double(std::string name, char short_name,
                           std::string help, double default_value);
  /// Registers a string flag.
  const std::string& add_string(std::string name, char short_name,
                                std::string help, std::string default_value);
  /// Registers a boolean switch (no value; presence sets it true).
  const bool& add_flag(std::string name, char short_name, std::string help);

  /// Parses argv.  On --help prints usage to stdout and returns false; on
  /// malformed input prints a diagnostic to stderr and returns false.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// True iff the last parse() returned false because of --help / -h —
  /// lets callers exit 0 for help but nonzero for a usage error.
  [[nodiscard]] bool help_requested() const { return help_requested_; }

  /// Usage text (also printed on --help).
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };

  struct Flag {
    std::string name;
    char short_name;
    std::string help;
    Kind kind;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Flag* find(std::string_view name);
  Flag* find_short(char short_name);
  Flag& add(std::string name, char short_name, std::string help, Kind kind);
  [[nodiscard]] bool apply_value(Flag& flag, std::string_view value);

  std::string program_;
  std::string description_;
  std::vector<std::unique_ptr<Flag>> flags_;
  bool help_requested_ = false;
};

}  // namespace nfv
