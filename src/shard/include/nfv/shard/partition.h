// Canonical sharding of a joint instance (DESIGN.md §12).
//
// A shard is a set of VNFs that can be placed and scheduled nearly
// independently of the rest of the instance.  The partition is derived
// from the model alone — connected components of the VNF↔request
// incidence graph, then capacity-aware splitting of oversized
// components — so it is identical for every thread count and every
// `--shards` value: like `--threads`, `--shards` is purely a wall-clock
// knob (it caps how many shards are in flight), never a results knob.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nfv::shard {

enum class ShardPolicy : std::uint8_t {
  kOff,    ///< monolithic solve (the default)
  kAuto,   ///< shard; fan-out width follows exec::current_concurrency()
  kFixed,  ///< shard; at most `shards` sub-solves in flight at once
};

/// Sharding knobs, plumbed through core::JointConfig and the CLI
/// `--shards` flag.
struct ShardConfig {
  ShardPolicy policy = ShardPolicy::kOff;
  /// In-flight cap under kFixed (>= 1); ignored otherwise.
  std::uint32_t shards = 0;
  /// A component whose total footprint exceeds this fraction of the total
  /// node capacity is split further (first-fit-decreasing into bins of
  /// that size).  The threshold depends only on the model and this
  /// fraction, never on the fan-out width.
  double split_fraction = 0.25;
  /// Relative Λ-imbalance (spread / mean load) above which a merged
  /// schedule with boundary members gets a bounded migration rebalance.
  double rebalance_threshold = 0.05;
  /// Max request moves per rebalanced VNF (sched::plan_bounded_migration).
  std::uint32_t migration_budget = 8;

  [[nodiscard]] bool enabled() const { return policy != ShardPolicy::kOff; }
  /// Shards in flight at once for this scope: `shards` under kFixed, the
  /// installed pool width under kAuto.  Wall-clock only — merge order is
  /// always shard-index order.
  [[nodiscard]] std::uint32_t fanout() const;
  void validate() const;
};

/// The canonical partition: every VNF belongs to exactly one shard, and
/// (via assign_requests) every request to exactly the shard owning the
/// first VNF of its chain.
struct ShardPlan {
  std::vector<std::uint32_t> shard_of_vnf;                ///< |F|
  std::vector<std::vector<std::uint32_t>> vnfs_of_shard;  ///< ascending ids
  std::size_t components = 0;  ///< incidence-graph components (pre-split)
  std::size_t splits = 0;      ///< components split by the capacity rule

  [[nodiscard]] std::size_t shard_count() const {
    return vnfs_of_shard.size();
  }
};

/// Partitions `vnf_count` VNFs connected by `chains` (each chain is one
/// hyper-edge over VNF indices) into shards.  Components are ordered by
/// their smallest VNF id; a component whose footprint sum exceeds
/// `max_shard_footprint` (> 0) is split first-fit-decreasing into bins of
/// that size.  Deterministic and independent of any execution width.
[[nodiscard]] ShardPlan make_shard_plan(
    std::size_t vnf_count,
    std::span<const std::vector<std::uint32_t>> chains,
    std::span<const double> footprints, double max_shard_footprint);

/// Owner shard per request: the shard of the first VNF of its chain.
/// Every request lands in exactly one shard (chains must be non-empty and
/// index VNFs covered by the plan).
[[nodiscard]] std::vector<std::uint32_t> assign_requests(
    const ShardPlan& plan,
    std::span<const std::vector<std::uint32_t>> request_chains);

/// What the sharded solve did — fed into obs counters and the run
/// report's `shard` section.
struct ShardStats {
  bool enabled = false;             ///< a sharded solve actually ran
  bool fallback_monolithic = false; ///< repair failed; monolithic rerun
  std::uint64_t shards = 0;
  std::uint64_t components = 0;
  std::uint64_t splits = 0;
  std::uint64_t repair_moves = 0;      ///< VNFs moved off overloaded nodes
  std::uint64_t drain_moves = 0;       ///< VNF moves made while draining
  std::uint64_t drained_nodes = 0;     ///< nodes emptied by consolidation
  std::uint64_t boundary_requests = 0; ///< members scheduled at merge time
  std::uint64_t rebalances = 0;        ///< VNFs given a migration pass
  std::uint64_t migrations = 0;        ///< request moves those passes made
  /// Per-shard placement sub-solve iterations, in shard-index order.
  /// Deterministic (independent of threads / fan-out); feeds the bench's
  /// critical-path speedup model, not the run report.
  std::vector<std::uint64_t> shard_placement_work;
};

}  // namespace nfv::shard
