// Sharded chain placement: solve each shard's sub-problem against the
// full node set concurrently, merge in shard-index order, then repair the
// cross-shard node contention the optimistic sub-solves may have created.
//
// The repair pass uses the BFDSU fit rule (move into the fullest node
// that still fits, lowest node id on ties); a follow-up drain pass
// consolidates lightly-loaded nodes so the merged placement's
// nodes-in-service stays close to the monolithic solver's.
#pragma once

#include <cstdint>

#include "nfv/common/rng.h"
#include "nfv/placement/algorithm.h"
#include "nfv/shard/partition.h"

namespace nfv::shard {

/// Outcome of repair_placement.
struct RepairResult {
  bool feasible = false;           ///< every VNF placed, no node overloaded
  std::uint64_t moves = 0;         ///< re-placements resolving overloads
  std::uint64_t drain_moves = 0;   ///< moves made while draining nodes
  std::uint64_t drained_nodes = 0; ///< nodes emptied by the drain pass
};

/// Repairs a merged placement in place: first places any unassigned VNFs
/// (largest demand first, best-fit), then moves VNFs off overloaded nodes
/// (largest movable first, best-fit target), and finally — when
/// `consolidate` — drains nodes whose whole content fits elsewhere.
/// Deterministic; never overloads a target node.
RepairResult repair_placement(const placement::PlacementProblem& problem,
                              placement::Placement& placement,
                              bool consolidate);

/// Places the shards of `plan` with `algo`, each against the full node
/// set with its own forked RNG stream (stream s = rng.fork(s), forked
/// up-front in index order), merged positionally and repaired.  The
/// fan-out runs in waves of config.fanout() — results are bit-identical
/// for any wave width and any thread count.  Updates `stats` (partition
/// and repair counters).  The returned placement is infeasible when
/// repair could not fit everything; callers decide the fallback.
[[nodiscard]] placement::Placement place_with_plan(
    const placement::PlacementProblem& problem, const ShardPlan& plan,
    const placement::PlacementAlgorithm& algo, const ShardConfig& config,
    Rng& rng, ShardStats& stats);

/// Convenience wrapper: builds the canonical plan from the problem's
/// chains and solves.  Single-shard plans delegate to the monolithic
/// algorithm with Rng(seed) — sharding a connected instance is the
/// identity.  A failed repair falls back to the monolithic solve
/// (deterministic: depends only on problem + seed).
[[nodiscard]] placement::Placement place_sharded(
    const placement::PlacementProblem& problem,
    const placement::PlacementAlgorithm& algo, const ShardConfig& config,
    std::uint64_t seed, ShardStats* stats = nullptr);

}  // namespace nfv::shard
