// Merge-time scheduling helpers: after each shard schedules its own
// members of a VNF, the positions owned by other shards (boundary
// members of a split component) are appended greedily and — when the
// merged Λ-imbalance is too high — walked toward a fresh full re-solve
// with a bounded migration plan.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "nfv/scheduling/problem.h"

namespace nfv::shard {

/// Marker for a position not yet assigned to an instance.
inline constexpr std::uint32_t kUnassigned =
    std::numeric_limits<std::uint32_t>::max();

/// Assigns each position in `positions` (currently kUnassigned) to the
/// instance with the least effective load so far, lowest instance id on
/// ties.  Already-assigned positions contribute their load first.
/// Positions are filled in the given order; deterministic.
void complete_schedule(const sched::SchedulingProblem& problem,
                       std::vector<std::uint32_t>& instance_of,
                       std::span<const std::uint32_t> positions);

struct RebalanceOutcome {
  bool triggered = false;      ///< imbalance exceeded the threshold
  std::uint64_t migrations = 0;  ///< request moves applied
};

/// When the relative Λ-imbalance of `instance_of` (spread / mean
/// effective instance load) exceeds `threshold`, applies up to `budget`
/// moves toward `target` via sched::plan_bounded_migration.
RebalanceOutcome rebalance_toward(const sched::SchedulingProblem& problem,
                                  std::vector<std::uint32_t>& instance_of,
                                  const sched::Schedule& target,
                                  double threshold, std::uint32_t budget);

}  // namespace nfv::shard
