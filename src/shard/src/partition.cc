#include "nfv/shard/partition.h"

#include <algorithm>
#include <numeric>

#include "nfv/common/error.h"
#include "nfv/exec/thread_pool.h"

namespace nfv::shard {

std::uint32_t ShardConfig::fanout() const {
  if (policy == ShardPolicy::kFixed) return shards < 1 ? 1 : shards;
  return exec::current_concurrency();
}

void ShardConfig::validate() const {
  if (policy == ShardPolicy::kFixed) NFV_REQUIRE(shards >= 1);
  NFV_REQUIRE(split_fraction > 0.0 && split_fraction <= 1.0);
  NFV_REQUIRE(rebalance_threshold >= 0.0);
}

namespace {

/// Union-find with path halving; components keyed by their root.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Lower-id root wins so the component key is its smallest member —
    // the canonical ordering below falls out of that for free.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

ShardPlan make_shard_plan(std::size_t vnf_count,
                          std::span<const std::vector<std::uint32_t>> chains,
                          std::span<const double> footprints,
                          double max_shard_footprint) {
  NFV_REQUIRE(footprints.size() == vnf_count);
  Dsu dsu(vnf_count);
  for (const auto& chain : chains) {
    NFV_REQUIRE(!chain.empty());
    for (const std::uint32_t f : chain) {
      NFV_REQUIRE(f < vnf_count);
      dsu.unite(chain.front(), f);
    }
  }

  // Components keyed (and ordered) by their smallest VNF id; members come
  // out ascending because we sweep ids in order.
  std::vector<std::vector<std::uint32_t>> component_members;
  std::vector<std::uint32_t> component_of_root(vnf_count, 0);
  std::vector<bool> root_seen(vnf_count, false);
  for (std::uint32_t f = 0; f < vnf_count; ++f) {
    const std::uint32_t root = dsu.find(f);
    if (!root_seen[root]) {
      root_seen[root] = true;
      component_of_root[root] =
          static_cast<std::uint32_t>(component_members.size());
      component_members.emplace_back();
    }
    component_members[component_of_root[root]].push_back(f);
  }

  ShardPlan plan;
  plan.components = component_members.size();
  plan.shard_of_vnf.assign(vnf_count, 0);
  for (const auto& members : component_members) {
    double footprint = 0.0;
    for (const std::uint32_t f : members) footprint += footprints[f];
    if (max_shard_footprint <= 0.0 || footprint <= max_shard_footprint ||
        members.size() <= 1) {
      const auto s = static_cast<std::uint32_t>(plan.vnfs_of_shard.size());
      for (const std::uint32_t f : members) plan.shard_of_vnf[f] = s;
      plan.vnfs_of_shard.push_back(members);
      continue;
    }
    // Capacity-aware split: first-fit-decreasing into bins of the
    // threshold size.  A VNF larger than the threshold opens its own bin.
    ++plan.splits;
    std::vector<std::uint32_t> order = members;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return footprints[a] > footprints[b];
                     });
    const std::size_t first_bin = plan.vnfs_of_shard.size();
    std::vector<double> bin_load;
    for (const std::uint32_t f : order) {
      std::size_t bin = bin_load.size();
      for (std::size_t b = 0; b < bin_load.size(); ++b) {
        if (bin_load[b] + footprints[f] <= max_shard_footprint) {
          bin = b;
          break;
        }
      }
      if (bin == bin_load.size()) {
        bin_load.push_back(0.0);
        plan.vnfs_of_shard.emplace_back();
      }
      bin_load[bin] += footprints[f];
      plan.shard_of_vnf[f] = static_cast<std::uint32_t>(first_bin + bin);
      plan.vnfs_of_shard[first_bin + bin].push_back(f);
    }
    for (std::size_t b = first_bin; b < plan.vnfs_of_shard.size(); ++b) {
      std::sort(plan.vnfs_of_shard[b].begin(), plan.vnfs_of_shard[b].end());
    }
  }
  return plan;
}

std::vector<std::uint32_t> assign_requests(
    const ShardPlan& plan,
    std::span<const std::vector<std::uint32_t>> request_chains) {
  std::vector<std::uint32_t> owner;
  owner.reserve(request_chains.size());
  for (const auto& chain : request_chains) {
    NFV_REQUIRE(!chain.empty());
    NFV_REQUIRE(chain.front() < plan.shard_of_vnf.size());
    owner.push_back(plan.shard_of_vnf[chain.front()]);
  }
  return owner;
}

}  // namespace nfv::shard
