#include "nfv/shard/merge.h"

#include <algorithm>

#include "nfv/common/error.h"
#include "nfv/scheduling/migration.h"

namespace nfv::shard {

void complete_schedule(const sched::SchedulingProblem& problem,
                       std::vector<std::uint32_t>& instance_of,
                       std::span<const std::uint32_t> positions) {
  const std::uint32_t instances = problem.instance_count;
  NFV_REQUIRE(instances >= 1);
  NFV_REQUIRE(instance_of.size() == problem.request_count());
  std::vector<double> load(instances, 0.0);
  for (std::size_t r = 0; r < instance_of.size(); ++r) {
    if (instance_of[r] == kUnassigned) continue;
    NFV_REQUIRE(instance_of[r] < instances);
    load[instance_of[r]] += problem.effective_rate(r);
  }
  for (const std::uint32_t pos : positions) {
    NFV_REQUIRE(pos < instance_of.size());
    NFV_REQUIRE(instance_of[pos] == kUnassigned);
    std::uint32_t best = 0;
    for (std::uint32_t k = 1; k < instances; ++k) {
      if (load[k] < load[best]) best = k;
    }
    instance_of[pos] = best;
    load[best] += problem.effective_rate(pos);
  }
}

RebalanceOutcome rebalance_toward(const sched::SchedulingProblem& problem,
                                  std::vector<std::uint32_t>& instance_of,
                                  const sched::Schedule& target,
                                  double threshold, std::uint32_t budget) {
  RebalanceOutcome outcome;
  const std::uint32_t instances = problem.instance_count;
  std::vector<double> load(instances, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < instance_of.size(); ++r) {
    NFV_REQUIRE(instance_of[r] < instances);
    const double rate = problem.effective_rate(r);
    load[instance_of[r]] += rate;
    total += rate;
  }
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  const double mean = total / instances;
  if (mean <= 0.0 || (*hi - *lo) / mean <= threshold || budget == 0) {
    return outcome;
  }
  outcome.triggered = true;
  const sched::MigrationPlan plan =
      sched::plan_bounded_migration(problem, instance_of, target, budget);
  for (const sched::MigrationMove& move : plan.moves) {
    instance_of[move.request] = move.to;
  }
  outcome.migrations = plan.moves.size();
  return outcome;
}

}  // namespace nfv::shard
