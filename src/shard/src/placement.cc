#include "nfv/shard/placement.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "nfv/common/error.h"
#include "nfv/exec/thread_pool.h"
#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"

namespace nfv::shard {

namespace {

/// Same FP tolerance as the fit-family placers: a node holds `demand`
/// when its residual is within 1e-9 of it.
constexpr double kEps = 1e-9;
constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();

/// The BFDSU fit rule as a repair primitive: the fullest node (smallest
/// residual) that still fits `demand`, lowest id on ties; in-service
/// nodes are preferred over empty ones, mirroring Used_list before
/// Spare_list.  `exclude` is never chosen.
std::uint32_t best_fit_target(const std::vector<double>& residual,
                              const std::vector<std::uint32_t>& occupancy,
                              double demand, std::uint32_t exclude) {
  std::uint32_t best = kNoNode;
  for (int pass = 0; pass < 2; ++pass) {
    const bool want_used = pass == 0;
    for (std::uint32_t v = 0; v < residual.size(); ++v) {
      if (v == exclude) continue;
      if ((occupancy[v] > 0) != want_used) continue;
      if (residual[v] < demand - kEps) continue;
      if (best == kNoNode || residual[v] < residual[best]) best = v;
    }
    if (best != kNoNode) return best;
  }
  return kNoNode;
}

}  // namespace

RepairResult repair_placement(const placement::PlacementProblem& problem,
                              placement::Placement& placement,
                              bool consolidate) {
  NFV_REQUIRE(placement.assignment.size() == problem.vnf_count());
  RepairResult result;
  const std::size_t vnfs = problem.vnf_count();
  const std::size_t nodes = problem.node_count();
  std::vector<double> residual = problem.capacities;
  std::vector<std::uint32_t> occupancy(nodes, 0);  // VNFs per node
  std::vector<std::vector<std::uint32_t>> vnfs_on(nodes);
  std::vector<std::uint32_t> unplaced;
  for (std::uint32_t f = 0; f < vnfs; ++f) {
    const auto& node = placement.assignment[f];
    if (!node.has_value()) {
      unplaced.push_back(f);
      continue;
    }
    NFV_REQUIRE(node->index() < nodes);
    residual[node->index()] -= problem.demands[f];
    ++occupancy[node->index()];
    vnfs_on[node->index()].push_back(f);
  }

  const auto move_to = [&](std::uint32_t f, std::uint32_t to) {
    if (const auto& from = placement.assignment[f]; from.has_value()) {
      const auto v = static_cast<std::uint32_t>(from->index());
      residual[v] += problem.demands[f];
      --occupancy[v];
      auto& list = vnfs_on[v];
      list.erase(std::find(list.begin(), list.end(), f));
    }
    placement.assignment[f] = NodeId{to};
    residual[to] -= problem.demands[f];
    ++occupancy[to];
    vnfs_on[to].push_back(f);
  };

  // 1. Place leftovers from infeasible sub-solves, largest demand first.
  std::stable_sort(unplaced.begin(), unplaced.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return problem.demands[a] > problem.demands[b];
                   });
  for (const std::uint32_t f : unplaced) {
    const std::uint32_t to =
        best_fit_target(residual, occupancy, problem.demands[f], kNoNode);
    if (to == kNoNode) return result;  // feasible stays false
    move_to(f, to);
    ++result.moves;
  }

  // 2. Resolve cross-shard contention: while a node is overloaded, move
  // the largest VNF on it that has somewhere to go.  Targets always have
  // room, so total overload strictly shrinks and the loop terminates.
  for (std::uint32_t v = 0; v < nodes; ++v) {
    while (residual[v] < -kEps) {
      std::vector<std::uint32_t> order = vnfs_on[v];
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return problem.demands[a] > problem.demands[b];
                       });
      bool moved = false;
      for (const std::uint32_t f : order) {
        const std::uint32_t to =
            best_fit_target(residual, occupancy, problem.demands[f], v);
        if (to == kNoNode) continue;
        move_to(f, to);
        ++result.moves;
        moved = true;
        break;
      }
      if (!moved) return result;  // nothing movable: repair failed
    }
  }

  // 3. Drain consolidation: a node whose whole content fits on the other
  // in-service nodes is emptied, so the merged placement's
  // nodes-in-service tracks the monolithic packer's.  Lightest node
  // first; each committed drain removes one node, bounding the loop.
  if (consolidate) {
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<std::uint32_t> used;
      for (std::uint32_t v = 0; v < nodes; ++v) {
        if (occupancy[v] > 0) used.push_back(v);
      }
      std::stable_sort(used.begin(), used.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return problem.capacities[a] - residual[a] <
                                problem.capacities[b] - residual[b];
                       });
      for (const std::uint32_t v : used) {
        std::vector<std::uint32_t> content = vnfs_on[v];
        std::stable_sort(content.begin(), content.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return problem.demands[a] > problem.demands[b];
                         });
        // Dry-run the relocation against a residual copy; commit only a
        // complete drain.
        std::vector<double> sim = residual;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
        bool ok = true;
        for (const std::uint32_t f : content) {
          std::uint32_t best = kNoNode;
          for (const std::uint32_t w : used) {
            if (w == v) continue;
            if (sim[w] < problem.demands[f] - kEps) continue;
            if (best == kNoNode || sim[w] < sim[best]) best = w;
          }
          if (best == kNoNode) {
            ok = false;
            break;
          }
          sim[best] -= problem.demands[f];
          moves.emplace_back(f, best);
        }
        if (!ok) continue;
        for (const auto& [f, to] : moves) move_to(f, to);
        result.drain_moves += moves.size();
        ++result.drained_nodes;
        changed = true;
        break;  // the load profile changed; rescan
      }
    }
  }
  result.feasible = true;
  return result;
}

placement::Placement place_with_plan(
    const placement::PlacementProblem& problem, const ShardPlan& plan,
    const placement::PlacementAlgorithm& algo, const ShardConfig& config,
    Rng& rng, ShardStats& stats) {
  const obs::ScopedSpan span("shard.place");
  const std::size_t shards = plan.shard_count();
  NFV_REQUIRE(plan.shard_of_vnf.size() == problem.vnf_count());
  stats.shards = shards;
  stats.components = plan.components;
  stats.splits = plan.splits;

  // Sub-problems are built serially so they depend only on the plan:
  // every shard sees the full node set (optimistic — repair resolves the
  // contention) and its chains projected onto its own VNFs.
  std::vector<std::uint32_t> local_of(problem.vnf_count(), 0);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t j = 0; j < plan.vnfs_of_shard[s].size(); ++j) {
      local_of[plan.vnfs_of_shard[s][j]] = static_cast<std::uint32_t>(j);
    }
  }
  std::vector<placement::PlacementProblem> subs(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    subs[s].capacities = problem.capacities;
    subs[s].demands.reserve(plan.vnfs_of_shard[s].size());
    for (const std::uint32_t f : plan.vnfs_of_shard[s]) {
      subs[s].demands.push_back(problem.demands[f]);
    }
  }
  for (std::size_t c = 0; c < problem.chains.size(); ++c) {
    const auto& chain = problem.chains[c];
    // Split components break a chain across shards; each shard keeps its
    // own projection (order preserved).
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> parts;
    for (const std::uint32_t f : chain) {
      const std::uint32_t s = plan.shard_of_vnf[f];
      auto it = std::find_if(parts.begin(), parts.end(),
                             [s](const auto& p) { return p.first == s; });
      if (it == parts.end()) {
        parts.emplace_back(s, std::vector<std::uint32_t>{});
        it = std::prev(parts.end());
      }
      it->second.push_back(local_of[f]);
    }
    for (auto& [s, local_chain] : parts) {
      subs[s].chains.push_back(std::move(local_chain));
      if (!problem.chain_weights.empty()) {
        subs[s].chain_weights.push_back(problem.chain_weights[c]);
      }
    }
  }

  // Fork every shard's stream up-front in index order — the parent
  // stream and each child are identical however the waves execute.
  std::vector<Rng> children;
  children.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) children.push_back(rng.fork(s));

  // Waves of the configured fan-out width; positional reduction, so the
  // width (and the thread count underneath) never changes the result.
  std::vector<placement::Placement> locals(shards);
  const std::size_t width = std::max<std::uint32_t>(1, config.fanout());
  std::size_t launched = 0;
  while (launched < shards) {
    const std::size_t wave = std::min(width, shards - launched);
    std::vector<placement::Placement> got =
        exec::parallel_map(wave, [&, launched](std::size_t i) {
          const std::size_t s = launched + i;
          return algo.place(subs[s], children[s]);
        });
    for (std::size_t i = 0; i < wave; ++i) {
      locals[launched + i] = std::move(got[i]);
    }
    launched += wave;
  }

  // Index-ordered merge back into the global VNF space.
  placement::Placement merged;
  merged.assignment.assign(problem.vnf_count(), std::nullopt);
  stats.shard_placement_work.assign(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t j = 0; j < plan.vnfs_of_shard[s].size(); ++j) {
      merged.assignment[plan.vnfs_of_shard[s][j]] = locals[s].assignment[j];
    }
    merged.iterations += locals[s].iterations;
    stats.shard_placement_work[s] = locals[s].iterations;
  }

  const obs::ScopedSpan repair_span("shard.repair");
  const RepairResult repair = repair_placement(problem, merged, true);
  stats.repair_moves += repair.moves;
  stats.drain_moves += repair.drain_moves;
  stats.drained_nodes += repair.drained_nodes;
  obs::count("shard.place.runs");
  obs::count("shard.place.repair_moves", repair.moves);
  obs::count("shard.place.drain_moves", repair.drain_moves);
  merged.feasible = repair.feasible;
  if (!merged.feasible) {
    merged.assignment.assign(problem.vnf_count(), std::nullopt);
  }
  return merged;
}

placement::Placement place_sharded(const placement::PlacementProblem& problem,
                                   const placement::PlacementAlgorithm& algo,
                                   const ShardConfig& config,
                                   std::uint64_t seed, ShardStats* stats) {
  config.validate();
  problem.validate();
  ShardStats local_stats;
  const ShardPlan plan = make_shard_plan(
      problem.vnf_count(), problem.chains, problem.demands,
      config.split_fraction * problem.total_capacity());
  if (plan.shard_count() <= 1) {
    // A connected instance is one shard: sharding is the identity, down
    // to the RNG stream the monolithic caller would use.
    Rng rng(seed);
    if (stats != nullptr) *stats = local_stats;
    return algo.place(problem, rng);
  }
  local_stats.enabled = true;
  Rng rng(seed);
  placement::Placement merged =
      place_with_plan(problem, plan, algo, config, rng, local_stats);
  if (!merged.feasible) {
    // Repair could not fit everything; the monolithic solve sees the
    // whole instance at once.  Deterministic: depends only on
    // problem + seed, so any width reaches the same fallback.
    local_stats.fallback_monolithic = true;
    obs::count("shard.place.fallbacks");
    Rng mono(seed);
    const std::uint64_t sharded_iterations = merged.iterations;
    merged = algo.place(problem, mono);
    merged.iterations += sharded_iterations;
  }
  if (stats != nullptr) *stats = local_stats;
  return merged;
}

}  // namespace nfv::shard
