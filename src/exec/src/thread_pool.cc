#include "nfv/exec/thread_pool.h"

#include <atomic>

#include "nfv/obs/metrics.h"

namespace nfv::exec {

namespace {

std::atomic<ThreadPool*> g_pool{nullptr};

/// Set for the lifetime of every worker thread, of any pool: nested
/// parallel regions detect they are already inside a fan-out and run
/// inline instead of re-entering the shared queue.
thread_local bool t_on_worker = false;

}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

ThreadPool::ThreadPool(std::uint32_t threads) {
  NFV_REQUIRE(threads >= 1);
  workers_.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  obs::count("exec.pools_created");
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }
    task();
  }
}

void ThreadPool::ParallelRegion::capture_exception(std::exception_ptr e) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!first_error_) first_error_ = std::move(e);
}

void ThreadPool::ParallelRegion::finish_chunk() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    --remaining_;
    if (remaining_ > 0) return;
  }
  done_.notify_all();
}

void ThreadPool::ParallelRegion::wait_and_rethrow() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return remaining_ == 0; });
  if (first_error_) {
    obs::count("exec.regions_failed");
    std::rethrow_exception(first_error_);
  }
}

void ThreadPool::note_region(std::size_t items, std::size_t chunks) {
  obs::count("exec.regions");
  obs::count("exec.tasks", chunks);
  obs::count("exec.items", items);
}

void ThreadPool::note_inline(std::size_t items) {
  if (t_on_worker) {
    obs::count("exec.nested_inline");
  } else {
    obs::count("exec.inline_regions");
  }
  obs::count("exec.items", items);
}

ThreadPool* pool() noexcept {
  return g_pool.load(std::memory_order_acquire);
}

ThreadPool* set_pool(ThreadPool* p) noexcept {
  return g_pool.exchange(p, std::memory_order_acq_rel);
}

}  // namespace nfv::exec
