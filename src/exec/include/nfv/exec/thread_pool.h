// Deterministic parallel execution layer.
//
// A dependency-free fixed-size thread pool plus parallel_for / parallel_map
// helpers with *static* chunking: item i always lands in chunk
// floor(i·C/n), no work stealing, no dynamic scheduling.  Callers that
// write result i into slot i therefore produce bit-identical output for
// any thread count — the contract the joint pipeline's determinism tests
// pin down (DESIGN.md §10).
//
// Installation mirrors the obs null-sink design: fan-out sites call the
// free helpers (exec::parallel_for / exec::parallel_map), which consult a
// globally installed pool.  With no pool installed — the default — the
// helpers run inline on the calling thread: zero threads, zero allocation,
// identical results.  A scope (CLI command, bench main, JointOptimizer
// run) enables parallelism by installing a pool with ScopedPool.
//
// Nested fan-out is safe by construction: a parallel_for issued from
// inside a pool worker runs inline on that worker (counted by
// exec.nested_inline), so fanning replications out at the bench layer
// automatically serializes the per-run inner fan-outs instead of
// deadlocking on the shared queue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "nfv/common/error.h"

namespace nfv::exec {

/// Execution-layer knobs, plumbed through JointConfig and the CLI/bench
/// --threads flags.
struct ExecConfig {
  /// Worker threads for the fan-out sites; 1 = serial (no pool).
  std::uint32_t threads = 1;

  void validate() const { NFV_REQUIRE(threads >= 1); }
};

/// Fixed-size worker pool.  Construction spawns the workers; destruction
/// joins them.  Thread-safe: any thread may submit parallel regions, one
/// region at a time per calling thread.
class ThreadPool {
 public:
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::uint32_t thread_count() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// True when the calling thread is one of this process's pool workers
  /// (any pool) — such calls must run inline to avoid queue deadlock.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Invokes f(i) for every i in [0, n), fanned out over the workers in
  /// statically chunked index ranges.  Blocks until all chunks finish.
  /// The first exception thrown by any chunk is rethrown here (remaining
  /// chunks still run to completion, their exceptions are dropped).
  /// Runs inline when n <= 1 or when called from a worker thread.
  template <typename F>
  void parallel_for(std::size_t n, F&& f) {
    if (n == 0) return;
    if (n == 1 || thread_count() <= 1 || on_worker_thread()) {
      run_inline(n, f);
      return;
    }
    const std::size_t chunks =
        n < static_cast<std::size_t>(thread_count())
            ? n
            : static_cast<std::size_t>(thread_count());
    ParallelRegion region(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * n / chunks;
      const std::size_t end = (c + 1) * n / chunks;
      submit([&region, &f, begin, end] {
        try {
          for (std::size_t i = begin; i < end; ++i) f(i);
        } catch (...) {
          region.capture_exception(std::current_exception());
        }
        region.finish_chunk();
      });
    }
    region.wait_and_rethrow();
    note_region(n, chunks);
  }

  /// parallel_for that collects f(i) into slot i of the returned vector —
  /// result order is index order, independent of the thread count.
  template <typename F>
  auto parallel_map(std::size_t n, F&& f) -> std::vector<decltype(f(std::size_t{0}))> {
    std::vector<decltype(f(std::size_t{0}))> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = f(i); });
    return out;
  }

 private:
  /// Completion barrier + first-exception store for one parallel region.
  class ParallelRegion {
   public:
    explicit ParallelRegion(std::size_t chunks) : remaining_(chunks) {}
    void capture_exception(std::exception_ptr e);
    void finish_chunk();
    void wait_and_rethrow();

   private:
    std::mutex mu_;
    std::condition_variable done_;
    std::size_t remaining_;
    std::exception_ptr first_error_;
  };

  template <typename F>
  static void run_inline(std::size_t n, F& f) {
    note_inline(n);
    for (std::size_t i = 0; i < n; ++i) f(i);
  }

  void submit(std::function<void()> task);
  void worker_loop();
  static void note_region(std::size_t items, std::size_t chunks);
  static void note_inline(std::size_t items);

  std::mutex mu_;
  std::condition_variable ready_;
  std::vector<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// The globally installed pool, or nullptr when parallelism is disabled.
[[nodiscard]] ThreadPool* pool() noexcept;

/// Installs (or clears, with nullptr) the global pool; returns the
/// previous one.  Not synchronized against in-flight helpers — install
/// before the fanned-out work starts and uninstall after it ends.
ThreadPool* set_pool(ThreadPool* p) noexcept;

/// RAII install/uninstall of a pool as the global fan-out target.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool& p) : prev_(set_pool(&p)) {}
  ~ScopedPool() { set_pool(prev_); }
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* prev_;
};

// ---------------------------------------------------------------------------
// Fast-path helpers: one relaxed atomic load, then either the installed
// pool's fan-out or a plain inline loop.
// ---------------------------------------------------------------------------

template <typename F>
void parallel_for(std::size_t n, F&& f) {
  if (ThreadPool* p = pool()) {
    p->parallel_for(n, std::forward<F>(f));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) f(i);
}

template <typename F>
auto parallel_map(std::size_t n, F&& f) -> std::vector<decltype(f(std::size_t{0}))> {
  std::vector<decltype(f(std::size_t{0}))> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

/// Worker threads available for fan-out in the current scope: the
/// installed pool's size, or 1 when running serially.  Batch-oriented
/// call sites (BFDSU's stall-bounded multi-start) size their waves with
/// this so serial runs keep their early-exit behavior.
[[nodiscard]] inline std::uint32_t current_concurrency() noexcept {
  const ThreadPool* p = pool();
  return p != nullptr && !ThreadPool::on_worker_thread() ? p->thread_count()
                                                         : 1;
}

}  // namespace nfv::exec
