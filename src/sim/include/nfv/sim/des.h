// Packet-level discrete-event simulator.
//
// Validates the paper's Jackson-network analytics and produces the tail
// statistics the closed forms can't: stations are single-server FCFS
// queues with exponential service; flows inject Poisson packet streams
// that traverse a fixed station path with per-hop link latencies; after
// the last station a packet is delivered with probability P — otherwise a
// NACK sends it back to the first station (the Fig. 3 feedback loop), so
// the per-station offered rate converges to λ/P as Burke's theorem
// predicts.
#pragma once

#include <cstdint>
#include <vector>

#include "nfv/common/rng.h"
#include "nfv/common/stats.h"

namespace nfv::sim {

/// Queueing discipline of a station.  For a work-conserving M/M/1 server
/// the *mean* sojourn is discipline-invariant; the higher moments are not
/// (LCFS has a heavier tail) — a property the validation tests exploit.
enum class Discipline : std::uint8_t {
  kFcfs,  ///< first come, first served (the paper's assumption)
  kLcfs,  ///< last come, first served (non-preemptive)
};

/// One service station (a VNF service instance): M/M/1 by default, or
/// M/M/1/K when buffer_limit > 0.
struct Station {
  double service_rate = 0.0;  ///< μ > 0, packets/s
  /// Max packets in the system (queue + in service); 0 = unbounded.  An
  /// arrival that finds the station full is dropped and retransmitted from
  /// the source after SimConfig::nack_delay, like a lost packet.
  std::uint32_t buffer_limit = 0;
  Discipline discipline = Discipline::kFcfs;
};

/// One request's packet stream.
struct Flow {
  double rate = 0.0;           ///< external Poisson rate λ, packets/s
  double delivery_prob = 1.0;  ///< P ∈ (0, 1]
  /// Station indices visited in order (the scheduled chain).
  std::vector<std::uint32_t> path;
  /// Latency of the hop *into* each station plus the final hop to the
  /// destination: size == path.size() + 1.  Empty means all-zero.
  std::vector<double> hop_latency;
};

/// The simulated system.
struct SimNetwork {
  std::vector<Station> stations;
  std::vector<Flow> flows;

  void validate() const;
};

/// Simulation horizon and measurement controls.
struct SimConfig {
  double duration = 100.0;   ///< simulated seconds (measurement window end)
  double warmup = 10.0;      ///< transient to discard
  double nack_delay = 0.0;   ///< source-side retransmission delay
  std::uint64_t seed = 1;
  /// Keep raw per-packet end-to-end samples (enables quantiles; costs
  /// memory proportional to delivered packets).
  bool keep_samples = false;
  /// Safety cap on processed events (0 = none).
  std::uint64_t max_events = 0;
};

/// Per-station measurements over the post-warmup window.
struct StationResult {
  OnlineStats response;      ///< per-visit sojourn (queue wait + service)
  double utilization = 0.0;  ///< busy time / window
  std::uint64_t visits = 0;  ///< served visits counted
  double arrival_rate = 0.0; ///< measured offered rate (visits / window)
  std::uint64_t drops = 0;   ///< arrivals dropped on a full buffer
  /// Time-averaged number in system (queue + in service), by area
  /// integration — the N of Little's law, measured directly.
  double mean_in_system = 0.0;
};

/// Per-flow measurements over the post-warmup window.
struct FlowResult {
  OnlineStats end_to_end;    ///< injection → successful delivery, incl.
                             ///< retransmission rounds and link latency
  SampleSet samples;         ///< raw end-to-end samples if keep_samples
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retransmissions = 0;  ///< end-of-chain NACK retransmissions
  std::uint64_t buffer_drops = 0;     ///< mid-chain full-buffer drops
};

/// Complete simulation output.
struct SimResult {
  std::vector<StationResult> stations;
  std::vector<FlowResult> flows;
  std::uint64_t events_processed = 0;
  double measured_window = 0.0;  ///< duration − warmup
  bool truncated = false;        ///< max_events hit before duration
};

/// Runs the simulation to completion.  Deterministic given config.seed.
[[nodiscard]] SimResult simulate(const SimNetwork& network,
                                 const SimConfig& config);

/// Convenience: simulate a single M/M/1 queue (one station, one flow,
/// P = 1) — used by validation tests against the closed forms.
[[nodiscard]] SimResult simulate_mm1(double arrival_rate, double service_rate,
                                     const SimConfig& config);

}  // namespace nfv::sim
