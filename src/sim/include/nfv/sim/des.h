// Packet-level discrete-event simulator.
//
// Validates the paper's Jackson-network analytics and produces the tail
// statistics the closed forms can't: stations are single-server FCFS
// queues with exponential service; flows inject Poisson packet streams
// that traverse a fixed station path with per-hop link latencies; after
// the last station a packet is delivered with probability P — otherwise a
// NACK sends it back to the first station (the Fig. 3 feedback loop), so
// the per-station offered rate converges to λ/P as Burke's theorem
// predicts.
//
// Fault injection (SimConfig::faults): stations can crash and recover on a
// deterministic timeline or per an MTBF/MTTR stochastic model.  A crash
// loses the in-service and queued packets; they — and any packet arriving
// while the station is down — are retransmitted from the source after
// nack_delay.  Per-station downtime, availability, failure and fault-drop
// counters are reported in StationResult.
#pragma once

#include <cstdint>
#include <vector>

#include "nfv/common/rng.h"
#include "nfv/common/stats.h"

namespace nfv::sim {

/// Queueing discipline of a station.  For a work-conserving M/M/1 server
/// the *mean* sojourn is discipline-invariant; the higher moments are not
/// (LCFS has a heavier tail) — a property the validation tests exploit.
enum class Discipline : std::uint8_t {
  kFcfs,  ///< first come, first served (the paper's assumption)
  kLcfs,  ///< last come, first served (non-preemptive)
};

/// One service station (a VNF service instance): M/M/1 by default, or
/// M/M/1/K when buffer_limit > 0.
struct Station {
  double service_rate = 0.0;  ///< μ > 0, packets/s
  /// Max packets in the system (queue + in service); 0 = unbounded.  An
  /// arrival that finds the station full is dropped and retransmitted from
  /// the source after SimConfig::nack_delay, like a lost packet.
  std::uint32_t buffer_limit = 0;
  Discipline discipline = Discipline::kFcfs;
};

/// One request's packet stream.
struct Flow {
  double rate = 0.0;           ///< external Poisson rate λ, packets/s
  double delivery_prob = 1.0;  ///< P ∈ (0, 1]
  /// Station indices visited in order (the scheduled chain).
  std::vector<std::uint32_t> path;
  /// Latency of the hop *into* each station plus the final hop to the
  /// destination: size == path.size() + 1.  Empty means all-zero.
  std::vector<double> hop_latency;
};

/// The simulated system.
struct SimNetwork {
  std::vector<Station> stations;
  std::vector<Flow> flows;

  void validate() const;
};

/// One scheduled availability transition of a station: at `time` the
/// station goes UP (`up == true`) or DOWN (`up == false`).  A DOWN station
/// crashes: the packet in service and every queued packet are lost and
/// retransmitted from the source after SimConfig::nack_delay, and arrivals
/// while down are lost the same way (the M/M/1/K drop path with a retry).
struct FaultEvent {
  double time = 0.0;
  std::uint32_t station = 0;
  bool up = false;
};

/// Stochastic per-station churn: up-times are exponential with mean `mtbf`
/// and down-times exponential with mean `mttr`, so long-run availability
/// converges to MTBF / (MTBF + MTTR).  mtbf == 0 disables the model.
struct FaultModel {
  double mtbf = 0.0;  ///< mean time between failures (up-time), seconds
  double mttr = 0.0;  ///< mean time to repair (down-time), seconds
};

/// Fault-injection plan: an explicit deterministic timeline, a stochastic
/// per-station model, or both.  All stochastic draws come from a dedicated
/// stream derived from SimConfig::seed, so the packet arrival/service
/// processes are identical with and without faults.
struct FaultPlan {
  std::vector<FaultEvent> timeline;
  /// Either empty (no stochastic churn) or one model per station.
  std::vector<FaultModel> models;

  [[nodiscard]] bool empty() const {
    return timeline.empty() && models.empty();
  }
};

/// Simulation horizon and measurement controls.
struct SimConfig {
  double duration = 100.0;   ///< simulated seconds (measurement window end)
  double warmup = 10.0;      ///< transient to discard
  double nack_delay = 0.0;   ///< source-side retransmission delay
  std::uint64_t seed = 1;
  /// Keep raw per-packet end-to-end samples (enables quantiles; costs
  /// memory proportional to delivered packets).
  bool keep_samples = false;
  /// Safety cap on processed events (0 = none).
  std::uint64_t max_events = 0;
  /// Station churn to inject.  Requires nack_delay > 0 when non-empty so
  /// that retransmissions toward a down station always advance time.
  FaultPlan faults;
};

/// Per-station measurements over the post-warmup window.
struct StationResult {
  OnlineStats response;      ///< per-visit sojourn (queue wait + service)
  double utilization = 0.0;  ///< busy time / window
  std::uint64_t visits = 0;  ///< served visits counted
  double arrival_rate = 0.0; ///< measured offered rate (visits / window)
  std::uint64_t drops = 0;   ///< arrivals dropped on a full buffer
  /// Time-averaged number in system (queue + in service), by area
  /// integration — the N of Little's law, measured directly.
  double mean_in_system = 0.0;
  // Fault-injection accounting (all zero when SimConfig::faults is empty).
  double downtime = 0.0;        ///< down seconds within the window
  double availability = 1.0;    ///< 1 − downtime / measured window
  std::uint32_t failures = 0;   ///< DOWN transitions within the window
  /// Packets lost at this station because it was down (arrivals while down
  /// plus packets flushed by a crash); each is retried from the source.
  std::uint64_t fault_drops = 0;
};

/// Per-flow measurements over the post-warmup window.
struct FlowResult {
  OnlineStats end_to_end;    ///< injection → successful delivery, incl.
                             ///< retransmission rounds and link latency
  SampleSet samples;         ///< raw end-to-end samples if keep_samples
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retransmissions = 0;  ///< end-of-chain NACK retransmissions
  std::uint64_t buffer_drops = 0;     ///< mid-chain full-buffer drops
  /// Retransmissions caused by a down station (crash flush or arrival
  /// during an outage).
  std::uint64_t fault_retransmissions = 0;
};

/// Complete simulation output.
struct SimResult {
  std::vector<StationResult> stations;
  std::vector<FlowResult> flows;
  std::uint64_t events_processed = 0;
  double measured_window = 0.0;  ///< duration − warmup
  bool truncated = false;        ///< max_events hit before duration
};

/// Runs the simulation to completion.  Deterministic given config.seed.
[[nodiscard]] SimResult simulate(const SimNetwork& network,
                                 const SimConfig& config);

/// Convenience: simulate a single M/M/1 queue (one station, one flow,
/// P = 1) — used by validation tests against the closed forms.
[[nodiscard]] SimResult simulate_mm1(double arrival_rate, double service_rate,
                                     const SimConfig& config);

}  // namespace nfv::sim
