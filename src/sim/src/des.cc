#include "nfv/sim/des.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "nfv/common/error.h"
#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"

namespace nfv::sim {

void SimNetwork::validate() const {
  NFV_REQUIRE(!stations.empty());
  for (const Station& s : stations) NFV_REQUIRE(s.service_rate > 0.0);
  NFV_REQUIRE(!flows.empty());
  for (const Flow& f : flows) {
    NFV_REQUIRE(f.rate > 0.0);
    NFV_REQUIRE(f.delivery_prob > 0.0 && f.delivery_prob <= 1.0);
    NFV_REQUIRE(!f.path.empty());
    for (const std::uint32_t s : f.path) NFV_REQUIRE(s < stations.size());
    NFV_REQUIRE(f.hop_latency.empty() ||
                f.hop_latency.size() == f.path.size() + 1);
  }
}

namespace {

// In-flight packet.  Packets are pooled and recycled via a free list so
// long runs do not fragment the heap.
struct Packet {
  std::uint32_t flow = 0;
  std::uint32_t hop = 0;          // index into flow.path
  double inject_time = 0.0;       // first external injection
  double visit_arrival = 0.0;     // arrival at current station's queue
};

enum class EventType : std::uint8_t {
  kSourceArrival,     // external injection of a new packet for `flow`
  kStationArrival,    // packet reaches a station queue
  kServiceComplete,   // station finishes the packet at its head
  kStationDown,       // fault injection: station crashes
  kStationUp,         // fault injection: station recovers
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for simultaneous events
  EventType type{};
  std::uint32_t flow = 0;     // kSourceArrival
  std::uint32_t station = 0;  // kStationArrival / kServiceComplete / faults
  std::uint32_t packet = 0;   // pool index (kStationArrival)
  std::uint32_t epoch = 0;    // kServiceComplete: stale after a crash

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct StationState {
  std::deque<std::uint32_t> queue;  // waiting packet pool indices
  bool busy = false;
  std::uint32_t in_service = 0;     // pool index, valid when busy
  double busy_since = 0.0;
  double busy_accum = 0.0;          // within measurement window
  // Occupancy area integration for the time-averaged N of Little's law.
  std::uint32_t occupancy = 0;
  double occupancy_change = 0.0;    // time of the last occupancy change
  double occupancy_area = 0.0;      // within measurement window
  // Fault injection: a crash bumps `epoch` so the pending kServiceComplete
  // of the killed service is recognized as stale and ignored.
  bool down = false;
  double down_since = 0.0;
  double down_accum = 0.0;          // within measurement window
  std::uint32_t epoch = 0;
};

class Engine {
 public:
  Engine(const SimNetwork& network, const SimConfig& config)
      : net_(network), cfg_(config), rng_(config.seed),
        fault_rng_(config.seed ^ 0xFA17FA17FA17FA17ULL) {
    NFV_REQUIRE(cfg_.duration > cfg_.warmup);
    NFV_REQUIRE(cfg_.warmup >= 0.0);
    validate_faults();
    stations_.resize(net_.stations.size());
    result_.stations.resize(net_.stations.size());
    result_.flows.resize(net_.flows.size());
    // Pre-resolve telemetry handles once; the event loop then pays only a
    // null check per sample instead of a registry lookup.
    if (obs::MetricsRegistry* reg = obs::registry()) {
      queue_depth_ = &reg->histogram("sim.des.queue_depth", 0.0, 64.0, 64);
    }
  }

  SimResult run() {
    const obs::ScopedSpan span("sim.des.run");
    for (std::uint32_t f = 0; f < net_.flows.size(); ++f) {
      schedule_source(f, rng_.exponential(net_.flows[f].rate));
    }
    seed_faults();
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      if (ev.time > cfg_.duration) break;
      if (cfg_.max_events != 0 &&
          result_.events_processed >= cfg_.max_events) {
        result_.truncated = true;
        break;
      }
      ++result_.events_processed;
      now_ = ev.time;
      switch (ev.type) {
        case EventType::kSourceArrival: handle_source(ev); break;
        case EventType::kStationArrival: handle_station_arrival(ev); break;
        case EventType::kServiceComplete: handle_service_complete(ev); break;
        case EventType::kStationDown: handle_station_down(ev); break;
        case EventType::kStationUp: handle_station_up(ev); break;
      }
    }
    finalize();
    return std::move(result_);
  }

 private:
  void push(Event ev) {
    ev.seq = next_seq_++;
    events_.push(ev);
  }

  void schedule_source(std::uint32_t flow, double delay) {
    Event ev;
    ev.time = now_ + delay;
    ev.type = EventType::kSourceArrival;
    ev.flow = flow;
    push(ev);
  }

  std::uint32_t alloc_packet() {
    if (!free_packets_.empty()) {
      const std::uint32_t p = free_packets_.back();
      free_packets_.pop_back();
      return p;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void send_to_hop(std::uint32_t packet, std::uint32_t hop) {
    Packet& pkt = pool_[packet];
    pkt.hop = hop;
    const Flow& flow = net_.flows[pkt.flow];
    const double latency =
        flow.hop_latency.empty() ? 0.0 : flow.hop_latency[hop];
    Event ev;
    ev.time = now_ + latency;
    ev.type = EventType::kStationArrival;
    ev.station = flow.path[hop];
    ev.packet = packet;
    push(ev);
  }

  void handle_source(const Event& ev) {
    const Flow& flow = net_.flows[ev.flow];
    // Next external arrival of this Poisson source.
    schedule_source(ev.flow, rng_.exponential(flow.rate));
    if (in_window()) ++result_.flows[ev.flow].generated;
    const std::uint32_t packet = alloc_packet();
    pool_[packet] = Packet{ev.flow, 0, now_, 0.0};
    send_to_hop(packet, 0);
  }

  void validate_faults() {
    const FaultPlan& plan = cfg_.faults;
    if (plan.empty()) return;
    // A retry toward a down station must advance time, or a zero-delay
    // retransmission loop would stall the clock.
    NFV_REQUIRE(cfg_.nack_delay > 0.0);
    NFV_REQUIRE(plan.models.empty() ||
                plan.models.size() == net_.stations.size());
    for (const FaultModel& m : plan.models) {
      NFV_REQUIRE(m.mtbf >= 0.0);
      if (m.mtbf > 0.0) NFV_REQUIRE(m.mttr > 0.0);
    }
    for (const FaultEvent& f : plan.timeline) {
      NFV_REQUIRE(f.time >= 0.0);
      NFV_REQUIRE(f.station < net_.stations.size());
    }
  }

  void seed_faults() {
    for (const FaultEvent& f : cfg_.faults.timeline) {
      Event ev;
      ev.time = f.time;
      ev.type = f.up ? EventType::kStationUp : EventType::kStationDown;
      ev.station = f.station;
      push(ev);
    }
    for (std::uint32_t s = 0; s < cfg_.faults.models.size(); ++s) {
      const FaultModel& m = cfg_.faults.models[s];
      if (m.mtbf <= 0.0) continue;
      Event ev;
      ev.time = fault_rng_.exponential(1.0 / m.mtbf);
      ev.type = EventType::kStationDown;
      ev.station = s;
      push(ev);
    }
  }

  [[nodiscard]] bool model_driven(std::uint32_t station) const {
    return station < cfg_.faults.models.size() &&
           cfg_.faults.models[station].mtbf > 0.0;
  }

  /// A packet lost to an outage restarts its chain from the source after
  /// the NACK round trip — the same retry path as an end-of-chain NACK.
  void retry_from_source(std::uint32_t packet, std::uint32_t at_station) {
    Packet& pkt = pool_[packet];
    if (in_window()) {
      ++result_.stations[at_station].fault_drops;
      ++result_.flows[pkt.flow].fault_retransmissions;
    }
    Event retry;
    retry.time = now_ + cfg_.nack_delay;
    retry.type = EventType::kStationArrival;
    retry.station = net_.flows[pkt.flow].path[0];
    retry.packet = packet;
    pkt.hop = 0;
    push(retry);
  }

  void handle_station_down(const Event& ev) {
    StationState& st = stations_[ev.station];
    if (st.down) return;  // duplicate timeline entry
    st.down = true;
    st.down_since = now_;
    if (in_window()) ++result_.stations[ev.station].failures;
    // Crash semantics: the in-flight visit and the whole queue are lost.
    if (st.busy) {
      accumulate_busy(ev.station);
      st.busy = false;
      ++st.epoch;  // the pending kServiceComplete is now stale
      retry_from_source(st.in_service, ev.station);
    }
    for (const std::uint32_t p : st.queue) retry_from_source(p, ev.station);
    st.queue.clear();
    change_occupancy(ev.station, -static_cast<int>(st.occupancy));
    if (model_driven(ev.station)) {
      Event up;
      up.time = now_ + fault_rng_.exponential(
                           1.0 / cfg_.faults.models[ev.station].mttr);
      up.type = EventType::kStationUp;
      up.station = ev.station;
      push(up);
    }
  }

  void handle_station_up(const Event& ev) {
    StationState& st = stations_[ev.station];
    if (!st.down) return;  // duplicate timeline entry
    accumulate_downtime(ev.station);
    st.down = false;
    if (model_driven(ev.station)) {
      Event down;
      down.time = now_ + fault_rng_.exponential(
                             1.0 / cfg_.faults.models[ev.station].mtbf);
      down.type = EventType::kStationDown;
      down.station = ev.station;
      push(down);
    }
  }

  void accumulate_downtime(std::uint32_t station) {
    StationState& st = stations_[station];
    const double from = std::max(st.down_since, cfg_.warmup);
    const double to = std::min(now_, cfg_.duration);
    if (to > from) st.down_accum += to - from;
  }

  void handle_station_arrival(const Event& ev) {
    Packet& pkt = pool_[ev.packet];
    StationState& st = stations_[ev.station];
    if (st.down) {
      // The instance is dead: the packet is lost and the source retries
      // after the NACK delay, exactly like a full-buffer drop with retry.
      retry_from_source(ev.packet, ev.station);
      return;
    }
    const std::uint32_t limit = net_.stations[ev.station].buffer_limit;
    if (limit > 0) {
      const std::size_t occupancy = st.queue.size() + (st.busy ? 1u : 0u);
      if (occupancy >= limit) {
        // Full buffer: the packet is dropped, as in M/M/1/K and in the
        // paper's admission control ("drop some requests to ensure the
        // normal operation of the services").
        if (in_window()) {
          ++result_.stations[ev.station].drops;
          ++result_.flows[pkt.flow].buffer_drops;
        }
        free_packets_.push_back(ev.packet);
        return;
      }
    }
    pkt.visit_arrival = now_;
    if (queue_depth_ != nullptr) {
      queue_depth_->observe(
          static_cast<double>(st.queue.size() + (st.busy ? 1u : 0u)));
    }
    change_occupancy(ev.station, +1);
    if (st.busy) {
      st.queue.push_back(ev.packet);
      return;
    }
    begin_service(ev.station, ev.packet);
  }

  void begin_service(std::uint32_t station, std::uint32_t packet) {
    StationState& st = stations_[station];
    st.busy = true;
    st.in_service = packet;
    st.busy_since = now_;
    Event done;
    done.time = now_ + rng_.exponential(net_.stations[station].service_rate);
    done.type = EventType::kServiceComplete;
    done.station = station;
    done.packet = packet;
    done.epoch = st.epoch;
    push(done);
  }

  void handle_service_complete(const Event& ev) {
    StationState& st = stations_[ev.station];
    if (ev.epoch != st.epoch) return;  // service killed by a crash
    NFV_CHECK(st.busy && st.in_service == ev.packet);
    Packet& pkt = pool_[ev.packet];
    // Station accounting (only post-warmup samples count).
    if (in_window()) {
      StationResult& sr = result_.stations[ev.station];
      sr.response.add(now_ - pkt.visit_arrival);
      ++sr.visits;
    }
    accumulate_busy(ev.station);
    change_occupancy(ev.station, -1);
    st.busy = false;
    if (!st.queue.empty()) {
      std::uint32_t next;
      if (net_.stations[ev.station].discipline == Discipline::kLcfs) {
        next = st.queue.back();
        st.queue.pop_back();
      } else {
        next = st.queue.front();
        st.queue.pop_front();
      }
      begin_service(ev.station, next);
    }
    route_onward(ev.packet);
  }

  /// Integrates the occupancy area up to `now_` (clipped to the window)
  /// and applies `delta` to the station's occupancy.
  void change_occupancy(std::uint32_t station, int delta) {
    StationState& st = stations_[station];
    const double from = std::max(st.occupancy_change, cfg_.warmup);
    const double to = std::min(now_, cfg_.duration);
    if (to > from) {
      st.occupancy_area += st.occupancy * (to - from);
    }
    st.occupancy_change = now_;
    st.occupancy = static_cast<std::uint32_t>(
        static_cast<int>(st.occupancy) + delta);
  }

  void accumulate_busy(std::uint32_t station) {
    StationState& st = stations_[station];
    // Clip the busy interval to the measurement window.
    const double from = std::max(st.busy_since, cfg_.warmup);
    const double to = std::min(now_, cfg_.duration);
    if (to > from) st.busy_accum += to - from;
  }

  void route_onward(std::uint32_t packet) {
    Packet& pkt = pool_[packet];
    const Flow& flow = net_.flows[pkt.flow];
    if (pkt.hop + 1 < flow.path.size()) {
      send_to_hop(packet, pkt.hop + 1);
      return;
    }
    // Past the last station: final hop latency, then the delivery trial.
    const double final_latency =
        flow.hop_latency.empty() ? 0.0 : flow.hop_latency.back();
    const double arrival_at_destination = now_ + final_latency;
    if (rng_.chance(flow.delivery_prob)) {
      if (pkt.inject_time >= cfg_.warmup &&
          arrival_at_destination <= cfg_.duration) {
        FlowResult& fr = result_.flows[pkt.flow];
        const double sojourn = arrival_at_destination - pkt.inject_time;
        fr.end_to_end.add(sojourn);
        ++fr.delivered;
        if (cfg_.keep_samples) fr.samples.add(sojourn);
      }
      free_packets_.push_back(packet);
      return;
    }
    // NACK: retransmit from the source.  Model the NACK round trip as
    // cfg_.nack_delay (0 reproduces the instantaneous-feedback Jackson
    // model of Fig. 3).
    if (in_window()) ++result_.flows[pkt.flow].retransmissions;
    Event retry;
    retry.time = arrival_at_destination + cfg_.nack_delay;
    retry.type = EventType::kStationArrival;
    retry.station = flow.path[0];
    retry.packet = packet;
    pkt.hop = 0;
    push(retry);
  }

  [[nodiscard]] bool in_window() const { return now_ >= cfg_.warmup; }

  void finalize() {
    result_.measured_window = cfg_.duration - cfg_.warmup;
    now_ = cfg_.duration;
    for (std::uint32_t s = 0; s < stations_.size(); ++s) {
      if (stations_[s].busy) accumulate_busy(s);
      if (stations_[s].down) accumulate_downtime(s);
      change_occupancy(s, 0);  // close the last occupancy interval
      result_.stations[s].utilization =
          stations_[s].busy_accum / result_.measured_window;
      result_.stations[s].arrival_rate =
          static_cast<double>(result_.stations[s].visits) /
          result_.measured_window;
      result_.stations[s].mean_in_system =
          stations_[s].occupancy_area / result_.measured_window;
      result_.stations[s].downtime = stations_[s].down_accum;
      result_.stations[s].availability =
          1.0 - stations_[s].down_accum / result_.measured_window;
    }
    flush_telemetry();
  }

  /// Counter totals are flushed once per run instead of bumped per event —
  /// the event loop stays allocation- and atomic-free with obs disabled.
  void flush_telemetry() const {
    if (obs::registry() == nullptr) return;
    obs::count("sim.des.runs");
    obs::count("sim.des.events", result_.events_processed);
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t buffer_drops = 0;
    std::uint64_t fault_retries = 0;
    for (const FlowResult& f : result_.flows) {
      generated += f.generated;
      delivered += f.delivered;
      retransmissions += f.retransmissions;
      buffer_drops += f.buffer_drops;
      fault_retries += f.fault_retransmissions;
    }
    std::uint64_t station_drops = 0;
    std::uint64_t fault_drops = 0;
    std::uint64_t failures = 0;
    for (const StationResult& s : result_.stations) {
      station_drops += s.drops;
      fault_drops += s.fault_drops;
      failures += s.failures;
    }
    obs::count("sim.des.generated", generated);
    obs::count("sim.des.delivered", delivered);
    obs::count("sim.des.retransmissions", retransmissions);
    obs::count("sim.des.buffer_drops", buffer_drops);
    obs::count("sim.des.fault_retransmissions", fault_retries);
    obs::count("sim.des.station_drops", station_drops);
    obs::count("sim.des.fault_drops", fault_drops);
    obs::count("sim.des.failures", failures);
  }

  const SimNetwork& net_;
  const SimConfig& cfg_;
  Rng rng_;
  Rng fault_rng_;  // dedicated stream: faults never perturb traffic draws
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<StationState> stations_;
  std::vector<Packet> pool_;
  std::vector<std::uint32_t> free_packets_;
  SimResult result_;
  obs::HistogramMetric* queue_depth_ = nullptr;  // null when obs disabled
};

}  // namespace

SimResult simulate(const SimNetwork& network, const SimConfig& config) {
  network.validate();
  Engine engine(network, config);
  return engine.run();
}

SimResult simulate_mm1(double arrival_rate, double service_rate,
                       const SimConfig& config) {
  SimNetwork net;
  net.stations.push_back(Station{service_rate});
  Flow flow;
  flow.rate = arrival_rate;
  flow.delivery_prob = 1.0;
  flow.path = {0};
  net.flows.push_back(std::move(flow));
  return simulate(net, config);
}

}  // namespace nfv::sim
