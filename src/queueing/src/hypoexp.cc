#include "nfv/queueing/hypoexp.h"

#include <algorithm>
#include <cmath>

namespace nfv::queueing {

Hypoexponential::Hypoexponential(std::vector<double> rates)
    : rates_(std::move(rates)) {
  NFV_REQUIRE(!rates_.empty());
  for (const double r : rates_) NFV_REQUIRE(r > 0.0);
  std::sort(rates_.begin(), rates_.end());
  // Separate coincident rates with a tiny relative jitter so the distinct-
  // rate partial-fraction form applies.
  for (std::size_t i = 1; i < rates_.size(); ++i) {
    if (rates_[i] <= rates_[i - 1] * (1.0 + 1e-9)) {
      rates_[i] = rates_[i - 1] * (1.0 + 1e-9) + 1e-300;
    }
  }
  // w_i = Π_{j≠i} ν_j / (ν_j − ν_i);  F(t) = 1 − Σ w_i e^{−ν_i t}.
  weights_.resize(rates_.size());
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    double w = 1.0;
    for (std::size_t j = 0; j < rates_.size(); ++j) {
      if (j == i) continue;
      w *= rates_[j] / (rates_[j] - rates_[i]);
    }
    weights_[i] = w;
  }
}

double Hypoexponential::mean() const {
  double total = 0.0;
  for (const double r : rates_) total += 1.0 / r;
  return total;
}

double Hypoexponential::variance() const {
  double total = 0.0;
  for (const double r : rates_) total += 1.0 / (r * r);
  return total;
}

double Hypoexponential::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  double survival = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    survival += weights_[i] * std::exp(-rates_[i] * t);
  }
  // Alternating weights can leave tiny negative / >1 residue; clamp.
  return std::clamp(1.0 - survival, 0.0, 1.0);
}

double Hypoexponential::quantile(double q) const {
  NFV_REQUIRE(q >= 0.0 && q < 1.0);
  if (q == 0.0) return 0.0;
  // Bracket: the mean plus enough slowest-stage e-foldings.
  double lo = 0.0;
  double hi = mean();
  const double slowest = rates_.front();
  while (cdf(hi) < q) {
    hi += std::max(1.0 / slowest, hi);
    NFV_CHECK(hi < 1e30);
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

Hypoexponential chain_sojourn(const std::vector<double>& service_rates,
                              const std::vector<double>& arrival_rates) {
  NFV_REQUIRE(service_rates.size() == arrival_rates.size());
  NFV_REQUIRE(!service_rates.empty());
  std::vector<double> nu;
  nu.reserve(service_rates.size());
  for (std::size_t i = 0; i < service_rates.size(); ++i) {
    NFV_REQUIRE(arrival_rates[i] >= 0.0);
    const double slack = service_rates[i] - arrival_rates[i];
    NFV_REQUIRE(slack > 0.0);  // every station stable
    nu.push_back(slack);
  }
  return Hypoexponential(std::move(nu));
}

}  // namespace nfv::queueing
