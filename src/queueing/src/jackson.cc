#include "nfv/queueing/jackson.h"

#include <algorithm>
#include <cmath>

#include "nfv/queueing/mm1.h"

namespace nfv::queueing {

OpenJacksonNetwork::OpenJacksonNetwork(std::vector<double> service_rates)
    : service_rates_(std::move(service_rates)),
      external_rates_(service_rates_.size(), 0.0),
      routing_(service_rates_.size() * service_rates_.size(), 0.0) {
  NFV_REQUIRE(!service_rates_.empty());
  for (const double mu : service_rates_) NFV_REQUIRE(mu > 0.0);
}

void OpenJacksonNetwork::set_external_rate(std::size_t station, double rate) {
  NFV_REQUIRE(station < station_count());
  NFV_REQUIRE(rate >= 0.0);
  external_rates_[station] = rate;
}

void OpenJacksonNetwork::set_routing(std::size_t from, std::size_t to,
                                     double probability) {
  NFV_REQUIRE(from < station_count() && to < station_count());
  NFV_REQUIRE(probability >= 0.0 && probability <= 1.0);
  routing_[from * station_count() + to] = probability;
  double row_sum = 0.0;
  for (std::size_t j = 0; j < station_count(); ++j) {
    row_sum += routing_[from * station_count() + j];
  }
  NFV_REQUIRE(row_sum <= 1.0 + 1e-12);
}

double OpenJacksonNetwork::service_rate(std::size_t station) const {
  NFV_REQUIRE(station < station_count());
  return service_rates_[station];
}

double OpenJacksonNetwork::external_rate(std::size_t station) const {
  NFV_REQUIRE(station < station_count());
  return external_rates_[station];
}

double OpenJacksonNetwork::routing(std::size_t from, std::size_t to) const {
  NFV_REQUIRE(from < station_count() && to < station_count());
  return routing_[from * station_count() + to];
}

NetworkSolution OpenJacksonNetwork::solve() const {
  const std::size_t n = station_count();
  // Traffic equations: λ = λ0 + Pᵀ λ  ⇔  (I - Pᵀ) λ = λ0.
  // Dense Gaussian elimination with partial pivoting.
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b = external_rates_;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double pji = routing_[j * n + i];  // Pᵀ(i,j)
      a[i * n + j] = (i == j ? 1.0 : 0.0) - pji;
    }
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot * n + col]) < 1e-12) {
      throw InfeasibleError(
          "Jackson traffic equations singular: routing is not open "
          "(packets never leave the network)");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[pivot * n + j]);
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        a[row * n + j] -= factor * a[col * n + j];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> lambda(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      acc -= a[i * n + j] * lambda[j];
    }
    lambda[i] = acc / a[i * n + i];
    // Numerical slack can leave a tiny negative rate where the true value
    // is 0; clamp it rather than propagate the noise.
    if (lambda[i] < 0.0 && lambda[i] > -1e-9) lambda[i] = 0.0;
    NFV_CHECK(lambda[i] >= 0.0);
  }

  NetworkSolution sol;
  sol.stations.resize(n);
  sol.stable = true;
  double total_n = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    StationMetrics& m = sol.stations[i];
    m.arrival_rate = lambda[i];
    m.utilization = lambda[i] / service_rates_[i];
    m.stable = m.utilization < 1.0;
    if (m.stable) {
      m.mean_in_system = m.utilization / (1.0 - m.utilization);
      m.mean_response = 1.0 / (service_rates_[i] - lambda[i]);
      total_n += m.mean_in_system;
    } else {
      sol.stable = false;
    }
    sol.total_external_rate += external_rates_[i];
  }
  if (sol.stable && sol.total_external_rate > 0.0) {
    sol.mean_sojourn = total_n / sol.total_external_rate;
  }
  return sol;
}

OpenJacksonNetwork make_chain_with_loss(
    const std::vector<double>& service_rates, double external_rate,
    double delivery_prob) {
  NFV_REQUIRE(!service_rates.empty());
  NFV_REQUIRE(external_rate >= 0.0);
  NFV_REQUIRE(delivery_prob > 0.0 && delivery_prob <= 1.0);
  OpenJacksonNetwork net(service_rates);
  net.set_external_rate(0, external_rate);
  for (std::size_t i = 0; i + 1 < service_rates.size(); ++i) {
    net.set_routing(i, i + 1, 1.0);
  }
  if (delivery_prob < 1.0) {
    net.set_routing(service_rates.size() - 1, 0, 1.0 - delivery_prob);
  }
  return net;
}

}  // namespace nfv::queueing
