// Hypoexponential sojourn distributions — analytic *tail* predictions for
// chains.
//
// A packet that traverses a chain of independent M/M/1 stations (rates
// ν_i = μ_i − Λ_i) experiences a total sojourn distributed as the sum of
// independent exponentials — a hypoexponential.  The paper only reports
// mean latencies; this class adds the full CDF and quantiles, so the
// library can predict p99 end-to-end latency analytically and validate it
// against the packet-level simulator.
#pragma once

#include <vector>

#include "nfv/common/error.h"

namespace nfv::queueing {

/// Sum of independent Exp(ν_i) variables.  Rates must be positive; equal
/// rates are handled by an internal relative jitter of 1e-9 (the closed
/// form has removable singularities at coincident rates; the jitter's
/// effect on probabilities is far below the simulator's statistical
/// noise).
class Hypoexponential {
 public:
  explicit Hypoexponential(std::vector<double> rates);

  [[nodiscard]] std::size_t stage_count() const { return rates_.size(); }

  /// Σ 1/ν_i.
  [[nodiscard]] double mean() const;
  /// Σ 1/ν_i².
  [[nodiscard]] double variance() const;

  /// P(T ≤ t); 0 for t ≤ 0.
  [[nodiscard]] double cdf(double t) const;

  /// Smallest t with cdf(t) ≥ q, by bisection; q ∈ [0, 1).
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> rates_;    // de-duplicated by jitter, ascending
  std::vector<double> weights_;  // partial-fraction coefficients
};

/// Convenience: the sojourn distribution of a chain of M/M/1 stations with
/// the given service rates and per-station equivalent arrival rates
/// (every station must be stable).
[[nodiscard]] Hypoexponential chain_sojourn(
    const std::vector<double>& service_rates,
    const std::vector<double>& arrival_rates);

}  // namespace nfv::queueing
