// M/M/1 closed forms (Sec. III-B of the paper).
//
// Every service instance is a single-server FCFS queue with Poisson
// arrivals of aggregate rate Λ and exponential service with rate μ:
//   ρ     = Λ/μ                      (Eq. 9)
//   π(n)  = (1-ρ) ρ^n                (Eq. 8)
//   N     = ρ/(1-ρ)                  (Eq. 10, mean number in system)
//   W     = N/λ_throughput           (Eq. 11, via Little)
//         = 1/(μ-Λ)                  (response = queueing + service)
// With a packet-delivery probability P and NACK retransmission feedback,
// Burke's theorem gives an equivalent arrival rate Λ = λ0/P, hence the
// paper's W = 1/(Pμ - λ0) form (Eq. 12).
#pragma once

#include <cmath>

#include "nfv/common/error.h"

namespace nfv::queueing {

/// Server utilization ρ = Λ/μ.
[[nodiscard]] inline double mm1_utilization(double arrival_rate,
                                            double service_rate) {
  NFV_REQUIRE(service_rate > 0.0);
  NFV_REQUIRE(arrival_rate >= 0.0);
  return arrival_rate / service_rate;
}

/// True iff the queue is stable (ρ < 1).
[[nodiscard]] inline bool mm1_stable(double arrival_rate,
                                     double service_rate) {
  return mm1_utilization(arrival_rate, service_rate) < 1.0;
}

/// Stationary probability of n packets in the system, π(n) = (1-ρ)ρ^n.
[[nodiscard]] inline double mm1_state_probability(double arrival_rate,
                                                  double service_rate,
                                                  unsigned n) {
  const double rho = mm1_utilization(arrival_rate, service_rate);
  NFV_REQUIRE(rho < 1.0);
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

/// Mean number in system N = ρ/(1-ρ) (Eq. 10).
[[nodiscard]] inline double mm1_mean_in_system(double arrival_rate,
                                               double service_rate) {
  const double rho = mm1_utilization(arrival_rate, service_rate);
  NFV_REQUIRE(rho < 1.0);
  return rho / (1.0 - rho);
}

/// Mean response time (wait + service) W = 1/(μ-Λ).
[[nodiscard]] inline double mm1_mean_response(double arrival_rate,
                                              double service_rate) {
  NFV_REQUIRE(mm1_stable(arrival_rate, service_rate));
  return 1.0 / (service_rate - arrival_rate);
}

/// Mean waiting time (excluding service) W_q = ρ/(μ-Λ).
[[nodiscard]] inline double mm1_mean_wait(double arrival_rate,
                                          double service_rate) {
  return mm1_utilization(arrival_rate, service_rate) *
         mm1_mean_response(arrival_rate, service_rate);
}

/// q-quantile of the (exponential) response-time distribution:
/// T ~ Exp(μ-Λ), so T_q = -ln(1-q)/(μ-Λ).
[[nodiscard]] inline double mm1_response_quantile(double arrival_rate,
                                                  double service_rate,
                                                  double q) {
  NFV_REQUIRE(q >= 0.0 && q < 1.0);
  return -std::log1p(-q) * mm1_mean_response(arrival_rate, service_rate);
}

/// Burke-corrected equivalent arrival rate with loss feedback: a stream of
/// external rate λ0 whose packets are retransmitted until delivered
/// (success probability P per attempt) presents rate λ0/P in steady state.
[[nodiscard]] inline double effective_arrival_rate(double external_rate,
                                                   double delivery_prob) {
  NFV_REQUIRE(external_rate >= 0.0);
  NFV_REQUIRE(delivery_prob > 0.0 && delivery_prob <= 1.0);
  return external_rate / delivery_prob;
}

/// The paper's per-instance response form W = 1/(Pμ - λ0) (Eq. 12):
/// equivalent to mm1_mean_response(λ0/P, μ)/... scaled — precisely,
/// 1/(Pμ-λ0) = (1/P)·1/(μ-λ0/P).
[[nodiscard]] inline double instance_response_with_loss(double external_rate,
                                                        double service_rate,
                                                        double delivery_prob) {
  NFV_REQUIRE(delivery_prob > 0.0 && delivery_prob <= 1.0);
  const double denom = delivery_prob * service_rate - external_rate;
  NFV_REQUIRE(denom > 0.0);
  return 1.0 / denom;
}

}  // namespace nfv::queueing
