// Open Jackson network solver (Sec. III-B).
//
// Stations are M/M/1 service instances; packets arrive externally as
// Poisson streams and move between stations according to a routing matrix.
// Kleinrock's independence approximation lets merged flows at a station be
// treated as Poisson with the summed rate, so the stationary distribution
// factorizes (Jackson's theorem) once the traffic equations
//     λ_i = λ0_i + Σ_j λ_j P_{ji}
// are solved.  The solver uses dense Gaussian elimination on (I - Pᵀ),
// which is exact and cheap at the network sizes in the paper (≤ thousands
// of instances).
#pragma once

#include <cstddef>
#include <vector>

#include "nfv/common/error.h"

namespace nfv::queueing {

/// Per-station solution of an open Jackson network.
struct StationMetrics {
  double arrival_rate = 0.0;   ///< solved equivalent total rate λ_i
  double utilization = 0.0;    ///< ρ_i = λ_i/μ_i
  double mean_in_system = 0.0; ///< N_i = ρ/(1-ρ)
  double mean_response = 0.0;  ///< W_i = 1/(μ_i-λ_i)
  bool stable = false;         ///< ρ_i < 1
};

/// Whole-network solution.
struct NetworkSolution {
  std::vector<StationMetrics> stations;
  bool stable = false;          ///< all stations stable
  double total_external_rate = 0.0;
  /// Network mean sojourn time by Little's law: Σ N_i / Σ λ0_i.
  /// Only meaningful when stable.
  double mean_sojourn = 0.0;
};

/// An open Jackson network under construction.
class OpenJacksonNetwork {
 public:
  /// Creates a network of `stations` M/M/1 stations with the given service
  /// rates (all > 0).
  explicit OpenJacksonNetwork(std::vector<double> service_rates);

  [[nodiscard]] std::size_t station_count() const {
    return service_rates_.size();
  }

  /// Sets the external Poisson arrival rate λ0_i at a station.
  void set_external_rate(std::size_t station, double rate);

  /// Sets the routing probability P_{from,to}: after service at `from`, a
  /// packet moves to `to` with this probability (remaining mass exits the
  /// network).  Row sums must stay ≤ 1.
  void set_routing(std::size_t from, std::size_t to, double probability);

  /// Solves the traffic equations and evaluates per-station M/M/1 metrics.
  /// Throws InfeasibleError if (I - Pᵀ) is singular (routing keeps packets
  /// forever, i.e. the network is not open).
  [[nodiscard]] NetworkSolution solve() const;

  [[nodiscard]] double service_rate(std::size_t station) const;
  [[nodiscard]] double external_rate(std::size_t station) const;
  [[nodiscard]] double routing(std::size_t from, std::size_t to) const;

 private:
  std::vector<double> service_rates_;
  std::vector<double> external_rates_;
  std::vector<double> routing_;  // row-major [from * n + to]
};

/// Builds the paper's Fig. 3 scenario as a Jackson network: a chain of
/// stations with service rates `service_rates`, external Poisson rate
/// `external_rate` into the first station, and NACK feedback — after the
/// last station a packet is lost/retransmitted with probability
/// (1 - delivery_prob), re-entering station 0.  The solved per-station rate
/// equals external_rate / delivery_prob (Burke).
[[nodiscard]] OpenJacksonNetwork make_chain_with_loss(
    const std::vector<double>& service_rates, double external_rate,
    double delivery_prob);

}  // namespace nfv::queueing
