// M/M/1/K — the finite-buffer refinement of the paper's per-instance
// model.  The paper treats congestion through the delivery probability P
// and an admission-control rejection rate; with a finite buffer of K
// packets the loss becomes endogenous: arrivals that find the buffer full
// are dropped with the blocking probability π(K).  These closed forms let
// users trade the two views off and give the DES a validation target.
#pragma once

#include <cmath>

#include "nfv/common/error.h"

namespace nfv::queueing {

/// Stationary probability that an M/M/1/K system holds n packets
/// (0 ≤ n ≤ K).  Valid for any ρ ≥ 0 (the finite chain is always ergodic).
[[nodiscard]] inline double mm1k_state_probability(double arrival_rate,
                                                   double service_rate,
                                                   unsigned buffer,
                                                   unsigned n) {
  NFV_REQUIRE(service_rate > 0.0);
  NFV_REQUIRE(arrival_rate >= 0.0);
  NFV_REQUIRE(n <= buffer);
  const double rho = arrival_rate / service_rate;
  if (rho == 1.0) return 1.0 / static_cast<double>(buffer + 1);
  if (rho > 1.0) {
    // Overflow-safe form for ρ > 1 (ρ^{K+1} can exceed double range):
    // π(n) = ((ρ−1)/ρ) · ρ^{n−K} / (1 − ρ^{−(K+1)}).
    const double inv = 1.0 / rho;
    const double num = (rho - 1.0) / rho *
                       std::pow(inv, static_cast<double>(buffer - n));
    const double den = 1.0 - std::pow(inv, static_cast<double>(buffer + 1));
    return num / den;
  }
  const double num = (1.0 - rho) * std::pow(rho, static_cast<double>(n));
  const double den = 1.0 - std::pow(rho, static_cast<double>(buffer + 1));
  return num / den;
}

/// Blocking probability: the PASTA fraction of arrivals dropped because
/// the system already holds K packets.
[[nodiscard]] inline double mm1k_blocking_probability(double arrival_rate,
                                                      double service_rate,
                                                      unsigned buffer) {
  return mm1k_state_probability(arrival_rate, service_rate, buffer, buffer);
}

/// Mean number of packets in the system.
[[nodiscard]] inline double mm1k_mean_in_system(double arrival_rate,
                                                double service_rate,
                                                unsigned buffer) {
  NFV_REQUIRE(service_rate > 0.0);
  NFV_REQUIRE(arrival_rate >= 0.0);
  const double rho = arrival_rate / service_rate;
  const auto k = static_cast<double>(buffer);
  if (rho == 1.0) return k / 2.0;
  if (rho > 1.0) {
    // Overflow-safe: (K+1)·ρ^{K+1}/(1−ρ^{K+1}) = (K+1)/(ρ^{−(K+1)}−1).
    const double inv_pow = std::pow(1.0 / rho, k + 1.0);
    return rho / (1.0 - rho) - (k + 1.0) / (inv_pow - 1.0);
  }
  const double rk1 = std::pow(rho, k + 1.0);
  return rho / (1.0 - rho) - (k + 1.0) * rk1 / (1.0 - rk1);
}

/// Effective (carried) arrival rate λ·(1 − π(K)).
[[nodiscard]] inline double mm1k_throughput(double arrival_rate,
                                            double service_rate,
                                            unsigned buffer) {
  return arrival_rate *
         (1.0 - mm1k_blocking_probability(arrival_rate, service_rate, buffer));
}

/// Mean response time of *accepted* packets, by Little's law over the
/// carried load: W = N / (λ·(1 − π(K))).  Requires a positive carried rate.
[[nodiscard]] inline double mm1k_mean_response(double arrival_rate,
                                               double service_rate,
                                               unsigned buffer) {
  const double carried = mm1k_throughput(arrival_rate, service_rate, buffer);
  NFV_REQUIRE(carried > 0.0);
  return mm1k_mean_in_system(arrival_rate, service_rate, buffer) / carried;
}

/// Smallest buffer K whose blocking probability is ≤ `target` for the
/// given load; caps the search at `max_buffer` and returns it if even that
/// cannot reach the target (ρ ≥ 1 can never go below 1−1/ρ).
[[nodiscard]] inline unsigned mm1k_buffer_for_blocking(double arrival_rate,
                                                       double service_rate,
                                                       double target,
                                                       unsigned max_buffer = 1u << 20) {
  NFV_REQUIRE(target > 0.0 && target < 1.0);
  unsigned lo = 1;
  unsigned hi = max_buffer;
  if (mm1k_blocking_probability(arrival_rate, service_rate, hi) > target) {
    return max_buffer;
  }
  while (lo < hi) {
    const unsigned mid = lo + (hi - lo) / 2;
    if (mm1k_blocking_probability(arrival_rate, service_rate, mid) <= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace nfv::queueing
