// Parameterized topology builders standing in for the SNDlib-derived
// "scale-up network topologies" of Sec. V-A.2 (4–50 compute nodes,
// capacities 1–5000 units, sufficient switch/link capacity).
#pragma once

#include <cstddef>

#include "nfv/common/rng.h"
#include "nfv/topology/topology.h"

namespace nfv::topo {

/// How builders assign A_v to compute nodes.
struct CapacitySpec {
  double min = 5000.0;  ///< inclusive
  double max = 5000.0;  ///< inclusive
  /// Draws a capacity; uniform in [min, max] (degenerate when equal).
  [[nodiscard]] double sample(Rng& rng) const;
};

/// Per-hop latency L assigned to every link (paper Eq. 16 uses one constant
/// L = propagation + transmission delay between two compute nodes).
struct LinkSpec {
  double latency = 1e-4;  ///< 100 µs per hop by default
};

/// N compute nodes on one switch (the paper's placement experiments never
/// exercise multi-hop paths, so a star is the faithful minimal graph).
[[nodiscard]] Topology make_star(std::size_t nodes, const CapacitySpec& cap,
                                 const LinkSpec& link, Rng& rng);

/// Chain of compute nodes through per-pair switches; maximizes hop spread.
[[nodiscard]] Topology make_linear(std::size_t nodes, const CapacitySpec& cap,
                                   const LinkSpec& link, Rng& rng);

/// Two-tier leaf-spine: `leaves` top-of-rack switches each serving
/// `hosts_per_leaf` compute nodes, all leaves connected to all `spines`.
[[nodiscard]] Topology make_leaf_spine(std::size_t spines, std::size_t leaves,
                                       std::size_t hosts_per_leaf,
                                       const CapacitySpec& cap,
                                       const LinkSpec& link, Rng& rng);

/// k-ary fat-tree (k even): (k/2)^2 core switches, k pods of k switches,
/// k^3/4 compute nodes.
[[nodiscard]] Topology make_fat_tree(std::size_t k, const CapacitySpec& cap,
                                     const LinkSpec& link, Rng& rng);

/// Random connected graph over compute nodes (spanning tree + extra edges up
/// to the requested average degree), modelling irregular SNDlib instances.
[[nodiscard]] Topology make_random_connected(std::size_t nodes,
                                             double avg_degree,
                                             const CapacitySpec& cap,
                                             const LinkSpec& link, Rng& rng);

}  // namespace nfv::topo
