// Plain-text topology interchange, in the spirit of the SNDlib instances
// the paper's topologies derive from.  Format (one declaration per line,
// '#' starts a comment):
//
//   node <label> compute <capacity>
//   node <label> switch
//   link <label-a> <label-b> <latency>
//
// Compute nodes receive dense NodeIds in file order.  load_topology()
// freezes the result, so the file must describe a connected graph.
#pragma once

#include <iosfwd>
#include <string>

#include "nfv/topology/topology.h"

namespace nfv::topo {

/// Thrown on malformed input; the message carries the 1-based line number.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a topology from a stream.  Throws ParseError on syntax errors,
/// duplicate or unknown labels, and InfeasibleError if disconnected.
[[nodiscard]] Topology load_topology(std::istream& in);

/// Parses a topology from a string.
[[nodiscard]] Topology load_topology_string(const std::string& text);

/// Serializes a topology to the same format (stable ordering: compute
/// nodes, then switches, then links).  Unlabelled vertices receive
/// synthetic names ("n0", "s3").
void save_topology(const Topology& topology, std::ostream& out);

/// Serializes to a string.
[[nodiscard]] std::string save_topology_string(const Topology& topology);

}  // namespace nfv::topo
