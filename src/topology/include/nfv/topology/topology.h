// Datacenter network model G = (V, E) from Sec. III-A of the paper.
//
// V is the set of compute nodes; switches interconnect them but are not
// placement targets ("switch nodes ... are not included in set V").  The
// paper assumes sufficient switch/link capacity, so the only topological
// quantity its objective uses is the per-hop latency L between compute
// nodes (Eq. 16).  We still model the full graph so that hop distances,
// path latencies and richer cost models are available to extensions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nfv/common/error.h"
#include "nfv/common/ids.h"

namespace nfv::topo {

/// Kind of vertex in the datacenter graph.
enum class VertexKind : std::uint8_t {
  kCompute,  ///< placement target, member of V
  kSwitch,   ///< interconnect only
};

/// A vertex of the graph; compute vertices carry a CPU-bounded capacity A_v
/// (Sec. III-A: CPU is the bottleneck resource; 1 unit = 64-B packets at
/// 10 kpps).
struct Vertex {
  VertexKind kind = VertexKind::kCompute;
  double capacity = 0.0;  ///< A_v in capacity units; 0 for switches
  std::string label;      ///< human-readable name for reports
};

/// An undirected link with a latency equal to the propagation plus
/// transmission delay it contributes (the paper's per-hop constant L is the
/// sum over one inter-node hop).
struct Link {
  std::uint32_t a = 0;  ///< vertex index
  std::uint32_t b = 0;  ///< vertex index
  double latency = 0.0;  ///< seconds (or any consistent time unit)
};

/// Immutable-after-build datacenter graph with BFS-based hop metrics
/// between compute nodes.
class Topology {
 public:
  /// Builder-style construction: add vertices and links, then freeze().
  Topology() = default;

  /// Adds a compute node with capacity A_v; returns its NodeId (dense,
  /// starting at 0, independent of switch indices).
  NodeId add_compute(double capacity, std::string label = {});

  /// Adds a switch vertex; returns its raw vertex index.
  std::uint32_t add_switch(std::string label = {});

  /// Connects two vertices (by raw vertex index) with the given latency.
  LinkId connect(std::uint32_t a, std::uint32_t b, double latency);

  /// Convenience: connect two compute nodes.
  LinkId connect_nodes(NodeId a, NodeId b, double latency);

  /// Validates connectivity and precomputes compute-to-compute hop counts
  /// and shortest path latencies.  Throws InfeasibleError if the graph is
  /// disconnected.  Must be called before the query methods below.
  void freeze();

  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] std::size_t compute_count() const { return compute_ids_.size(); }
  [[nodiscard]] std::size_t switch_count() const;
  [[nodiscard]] std::size_t vertex_count() const { return vertices_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Capacity A_v of a compute node.
  [[nodiscard]] double capacity(NodeId v) const;

  /// Raw vertex index of a compute node.
  [[nodiscard]] std::uint32_t vertex_of(NodeId v) const;

  /// Label of a compute node (may be empty).
  [[nodiscard]] const std::string& label(NodeId v) const;

  /// All compute node ids, dense [0, compute_count()).
  [[nodiscard]] std::span<const NodeId> nodes() const { return compute_ids_; }

  /// Total capacity over all compute nodes.
  [[nodiscard]] double total_capacity() const;

  /// Number of links on the shortest path between two compute nodes
  /// (0 when a == b).  Requires freeze().
  [[nodiscard]] std::uint32_t hop_distance(NodeId a, NodeId b) const;

  /// Sum of link latencies along the minimum-latency path between two
  /// compute nodes (Dijkstra over link latencies).  Requires freeze().
  [[nodiscard]] double path_latency(NodeId a, NodeId b) const;

  /// Mean of link latencies — a natural value for the paper's constant L
  /// when all links are homogeneous.
  [[nodiscard]] double mean_link_latency() const;

  [[nodiscard]] const Vertex& vertex(std::uint32_t index) const;
  [[nodiscard]] const Link& link(LinkId id) const;

 private:
  void require_frozen() const { NFV_REQUIRE(frozen_); }

  std::vector<Vertex> vertices_;
  std::vector<Link> links_;
  std::vector<std::vector<std::uint32_t>> adjacency_;  // vertex -> link ids
  std::vector<NodeId> compute_ids_;
  std::vector<std::uint32_t> compute_vertex_;  // NodeId -> vertex index
  // Dense compute_count x compute_count matrices, row-major.
  std::vector<std::uint32_t> hop_matrix_;
  std::vector<double> latency_matrix_;
  bool frozen_ = false;
};

}  // namespace nfv::topo
