#include "nfv/topology/builders.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace nfv::topo {

double CapacitySpec::sample(Rng& rng) const {
  NFV_REQUIRE(min > 0.0 && max >= min);
  if (min == max) return min;
  return rng.uniform(min, max);
}

Topology make_star(std::size_t nodes, const CapacitySpec& cap,
                   const LinkSpec& link, Rng& rng) {
  NFV_REQUIRE(nodes >= 1);
  Topology t;
  const std::uint32_t hub = t.add_switch("sw0");
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId v = t.add_compute(cap.sample(rng), "node" + std::to_string(i));
    // Each compute-to-compute path crosses two links; split L between them
    // so one inter-node hop costs exactly link.latency in path_latency().
    t.connect(t.vertex_of(v), hub, link.latency / 2.0);
  }
  t.freeze();
  return t;
}

Topology make_linear(std::size_t nodes, const CapacitySpec& cap,
                     const LinkSpec& link, Rng& rng) {
  NFV_REQUIRE(nodes >= 1);
  Topology t;
  std::vector<NodeId> ids;
  ids.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    ids.push_back(t.add_compute(cap.sample(rng), "node" + std::to_string(i)));
  }
  for (std::size_t i = 0; i + 1 < nodes; ++i) {
    t.connect_nodes(ids[i], ids[i + 1], link.latency);
  }
  t.freeze();
  return t;
}

Topology make_leaf_spine(std::size_t spines, std::size_t leaves,
                         std::size_t hosts_per_leaf, const CapacitySpec& cap,
                         const LinkSpec& link, Rng& rng) {
  NFV_REQUIRE(spines >= 1 && leaves >= 1 && hosts_per_leaf >= 1);
  Topology t;
  std::vector<std::uint32_t> spine_idx;
  spine_idx.reserve(spines);
  for (std::size_t s = 0; s < spines; ++s) {
    spine_idx.push_back(t.add_switch("spine" + std::to_string(s)));
  }
  for (std::size_t l = 0; l < leaves; ++l) {
    const std::uint32_t leaf = t.add_switch("leaf" + std::to_string(l));
    for (const std::uint32_t spine : spine_idx) {
      t.connect(leaf, spine, link.latency);
    }
    for (std::size_t h = 0; h < hosts_per_leaf; ++h) {
      const NodeId v = t.add_compute(
          cap.sample(rng),
          "host" + std::to_string(l) + "." + std::to_string(h));
      t.connect(t.vertex_of(v), leaf, link.latency);
    }
  }
  t.freeze();
  return t;
}

Topology make_fat_tree(std::size_t k, const CapacitySpec& cap,
                       const LinkSpec& link, Rng& rng) {
  NFV_REQUIRE(k >= 2 && k % 2 == 0);
  Topology t;
  const std::size_t half = k / 2;
  // Core layer: (k/2)^2 switches arranged in half groups of half.
  std::vector<std::uint32_t> core(half * half);
  for (std::size_t i = 0; i < core.size(); ++i) {
    core[i] = t.add_switch("core" + std::to_string(i));
  }
  for (std::size_t pod = 0; pod < k; ++pod) {
    std::vector<std::uint32_t> aggregation(half);
    std::vector<std::uint32_t> edge(half);
    for (std::size_t a = 0; a < half; ++a) {
      aggregation[a] = t.add_switch("agg" + std::to_string(pod) + "." +
                                    std::to_string(a));
      // Aggregation switch a connects to core group a.
      for (std::size_t c = 0; c < half; ++c) {
        t.connect(aggregation[a], core[a * half + c], link.latency);
      }
    }
    for (std::size_t e = 0; e < half; ++e) {
      edge[e] = t.add_switch("edge" + std::to_string(pod) + "." +
                             std::to_string(e));
      for (const std::uint32_t agg : aggregation) {
        t.connect(edge[e], agg, link.latency);
      }
      for (std::size_t h = 0; h < half; ++h) {
        const NodeId v = t.add_compute(
            cap.sample(rng), "host" + std::to_string(pod) + "." +
                                 std::to_string(e) + "." + std::to_string(h));
        t.connect(t.vertex_of(v), edge[e], link.latency);
      }
    }
  }
  t.freeze();
  return t;
}

Topology make_random_connected(std::size_t nodes, double avg_degree,
                               const CapacitySpec& cap, const LinkSpec& link,
                               Rng& rng) {
  NFV_REQUIRE(nodes >= 1);
  NFV_REQUIRE(avg_degree >= 0.0);
  Topology t;
  std::vector<NodeId> ids;
  ids.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    ids.push_back(t.add_compute(cap.sample(rng), "node" + std::to_string(i)));
  }
  // Random spanning tree (each new node attaches to a uniform earlier one)
  // guarantees connectivity.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 1; i < nodes; ++i) {
    const auto j = static_cast<std::size_t>(rng.below(i));
    edges.emplace_back(j, i);
    t.connect_nodes(ids[j], ids[i], link.latency);
  }
  // Extra edges until the average degree target is met (or the graph is
  // complete).
  const std::size_t target_edges = std::min(
      nodes * (nodes - 1) / 2,
      static_cast<std::size_t>(avg_degree * static_cast<double>(nodes) / 2.0));
  auto has_edge = [&edges](std::size_t a, std::size_t b) {
    if (a > b) std::swap(a, b);
    return std::find(edges.begin(), edges.end(), std::make_pair(a, b)) !=
           edges.end();
  };
  std::size_t attempts = 0;
  while (edges.size() < target_edges && attempts < 100 * nodes) {
    ++attempts;
    auto a = static_cast<std::size_t>(rng.below(nodes));
    auto b = static_cast<std::size_t>(rng.below(nodes));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (has_edge(a, b)) continue;
    edges.emplace_back(a, b);
    t.connect_nodes(ids[a], ids[b], link.latency);
  }
  t.freeze();
  return t;
}

}  // namespace nfv::topo
