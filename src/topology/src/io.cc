#include "nfv/topology/io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace nfv::topo {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw ParseError("topology parse error at line " + std::to_string(line) +
                   ": " + message);
}

double parse_double(std::size_t line, const std::string& token,
                    const char* what) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty()) {
    fail(line, std::string("bad ") + what + " '" + token + "'");
  }
  return value;
}

}  // namespace

Topology load_topology(std::istream& in) {
  Topology topology;
  std::unordered_map<std::string, std::uint32_t> vertex_of;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank / comment-only line
    if (keyword == "node") {
      std::string label;
      std::string kind;
      if (!(tokens >> label >> kind)) {
        fail(line_number, "expected 'node <label> compute|switch ...'");
      }
      if (vertex_of.contains(label)) {
        fail(line_number, "duplicate node label '" + label + "'");
      }
      if (kind == "compute") {
        std::string capacity_token;
        if (!(tokens >> capacity_token)) {
          fail(line_number, "compute node needs a capacity");
        }
        const double capacity =
            parse_double(line_number, capacity_token, "capacity");
        if (capacity <= 0.0) fail(line_number, "capacity must be positive");
        const NodeId id = topology.add_compute(capacity, label);
        vertex_of[label] = topology.vertex_of(id);
      } else if (kind == "switch") {
        vertex_of[label] = topology.add_switch(label);
      } else {
        fail(line_number, "unknown node kind '" + kind + "'");
      }
    } else if (keyword == "link") {
      std::string a;
      std::string b;
      std::string latency_token;
      if (!(tokens >> a >> b >> latency_token)) {
        fail(line_number, "expected 'link <a> <b> <latency>'");
      }
      const auto ia = vertex_of.find(a);
      if (ia == vertex_of.end()) {
        fail(line_number, "unknown node '" + a + "'");
      }
      const auto ib = vertex_of.find(b);
      if (ib == vertex_of.end()) {
        fail(line_number, "unknown node '" + b + "'");
      }
      const double latency =
          parse_double(line_number, latency_token, "latency");
      if (latency < 0.0) fail(line_number, "latency must be non-negative");
      if (ia->second == ib->second) fail(line_number, "self-loop link");
      topology.connect(ia->second, ib->second, latency);
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
    std::string extra;
    if (tokens >> extra) {
      fail(line_number, "trailing token '" + extra + "'");
    }
  }
  if (topology.compute_count() == 0) {
    throw ParseError("topology has no compute nodes");
  }
  topology.freeze();
  return topology;
}

Topology load_topology_string(const std::string& text) {
  std::istringstream in(text);
  return load_topology(in);
}

void save_topology(const Topology& topology, std::ostream& out) {
  // Stable synthetic names for unlabelled vertices.
  std::vector<std::string> name(topology.vertex_count());
  std::size_t switch_index = 0;
  for (std::uint32_t v = 0; v < topology.vertex_count(); ++v) {
    const Vertex& vertex = topology.vertex(v);
    if (!vertex.label.empty()) {
      name[v] = vertex.label;
    } else if (vertex.kind == VertexKind::kSwitch) {
      name[v] = "s" + std::to_string(switch_index);
    }
    if (vertex.kind == VertexKind::kSwitch) ++switch_index;
  }
  for (const NodeId id : topology.nodes()) {
    const std::uint32_t v = topology.vertex_of(id);
    if (name[v].empty()) name[v] = "n" + std::to_string(id.value());
    out << "node " << name[v] << " compute " << topology.capacity(id) << '\n';
  }
  for (std::uint32_t v = 0; v < topology.vertex_count(); ++v) {
    if (topology.vertex(v).kind == VertexKind::kSwitch) {
      out << "node " << name[v] << " switch\n";
    }
  }
  for (std::uint32_t l = 0; l < topology.link_count(); ++l) {
    const Link& link = topology.link(LinkId{l});
    out << "link " << name[link.a] << ' ' << name[link.b] << ' '
        << link.latency << '\n';
  }
}

std::string save_topology_string(const Topology& topology) {
  std::ostringstream out;
  save_topology(topology, out);
  return out.str();
}

}  // namespace nfv::topo
