#include "nfv/topology/topology.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace nfv::topo {

NodeId Topology::add_compute(double capacity, std::string label) {
  NFV_REQUIRE(!frozen_);
  NFV_REQUIRE(capacity > 0.0);
  const auto vertex_index = static_cast<std::uint32_t>(vertices_.size());
  vertices_.push_back(Vertex{VertexKind::kCompute, capacity, std::move(label)});
  adjacency_.emplace_back();
  const NodeId id{static_cast<std::uint32_t>(compute_ids_.size())};
  compute_ids_.push_back(id);
  compute_vertex_.push_back(vertex_index);
  return id;
}

std::uint32_t Topology::add_switch(std::string label) {
  NFV_REQUIRE(!frozen_);
  const auto vertex_index = static_cast<std::uint32_t>(vertices_.size());
  vertices_.push_back(Vertex{VertexKind::kSwitch, 0.0, std::move(label)});
  adjacency_.emplace_back();
  return vertex_index;
}

LinkId Topology::connect(std::uint32_t a, std::uint32_t b, double latency) {
  NFV_REQUIRE(!frozen_);
  NFV_REQUIRE(a < vertices_.size() && b < vertices_.size());
  NFV_REQUIRE(a != b);
  NFV_REQUIRE(latency >= 0.0);
  const auto link_index = static_cast<std::uint32_t>(links_.size());
  links_.push_back(Link{a, b, latency});
  adjacency_[a].push_back(link_index);
  adjacency_[b].push_back(link_index);
  return LinkId{link_index};
}

LinkId Topology::connect_nodes(NodeId a, NodeId b, double latency) {
  NFV_REQUIRE(a.index() < compute_vertex_.size());
  NFV_REQUIRE(b.index() < compute_vertex_.size());
  return connect(compute_vertex_[a.index()], compute_vertex_[b.index()],
                 latency);
}

std::size_t Topology::switch_count() const {
  return vertices_.size() - compute_ids_.size();
}

double Topology::capacity(NodeId v) const {
  NFV_REQUIRE(v.index() < compute_vertex_.size());
  return vertices_[compute_vertex_[v.index()]].capacity;
}

std::uint32_t Topology::vertex_of(NodeId v) const {
  NFV_REQUIRE(v.index() < compute_vertex_.size());
  return compute_vertex_[v.index()];
}

const std::string& Topology::label(NodeId v) const {
  NFV_REQUIRE(v.index() < compute_vertex_.size());
  return vertices_[compute_vertex_[v.index()]].label;
}

double Topology::total_capacity() const {
  double total = 0.0;
  for (const auto v : compute_ids_) total += capacity(v);
  return total;
}

const Vertex& Topology::vertex(std::uint32_t index) const {
  NFV_REQUIRE(index < vertices_.size());
  return vertices_[index];
}

const Link& Topology::link(LinkId id) const {
  NFV_REQUIRE(id.index() < links_.size());
  return links_[id.index()];
}

void Topology::freeze() {
  NFV_REQUIRE(!frozen_);
  NFV_REQUIRE(!compute_ids_.empty());
  const std::size_t n = compute_ids_.size();
  hop_matrix_.assign(n * n, std::numeric_limits<std::uint32_t>::max());
  latency_matrix_.assign(n * n, std::numeric_limits<double>::infinity());

  // One BFS (hops) + one Dijkstra (latency) per compute node.  Sizes here
  // are tens of nodes, so the O(|V|·|E| log |V|) total is negligible.
  std::vector<std::uint32_t> hop(vertices_.size());
  std::vector<double> dist(vertices_.size());
  for (std::size_t src = 0; src < n; ++src) {
    const std::uint32_t origin = compute_vertex_[src];

    std::fill(hop.begin(), hop.end(), std::numeric_limits<std::uint32_t>::max());
    hop[origin] = 0;
    std::queue<std::uint32_t> bfs;
    bfs.push(origin);
    while (!bfs.empty()) {
      const std::uint32_t u = bfs.front();
      bfs.pop();
      for (const std::uint32_t link_index : adjacency_[u]) {
        const Link& l = links_[link_index];
        const std::uint32_t w = (l.a == u) ? l.b : l.a;
        if (hop[w] == std::numeric_limits<std::uint32_t>::max()) {
          hop[w] = hop[u] + 1;
          bfs.push(w);
        }
      }
    }

    std::fill(dist.begin(), dist.end(), std::numeric_limits<double>::infinity());
    dist[origin] = 0.0;
    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, origin);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (const std::uint32_t link_index : adjacency_[u]) {
        const Link& l = links_[link_index];
        const std::uint32_t w = (l.a == u) ? l.b : l.a;
        const double nd = d + l.latency;
        if (nd < dist[w]) {
          dist[w] = nd;
          pq.emplace(nd, w);
        }
      }
    }

    for (std::size_t dst = 0; dst < n; ++dst) {
      const std::uint32_t target = compute_vertex_[dst];
      if (hop[target] == std::numeric_limits<std::uint32_t>::max()) {
        throw InfeasibleError("topology is disconnected: compute node " +
                              std::to_string(dst) +
                              " unreachable from node " + std::to_string(src));
      }
      hop_matrix_[src * n + dst] = hop[target];
      latency_matrix_[src * n + dst] = dist[target];
    }
  }
  frozen_ = true;
}

std::uint32_t Topology::hop_distance(NodeId a, NodeId b) const {
  require_frozen();
  NFV_REQUIRE(a.index() < compute_ids_.size());
  NFV_REQUIRE(b.index() < compute_ids_.size());
  return hop_matrix_[a.index() * compute_ids_.size() + b.index()];
}

double Topology::path_latency(NodeId a, NodeId b) const {
  require_frozen();
  NFV_REQUIRE(a.index() < compute_ids_.size());
  NFV_REQUIRE(b.index() < compute_ids_.size());
  return latency_matrix_[a.index() * compute_ids_.size() + b.index()];
}

double Topology::mean_link_latency() const {
  if (links_.empty()) return 0.0;
  double total = 0.0;
  for (const Link& l : links_) total += l.latency;
  return total / static_cast<double>(links_.size());
}

}  // namespace nfv::topo
