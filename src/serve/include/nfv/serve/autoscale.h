// ScalingController (DESIGN.md §16): the deterministic per-VNF instance
// sizing loop of the serving engine.  The engine feeds it one observation
// vector per decision window (event-time boundaries of
// AutoscaleConfig::scale_interval, exactly like the timeline windows) and
// applies the returned deltas through the existing scale-out /
// drain-then-retire paths.
//
// The controller owns only the sizing decision: EWMA forecaster state,
// per-VNF cooldown clocks, and the flap/blocked counters.  The engine
// owns the actuation (node picks, draining migrations, retirement) so the
// decisions compose with churn evacuation and the degradation ladder.
//
// Everything here is a pure function of the replayed event prefix — no
// RNG, no wall clock — and the whole state is checkpointed verbatim, so
// a resumed run decides bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "nfv/serve/policy.h"

namespace nfv::serve {

/// Controller-side aggregates for reports and the bench.
struct AutoscaleTotals {
  std::uint64_t decisions = 0;         ///< windows evaluated
  std::uint64_t flaps = 0;             ///< direction reversals inside the
                                       ///< flap guard (2 × cooldown windows)
  std::uint64_t blocked_cooldown = 0;  ///< deltas suppressed by cooldown
};

class ScalingController {
 public:
  ScalingController(AutoscaleConfig config, std::size_t vnf_count);

  [[nodiscard]] bool enabled() const { return config_.enabled(); }
  [[nodiscard]] const AutoscaleConfig& config() const { return config_; }

  /// Evaluates one decision window.  `window` must be the boundary index
  /// (strictly increasing across calls); `observations` is indexed by VNF.
  /// Returns per-VNF instance-count deltas: cooldown-gated, clamped to
  /// ±max_step, flap-counted.  The reference stays valid until the next
  /// call.
  [[nodiscard]] const std::vector<std::int32_t>& on_window(
      std::uint64_t window, const std::vector<VnfObservation>& observations);

  [[nodiscard]] const AutoscaleTotals& totals() const { return totals_; }
  [[nodiscard]] const std::vector<VnfPolicyState>& vnf_states() const {
    return states_;
  }

  /// Checkpoint restore: the serializer writes states()/totals() verbatim
  /// and puts them back here (checkpoint.cc).
  void restore(std::vector<VnfPolicyState> states, AutoscaleTotals totals);

 private:
  AutoscaleConfig config_;
  std::vector<VnfPolicyState> states_;
  AutoscaleTotals totals_;
  std::vector<std::int32_t> deltas_;  ///< reused per-window result buffer
};

}  // namespace nfv::serve
