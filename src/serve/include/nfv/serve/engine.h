// Online serving engine: a long-running controller that holds live
// placement + assignment state and evolves it one StreamEvent at a time
// (DESIGN.md §11).  Where the offline pipeline (core::JointOptimizer) sees
// the whole request set up front, the engine sees REQ_ARRIVE / REQ_DEPART /
// RATE_CHANGE events and must keep every service instance stable without
// mass reshuffling.
//
// Per event it applies three policies:
//
//  * Admission control (M/M/1 stability): request r is admitted at VNF f
//    only on an instance whose effective load stays within
//    (1 − headroom) · μ_f after adding λ_r / P_r — with uniform delivery
//    probability this is the paper's raw-rate form Σλ ≤ (1−h)·P·μ_f.  When
//    no instance of some hop admits it and no scale-out is possible, the
//    request is queued (bounded FIFO) or rejected.
//
//  * Incremental rebalancing: arrivals go to the least-loaded feasible
//    instance (greedy); when a VNF's relative load imbalance
//    (max − min) / mean exceeds `rebalance_threshold`, its live requests
//    are re-solved with RCKK and at most `migration_budget` request moves
//    are applied toward the fresh optimum (sched::plan_bounded_migration).
//
//  * Scale out / in: when every instance of a hop is saturated, a new
//    service instance is opened via an incremental best-fit node pick
//    (BFDSU's used-nodes-first rule, made deterministic: smallest feasible
//    residual wins, lower node id on ties); instances whose last request
//    departs are retired and their capacity reclaimed.
//
//  * Fault tolerance (DESIGN.md §13): NODE_DOWN closes the node's
//    instances and evacuates their requests through a deterministic ladder
//    (re-place on survivors → scale out a replacement → park with
//    event-indexed backoff → shed with fault accounting); NODE_UP returns
//    the node to the best-fit candidate set.  Sustained admission pressure
//    flips the engine into a degraded mode that tightens headroom and
//    sheds lowest-rate requests first.  Checkpoint/resume (checkpoint.h)
//    snapshots the full state so a killed run continues bit-identically.
//
// The engine is strictly deterministic — no RNG, no wall clock, and the
// only parallel site (predicted-latency evaluation) uses exec::parallel_map
// with a serial index-order fold — so replaying a trace yields a
// bit-identical state and report for any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <optional>
#include <string_view>
#include <vector>

#include "nfv/common/histogram.h"
#include "nfv/obs/lifecycle.h"
#include "nfv/serve/autoscale.h"
#include "nfv/obs/report.h"
#include "nfv/obs/timeline.h"
#include "nfv/topology/topology.h"
#include "nfv/workload/event_stream.h"
#include "nfv/workload/vnf.h"

namespace nfv::workload {
class BinaryTraceDecoder;
}  // namespace nfv::workload

namespace nfv::serve {

/// Serving-policy knobs.
struct ServeConfig {
  /// Stability margin: an instance admits load only up to
  /// (1 − headroom) · μ_f of effective rate.
  double headroom = 0.10;
  /// Relative imbalance (max−min)/mean that triggers a bounded RCKK
  /// rebalance of one VNF's live requests.
  double rebalance_threshold = 0.25;
  /// K: max request moves per rebalance pass.
  std::uint32_t migration_budget = 4;
  /// Waiting room for requests no instance admits; 0 rejects immediately.
  std::size_t queue_capacity = 64;
  /// Per-hop link latency L of Eq. 16; defaults to the topology's mean.
  std::optional<double> link_latency;

  /// Sustained-overload degradation (DESIGN.md §13): when at least
  /// `overload_threshold` of the last `overload_window` events saw
  /// admission pressure (a queued/rejected arrival, or a non-empty
  /// waiting/retry queue), the engine enters degraded mode — headroom
  /// tightens to `degraded_headroom` and the lowest-rate requests on
  /// over-limit instances are shed first.  It exits (and relaxes the
  /// headroom) once pressure falls to half the threshold.  A window of 0
  /// disables degradation.
  std::size_t overload_window = 32;
  double overload_threshold = 0.75;
  /// Headroom while degraded; must be in [headroom, 1).
  double degraded_headroom = 0.25;

  /// Fault-evacuation retry ladder (DESIGN.md §13): a request whose node
  /// died and that no surviving instance admits is parked and retried with
  /// a deterministic event-indexed backoff of `retry_backoff_base << k`
  /// events after its k-th failed attempt; after `retry_budget` failed
  /// retries it is shed with fault accounting.
  std::uint64_t retry_backoff_base = 4;
  std::uint32_t retry_budget = 3;

  /// Streaming telemetry (DESIGN.md §14).  When > 0, the engine closes one
  /// timeline window every `snapshot_every` trace-time units and emits a
  /// "nfvpr.timeline/1" record per window — driven purely by event time,
  /// so the stream is byte-identical for any --threads/--shards and across
  /// checkpoint/resume.  0 disables the timeline.
  double snapshot_every = 0.0;
  /// Sliding span (in windows) of the admission-wait percentile histogram.
  std::size_t timeline_span = 8;
  /// Record the per-request lifecycle stream (admit/place/migrate/...).
  bool lifecycle = false;

  /// Elastic autoscaling (DESIGN.md §16): when `autoscale.policy` is not
  /// kOff the engine evaluates the ScalingController at every
  /// `autoscale.scale_interval` trace-time boundary and applies its
  /// per-VNF deltas — scale-out via the best-fit node pick, scale-in via
  /// drain-then-retire with at most `migration_budget` member moves per
  /// instance per window.  Off by default; an off engine is byte-identical
  /// (state, checkpoints, telemetry) to one built before the subsystem
  /// existed.
  AutoscaleConfig autoscale;

  void validate() const;
};

/// What the engine decided for one event.
enum class Decision : std::uint8_t {
  kAdmitted,     ///< arrival assigned to instances on every hop
  kQueued,       ///< arrival parked in the FIFO waiting room
  kRejected,     ///< arrival dropped (queue full)
  kDeparted,     ///< live or queued request removed
  kRateChanged,  ///< live/queued request's λ updated (still stable)
  kShed,         ///< rate change made the request unservable — dropped
  kNodeDown,     ///< a compute node failed; instances closed, evacuation ran
  kNodeUp,       ///< a compute node recovered and rejoined the candidate set
};

[[nodiscard]] std::string_view to_string(Decision decision);

/// Per-event outcome record.
struct EventOutcome {
  std::uint64_t index = 0;  ///< position in the trace
  double time = 0.0;
  workload::StreamEventKind kind = workload::StreamEventKind::kArrive;
  std::uint32_t request = 0;
  Decision decision = Decision::kAdmitted;
  std::uint32_t migrations = 0;          ///< bounded-rebalance moves
  std::uint32_t scale_outs = 0;          ///< instances opened
  std::uint32_t scale_ins = 0;           ///< instances retired
  std::uint32_t admitted_from_queue = 0; ///< queue drains this event
  std::uint32_t evacuated = 0;           ///< live requests moved off a dead node
  std::uint32_t evacuation_migrations = 0;  ///< hops re-placed while evacuating
  std::uint32_t parked = 0;              ///< requests parked in the retry queue
  std::uint32_t retry_admitted = 0;      ///< retry-queue re-admissions
  std::uint32_t shed_fault = 0;          ///< sheds charged to node faults
  std::uint32_t shed_overload = 0;       ///< sheds charged to degradation
  bool degraded = false;                 ///< engine degraded after this event
  double mean_predicted_latency = 0.0;   ///< Eq. 16 mean over live requests
  double p99_predicted_latency = 0.0;
};

/// Aggregate counters over the whole replay.
struct ServeSummary {
  std::uint64_t events = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;             ///< admitted on arrival
  std::uint64_t admitted_from_queue = 0;  ///< admitted after waiting
  std::uint64_t rejected = 0;
  std::uint64_t departures = 0;
  std::uint64_t rate_changes = 0;
  std::uint64_t shed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t max_migrations_per_rebalance = 0;  ///< never exceeds K
  std::uint64_t scale_outs = 0;
  std::uint64_t scale_ins = 0;
  std::uint64_t live_requests = 0;    ///< at end of replay
  std::uint64_t queued_requests = 0;  ///< still waiting at end
  std::uint64_t retry_queued = 0;     ///< parked in the retry queue at end
  std::uint64_t active_instances = 0;
  std::uint64_t nodes_in_service = 0;
  // Fault tolerance and degradation (DESIGN.md §13).
  std::uint64_t node_downs = 0;
  std::uint64_t node_ups = 0;
  std::uint64_t instances_closed = 0;  ///< closed by node failures
  std::uint64_t evacuated_requests = 0;
  std::uint64_t evacuation_migrations = 0;
  std::uint64_t parked = 0;          ///< entries parked in the retry queue
  std::uint64_t retry_admitted = 0;  ///< re-admitted from the retry queue
  std::uint64_t shed_fault = 0;      ///< shed by the fault ladder
  std::uint64_t shed_overload = 0;   ///< shed by sustained-overload mode
  std::uint64_t degradations = 0;    ///< times degraded mode was entered
  std::uint64_t degraded_events = 0; ///< events spent degraded
  // Elastic autoscaling (DESIGN.md §16); all zero when the policy is off.
  std::uint64_t autoscale_decisions = 0;   ///< decision windows evaluated
  std::uint64_t autoscale_scale_outs = 0;  ///< instances the controller opened
  std::uint64_t autoscale_scale_ins = 0;   ///< drains the controller started
  std::uint64_t autoscale_flaps = 0;       ///< direction reversals in-guard
  std::uint64_t autoscale_blocked_cooldown = 0;  ///< deltas cooled off
  std::uint64_t draining_instances = 0;    ///< still draining at end
  /// ∫ active-instance count dt — the capacity bill the bench compares
  /// against the offline oracle (0.0 when autoscaling is off).
  double instance_seconds = 0.0;
  /// Time-weighted fraction of offered rate actually served:
  /// ∫Σλ_live dt / ∫Σλ_offered dt (1.0 when no time has passed).
  double availability = 1.0;
  double admission_rate = 1.0;  ///< (admitted + from queue) / arrivals
  double mean_predicted_latency = 0.0;  ///< over live requests, Eq. 16
  double p99_predicted_latency = 0.0;
  std::uint64_t work = 0;  ///< deterministic effort counter
};

class ServeEngine {
 public:
  /// `vnfs` defines the VNF universe (demand D_f and rate μ_f per
  /// instance); `Vnf::instance_count` is ignored — the engine scales the
  /// instance set itself.  The topology must be frozen.
  ServeEngine(topo::Topology topology, std::vector<workload::Vnf> vnfs,
              ServeConfig config = {});

  /// Applies one event.  Events must be valid against the live state (the
  /// trace loader enforces this); violations throw TraceParseError, and a
  /// time going backwards throws too.
  EventOutcome on_event(const workload::StreamEvent& event);

  /// Replays a whole trace; returns one outcome per event.
  std::vector<EventOutcome> replay(const workload::EventTrace& trace);

  /// Applies `count` events from contiguous storage as one micro-batch.
  /// Decisions, state, and the log are bit-identical to calling on_event
  /// in a loop — only the bookkeeping is amortized (log growth reserved
  /// once per batch, no per-event outcome copy back to the caller).
  void apply_batch(const workload::StreamEvent* events, std::size_t count);

  /// Streams up to `limit` events out of a binary trace decoder in
  /// micro-batches of `batch_size`, reusing one decode buffer so the
  /// steady-state loop performs no heap allocation, and returns the number
  /// applied (less than `limit` only when the decoder ran dry).  The
  /// resulting state is bit-identical to on_event over the same events for
  /// any batch size; callers chasing a checkpoint cadence pass the
  /// distance to the next checkpoint as `limit`.
  std::uint64_t replay_binary(
      workload::BinaryTraceDecoder& decoder, std::size_t batch_size = 256,
      std::uint64_t limit = ~std::uint64_t{0});

  /// All outcomes so far, in event order.
  [[nodiscard]] const std::vector<EventOutcome>& log() const { return log_; }

  [[nodiscard]] ServeSummary summary() const;

  /// Comparable value snapshot of the whole live state — two engines that
  /// replayed the same prefix compare equal.
  struct InstanceState {
    std::uint32_t vnf = 0;
    std::uint32_t node = 0;
    std::uint64_t seq = 0;  ///< creation sequence (stable identity)
    double raw_load = 0.0;
    double effective_load = 0.0;
    std::vector<std::uint32_t> requests;  ///< sorted ids

    friend bool operator==(const InstanceState&,
                           const InstanceState&) = default;
  };
  struct Snapshot {
    std::vector<InstanceState> instances;  ///< active, by creation seq
    std::vector<std::uint32_t> queued;     ///< FIFO order
    std::vector<std::uint32_t> live;       ///< sorted ids
    std::vector<std::uint32_t> retrying;   ///< retry queue, FIFO order
    std::vector<std::uint32_t> nodes_down; ///< ascending node ids
    bool degraded = false;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Predicted Eq. 16 latency per live request (ascending request id):
  /// Σ_chain W(f, k) + (distinct nodes − 1) · L.
  [[nodiscard]] std::vector<double> predicted_latencies() const;

  /// The timeline stream so far (requires snapshot_every > 0): every
  /// closed window plus, when `include_partial`, one record for the
  /// in-progress window ending at the last event time.  Pure function of
  /// the replayed prefix — byte-identical across resume splits.
  [[nodiscard]] obs::TimelineDoc timeline_doc(bool include_partial = true)
      const;

  /// Per-request lifecycle events in recording order (empty unless
  /// config().lifecycle).
  [[nodiscard]] const std::vector<obs::LifecycleEvent>& lifecycle_log()
      const {
    return lifecycle_;
  }

  /// The live request set as an offline Workload — VNFs with live traffic
  /// keep their definition with M_f = current active instance count, and
  /// requests are re-densified in ascending trace-id order.  Feeding this
  /// to core::JointOptimizer gives the "repeated full offline re-solve"
  /// comparator of bench_online.
  [[nodiscard]] workload::Workload live_workload() const;

  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] const ServeConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t work() const { return work_; }

 private:
  struct Instance {
    std::uint32_t vnf = 0;
    std::uint32_t node = 0;
    std::uint64_t seq = 0;
    double raw_load = 0.0;
    double effective_load = 0.0;
    std::vector<std::uint32_t> members;  ///< sorted request ids
    bool retired = false;
    /// Scale-in in progress (autoscale only): excluded from every
    /// placement/relocation candidate scan; retired once the last member
    /// migrates off.  Always false when autoscaling is off.
    bool draining = false;
  };
  struct LiveRequest {
    double rate = 0.0;
    double prob = 1.0;
    std::vector<std::uint32_t> chain;
    std::vector<std::uint32_t> hop_instance;  ///< instance slot per hop
  };
  struct PendingRequest {
    std::uint32_t id = 0;
    double rate = 0.0;
    double prob = 1.0;
    std::vector<std::uint32_t> chain;
  };
  /// A fault-evacuated request waiting for capacity to return.
  struct RetryRequest {
    PendingRequest request;
    std::uint64_t not_before = 0;  ///< earliest event index to retry at
    std::uint32_t attempts = 0;    ///< failed retries so far
  };
  /// A tentative placement: per hop either an existing instance slot or a
  /// planned new instance on `node`.
  struct HopPlan {
    bool scale_out = false;
    std::uint32_t slot = 0;  ///< existing instance (when !scale_out)
    std::uint32_t node = 0;  ///< planned node (when scale_out)
  };

  [[nodiscard]] double limit(std::uint32_t vnf) const;
  /// Best-fit node for one new instance of demand `demand`: used nodes
  /// first, smallest feasible residual, lower id on ties.  The planned_*
  /// overlays account for instances this plan already intends to open.
  [[nodiscard]] std::optional<std::uint32_t> pick_node(
      double demand, const std::vector<double>& planned_use,
      const std::vector<std::uint32_t>& planned_count);
  [[nodiscard]] std::optional<std::vector<HopPlan>> plan_placement(
      double rate, double prob, const std::vector<std::uint32_t>& chain);
  std::uint32_t open_instance(std::uint32_t vnf, std::uint32_t node);
  void retire_instance(std::uint32_t slot);
  void add_to_instance(std::uint32_t slot, std::uint32_t id, double rate,
                       double prob);
  /// Returns true when the instance emptied and was retired.
  bool remove_from_instance(std::uint32_t slot, std::uint32_t id, double rate,
                            double prob);
  /// Moves one hop of an over-limit live request to a feasible instance
  /// (existing or fresh); returns false when nowhere admits it.
  bool relocate_hop(std::uint32_t id, std::size_t hop, EventOutcome& outcome);
  /// Commits a plan: opens planned instances and assigns the request.
  void commit_placement(std::uint32_t id, double rate, double prob,
                        std::vector<std::uint32_t> chain,
                        const std::vector<HopPlan>& plan,
                        EventOutcome& outcome);
  void remove_live(std::uint32_t id, EventOutcome& outcome);
  /// Integrates served/offered rate over [last_time_, now) for the
  /// availability metric; must run before the event mutates state.
  void accumulate_availability(double now);
  /// NODE_DOWN: closes the node's instances and runs the evacuation ladder
  /// over every affected request (DESIGN.md §13).
  void handle_node_down(const workload::StreamEvent& event,
                        EventOutcome& outcome);
  void handle_node_up(const workload::StreamEvent& event,
                      EventOutcome& outcome);
  /// Re-places every hop of `id` whose instance died; false when some hop
  /// fits nowhere (the caller parks or sheds the request).
  bool evacuate_request(std::uint32_t id, EventOutcome& outcome);
  /// Retries due retry-queue entries (not_before <= current event index),
  /// doubling the backoff per failure and shedding past the budget.
  void drain_retry_queue(EventOutcome& outcome,
                         std::vector<std::uint32_t>& touched_vnfs);
  /// Pushes this event's pressure bit and enters/exits degraded mode.
  void update_degradation(EventOutcome& outcome);
  /// While degraded: sheds the lowest-rate request (lowest id on ties)
  /// sitting on any over-limit instance, until none is over-limit.
  void shed_overloaded(EventOutcome& outcome);
  /// Bounded RCKK rebalance of one VNF; returns the move count.
  std::uint32_t rebalance(std::uint32_t vnf, EventOutcome& outcome);
  void rebalance_chain(const std::vector<std::uint32_t>& chain,
                       EventOutcome& outcome);
  void drain_queue(EventOutcome& outcome,
                   std::vector<std::uint32_t>& touched_vnfs);
  void finish_outcome(EventOutcome& outcome);
  /// on_event minus the outcome copy-out: appends to log_ and returns
  /// nothing.  The shared body of on_event and apply_batch.
  void process_event(const workload::StreamEvent& event);

  // --- elastic autoscaling (DESIGN.md §16) ---
  [[nodiscard]] bool autoscale_on() const {
    return config_.autoscale.enabled();
  }
  /// Crosses every scale_interval boundary up to `now`, evaluating the
  /// controller once per boundary (event-time driven, like the timeline).
  void run_autoscale(double now, EventOutcome& outcome);
  /// One controller evaluation: observe → decide → actuate → drain pass.
  void autoscale_decide(EventOutcome& outcome);
  /// Per-VNF offered rate / capacity / pressure at this boundary.
  void autoscale_observe(std::vector<VnfObservation>& out) const;
  /// Opens up to `count` instances of `vnf`; returns how many fit.
  std::uint32_t autoscale_open(std::uint32_t vnf, std::uint32_t count,
                               EventOutcome& outcome);
  /// Marks the `count` least-loaded instances of `vnf` draining.
  void autoscale_mark_draining(std::uint32_t vnf, std::uint32_t count);
  /// Migrates members off draining instances (≤ migration_budget moves per
  /// instance per call) and retires the ones that empty.
  void autoscale_drain_pass(EventOutcome& outcome);
  /// Moves `id`'s hop off a draining instance onto an existing
  /// non-draining instance with room; never opens a new instance.
  bool drain_member(std::uint32_t id, std::size_t hop, EventOutcome& outcome);

  // --- streaming telemetry (DESIGN.md §14) ---
  [[nodiscard]] bool timeline_on() const {
    return config_.snapshot_every > 0.0;
  }
  [[nodiscard]] bool lifecycle_on() const { return config_.lifecycle; }
  /// Counter values at the open of the current window; record fields are
  /// deltas against this.
  struct TimelineBaseline {
    std::uint64_t events = 0;
    std::uint64_t admitted = 0;
    std::uint64_t admitted_from_queue = 0;
    std::uint64_t retry_admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t shed_fault = 0;
    std::uint64_t shed_overload = 0;
    std::uint64_t evacuated_requests = 0;
    std::uint64_t parked = 0;
    std::uint64_t migrations = 0;
    std::uint64_t scale_outs = 0;
    std::uint64_t scale_ins = 0;
  };
  [[nodiscard]] TimelineBaseline capture_baseline() const;
  /// Builds a record for [t_start, t_end) from the current state and the
  /// window integrals (shared by closed and partial windows).
  [[nodiscard]] obs::TimelineRecord make_window_record(
      double t_start, double t_end, double served_integral,
      double offered_integral) const;
  /// Seals the current window and opens the next.
  void close_window();
  /// Samples an admission wait and clears the pending mark.
  void note_admitted(std::uint32_t id, double now);
  void record_lifecycle(const EventOutcome& outcome, obs::LifecycleStage stage,
                        std::uint32_t request,
                        std::uint32_t node = obs::kLifecycleNoNode,
                        std::uint32_t rung = 0);

  topo::Topology topology_;
  std::vector<workload::Vnf> vnfs_;
  ServeConfig config_;
  double link_latency_ = 0.0;

  std::vector<Instance> instances_;  ///< append-only; retired slots flagged
  std::vector<std::vector<std::uint32_t>> active_of_vnf_;  ///< by seq order
  std::vector<double> node_free_;
  std::vector<std::uint32_t> node_instances_;
  std::vector<std::uint8_t> node_up_;          ///< 0 while failed
  std::map<std::uint32_t, LiveRequest> live_;  ///< ordered for determinism
  std::vector<PendingRequest> queue_;          ///< FIFO, front at [0]
  std::vector<RetryRequest> retry_queue_;      ///< FIFO, front at [0]
  /// Requests that exited without a trace-visible departure (rejected or
  /// shed): their later DEPART/RATE_CHANGE events are deliberate no-ops,
  /// because the trace generator cannot know the engine turned them away.
  /// Ordered so checkpoints serialize it deterministically.
  std::set<std::uint32_t> gone_;
  std::vector<EventOutcome> log_;
  double last_time_ = 0.0;
  bool saw_event_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t work_ = 0;

  // Transient per-event / per-batch scratch (never checkpointed, never
  // read across events): the touched-VNF accumulator that used to be three
  // per-event vector locals, and replay_binary's reusable decode batch.
  std::vector<std::uint32_t> touched_scratch_;
  std::vector<workload::StreamEvent> batch_;

  // Degradation window: last `overload_window` pressure bits, oldest first.
  std::vector<std::uint8_t> pressure_window_;
  bool degraded_ = false;

  // Availability integrals: ∫rate dt, accumulated event by event (never
  // recomputed, so checkpoints restore them bit-exactly).
  double served_integral_ = 0.0;
  double offered_integral_ = 0.0;

  // Aggregates (summary() adds the live-state figures).
  ServeSummary totals_;

  // Elastic autoscaling state (DESIGN.md §16): engaged only when
  // config_.autoscale.policy != kOff and never touched otherwise, so an
  // autoscale-off engine stays byte-identical to the pre-subsystem format.
  std::optional<ScalingController> scaler_;
  std::uint64_t as_window_ = 0;        ///< decision boundaries crossed
  double instance_seconds_ = 0.0;      ///< ∫ active-instance count dt
  std::uint64_t as_opened_ = 0;        ///< instances opened by the controller
  std::uint64_t as_drained_ = 0;       ///< drains started by the controller
  std::vector<VnfObservation> as_obs_scratch_;  ///< transient, per boundary

  // Streaming telemetry state (engaged only when snapshot_every > 0 /
  // lifecycle; checkpointed so a resumed run reproduces the streams
  // byte-for-byte).  Windows are [k·Δ, (k+1)·Δ) in trace time; integrals
  // accumulate the same piecewise-constant rates as the availability
  // integrals, split at window boundaries.
  std::vector<obs::TimelineRecord> timeline_rows_;  ///< closed windows
  std::uint64_t window_index_ = 0;                  ///< current open window
  double win_served_ = 0.0;   ///< ∫ served rate over the open window
  double win_offered_ = 0.0;  ///< ∫ offered rate over the open window
  TimelineBaseline win_base_;
  /// Admission waits over the last `timeline_span` windows.
  std::optional<WindowedHistogram> wait_hist_;
  /// When a request started waiting (queued or parked) — for wait samples.
  std::map<std::uint32_t, double> pending_since_;
  std::vector<obs::LifecycleEvent> lifecycle_;

  // Checkpoint serializer/deserializer (src/serve/checkpoint.cc); state is
  // saved and restored verbatim so a resumed engine is bit-identical.
  friend struct CheckpointIo;
};

/// Converts the engine's state into the run-report section; per-event
/// entries are included only when `include_events`.
[[nodiscard]] obs::ServeSection make_serve_section(const ServeEngine& engine,
                                                   bool include_events);

}  // namespace nfv::serve
