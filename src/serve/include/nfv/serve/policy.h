// Autoscaling policies for the serving engine (DESIGN.md §16): pure,
// deterministic per-VNF sizing functions behind one interface.  The
// ScalingController (autoscale.h) evaluates one of these at every decision
// window and turns the returned instance-count delta into scale-out /
// drain-then-retire actions through the existing engine paths.
//
//  * reactive — utilization bands with hysteresis: scale out above the
//    high watermark, drain one instance below the low watermark but only
//    when the survivors would still sit under the high band (so a single
//    action can never bounce straight back).
//
//  * predictive — EWMA + linear-trend forecast of the per-VNF offered
//    rate, sized to `forecast_windows` ahead with a multiplicative safety
//    margin.
//
// Both are pure functions of (config, observation, forecaster state) — no
// RNG, no wall clock — so decisions are bit-identical for any --threads /
// --shards / batch size and across checkpoint/resume.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace nfv::serve {

/// Which sizing policy the controller runs; kOff disables the subsystem
/// entirely (no controller state, byte-identical checkpoints to a build
/// that never had autoscaling).
enum class ScalePolicy : std::uint8_t { kOff, kReactive, kPredictive };

[[nodiscard]] std::string_view to_string(ScalePolicy policy);
/// Parses "off" / "reactive" / "predictive"; nullopt on anything else.
[[nodiscard]] std::optional<ScalePolicy> parse_scale_policy(
    std::string_view text);

/// Controller tunables, validated in ServeConfig::validate() (only when
/// the policy is on, so an off config can never fail validation).
struct AutoscaleConfig {
  ScalePolicy policy = ScalePolicy::kOff;
  /// Decision cadence Δ in trace-time units: the controller evaluates at
  /// every window boundary k·Δ crossed by the event stream.
  double scale_interval = 0.5;
  /// Reactive band: scale out when offered / capacity exceeds this.
  double high_watermark = 0.80;
  /// Reactive band: drain one instance when utilization falls below this
  /// (and the survivors stay under the high band — hysteresis).
  double low_watermark = 0.30;
  /// Decision windows a VNF stays silent after any action (flap damping).
  std::uint32_t cooldown_windows = 2;
  /// Max instances opened or drained per VNF per decision window.
  std::uint32_t max_step = 1;
  /// Predictive: EWMA smoothing factor in (0, 1].
  double ewma_alpha = 0.30;
  /// Predictive: look-ahead horizon in decision windows (trend extrapolation).
  double forecast_windows = 2.0;
  /// Predictive: fractional capacity headroom held above the forecast.
  double safety_margin = 0.15;

  [[nodiscard]] bool enabled() const { return policy != ScalePolicy::kOff; }
  /// Throws std::invalid_argument on NaN / out-of-range tunables.
  void validate() const;
};

/// What the controller observed for one VNF at a decision boundary.
struct VnfObservation {
  /// Σ effective rate (λ/P) wanting this VNF: placed load plus the demand
  /// of queued and retry-parked requests whose chain contains it.
  double offered = 0.0;
  /// Per-instance admission limit (1 − headroom) · μ_f at this boundary.
  double capacity_per_instance = 0.0;
  /// Active, non-draining instances (the capacity-bearing set).
  std::uint32_t instances = 0;
  /// Queued + retrying requests whose chain contains this VNF
  /// (admission pressure: forces at least one step out even when the
  /// placed-load bands look calm).
  std::uint32_t waiting = 0;
};

/// Per-VNF forecaster state (checkpointed verbatim — see DESIGN.md §16).
struct VnfPolicyState {
  double ewma = 0.0;       ///< EWMA of the offered rate
  double prev_ewma = 0.0;  ///< previous window's EWMA (trend term)
  bool seeded = false;     ///< first observation copies instead of blending
  std::uint64_t cooldown_until = 0;  ///< first window allowed to act again
  std::int8_t last_sign = 0;         ///< direction of the last action
  std::uint64_t last_action_window = 0;
};

/// Raw instance-count delta for one VNF (before cooldown gating and the
/// max_step clamp, which the controller applies).  Positive opens,
/// negative drains.
[[nodiscard]] std::int32_t reactive_delta(const AutoscaleConfig& cfg,
                                          const VnfObservation& obs);
[[nodiscard]] std::int32_t predictive_delta(const AutoscaleConfig& cfg,
                                            const VnfObservation& obs,
                                            const VnfPolicyState& state);

}  // namespace nfv::serve
