// Crash-safe checkpoint/resume for the online serving engine (DESIGN.md
// §13): a versioned JSON snapshot ("nfvpr.checkpoint/1") of the FULL
// engine state — instances, live/queued/retrying requests, node health,
// degradation window, availability integrals, aggregate counters, and the
// per-event outcome log — plus the trace cursor (events already applied).
//
// The resume contract is byte-identity: a run killed at any event index
// and restored from its last checkpoint produces exactly the same final
// report, summary, and events log as the uninterrupted run, for any
// --threads/--shards setting.  To guarantee that, every incrementally
// maintained float (instance loads, node residuals, availability
// integrals) is serialized verbatim with round-trip precision and restored
// verbatim — never recomputed, because a recomputation would re-associate
// the floating-point additions in a different order.
//
// Malformed or truncated checkpoint text throws CheckpointParseError (NOT
// std::invalid_argument), which the CLI maps to the usage exit code (2).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "nfv/serve/engine.h"

namespace nfv::serve {

inline constexpr std::string_view kCheckpointSchema = "nfvpr.checkpoint/1";

/// Thrown on malformed checkpoint text or violated structural invariants.
class CheckpointParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Resumable position inside a binary "nfvpr.btrace/1" trace: the byte
/// offset of the next undecoded record plus the IEEE-754 bits of the last
/// decoded timestamp (the XOR base the next record's delta applies to).
/// Only binary-trace serve runs write it — text-path checkpoints carry no
/// cursor fields and stay byte-identical to the pre-btrace format.
struct BinaryTraceCursor {
  std::uint64_t byte_offset = 0;
  std::uint64_t time_bits = 0;
};

/// Light summary returned by peek_checkpoint.
struct CheckpointInfo {
  std::uint64_t cursor = 0;     ///< trace events already applied
  std::uint64_t vnf_count = 0;  ///< size of the VNF universe
  std::uint64_t node_count = 0;
  std::uint64_t live_requests = 0;
  std::uint64_t logged_events = 0;
  /// Present when the checkpointed run was serving a binary trace.
  bool has_btrace_cursor = false;
  BinaryTraceCursor btrace;
};

/// Serializes the engine state after `cursor` trace events were applied.
/// `btrace` (optional) records the matching binary-trace position; passing
/// nullptr — every text-path caller — keeps the output byte-identical to
/// the original nfvpr.checkpoint/1 layout.
void save_checkpoint(const ServeEngine& engine, std::uint64_t cursor,
                     std::ostream& out,
                     const BinaryTraceCursor* btrace = nullptr);
[[nodiscard]] std::string save_checkpoint_string(
    const ServeEngine& engine, std::uint64_t cursor,
    const BinaryTraceCursor* btrace = nullptr);

/// Parses and structurally validates checkpoint text without needing a
/// topology (the fuzz target's entry point); throws CheckpointParseError.
[[nodiscard]] CheckpointInfo peek_checkpoint(std::string_view text);

/// Reconstructs an engine mid-trace.  The topology and VNF universe must
/// be the ones the checkpointed run used (counts are verified; the config
/// is taken from the checkpoint so resumed decisions match the original
/// run exactly).  Returns the engine; `*cursor` receives the number of
/// trace events to skip.  When the checkpoint carries a binary-trace
/// cursor and `btrace`/`has_btrace` are non-null, they receive it — the
/// resume path seeks the decoder there instead of skipping records.
/// Throws CheckpointParseError on any mismatch.
[[nodiscard]] ServeEngine restore_checkpoint(std::string_view text,
                                             topo::Topology topology,
                                             std::vector<workload::Vnf> vnfs,
                                             std::uint64_t* cursor,
                                             BinaryTraceCursor* btrace = nullptr,
                                             bool* has_btrace = nullptr);

}  // namespace nfv::serve
