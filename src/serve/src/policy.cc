#include "nfv/serve/policy.h"

#include <algorithm>
#include <cmath>

#include "nfv/common/error.h"

namespace nfv::serve {

std::string_view to_string(ScalePolicy policy) {
  switch (policy) {
    case ScalePolicy::kOff:
      return "off";
    case ScalePolicy::kReactive:
      return "reactive";
    case ScalePolicy::kPredictive:
      return "predictive";
  }
  return "?";
}

std::optional<ScalePolicy> parse_scale_policy(std::string_view text) {
  if (text == "off") return ScalePolicy::kOff;
  if (text == "reactive") return ScalePolicy::kReactive;
  if (text == "predictive") return ScalePolicy::kPredictive;
  return std::nullopt;
}

void AutoscaleConfig::validate() const {
  if (!enabled()) return;
  NFV_REQUIRE(std::isfinite(scale_interval) && scale_interval > 0.0);
  NFV_REQUIRE(std::isfinite(high_watermark) && high_watermark > 0.0 &&
              high_watermark <= 1.0);
  NFV_REQUIRE(std::isfinite(low_watermark) && low_watermark >= 0.0 &&
              low_watermark < high_watermark);
  NFV_REQUIRE(max_step >= 1);
  NFV_REQUIRE(std::isfinite(ewma_alpha) && ewma_alpha > 0.0 &&
              ewma_alpha <= 1.0);
  NFV_REQUIRE(std::isfinite(forecast_windows) && forecast_windows >= 0.0);
  NFV_REQUIRE(std::isfinite(safety_margin) && safety_margin >= 0.0);
}

namespace {

/// Instances needed to carry `offered` at per-instance `capacity`, never
/// admitting past the `band` fraction of each instance's limit.
std::uint32_t needed_instances(double offered, double capacity, double band) {
  if (offered <= 0.0) return 0;
  if (capacity <= 0.0) return 1;  // degenerate VNF: one instance, best effort
  return static_cast<std::uint32_t>(std::ceil(offered / (capacity * band)));
}

}  // namespace

std::int32_t reactive_delta(const AutoscaleConfig& cfg,
                            const VnfObservation& obs) {
  const double cap =
      static_cast<double>(obs.instances) * obs.capacity_per_instance;
  // Saturated band (or no capacity at all while demand waits): grow to the
  // count that puts utilization back at the high watermark.
  if ((obs.instances == 0 && (obs.offered > 0.0 || obs.waiting > 0)) ||
      (cap > 0.0 && obs.offered > cfg.high_watermark * cap)) {
    const std::uint32_t target = std::max<std::uint32_t>(
        needed_instances(obs.offered, obs.capacity_per_instance,
                         cfg.high_watermark),
        obs.instances + 1);
    return static_cast<std::int32_t>(target - obs.instances);
  }
  // Waiting requests mean the placed-load view undercounts demand: nudge
  // out one step even inside the band.
  if (obs.waiting > 0) return 1;
  // Idle band, with hysteresis: drain one only when the survivors would
  // still sit strictly under the high band.
  if (obs.instances >= 2 && cap > 0.0 &&
      obs.offered < cfg.low_watermark * cap &&
      obs.offered <= cfg.high_watermark * (cap - obs.capacity_per_instance)) {
    return -1;
  }
  return 0;
}

std::int32_t predictive_delta(const AutoscaleConfig& cfg,
                              const VnfObservation& obs,
                              const VnfPolicyState& state) {
  // Linear-trend extrapolation of the smoothed offered rate, floored at
  // the current observation so a forecast can never undercut live demand.
  const double trend = state.ewma - state.prev_ewma;
  const double forecast = std::max(
      obs.offered, state.ewma + cfg.forecast_windows * trend);
  std::uint32_t target = needed_instances(
      forecast * (1.0 + cfg.safety_margin), obs.capacity_per_instance, 1.0);
  // Admission pressure overrides the forecast: waiting demand needs room
  // beyond what the placed instances report.
  if (obs.waiting > 0) {
    target = std::max(target, obs.instances + 1);
  }
  return static_cast<std::int32_t>(target) -
         static_cast<std::int32_t>(obs.instances);
}

}  // namespace nfv::serve
