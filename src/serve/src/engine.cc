#include "nfv/serve/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "nfv/common/error.h"
#include "nfv/common/rng.h"
#include "nfv/exec/thread_pool.h"
#include "nfv/obs/flight_recorder.h"
#include "nfv/obs/metrics.h"
#include "nfv/scheduling/algorithm.h"
#include "nfv/workload/btrace.h"
#include "nfv/scheduling/migration.h"
#include "nfv/scheduling/problem.h"

namespace nfv::serve {

namespace {

[[noreturn]] void event_fail(const workload::StreamEvent& event,
                             const std::string& what) {
  const std::string subject =
      workload::is_node_event(event.kind)
          ? "node " + std::to_string(event.node)
          : "request " + std::to_string(event.request);
  throw workload::TraceParseError("event at t=" + std::to_string(event.time) +
                                  " (" + subject + "): " + what);
}

void insert_sorted(std::vector<std::uint32_t>& v, std::uint32_t x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

void erase_sorted(std::vector<std::uint32_t>& v, std::uint32_t x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  NFV_CHECK(it != v.end() && *it == x);
  v.erase(it);
}

}  // namespace

void ServeConfig::validate() const {
  // std::isfinite first: NaN fails every comparison, so spelling the check
  // this way gives each knob an explicit finite-and-in-range contract
  // instead of relying on NaN's comparison semantics.
  NFV_REQUIRE(std::isfinite(headroom) && headroom >= 0.0 && headroom < 1.0);
  NFV_REQUIRE(std::isfinite(rebalance_threshold) &&
              rebalance_threshold >= 0.0);
  NFV_REQUIRE(!link_latency.has_value() ||
              (std::isfinite(*link_latency) && *link_latency >= 0.0));
  NFV_REQUIRE(std::isfinite(overload_threshold) && overload_threshold > 0.0 &&
              overload_threshold <= 1.0);
  NFV_REQUIRE(std::isfinite(degraded_headroom) &&
              degraded_headroom >= headroom && degraded_headroom < 1.0);
  NFV_REQUIRE(retry_backoff_base >= 1);
  NFV_REQUIRE(std::isfinite(snapshot_every) && snapshot_every >= 0.0);
  NFV_REQUIRE(timeline_span >= 1);
  autoscale.validate();
}

std::string_view to_string(Decision decision) {
  switch (decision) {
    case Decision::kAdmitted: return "admitted";
    case Decision::kQueued: return "queued";
    case Decision::kRejected: return "rejected";
    case Decision::kDeparted: return "departed";
    case Decision::kRateChanged: return "rate_changed";
    case Decision::kShed: return "shed";
    case Decision::kNodeDown: return "node_down";
    case Decision::kNodeUp: return "node_up";
  }
  return "?";
}

ServeEngine::ServeEngine(topo::Topology topology,
                         std::vector<workload::Vnf> vnfs, ServeConfig config)
    : topology_(std::move(topology)),
      vnfs_(std::move(vnfs)),
      config_(config) {
  NFV_REQUIRE(topology_.frozen());
  NFV_REQUIRE(topology_.compute_count() > 0);
  NFV_REQUIRE(!vnfs_.empty());
  config_.validate();
  for (const workload::Vnf& f : vnfs_) {
    NFV_REQUIRE(f.demand_per_instance > 0.0);
    NFV_REQUIRE(f.service_rate > 0.0);
  }
  link_latency_ = config_.link_latency.has_value()
                      ? *config_.link_latency
                      : topology_.mean_link_latency();
  active_of_vnf_.resize(vnfs_.size());
  const std::size_t nodes = topology_.compute_count();
  node_free_.reserve(nodes);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    node_free_.push_back(topology_.capacity(NodeId(v)));
  }
  node_instances_.assign(nodes, 0);
  node_up_.assign(nodes, 1);
  if (timeline_on()) {
    // Waits longer than the whole sliding span land in the overflow
    // bucket; the exact min/max tracking still keeps p100 exact.
    wait_hist_.emplace(0.0, config_.snapshot_every *
                                static_cast<double>(config_.timeline_span),
                       64, config_.timeline_span);
  }
  if (autoscale_on()) {
    scaler_.emplace(config_.autoscale, vnfs_.size());
  }
}

double ServeEngine::limit(std::uint32_t vnf) const {
  const double h = degraded_ ? config_.degraded_headroom : config_.headroom;
  return (1.0 - h) * vnfs_[vnf].service_rate;
}

std::optional<std::uint32_t> ServeEngine::pick_node(
    double demand, const std::vector<double>& planned_use,
    const std::vector<std::uint32_t>& planned_count) {
  // BFDSU's used-nodes-first rule, incrementally: among nodes that already
  // host an instance (or will, per this plan) pick the smallest feasible
  // residual; only when none fits fall back to spare nodes.
  std::optional<std::uint32_t> best;
  double best_residual = std::numeric_limits<double>::infinity();
  const auto scan = [&](bool used_pass) {
    for (std::uint32_t v = 0; v < node_free_.size(); ++v) {
      ++work_;
      if (node_up_[v] == 0) continue;  // failed nodes leave the candidate set
      const bool used = node_instances_[v] > 0 || planned_count[v] > 0;
      if (used != used_pass) continue;
      const double residual = node_free_[v] - planned_use[v] - demand;
      if (residual < 0.0) continue;
      if (residual < best_residual) {
        best_residual = residual;
        best = v;
      }
    }
  };
  scan(true);
  if (!best) scan(false);
  return best;
}

std::optional<std::vector<ServeEngine::HopPlan>> ServeEngine::plan_placement(
    double rate, double prob, const std::vector<std::uint32_t>& chain) {
  const double eff = rate / prob;
  std::vector<HopPlan> plan;
  plan.reserve(chain.size());
  std::vector<double> planned_use(node_free_.size(), 0.0);
  std::vector<std::uint32_t> planned_count(node_free_.size(), 0);
  for (const std::uint32_t f : chain) {
    const double cap = limit(f);
    // Least-loaded feasible existing instance; the active list is in
    // creation order, so strict `<` keeps the oldest on ties.
    std::optional<std::uint32_t> best;
    double best_load = std::numeric_limits<double>::infinity();
    for (const std::uint32_t slot : active_of_vnf_[f]) {
      ++work_;
      const Instance& inst = instances_[slot];
      if (inst.draining) continue;  // scale-in in progress: no new members
      if (inst.effective_load + eff > cap) continue;
      if (inst.effective_load < best_load) {
        best_load = inst.effective_load;
        best = slot;
      }
    }
    if (best) {
      plan.push_back({false, *best, 0});
      continue;
    }
    if (eff > cap) return std::nullopt;  // too big even for a fresh instance
    const double demand = vnfs_[f].demand_per_instance;
    const auto node = pick_node(demand, planned_use, planned_count);
    if (!node) return std::nullopt;
    plan.push_back({true, 0, *node});
    planned_use[*node] += demand;
    ++planned_count[*node];
  }
  return plan;
}

std::uint32_t ServeEngine::open_instance(std::uint32_t vnf,
                                         std::uint32_t node) {
  const auto slot = static_cast<std::uint32_t>(instances_.size());
  Instance inst;
  inst.vnf = vnf;
  inst.node = node;
  inst.seq = next_seq_++;
  instances_.push_back(std::move(inst));
  active_of_vnf_[vnf].push_back(slot);
  node_free_[node] -= vnfs_[vnf].demand_per_instance;
  NFV_CHECK(node_free_[node] >= -1e-9);
  ++node_instances_[node];
  return slot;
}

void ServeEngine::retire_instance(std::uint32_t slot) {
  Instance& inst = instances_[slot];
  NFV_CHECK(!inst.retired && inst.members.empty());
  inst.retired = true;
  inst.draining = false;  // a retired instance has finished its drain
  inst.raw_load = 0.0;
  inst.effective_load = 0.0;
  auto& act = active_of_vnf_[inst.vnf];
  act.erase(std::find(act.begin(), act.end(), slot));
  node_free_[inst.node] += vnfs_[inst.vnf].demand_per_instance;
  --node_instances_[inst.node];
}

void ServeEngine::add_to_instance(std::uint32_t slot, std::uint32_t id,
                                  double rate, double prob) {
  Instance& inst = instances_[slot];
  NFV_CHECK(!inst.retired);
  insert_sorted(inst.members, id);
  inst.raw_load += rate;
  inst.effective_load += rate / prob;
}

bool ServeEngine::remove_from_instance(std::uint32_t slot, std::uint32_t id,
                                       double rate, double prob) {
  Instance& inst = instances_[slot];
  erase_sorted(inst.members, id);
  if (inst.members.empty()) {
    retire_instance(slot);
    return true;
  }
  inst.raw_load -= rate;
  inst.effective_load -= rate / prob;
  return false;
}

void ServeEngine::commit_placement(std::uint32_t id, double rate, double prob,
                                   std::vector<std::uint32_t> chain,
                                   const std::vector<HopPlan>& plan,
                                   EventOutcome& outcome) {
  LiveRequest r;
  r.rate = rate;
  r.prob = prob;
  r.chain = std::move(chain);
  r.hop_instance.reserve(plan.size());
  for (std::size_t h = 0; h < plan.size(); ++h) {
    std::uint32_t slot;
    if (plan[h].scale_out) {
      slot = open_instance(r.chain[h], plan[h].node);
      ++outcome.scale_outs;
      ++totals_.scale_outs;
    } else {
      slot = plan[h].slot;
    }
    add_to_instance(slot, id, rate, prob);
    r.hop_instance.push_back(slot);
    if (lifecycle_on()) {
      record_lifecycle(outcome, obs::LifecycleStage::kPlace, id,
                       instances_[slot].node, static_cast<std::uint32_t>(h));
    }
  }
  live_.emplace(id, std::move(r));
}

void ServeEngine::remove_live(std::uint32_t id, EventOutcome& outcome) {
  const auto it = live_.find(id);
  NFV_CHECK(it != live_.end());
  const LiveRequest& r = it->second;
  for (std::size_t h = 0; h < r.chain.size(); ++h) {
    if (remove_from_instance(r.hop_instance[h], id, r.rate, r.prob)) {
      ++outcome.scale_ins;
      ++totals_.scale_ins;
    }
  }
  live_.erase(it);
}

std::uint32_t ServeEngine::rebalance(std::uint32_t vnf,
                                     EventOutcome& outcome) {
  // Draining instances are leaving the capacity set: the RCKK re-solve
  // runs over the survivors only, so a rebalance never refills a drain.
  std::vector<std::uint32_t> non_draining;
  const std::vector<std::uint32_t>* act_ptr = &active_of_vnf_[vnf];
  if (autoscale_on()) {
    non_draining.reserve(act_ptr->size());
    for (const std::uint32_t slot : *act_ptr) {
      if (!instances_[slot].draining) non_draining.push_back(slot);
    }
    act_ptr = &non_draining;
  }
  const auto& act = *act_ptr;
  const auto m = static_cast<std::uint32_t>(act.size());
  if (m < 2 || config_.migration_budget == 0) return 0;

  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  double sum = 0.0;
  for (const std::uint32_t slot : act) {
    const double load = instances_[slot].effective_load;
    lo = std::min(lo, load);
    hi = std::max(hi, load);
    sum += load;
  }
  if (sum <= 0.0) return 0;
  const double mean = sum / static_cast<double>(m);
  if ((hi - lo) / mean <= config_.rebalance_threshold) return 0;

  // Gather this VNF's live members in ascending request-id order so the
  // problem positions are deterministic, then re-solve with RCKK and walk
  // at most K moves toward its partition.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> members;  // id, pos
  for (std::uint32_t pos = 0; pos < m; ++pos) {
    for (const std::uint32_t id : instances_[act[pos]].members) {
      members.emplace_back(id, pos);
    }
  }
  std::sort(members.begin(), members.end());

  sched::SchedulingProblem problem;
  problem.service_rate = vnfs_[vnf].service_rate;
  problem.instance_count = m;
  problem.arrival_rates.reserve(members.size());
  problem.delivery_probs.reserve(members.size());
  std::vector<std::uint32_t> current;
  current.reserve(members.size());
  for (const auto& [id, pos] : members) {
    const LiveRequest& r = live_.at(id);
    problem.arrival_rates.push_back(r.rate);
    problem.delivery_probs.push_back(r.prob);
    current.push_back(pos);
  }

  Rng rng(1);  // RCKK is deterministic; the Rng is interface plumbing
  const sched::Schedule target =
      sched::RckkScheduling{}.schedule(problem, rng);
  const sched::MigrationPlan plan = sched::plan_bounded_migration(
      problem, current, target, config_.migration_budget, limit(vnf));
  NFV_CHECK(plan.moves.size() <= config_.migration_budget);
  work_ += target.work + plan.moves.size();

  for (const sched::MigrationMove& move : plan.moves) {
    const std::uint32_t id = members[move.request].first;
    LiveRequest& r = live_.at(id);
    const std::uint32_t from_slot = act[move.from];
    const std::uint32_t to_slot = act[move.to];
    Instance& from = instances_[from_slot];
    Instance& to = instances_[to_slot];
    erase_sorted(from.members, id);
    insert_sorted(to.members, id);
    const double eff = r.rate / r.prob;
    from.raw_load -= r.rate;
    from.effective_load -= eff;
    to.raw_load += r.rate;
    to.effective_load += eff;
    for (std::size_t h = 0; h < r.chain.size(); ++h) {
      if (r.hop_instance[h] == from_slot && r.chain[h] == vnf) {
        r.hop_instance[h] = to_slot;
      }
    }
    if (lifecycle_on()) {
      // Rebalance moves act on a VNF, not a hop index, so the detail
      // field carries the VNF id here.
      record_lifecycle(outcome, obs::LifecycleStage::kMigrate, id, to.node,
                       vnf);
    }
  }
  if (!plan.moves.empty()) {
    ++totals_.rebalances;
    const auto n = static_cast<std::uint32_t>(plan.moves.size());
    totals_.migrations += n;
    totals_.max_migrations_per_rebalance =
        std::max<std::uint64_t>(totals_.max_migrations_per_rebalance, n);
    outcome.migrations += n;
    return n;
  }
  return 0;
}

void ServeEngine::rebalance_chain(const std::vector<std::uint32_t>& chain,
                                  EventOutcome& outcome) {
  for (const std::uint32_t f : chain) rebalance(f, outcome);
}

bool ServeEngine::relocate_hop(std::uint32_t id, std::size_t hop,
                               EventOutcome& outcome) {
  LiveRequest& r = live_.at(id);
  const std::uint32_t f = r.chain[hop];
  const std::uint32_t cur = r.hop_instance[hop];
  const double eff = r.rate / r.prob;
  const double cap = limit(f);

  std::optional<std::uint32_t> best;
  double best_load = std::numeric_limits<double>::infinity();
  for (const std::uint32_t slot : active_of_vnf_[f]) {
    ++work_;
    if (slot == cur) continue;
    const Instance& inst = instances_[slot];
    if (inst.draining) continue;
    if (inst.effective_load + eff > cap) continue;
    if (inst.effective_load < best_load) {
      best_load = inst.effective_load;
      best = slot;
    }
  }
  if (!best && eff <= cap) {
    const std::vector<double> no_use(node_free_.size(), 0.0);
    const std::vector<std::uint32_t> no_count(node_free_.size(), 0);
    if (const auto node =
            pick_node(vnfs_[f].demand_per_instance, no_use, no_count)) {
      best = open_instance(f, *node);
      ++outcome.scale_outs;
      ++totals_.scale_outs;
    }
  }
  if (!best) return false;

  if (remove_from_instance(cur, id, r.rate, r.prob)) {
    ++outcome.scale_ins;
    ++totals_.scale_ins;
  }
  add_to_instance(*best, id, r.rate, r.prob);
  r.hop_instance[hop] = *best;
  ++outcome.migrations;
  ++totals_.migrations;
  if (lifecycle_on()) {
    record_lifecycle(outcome, obs::LifecycleStage::kMigrate, id,
                     instances_[*best].node, static_cast<std::uint32_t>(hop));
  }
  return true;
}

void ServeEngine::drain_queue(EventOutcome& outcome,
                              std::vector<std::uint32_t>& touched_vnfs) {
  while (!queue_.empty()) {
    const PendingRequest& head = queue_.front();
    const auto plan = plan_placement(head.rate, head.prob, head.chain);
    if (!plan) break;  // FIFO: never admit past a blocked head
    PendingRequest p = std::move(queue_.front());
    queue_.erase(queue_.begin());
    touched_vnfs.insert(touched_vnfs.end(), p.chain.begin(), p.chain.end());
    note_admitted(p.id, outcome.time);
    if (lifecycle_on()) {
      record_lifecycle(outcome, obs::LifecycleStage::kAdmit, p.id);
    }
    commit_placement(p.id, p.rate, p.prob, std::move(p.chain), *plan, outcome);
    ++outcome.admitted_from_queue;
    ++totals_.admitted_from_queue;
  }
}

void ServeEngine::accumulate_availability(double now) {
  double served = 0.0;
  for (const auto& [id, r] : live_) served += r.rate;
  double offered = served;
  for (const PendingRequest& p : queue_) offered += p.rate;
  for (const RetryRequest& p : retry_queue_) offered += p.request.rate;

  if (timeline_on()) {
    // Close every window ending at or before `now`, splitting the gap's
    // piecewise-constant rates at each boundary: state is unchanged over
    // [last_time_, now), so the pre-event rates are exact.  Event-time
    // driven — never wall clock — which is the determinism contract of
    // the timeline stream (DESIGN.md §14).
    double cursor = saw_event_ ? last_time_ : 0.0;
    const double delta = config_.snapshot_every;
    for (;;) {
      const double wend =
          static_cast<double>(window_index_ + 1) * delta;
      if (wend > now) break;
      const double dt = wend - cursor;
      win_served_ += dt * served;
      win_offered_ += dt * offered;
      close_window();
      cursor = wend;
    }
    if (now > cursor) {
      win_served_ += (now - cursor) * served;
      win_offered_ += (now - cursor) * offered;
    }
  }

  // The global availability integrals take the gap in one piece, so a
  // telemetry-enabled run reports bit-identical availability to a
  // telemetry-off run.
  if (!saw_event_ || now <= last_time_) return;
  const double dt = now - last_time_;
  served_integral_ += dt * served;
  offered_integral_ += dt * offered;
  if (autoscale_on()) {
    // The capacity bill the bench scores against the offline oracle:
    // ∫ active-instance count dt, event-by-event like the integrals above
    // so checkpoints restore it bit-exactly.
    std::uint64_t active = 0;
    for (const auto& act : active_of_vnf_) active += act.size();
    instance_seconds_ += dt * static_cast<double>(active);
  }
}

ServeEngine::TimelineBaseline ServeEngine::capture_baseline() const {
  TimelineBaseline b;
  b.events = totals_.events;
  b.admitted = totals_.admitted;
  b.admitted_from_queue = totals_.admitted_from_queue;
  b.retry_admitted = totals_.retry_admitted;
  b.rejected = totals_.rejected;
  b.shed = totals_.shed;
  b.shed_fault = totals_.shed_fault;
  b.shed_overload = totals_.shed_overload;
  b.evacuated_requests = totals_.evacuated_requests;
  b.parked = totals_.parked;
  b.migrations = totals_.migrations;
  b.scale_outs = totals_.scale_outs;
  b.scale_ins = totals_.scale_ins;
  return b;
}

obs::TimelineRecord ServeEngine::make_window_record(
    double t_start, double t_end, double served_integral,
    double offered_integral) const {
  obs::TimelineRecord rec;
  rec.window = window_index_;
  rec.t_start = t_start;
  rec.t_end = t_end;
  rec.events = totals_.events - win_base_.events;
  const double width = t_end - t_start;
  rec.offered_rate = width > 0.0 ? offered_integral / width : 0.0;
  rec.carried_rate = width > 0.0 ? served_integral / width : 0.0;
  rec.availability =
      offered_integral > 0.0 ? served_integral / offered_integral : 1.0;
  rec.live = live_.size();
  rec.queued = queue_.size();
  rec.retrying = retry_queue_.size();
  rec.admitted = totals_.admitted - win_base_.admitted;
  rec.admitted_from_queue =
      totals_.admitted_from_queue - win_base_.admitted_from_queue;
  rec.retry_admitted = totals_.retry_admitted - win_base_.retry_admitted;
  rec.rejected = totals_.rejected - win_base_.rejected;
  rec.shed = (totals_.shed - win_base_.shed) +
             (totals_.shed_fault - win_base_.shed_fault) +
             (totals_.shed_overload - win_base_.shed_overload);
  rec.evacuated =
      totals_.evacuated_requests - win_base_.evacuated_requests;
  rec.parked = totals_.parked - win_base_.parked;
  rec.migrations = totals_.migrations - win_base_.migrations;
  rec.degraded = degraded_;
  if (autoscale_on()) {
    rec.has_autoscale = true;
    std::uint64_t active = 0;
    for (const auto& act : active_of_vnf_) active += act.size();
    std::uint64_t draining = 0;
    for (const Instance& inst : instances_) {
      if (!inst.retired && inst.draining) ++draining;
    }
    rec.instances = active;
    rec.draining = draining;
    rec.scale_outs = totals_.scale_outs - win_base_.scale_outs;
    rec.scale_ins = totals_.scale_ins - win_base_.scale_ins;
  }
  std::uint64_t down = 0;
  rec.node_util.reserve(node_free_.size());
  for (std::uint32_t v = 0; v < node_free_.size(); ++v) {
    if (node_up_[v] == 0) {
      ++down;
      rec.node_util.push_back(0.0);
      continue;
    }
    const double cap = topology_.capacity(NodeId(v));
    rec.node_util.push_back(cap > 0.0 ? (cap - node_free_[v]) / cap : 0.0);
  }
  rec.nodes_down = down;
  const Histogram waits = wait_hist_->merged();
  rec.wait_count = waits.count();
  if (waits.count() > 0) {
    rec.wait_p50 = waits.quantile(0.50);
    rec.wait_p90 = waits.quantile(0.90);
    rec.wait_p99 = waits.quantile(0.99);
  }
  return rec;
}

void ServeEngine::close_window() {
  const double delta = config_.snapshot_every;
  timeline_rows_.push_back(make_window_record(
      static_cast<double>(window_index_) * delta,
      static_cast<double>(window_index_ + 1) * delta, win_served_,
      win_offered_));
  wait_hist_->rotate();
  win_base_ = capture_baseline();
  win_served_ = 0.0;
  win_offered_ = 0.0;
  ++window_index_;
}

void ServeEngine::note_admitted(std::uint32_t id, double now) {
  if (!timeline_on()) return;
  const auto it = pending_since_.find(id);
  if (it == pending_since_.end()) {
    wait_hist_->add(0.0);  // admitted on arrival: no wait
    return;
  }
  wait_hist_->add(now - it->second);
  pending_since_.erase(it);
}

void ServeEngine::record_lifecycle(const EventOutcome& outcome,
                                   obs::LifecycleStage stage,
                                   std::uint32_t request, std::uint32_t node,
                                   std::uint32_t rung) {
  lifecycle_.push_back(
      {outcome.index, outcome.time, request, stage, node, rung});
}

obs::TimelineDoc ServeEngine::timeline_doc(bool include_partial) const {
  NFV_REQUIRE(timeline_on());
  obs::TimelineDoc doc;
  doc.snapshot_every = config_.snapshot_every;
  doc.nodes = node_free_.size();
  doc.records = timeline_rows_;
  if (include_partial && saw_event_) {
    const double t_start =
        static_cast<double>(window_index_) * config_.snapshot_every;
    if (last_time_ > t_start || totals_.events > win_base_.events) {
      doc.records.push_back(
          make_window_record(t_start, last_time_, win_served_, win_offered_));
    }
  }
  return doc;
}

bool ServeEngine::evacuate_request(std::uint32_t id, EventOutcome& outcome) {
  LiveRequest& r = live_.at(id);
  const double eff = r.rate / r.prob;
  std::vector<std::size_t> broken;
  for (std::size_t h = 0; h < r.chain.size(); ++h) {
    if (instances_[r.hop_instance[h]].retired) broken.push_back(h);
  }
  NFV_CHECK(!broken.empty());

  // Plan every broken hop before touching state, with node overlays so two
  // scale-outs of one request share residual bookkeeping (as in
  // plan_placement); an all-or-nothing commit keeps the failure path clean.
  std::vector<HopPlan> plan;
  plan.reserve(broken.size());
  std::vector<double> planned_use(node_free_.size(), 0.0);
  std::vector<std::uint32_t> planned_count(node_free_.size(), 0);
  for (const std::size_t h : broken) {
    const std::uint32_t f = r.chain[h];
    const double cap = limit(f);
    std::optional<std::uint32_t> best;
    double best_load = std::numeric_limits<double>::infinity();
    for (const std::uint32_t slot : active_of_vnf_[f]) {
      ++work_;
      const Instance& inst = instances_[slot];
      if (inst.draining) continue;
      if (inst.effective_load + eff > cap) continue;
      if (inst.effective_load < best_load) {
        best_load = inst.effective_load;
        best = slot;
      }
    }
    if (best) {
      plan.push_back({false, *best, 0});
      continue;
    }
    if (eff > cap) return false;
    const double demand = vnfs_[f].demand_per_instance;
    const auto node = pick_node(demand, planned_use, planned_count);
    if (!node) return false;
    plan.push_back({true, 0, *node});
    planned_use[*node] += demand;
    ++planned_count[*node];
  }

  for (std::size_t k = 0; k < broken.size(); ++k) {
    const std::size_t h = broken[k];
    std::uint32_t slot;
    if (plan[k].scale_out) {
      slot = open_instance(r.chain[h], plan[k].node);
      ++outcome.scale_outs;
      ++totals_.scale_outs;
    } else {
      slot = plan[k].slot;
    }
    add_to_instance(slot, id, r.rate, r.prob);
    r.hop_instance[h] = slot;
    if (lifecycle_on()) {
      record_lifecycle(outcome, obs::LifecycleStage::kEvacuate, id,
                       instances_[slot].node, static_cast<std::uint32_t>(h));
    }
  }
  const auto moves = static_cast<std::uint32_t>(broken.size());
  outcome.evacuation_migrations += moves;
  totals_.evacuation_migrations += moves;
  ++outcome.evacuated;
  ++totals_.evacuated_requests;
  return true;
}

void ServeEngine::handle_node_down(const workload::StreamEvent& event,
                                   EventOutcome& outcome) {
  const std::uint32_t node = event.node;
  if (node >= node_free_.size()) {
    event_fail(event, "unknown node id (topology has " +
                          std::to_string(node_free_.size()) +
                          " compute nodes)");
  }
  if (node_up_[node] == 0) event_fail(event, "node is already down");
  ++totals_.node_downs;
  outcome.decision = Decision::kNodeDown;
  node_up_[node] = 0;
  node_free_[node] = 0.0;

  // Force-close this node's instances in slot (= creation) order and
  // collect the requests they carried.  Closure is not a graceful scale-in:
  // the capacity is simply gone.
  std::vector<std::uint32_t> affected;
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(instances_.size()); ++slot) {
    Instance& inst = instances_[slot];
    if (inst.retired || inst.node != node) continue;
    affected.insert(affected.end(), inst.members.begin(), inst.members.end());
    inst.retired = true;
    // A drain in progress dies with the node: the members land in
    // `affected` and ride the evacuation ladder like everyone else, so a
    // mid-drain NODE_DOWN strands nothing.
    inst.draining = false;
    inst.raw_load = 0.0;
    inst.effective_load = 0.0;
    inst.members.clear();
    auto& act = active_of_vnf_[inst.vnf];
    act.erase(std::find(act.begin(), act.end(), slot));
    ++totals_.instances_closed;
    ++work_;
  }
  node_instances_[node] = 0;
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  // Evacuation ladder, ascending request id: re-place every broken hop on
  // survivors (scaling out replacements if needed); a request that fits
  // nowhere is unbound from its surviving hops and parked for backoff
  // retry, shedding only when even the retry queue is full.
  std::vector<std::uint32_t> touched;
  for (const std::uint32_t id : affected) {
    if (evacuate_request(id, outcome)) {
      const LiveRequest& r = live_.at(id);
      touched.insert(touched.end(), r.chain.begin(), r.chain.end());
      continue;
    }
    LiveRequest moved = std::move(live_.at(id));
    for (std::size_t h = 0; h < moved.chain.size(); ++h) {
      if (instances_[moved.hop_instance[h]].retired) continue;
      if (remove_from_instance(moved.hop_instance[h], id, moved.rate,
                               moved.prob)) {
        ++outcome.scale_ins;
        ++totals_.scale_ins;
      }
    }
    live_.erase(id);
    if (retry_queue_.size() < config_.queue_capacity) {
      RetryRequest retry;
      retry.request = {id, moved.rate, moved.prob, std::move(moved.chain)};
      retry.not_before = outcome.index + config_.retry_backoff_base;
      retry_queue_.push_back(std::move(retry));
      ++outcome.parked;
      ++totals_.parked;
      if (timeline_on()) pending_since_[id] = outcome.time;
      if (lifecycle_on()) {
        record_lifecycle(outcome, obs::LifecycleStage::kPark, id);
      }
    } else {
      ++outcome.shed_fault;
      ++totals_.shed_fault;
      gone_.insert(id);
      if (lifecycle_on()) {
        record_lifecycle(outcome, obs::LifecycleStage::kShedFault, id);
      }
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  rebalance_chain(touched, outcome);
}

void ServeEngine::handle_node_up(const workload::StreamEvent& event,
                                 EventOutcome& outcome) {
  const std::uint32_t node = event.node;
  if (node >= node_free_.size()) {
    event_fail(event, "unknown node id (topology has " +
                          std::to_string(node_free_.size()) +
                          " compute nodes)");
  }
  if (node_up_[node] != 0) event_fail(event, "node is not down");
  ++totals_.node_ups;
  outcome.decision = Decision::kNodeUp;
  node_up_[node] = 1;
  node_free_[node] = topology_.capacity(NodeId(node));
  NFV_CHECK(node_instances_[node] == 0);
  // Recovered capacity may unblock the waiting room right away; parked
  // requests instead flow through the backoff-gated retry pass.
  std::vector<std::uint32_t> touched;
  drain_queue(outcome, touched);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  rebalance_chain(touched, outcome);
}

void ServeEngine::drain_retry_queue(EventOutcome& outcome,
                                    std::vector<std::uint32_t>& touched_vnfs) {
  const std::uint64_t index = outcome.index;
  for (std::size_t i = 0; i < retry_queue_.size();) {
    RetryRequest& entry = retry_queue_[i];
    if (entry.not_before > index) {
      ++i;
      continue;
    }
    const auto plan = plan_placement(entry.request.rate, entry.request.prob,
                                     entry.request.chain);
    if (plan) {
      const std::uint32_t rung = entry.attempts;
      PendingRequest admitted = std::move(entry.request);
      retry_queue_.erase(retry_queue_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      touched_vnfs.insert(touched_vnfs.end(), admitted.chain.begin(),
                          admitted.chain.end());
      note_admitted(admitted.id, outcome.time);
      if (lifecycle_on()) {
        record_lifecycle(outcome, obs::LifecycleStage::kRetryAdmit,
                         admitted.id, obs::kLifecycleNoNode, rung);
      }
      commit_placement(admitted.id, admitted.rate, admitted.prob,
                       std::move(admitted.chain), *plan, outcome);
      ++outcome.retry_admitted;
      ++totals_.retry_admitted;
      continue;
    }
    ++entry.attempts;
    if (entry.attempts > config_.retry_budget) {
      const std::uint32_t id = entry.request.id;
      gone_.insert(id);
      retry_queue_.erase(retry_queue_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      ++outcome.shed_fault;
      ++totals_.shed_fault;
      if (timeline_on()) pending_since_.erase(id);
      if (lifecycle_on()) {
        record_lifecycle(outcome, obs::LifecycleStage::kShedFault, id);
      }
      continue;
    }
    entry.not_before = index + (config_.retry_backoff_base << entry.attempts);
    if (lifecycle_on()) {
      record_lifecycle(outcome, obs::LifecycleStage::kRetryBackoff,
                       entry.request.id, obs::kLifecycleNoNode,
                       entry.attempts);
    }
    ++i;
  }
}

void ServeEngine::shed_overloaded(EventOutcome& outcome) {
  for (;;) {
    std::optional<std::uint32_t> victim;
    double victim_rate = std::numeric_limits<double>::infinity();
    for (const auto& [id, r] : live_) {
      ++work_;
      bool over = false;
      for (std::size_t h = 0; h < r.chain.size() && !over; ++h) {
        over = instances_[r.hop_instance[h]].effective_load >
               limit(r.chain[h]);
      }
      if (!over) continue;
      if (r.rate < victim_rate) {  // strict <, map order: lowest id on ties
        victim_rate = r.rate;
        victim = id;
      }
    }
    if (!victim) return;
    remove_live(*victim, outcome);
    gone_.insert(*victim);
    ++outcome.shed_overload;
    ++totals_.shed_overload;
    if (lifecycle_on()) {
      record_lifecycle(outcome, obs::LifecycleStage::kShedOverload, *victim);
    }
  }
}

void ServeEngine::update_degradation(EventOutcome& outcome) {
  if (config_.overload_window == 0) {
    outcome.degraded = degraded_;
    return;
  }
  const bool pressured = outcome.decision == Decision::kQueued ||
                         outcome.decision == Decision::kRejected ||
                         !queue_.empty() || !retry_queue_.empty();
  pressure_window_.push_back(pressured ? 1 : 0);
  if (pressure_window_.size() > config_.overload_window) {
    pressure_window_.erase(pressure_window_.begin());
  }
  std::size_t ones = 0;
  for (const std::uint8_t b : pressure_window_) ones += b;
  const bool full = pressure_window_.size() == config_.overload_window;
  const double frac = static_cast<double>(ones) /
                      static_cast<double>(config_.overload_window);
  if (!degraded_ && full && frac >= config_.overload_threshold) {
    degraded_ = true;  // tightens limit() for the shed pass and onwards
    ++totals_.degradations;
    shed_overloaded(outcome);
  } else if (degraded_ && frac <= 0.5 * config_.overload_threshold) {
    degraded_ = false;  // relaxed headroom may admit the backlog again
    std::vector<std::uint32_t> touched;
    drain_queue(outcome, touched);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    rebalance_chain(touched, outcome);
  }
  if (degraded_) ++totals_.degraded_events;
  outcome.degraded = degraded_;
}

void ServeEngine::run_autoscale(double now, EventOutcome& outcome) {
  const double delta = config_.autoscale.scale_interval;
  // Cross every elapsed boundary, one decision each — a burst of events
  // inside one window still yields exactly one evaluation per window, so
  // batch size cannot change the decision sequence.
  while (static_cast<double>(as_window_ + 1) * delta <= now) {
    ++as_window_;
    autoscale_decide(outcome);
  }
}

void ServeEngine::autoscale_observe(std::vector<VnfObservation>& out) const {
  out.assign(vnfs_.size(), VnfObservation{});
  for (std::uint32_t f = 0; f < vnfs_.size(); ++f) {
    out[f].capacity_per_instance = limit(f);
  }
  for (const Instance& inst : instances_) {
    if (inst.retired) continue;
    // Draining load still counts as offered — it has to land somewhere —
    // but a draining instance is not capacity the policy may size against.
    if (!inst.draining) ++out[inst.vnf].instances;
    out[inst.vnf].offered += inst.effective_load;
  }
  for (const PendingRequest& p : queue_) {
    for (const std::uint32_t f : p.chain) {
      out[f].offered += p.rate / p.prob;
      ++out[f].waiting;
    }
  }
  for (const RetryRequest& entry : retry_queue_) {
    for (const std::uint32_t f : entry.request.chain) {
      out[f].offered += entry.request.rate / entry.request.prob;
      ++out[f].waiting;
    }
  }
}

void ServeEngine::autoscale_decide(EventOutcome& outcome) {
  autoscale_observe(as_obs_scratch_);
  work_ += instances_.size() + queue_.size() + retry_queue_.size();
  const std::vector<std::int32_t>& deltas =
      scaler_->on_window(as_window_, as_obs_scratch_);
  bool opened = false;
  for (std::uint32_t f = 0; f < deltas.size(); ++f) {
    const std::int32_t d = deltas[f];
    if (d > 0) {
      if (autoscale_open(f, static_cast<std::uint32_t>(d), outcome) > 0) {
        opened = true;
      }
    } else if (d < 0) {
      autoscale_mark_draining(f, static_cast<std::uint32_t>(-d));
    }
  }
  autoscale_drain_pass(outcome);
  if (opened) {
    // Fresh capacity may admit the backlog: same drain-then-rebalance step
    // the degradation exit uses.
    std::vector<std::uint32_t>& touched = touched_scratch_;
    touched.clear();
    drain_queue(outcome, touched);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    rebalance_chain(touched, outcome);
  }
}

std::uint32_t ServeEngine::autoscale_open(std::uint32_t vnf,
                                          std::uint32_t count,
                                          EventOutcome& outcome) {
  const std::vector<double> no_use(node_free_.size(), 0.0);
  const std::vector<std::uint32_t> no_count(node_free_.size(), 0);
  std::uint32_t opened = 0;
  for (; opened < count; ++opened) {
    const auto node =
        pick_node(vnfs_[vnf].demand_per_instance, no_use, no_count);
    if (!node) break;  // cluster full: partial scale-out is fine
    open_instance(vnf, *node);
    ++outcome.scale_outs;
    ++totals_.scale_outs;
    ++as_opened_;
  }
  return opened;
}

void ServeEngine::autoscale_mark_draining(std::uint32_t vnf,
                                          std::uint32_t count) {
  for (std::uint32_t k = 0; k < count; ++k) {
    // Least-loaded active instance; `<=` while scanning creation order
    // prefers the newest on ties, so the oldest instances stay put.
    std::optional<std::uint32_t> victim;
    double victim_load = std::numeric_limits<double>::infinity();
    for (const std::uint32_t slot : active_of_vnf_[vnf]) {
      ++work_;
      const Instance& inst = instances_[slot];
      if (inst.draining) continue;
      if (inst.effective_load <= victim_load) {
        victim_load = inst.effective_load;
        victim = slot;
      }
    }
    if (!victim) return;
    instances_[*victim].draining = true;
    ++as_drained_;
  }
}

void ServeEngine::autoscale_drain_pass(EventOutcome& outcome) {
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(instances_.size()); ++slot) {
    if (instances_[slot].retired || !instances_[slot].draining) continue;
    // Snapshot the member list: drain_member edits it under us.
    const std::vector<std::uint32_t> members = instances_[slot].members;
    std::uint32_t moves = 0;
    for (const std::uint32_t id : members) {
      if (moves >= config_.migration_budget) break;
      if (instances_[slot].retired) break;
      const LiveRequest& r = live_.at(id);
      for (std::size_t h = 0; h < r.chain.size(); ++h) {
        if (r.hop_instance[h] != slot) continue;
        if (drain_member(id, h, outcome)) ++moves;
        break;  // one hop per member per pass keeps the budget honest
      }
    }
    Instance& inst = instances_[slot];
    if (!inst.retired && inst.members.empty()) {
      retire_instance(slot);
      ++outcome.scale_ins;
      ++totals_.scale_ins;
    }
  }
}

bool ServeEngine::drain_member(std::uint32_t id, std::size_t hop,
                               EventOutcome& outcome) {
  LiveRequest& r = live_.at(id);
  const std::uint32_t f = r.chain[hop];
  const std::uint32_t cur = r.hop_instance[hop];
  const double eff = r.rate / r.prob;
  const double cap = limit(f);

  // Unlike relocate_hop this never opens an instance: a drain that needs
  // fresh capacity is a drain the controller should not have started, and
  // the member simply waits for a later pass to find room.
  std::optional<std::uint32_t> best;
  double best_load = std::numeric_limits<double>::infinity();
  for (const std::uint32_t slot : active_of_vnf_[f]) {
    ++work_;
    if (slot == cur) continue;
    const Instance& inst = instances_[slot];
    if (inst.draining) continue;
    if (inst.effective_load + eff > cap) continue;
    if (inst.effective_load < best_load) {
      best_load = inst.effective_load;
      best = slot;
    }
  }
  if (!best) return false;

  if (remove_from_instance(cur, id, r.rate, r.prob)) {
    ++outcome.scale_ins;
    ++totals_.scale_ins;
  }
  add_to_instance(*best, id, r.rate, r.prob);
  r.hop_instance[hop] = *best;
  ++outcome.migrations;
  ++totals_.migrations;
  if (lifecycle_on()) {
    record_lifecycle(outcome, obs::LifecycleStage::kMigrate, id,
                     instances_[*best].node, static_cast<std::uint32_t>(hop));
  }
  return true;
}

void ServeEngine::finish_outcome(EventOutcome& outcome) {
  const std::vector<double> lat = predicted_latencies();
  if (!lat.empty()) {
    double sum = 0.0;
    for (const double x : lat) sum += x;
    outcome.mean_predicted_latency = sum / static_cast<double>(lat.size());
    std::vector<double> sorted = lat;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx =
        static_cast<std::size_t>(
            std::ceil(0.99 * static_cast<double>(sorted.size()))) -
        1;
    outcome.p99_predicted_latency = sorted[idx];
  }
  ++totals_.events;
  obs::count("serve.events");
  switch (outcome.decision) {
    case Decision::kAdmitted: obs::count("serve.admitted"); break;
    case Decision::kQueued: obs::count("serve.queued"); break;
    case Decision::kRejected: obs::count("serve.rejected"); break;
    case Decision::kDeparted: obs::count("serve.departed"); break;
    case Decision::kRateChanged: obs::count("serve.rate_changed"); break;
    case Decision::kShed: obs::count("serve.shed"); break;
    case Decision::kNodeDown: obs::count("serve.node_down"); break;
    case Decision::kNodeUp: obs::count("serve.node_up"); break;
  }
  if (outcome.migrations > 0) {
    obs::count("serve.migrations", outcome.migrations);
  }
  if (outcome.scale_outs > 0) obs::count("serve.scale_outs", outcome.scale_outs);
  if (outcome.scale_ins > 0) obs::count("serve.scale_ins", outcome.scale_ins);
  if (outcome.admitted_from_queue > 0) {
    obs::count("serve.admitted_from_queue", outcome.admitted_from_queue);
  }
  if (outcome.evacuated > 0) obs::count("serve.evacuated", outcome.evacuated);
  if (outcome.parked > 0) obs::count("serve.parked", outcome.parked);
  if (outcome.retry_admitted > 0) {
    obs::count("serve.retry_admitted", outcome.retry_admitted);
  }
  if (outcome.shed_fault > 0) {
    obs::count("serve.shed_fault", outcome.shed_fault);
  }
  if (outcome.shed_overload > 0) {
    obs::count("serve.shed_overload", outcome.shed_overload);
  }
  if (obs::flight_recorder() != nullptr) {
    obs::FlightEntry fe;
    fe.index = outcome.index;
    fe.time = outcome.time;
    fe.kind = workload::to_string(outcome.kind);
    fe.decision = to_string(outcome.decision);
    fe.request = outcome.request;
    fe.migrations = outcome.migrations;
    fe.scale_outs = outcome.scale_outs;
    fe.scale_ins = outcome.scale_ins;
    fe.admitted_from_queue = outcome.admitted_from_queue;
    fe.evacuated = outcome.evacuated;
    fe.parked = outcome.parked;
    fe.retry_admitted = outcome.retry_admitted;
    fe.shed_fault = outcome.shed_fault;
    fe.shed_overload = outcome.shed_overload;
    fe.degraded = outcome.degraded;
    obs::flight_record(fe);
  }
  log_.push_back(outcome);
}

EventOutcome ServeEngine::on_event(const workload::StreamEvent& event) {
  process_event(event);
  return log_.back();
}

void ServeEngine::process_event(const workload::StreamEvent& event) {
  if (saw_event_ && event.time < last_time_) {
    event_fail(event, "non-monotonic timestamp " + std::to_string(event.time) +
                          " after " + std::to_string(last_time_));
  }
  accumulate_availability(event.time);
  saw_event_ = true;
  last_time_ = event.time;

  EventOutcome outcome;
  outcome.index = log_.size();
  outcome.time = event.time;
  outcome.kind = event.kind;
  outcome.request = event.request;

  const auto queued_pos = [&] {
    return std::find_if(queue_.begin(), queue_.end(),
                        [&](const PendingRequest& p) {
                          return p.id == event.request;
                        });
  };
  const auto retry_pos = [&] {
    return std::find_if(retry_queue_.begin(), retry_queue_.end(),
                        [&](const RetryRequest& p) {
                          return p.request.id == event.request;
                        });
  };

  switch (event.kind) {
    case workload::StreamEventKind::kArrive: {
      ++totals_.arrivals;
      if (live_.count(event.request) != 0 || queued_pos() != queue_.end() ||
          retry_pos() != retry_queue_.end()) {
        event_fail(event, "arrival of a request that is already live");
      }
      if (event.rate <= 0.0 || event.delivery_prob <= 0.0 ||
          event.delivery_prob > 1.0) {
        event_fail(event, "invalid rate/delivery_prob");
      }
      for (const std::uint32_t f : event.chain) {
        if (f >= vnfs_.size()) event_fail(event, "chain VNF out of range");
      }
      if (event.chain.empty()) event_fail(event, "empty chain");
      const auto plan =
          plan_placement(event.rate, event.delivery_prob, event.chain);
      if (plan) {
        note_admitted(event.request, event.time);
        if (lifecycle_on()) {
          record_lifecycle(outcome, obs::LifecycleStage::kAdmit,
                           event.request);
        }
        commit_placement(event.request, event.rate, event.delivery_prob,
                         event.chain, *plan, outcome);
        outcome.decision = Decision::kAdmitted;
        ++totals_.admitted;
        rebalance_chain(event.chain, outcome);
      } else if (queue_.size() < config_.queue_capacity) {
        queue_.push_back({event.request, event.rate, event.delivery_prob,
                          event.chain});
        outcome.decision = Decision::kQueued;
        if (timeline_on()) pending_since_[event.request] = event.time;
        if (lifecycle_on()) {
          record_lifecycle(outcome, obs::LifecycleStage::kQueue,
                           event.request);
        }
      } else {
        outcome.decision = Decision::kRejected;
        ++totals_.rejected;
        gone_.insert(event.request);
        if (lifecycle_on()) {
          record_lifecycle(outcome, obs::LifecycleStage::kReject,
                           event.request);
        }
      }
      break;
    }
    case workload::StreamEventKind::kDepart: {
      outcome.decision = Decision::kDeparted;
      std::vector<std::uint32_t>& touched = touched_scratch_;
      touched.clear();
      if (const auto it = live_.find(event.request); it != live_.end()) {
        ++totals_.departures;
        touched = it->second.chain;
        remove_live(event.request, outcome);
        if (lifecycle_on()) {
          record_lifecycle(outcome, obs::LifecycleStage::kDepart,
                           event.request);
        }
      } else if (const auto qit = queued_pos(); qit != queue_.end()) {
        ++totals_.departures;
        queue_.erase(qit);
        if (timeline_on()) pending_since_.erase(event.request);
        if (lifecycle_on()) {
          record_lifecycle(outcome, obs::LifecycleStage::kDepart,
                           event.request);
        }
      } else if (const auto rit = retry_pos(); rit != retry_queue_.end()) {
        ++totals_.departures;
        retry_queue_.erase(rit);
        if (timeline_on()) pending_since_.erase(event.request);
        if (lifecycle_on()) {
          record_lifecycle(outcome, obs::LifecycleStage::kDepart,
                           event.request);
        }
      } else if (gone_.erase(event.request) != 0) {
        // Already rejected or shed: the trace's departure is a no-op, and
        // the request stays in its rejected/shed accounting bucket.
      } else {
        event_fail(event, "departure of an unknown request");
      }
      drain_queue(outcome, touched);
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      rebalance_chain(touched, outcome);
      break;
    }
    case workload::StreamEventKind::kRateChange: {
      ++totals_.rate_changes;
      outcome.decision = Decision::kRateChanged;
      if (event.rate <= 0.0) event_fail(event, "invalid rate");
      if (const auto qit = queued_pos(); qit != queue_.end()) {
        qit->rate = event.rate;
        break;
      }
      if (const auto rit = retry_pos(); rit != retry_queue_.end()) {
        rit->request.rate = event.rate;
        break;
      }
      if (gone_.count(event.request) != 0) break;  // rejected/shed: no-op
      const auto it = live_.find(event.request);
      if (it == live_.end()) {
        event_fail(event, "rate change of an unknown request");
      }
      LiveRequest& r = it->second;
      const double delta_raw = event.rate - r.rate;
      const double delta_eff = delta_raw / r.prob;
      for (const std::uint32_t slot : r.hop_instance) {
        instances_[slot].raw_load += delta_raw;
        instances_[slot].effective_load += delta_eff;
      }
      r.rate = event.rate;
      rebalance_chain(r.chain, outcome);
      // Enforce stability hop by hop: relocate this request off any
      // over-limit instance; if nothing admits it and the instance is
      // truly unstable (ρ ≥ 1), shed the whole request.
      bool shed = false;
      for (std::size_t h = 0; h < r.chain.size() && !shed; ++h) {
        const std::uint32_t f = r.chain[h];
        const Instance& inst = instances_[r.hop_instance[h]];
        if (inst.effective_load <= limit(f)) continue;
        if (relocate_hop(event.request, h, outcome)) continue;
        if (inst.effective_load >= vnfs_[f].service_rate) shed = true;
      }
      if (shed) {
        remove_live(event.request, outcome);
        gone_.insert(event.request);
        outcome.decision = Decision::kShed;
        ++totals_.shed;
        if (lifecycle_on()) {
          record_lifecycle(outcome, obs::LifecycleStage::kShed,
                           event.request);
        }
        std::vector<std::uint32_t>& touched = touched_scratch_;
        touched.clear();
        drain_queue(outcome, touched);
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        rebalance_chain(touched, outcome);
      }
      break;
    }
    case workload::StreamEventKind::kNodeDown:
      handle_node_down(event, outcome);
      break;
    case workload::StreamEventKind::kNodeUp:
      handle_node_up(event, outcome);
      break;
  }

  // Backoff-gated retry of fault-evacuated requests, then the degradation
  // ladder — both keyed on the event index, so replay position (not wall
  // time) drives every decision.
  {
    std::vector<std::uint32_t>& touched = touched_scratch_;
    touched.clear();
    drain_retry_queue(outcome, touched);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    rebalance_chain(touched, outcome);
  }
  update_degradation(outcome);
  if (autoscale_on()) run_autoscale(event.time, outcome);

  finish_outcome(outcome);
}

std::vector<EventOutcome> ServeEngine::replay(
    const workload::EventTrace& trace) {
  NFV_REQUIRE(trace.vnf_count <= vnfs_.size());
  std::vector<EventOutcome> outcomes;
  outcomes.reserve(trace.events.size());
  for (const workload::StreamEvent& event : trace.events) {
    outcomes.push_back(on_event(event));
  }
  return outcomes;
}

void ServeEngine::apply_batch(const workload::StreamEvent* events,
                              std::size_t count) {
  log_.reserve(log_.size() + count);
  for (std::size_t i = 0; i < count; ++i) process_event(events[i]);
}

std::uint64_t ServeEngine::replay_binary(workload::BinaryTraceDecoder& decoder,
                                         std::size_t batch_size,
                                         std::uint64_t limit) {
  NFV_REQUIRE(batch_size >= 1);
  NFV_REQUIRE(decoder.vnf_count() <= vnfs_.size());
  if (batch_.size() < batch_size) batch_.resize(batch_size);
  std::uint64_t applied = 0;
  while (applied < limit) {
    // Refill in place: batch_[i].chain keeps its capacity across refills,
    // so a warm loop decodes and applies without touching the heap.
    std::size_t n = 0;
    while (n < batch_size && applied + n < limit && decoder.next(batch_[n])) {
      ++n;
    }
    if (n == 0) break;
    apply_batch(batch_.data(), n);
    applied += n;
  }
  return applied;
}

ServeSummary ServeEngine::summary() const {
  ServeSummary s = totals_;
  s.live_requests = live_.size();
  s.queued_requests = queue_.size();
  s.retry_queued = retry_queue_.size();
  s.availability = offered_integral_ > 0.0
                       ? served_integral_ / offered_integral_
                       : 1.0;
  std::uint64_t active = 0;
  for (const auto& act : active_of_vnf_) active += act.size();
  s.active_instances = active;
  s.nodes_in_service = static_cast<std::uint64_t>(
      std::count_if(node_instances_.begin(), node_instances_.end(),
                    [](std::uint32_t n) { return n > 0; }));
  s.admission_rate =
      s.arrivals > 0
          ? static_cast<double>(s.admitted + s.admitted_from_queue) /
                static_cast<double>(s.arrivals)
          : 1.0;
  const std::vector<double> lat = predicted_latencies();
  if (!lat.empty()) {
    double sum = 0.0;
    for (const double x : lat) sum += x;
    s.mean_predicted_latency = sum / static_cast<double>(lat.size());
    std::vector<double> sorted = lat;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx =
        static_cast<std::size_t>(
            std::ceil(0.99 * static_cast<double>(sorted.size()))) -
        1;
    s.p99_predicted_latency = sorted[idx];
  }
  s.work = work_;
  if (autoscale_on()) {
    const AutoscaleTotals& at = scaler_->totals();
    s.autoscale_decisions = at.decisions;
    s.autoscale_flaps = at.flaps;
    s.autoscale_blocked_cooldown = at.blocked_cooldown;
    s.autoscale_scale_outs = as_opened_;
    s.autoscale_scale_ins = as_drained_;
    s.instance_seconds = instance_seconds_;
    for (const Instance& inst : instances_) {
      if (!inst.retired && inst.draining) ++s.draining_instances;
    }
  }
  return s;
}

ServeEngine::Snapshot ServeEngine::snapshot() const {
  Snapshot snap;
  for (const Instance& inst : instances_) {
    if (inst.retired) continue;
    snap.instances.push_back({inst.vnf, inst.node, inst.seq, inst.raw_load,
                              inst.effective_load, inst.members});
  }
  snap.queued.reserve(queue_.size());
  for (const PendingRequest& p : queue_) snap.queued.push_back(p.id);
  snap.live.reserve(live_.size());
  for (const auto& [id, r] : live_) snap.live.push_back(id);
  snap.retrying.reserve(retry_queue_.size());
  for (const RetryRequest& p : retry_queue_) {
    snap.retrying.push_back(p.request.id);
  }
  for (std::uint32_t v = 0; v < node_up_.size(); ++v) {
    if (node_up_[v] == 0) snap.nodes_down.push_back(v);
  }
  snap.degraded = degraded_;
  return snap;
}

std::vector<double> ServeEngine::predicted_latencies() const {
  std::vector<const LiveRequest*> reqs;
  reqs.reserve(live_.size());
  for (const auto& [id, r] : live_) reqs.push_back(&r);
  // The only parallel site: per-request Eq. 16 evaluation, collected into
  // index order — bit-identical for any thread count.
  return exec::parallel_map(reqs.size(), [&](std::size_t i) {
    const LiveRequest& r = *reqs[i];
    double total = 0.0;
    std::vector<std::uint32_t> nodes;
    nodes.reserve(r.hop_instance.size());
    for (std::size_t h = 0; h < r.hop_instance.size(); ++h) {
      const Instance& inst = instances_[r.hop_instance[h]];
      const double mu = vnfs_[r.chain[h]].service_rate;
      if (inst.raw_load > 0.0) {
        // Eq. 11/12: W = (ρ/(1−ρ)) / Σλ_raw with ρ = Λ_k/μ; clamp the
        // slack so a briefly over-limit instance reports a huge-but-finite
        // latency instead of a sign flip.
        const double slack = std::max(mu - inst.effective_load, 1e-9 * mu);
        total += inst.effective_load / (slack * inst.raw_load);
      } else {
        total += 1.0 / mu;
      }
      nodes.push_back(inst.node);
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    if (!nodes.empty()) {
      total += static_cast<double>(nodes.size() - 1) * link_latency_;
    }
    return total;
  });
}

workload::Workload ServeEngine::live_workload() const {
  workload::Workload w;
  std::vector<std::uint32_t> used(vnfs_.size(), 0);
  for (const auto& [id, r] : live_) {
    for (const std::uint32_t f : r.chain) used[f] = 1;
  }
  std::vector<std::uint32_t> dense(vnfs_.size(), 0);
  for (std::uint32_t f = 0; f < vnfs_.size(); ++f) {
    if (used[f] == 0) continue;
    dense[f] = static_cast<std::uint32_t>(w.vnfs.size());
    workload::Vnf vnf = vnfs_[f];
    vnf.id = VnfId(static_cast<std::uint32_t>(w.vnfs.size()));
    vnf.instance_count =
        std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(active_of_vnf_[f].size()));
    w.vnfs.push_back(std::move(vnf));
  }
  for (const auto& [id, r] : live_) {
    workload::Request req;
    req.id = RequestId(static_cast<std::uint32_t>(w.requests.size()));
    req.arrival_rate = r.rate;
    req.delivery_prob = r.prob;
    req.chain.reserve(r.chain.size());
    for (const std::uint32_t f : r.chain) req.chain.push_back(VnfId(dense[f]));
    w.requests.push_back(std::move(req));
  }
  return w;
}

obs::ServeSection make_serve_section(const ServeEngine& engine,
                                     bool include_events) {
  const ServeSummary s = engine.summary();
  obs::ServeSection out;
  out.present = true;
  out.events = s.events;
  out.arrivals = s.arrivals;
  out.admitted = s.admitted;
  out.admitted_from_queue = s.admitted_from_queue;
  out.rejected = s.rejected;
  out.departures = s.departures;
  out.rate_changes = s.rate_changes;
  out.shed = s.shed;
  out.migrations = s.migrations;
  out.rebalances = s.rebalances;
  out.max_migrations_per_rebalance = s.max_migrations_per_rebalance;
  out.scale_outs = s.scale_outs;
  out.scale_ins = s.scale_ins;
  out.live_requests = s.live_requests;
  out.queued_requests = s.queued_requests;
  out.retry_queued = s.retry_queued;
  out.active_instances = s.active_instances;
  out.nodes_in_service = s.nodes_in_service;
  out.node_downs = s.node_downs;
  out.node_ups = s.node_ups;
  out.instances_closed = s.instances_closed;
  out.evacuated_requests = s.evacuated_requests;
  out.evacuation_migrations = s.evacuation_migrations;
  out.parked = s.parked;
  out.retry_admitted = s.retry_admitted;
  out.shed_fault = s.shed_fault;
  out.shed_overload = s.shed_overload;
  out.degradations = s.degradations;
  out.degraded_events = s.degraded_events;
  out.availability = s.availability;
  out.admission_rate = s.admission_rate;
  out.mean_predicted_latency = s.mean_predicted_latency;
  out.p99_predicted_latency = s.p99_predicted_latency;
  out.work = s.work;
  if (engine.config().autoscale.enabled()) {
    out.autoscale_present = true;
    out.autoscale_policy =
        std::string(to_string(engine.config().autoscale.policy));
    out.autoscale_decisions = s.autoscale_decisions;
    out.autoscale_scale_outs = s.autoscale_scale_outs;
    out.autoscale_scale_ins = s.autoscale_scale_ins;
    out.autoscale_flaps = s.autoscale_flaps;
    out.autoscale_blocked_cooldown = s.autoscale_blocked_cooldown;
    out.autoscale_draining = s.draining_instances;
    out.instance_seconds = s.instance_seconds;
  }
  if (engine.config().snapshot_every > 0.0) {
    out.timeline_present = true;
    out.timeline = obs::aggregate_timeline(engine.timeline_doc().records);
  }
  if (include_events) {
    out.events_log.reserve(engine.log().size());
    for (const EventOutcome& e : engine.log()) {
      obs::ServeEventEntry entry;
      entry.index = e.index;
      entry.time = e.time;
      entry.kind = std::string(workload::to_string(e.kind));
      entry.request = e.request;
      entry.decision = std::string(to_string(e.decision));
      entry.migrations = e.migrations;
      entry.scale_outs = e.scale_outs;
      entry.scale_ins = e.scale_ins;
      entry.admitted_from_queue = e.admitted_from_queue;
      entry.evacuated = e.evacuated;
      entry.evacuation_migrations = e.evacuation_migrations;
      entry.parked = e.parked;
      entry.retry_admitted = e.retry_admitted;
      entry.shed_fault = e.shed_fault;
      entry.shed_overload = e.shed_overload;
      entry.degraded = e.degraded;
      entry.mean_predicted_latency = e.mean_predicted_latency;
      entry.p99_predicted_latency = e.p99_predicted_latency;
      out.events_log.push_back(std::move(entry));
    }
  }
  return out;
}

}  // namespace nfv::serve
