#include "nfv/serve/checkpoint.h"

#include <cmath>
#include <deque>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "nfv/common/error.h"
#include "nfv/common/histogram.h"
#include "nfv/obs/json.h"
#include "nfv/obs/lifecycle.h"

namespace nfv::serve {

namespace {

[[noreturn]] void ckpt_fail(const std::string& what) {
  throw CheckpointParseError("checkpoint: " + what);
}

// --- typed field access (every miss throws CheckpointParseError) ---------

const obs::JsonValue& member(const obs::JsonValue& obj, std::string_view key) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) ckpt_fail("missing field \"" + std::string(key) + "\"");
  return *v;
}

double get_double(const obs::JsonValue& obj, std::string_view key) {
  const obs::JsonValue& v = member(obj, key);
  if (!v.is_number()) {
    ckpt_fail("field \"" + std::string(key) + "\" must be a number");
  }
  return v.as_number();
}

std::uint64_t get_uint(const obs::JsonValue& obj, std::string_view key) {
  const double d = get_double(obj, key);
  if (!(d >= 0.0) || d != std::floor(d) || d > 1.8e19) {
    ckpt_fail("field \"" + std::string(key) +
              "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

bool get_bool(const obs::JsonValue& obj, std::string_view key) {
  const obs::JsonValue& v = member(obj, key);
  if (v.is_bool()) return v.as_bool();
  if (v.is_number()) return v.as_number() != 0.0;
  ckpt_fail("field \"" + std::string(key) + "\" must be a boolean");
}

const obs::JsonValue::Array& get_array(const obs::JsonValue& obj,
                                       std::string_view key) {
  const obs::JsonValue& v = member(obj, key);
  if (!v.is_array()) {
    ckpt_fail("field \"" + std::string(key) + "\" must be an array");
  }
  return v.as_array();
}

const obs::JsonValue& get_object(const obs::JsonValue& obj,
                                 std::string_view key) {
  const obs::JsonValue& v = member(obj, key);
  if (!v.is_object()) {
    ckpt_fail("field \"" + std::string(key) + "\" must be an object");
  }
  return v;
}

std::vector<std::uint32_t> get_u32_vector(const obs::JsonValue& obj,
                                          std::string_view key,
                                          std::uint64_t below) {
  std::vector<std::uint32_t> out;
  const auto& arr = get_array(obj, key);
  out.reserve(arr.size());
  for (const obs::JsonValue& v : arr) {
    if (!v.is_number() || v.as_number() < 0.0 ||
        v.as_number() != std::floor(v.as_number())) {
      ckpt_fail("array \"" + std::string(key) +
                "\" must hold non-negative integers");
    }
    const double d = v.as_number();
    if (d >= static_cast<double>(below)) {
      ckpt_fail("array \"" + std::string(key) + "\" entry " +
                std::to_string(static_cast<std::uint64_t>(d)) +
                " is out of range");
    }
    out.push_back(static_cast<std::uint32_t>(d));
  }
  return out;
}

obs::JsonValue parse_document(std::string_view text) {
  std::string error;
  auto doc = obs::parse_json(text, &error);
  if (!doc) ckpt_fail("not valid JSON: " + error);
  if (!doc->is_object()) ckpt_fail("document must be a JSON object");
  const std::string schema = doc->string_or("schema");
  if (schema != kCheckpointSchema) {
    ckpt_fail("unsupported schema '" + schema + "' (expected '" +
              std::string(kCheckpointSchema) + "')");
  }
  return std::move(*doc);
}

/// Reads the optional telemetry config fields (absent in pre-telemetry
/// checkpoints, and omitted when telemetry is off so those files stay
/// byte-identical to the old format).
void read_telemetry_config(const obs::JsonValue& c, ServeConfig& config) {
  if (c.find("snapshot_every") != nullptr) {
    config.snapshot_every = get_double(c, "snapshot_every");
    if (!std::isfinite(config.snapshot_every) ||
        config.snapshot_every <= 0.0) {
      ckpt_fail("config.snapshot_every must be a positive number");
    }
    config.timeline_span =
        static_cast<std::size_t>(get_uint(c, "timeline_span"));
    if (config.timeline_span == 0) {
      ckpt_fail("config.timeline_span must be >= 1");
    }
  }
  if (c.find("lifecycle") != nullptr) {
    config.lifecycle = get_bool(c, "lifecycle");
  }
}

/// Reads the optional autoscale config block (absent in pre-autoscale
/// checkpoints and whenever the policy is off, so those files stay
/// byte-identical to the earlier format).  All nine fields travel
/// together, keyed on autoscale_policy.
void read_autoscale_config(const obs::JsonValue& c, ServeConfig& config) {
  const obs::JsonValue* p = c.find("autoscale_policy");
  if (p == nullptr) return;
  if (!p->is_string()) {
    ckpt_fail("config.autoscale_policy must be a string");
  }
  const auto policy = parse_scale_policy(p->as_string());
  if (!policy) {
    ckpt_fail("config.autoscale_policy '" + p->as_string() + "' is unknown");
  }
  if (*policy == ScalePolicy::kOff) {
    ckpt_fail("config.autoscale_policy \"off\" must be omitted, not stored");
  }
  config.autoscale.policy = *policy;
  config.autoscale.scale_interval = get_double(c, "autoscale_interval");
  config.autoscale.high_watermark = get_double(c, "autoscale_high");
  config.autoscale.low_watermark = get_double(c, "autoscale_low");
  config.autoscale.cooldown_windows =
      static_cast<std::uint32_t>(get_uint(c, "autoscale_cooldown"));
  config.autoscale.max_step =
      static_cast<std::uint32_t>(get_uint(c, "autoscale_step"));
  config.autoscale.ewma_alpha = get_double(c, "autoscale_alpha");
  config.autoscale.forecast_windows = get_double(c, "autoscale_forecast");
  config.autoscale.safety_margin = get_double(c, "autoscale_margin");
  try {
    config.autoscale.validate();
  } catch (const std::invalid_argument& ex) {
    ckpt_fail(std::string("embedded autoscale config is invalid: ") +
              ex.what());
  }
}

std::string hex_bits(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Reads the optional binary-trace cursor pair; both fields must appear
/// together, and trace_time_bits must be exactly 16 hex digits.
bool read_btrace_cursor(const obs::JsonValue& doc, BinaryTraceCursor* out) {
  const obs::JsonValue* offset = doc.find("trace_offset");
  const obs::JsonValue* bits = doc.find("trace_time_bits");
  if (offset == nullptr && bits == nullptr) return false;
  if (offset == nullptr || bits == nullptr) {
    ckpt_fail(
        "trace_offset and trace_time_bits must appear together (binary "
        "trace cursor)");
  }
  BinaryTraceCursor cursor;
  cursor.byte_offset = get_uint(doc, "trace_offset");
  if (!bits->is_string() || bits->as_string().size() != 16) {
    ckpt_fail("trace_time_bits must be a 16-digit hex string");
  }
  std::uint64_t value = 0;
  for (const char c : bits->as_string()) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      ckpt_fail("trace_time_bits must be a 16-digit hex string");
    }
  }
  cursor.time_bits = value;
  if (out != nullptr) *out = cursor;
  return true;
}

void write_pending(obs::JsonWriter& w, std::uint32_t id, double rate,
                   double prob, const std::vector<std::uint32_t>& chain) {
  w.kv("id", std::uint64_t{id});
  w.kv("rate", rate);
  w.kv("prob", prob);
  w.key("chain");
  w.begin_array();
  for (const std::uint32_t f : chain) w.value(std::uint64_t{f});
  w.end_array();
}

}  // namespace

/// Private-state serializer/deserializer; befriended by ServeEngine.
struct CheckpointIo {
  static void save(const ServeEngine& e, std::uint64_t cursor,
                   std::ostream& out, const BinaryTraceCursor* btrace) {
    obs::JsonWriter w(out);
    w.begin_object();
    w.kv("schema", kCheckpointSchema);
    w.kv("cursor", cursor);
    if (btrace != nullptr) {
      // Binary-trace position (absent for text traces, keeping those
      // checkpoints byte-identical to the pre-btrace layout).  time_bits is
      // a full 64-bit value — IEEE-754 bits of the last timestamp — which a
      // JSON number (a double) cannot carry exactly, so it travels as a
      // fixed-width hex string.
      w.kv("trace_offset", btrace->byte_offset);
      w.kv("trace_time_bits", hex_bits(btrace->time_bits));
    }
    w.kv("vnf_count", static_cast<std::uint64_t>(e.vnfs_.size()));
    w.kv("node_count", static_cast<std::uint64_t>(e.node_free_.size()));

    const ServeConfig& c = e.config_;
    w.key("config");
    w.begin_object();
    w.kv("headroom", c.headroom);
    w.kv("rebalance_threshold", c.rebalance_threshold);
    w.kv("migration_budget", std::uint64_t{c.migration_budget});
    w.kv("queue_capacity", static_cast<std::uint64_t>(c.queue_capacity));
    w.key("link_latency");
    if (c.link_latency.has_value()) {
      w.value(*c.link_latency);
    } else {
      w.null();
    }
    w.kv("overload_window", static_cast<std::uint64_t>(c.overload_window));
    w.kv("overload_threshold", c.overload_threshold);
    w.kv("degraded_headroom", c.degraded_headroom);
    w.kv("retry_backoff_base", c.retry_backoff_base);
    w.kv("retry_budget", std::uint64_t{c.retry_budget});
    // Telemetry fields only when enabled, so telemetry-off checkpoints
    // stay byte-identical to the pre-telemetry format.
    if (c.snapshot_every > 0.0) {
      w.kv("snapshot_every", c.snapshot_every);
      w.kv("timeline_span", static_cast<std::uint64_t>(c.timeline_span));
    }
    if (c.lifecycle) w.kv("lifecycle", true);
    // Autoscale config only when the policy is on (same conditional-
    // emission rule as the telemetry fields above).
    if (c.autoscale.enabled()) {
      w.kv("autoscale_policy", to_string(c.autoscale.policy));
      w.kv("autoscale_interval", c.autoscale.scale_interval);
      w.kv("autoscale_high", c.autoscale.high_watermark);
      w.kv("autoscale_low", c.autoscale.low_watermark);
      w.kv("autoscale_cooldown", std::uint64_t{c.autoscale.cooldown_windows});
      w.kv("autoscale_step", std::uint64_t{c.autoscale.max_step});
      w.kv("autoscale_alpha", c.autoscale.ewma_alpha);
      w.kv("autoscale_forecast", c.autoscale.forecast_windows);
      w.kv("autoscale_margin", c.autoscale.safety_margin);
    }
    w.end_object();

    w.kv("last_time", e.last_time_);
    w.kv("saw_event", e.saw_event_);
    w.kv("next_seq", e.next_seq_);
    w.kv("work", e.work_);
    w.kv("served_integral", e.served_integral_);
    w.kv("offered_integral", e.offered_integral_);
    w.kv("degraded", e.degraded_);
    w.key("pressure_window");
    w.begin_array();
    for (const std::uint8_t b : e.pressure_window_) w.value(std::uint64_t{b});
    w.end_array();

    w.key("node_free");
    w.begin_array();
    for (const double f : e.node_free_) w.value(f);
    w.end_array();
    w.key("node_instances");
    w.begin_array();
    for (const std::uint32_t n : e.node_instances_) w.value(std::uint64_t{n});
    w.end_array();
    w.key("node_up");
    w.begin_array();
    for (const std::uint8_t u : e.node_up_) w.value(std::uint64_t{u});
    w.end_array();

    w.key("instances");
    w.begin_array();
    for (const ServeEngine::Instance& inst : e.instances_) {
      w.begin_object();
      w.kv("vnf", std::uint64_t{inst.vnf});
      w.kv("node", std::uint64_t{inst.node});
      w.kv("seq", inst.seq);
      w.kv("raw_load", inst.raw_load);
      w.kv("effective_load", inst.effective_load);
      w.kv("retired", inst.retired);
      // Written only when set, so off-runs (where it is always false)
      // serialize exactly as before.
      if (inst.draining) w.kv("draining", true);
      w.key("members");
      w.begin_array();
      for (const std::uint32_t id : inst.members) w.value(std::uint64_t{id});
      w.end_array();
      w.end_object();
    }
    w.end_array();

    w.key("live");
    w.begin_array();
    for (const auto& [id, r] : e.live_) {
      w.begin_object();
      write_pending(w, id, r.rate, r.prob, r.chain);
      w.key("hops");
      w.begin_array();
      for (const std::uint32_t slot : r.hop_instance) {
        w.value(std::uint64_t{slot});
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();

    w.key("queue");
    w.begin_array();
    for (const ServeEngine::PendingRequest& p : e.queue_) {
      w.begin_object();
      write_pending(w, p.id, p.rate, p.prob, p.chain);
      w.end_object();
    }
    w.end_array();

    w.key("retry");
    w.begin_array();
    for (const ServeEngine::RetryRequest& p : e.retry_queue_) {
      w.begin_object();
      write_pending(w, p.request.id, p.request.rate, p.request.prob,
                    p.request.chain);
      w.kv("not_before", p.not_before);
      w.kv("attempts", std::uint64_t{p.attempts});
      w.end_object();
    }
    w.end_array();

    w.key("gone");  // std::set — already ascending
    w.begin_array();
    for (const std::uint32_t id : e.gone_) w.value(std::uint64_t{id});
    w.end_array();

    const ServeSummary& t = e.totals_;
    w.key("totals");
    w.begin_object();
    w.kv("events", t.events);
    w.kv("arrivals", t.arrivals);
    w.kv("admitted", t.admitted);
    w.kv("admitted_from_queue", t.admitted_from_queue);
    w.kv("rejected", t.rejected);
    w.kv("departures", t.departures);
    w.kv("rate_changes", t.rate_changes);
    w.kv("shed", t.shed);
    w.kv("migrations", t.migrations);
    w.kv("rebalances", t.rebalances);
    w.kv("max_migrations_per_rebalance", t.max_migrations_per_rebalance);
    w.kv("scale_outs", t.scale_outs);
    w.kv("scale_ins", t.scale_ins);
    w.kv("node_downs", t.node_downs);
    w.kv("node_ups", t.node_ups);
    w.kv("instances_closed", t.instances_closed);
    w.kv("evacuated_requests", t.evacuated_requests);
    w.kv("evacuation_migrations", t.evacuation_migrations);
    w.kv("parked", t.parked);
    w.kv("retry_admitted", t.retry_admitted);
    w.kv("shed_fault", t.shed_fault);
    w.kv("shed_overload", t.shed_overload);
    w.kv("degradations", t.degradations);
    w.kv("degraded_events", t.degraded_events);
    w.end_object();

    w.key("log");
    w.begin_array();
    for (const EventOutcome& o : e.log_) {
      w.begin_object();
      w.kv("index", o.index);
      w.kv("t", o.time);
      w.kv("kind", std::uint64_t{static_cast<std::uint8_t>(o.kind)});
      w.kv("request", std::uint64_t{o.request});
      w.kv("decision", std::uint64_t{static_cast<std::uint8_t>(o.decision)});
      w.kv("migrations", std::uint64_t{o.migrations});
      w.kv("scale_outs", std::uint64_t{o.scale_outs});
      w.kv("scale_ins", std::uint64_t{o.scale_ins});
      w.kv("admitted_from_queue", std::uint64_t{o.admitted_from_queue});
      w.kv("evacuated", std::uint64_t{o.evacuated});
      w.kv("evacuation_migrations", std::uint64_t{o.evacuation_migrations});
      w.kv("parked", std::uint64_t{o.parked});
      w.kv("retry_admitted", std::uint64_t{o.retry_admitted});
      w.kv("shed_fault", std::uint64_t{o.shed_fault});
      w.kv("shed_overload", std::uint64_t{o.shed_overload});
      w.kv("degraded", o.degraded);
      w.kv("mean_predicted_latency", o.mean_predicted_latency);
      w.kv("p99_predicted_latency", o.p99_predicted_latency);
      w.end_object();
    }
    w.end_array();

    if (e.autoscale_on()) {
      w.key("autoscale");
      w.begin_object();
      w.kv("window", e.as_window_);
      w.kv("instance_seconds", e.instance_seconds_);
      w.kv("opened", e.as_opened_);
      w.kv("drained", e.as_drained_);
      const AutoscaleTotals& at = e.scaler_->totals();
      w.kv("decisions", at.decisions);
      w.kv("flaps", at.flaps);
      w.kv("blocked_cooldown", at.blocked_cooldown);
      w.key("vnf_states");
      w.begin_array();
      for (const VnfPolicyState& st : e.scaler_->vnf_states()) {
        w.begin_object();
        w.kv("ewma", st.ewma);
        w.kv("prev_ewma", st.prev_ewma);
        w.kv("seeded", st.seeded);
        w.kv("cooldown_until", st.cooldown_until);
        w.kv("last_sign", static_cast<std::int64_t>(st.last_sign));
        w.kv("last_action_window", st.last_action_window);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }

    if (e.timeline_on()) {
      w.key("timeline");
      w.begin_object();
      w.kv("window_index", e.window_index_);
      w.kv("win_served", e.win_served_);
      w.kv("win_offered", e.win_offered_);
      const ServeEngine::TimelineBaseline& b = e.win_base_;
      w.key("win_base");
      w.begin_object();
      w.kv("events", b.events);
      w.kv("admitted", b.admitted);
      w.kv("admitted_from_queue", b.admitted_from_queue);
      w.kv("retry_admitted", b.retry_admitted);
      w.kv("rejected", b.rejected);
      w.kv("shed", b.shed);
      w.kv("shed_fault", b.shed_fault);
      w.kv("shed_overload", b.shed_overload);
      w.kv("evacuated_requests", b.evacuated_requests);
      w.kv("parked", b.parked);
      w.kv("migrations", b.migrations);
      if (e.autoscale_on()) {
        w.kv("scale_outs", b.scale_outs);
        w.kv("scale_ins", b.scale_ins);
      }
      w.end_object();
      w.key("pending_since");  // std::map — already ascending by id
      w.begin_array();
      for (const auto& [id, since] : e.pending_since_) {
        w.begin_object();
        w.kv("id", std::uint64_t{id});
        w.kv("since", since);
        w.end_object();
      }
      w.end_array();
      const WindowedHistogram& wh = *e.wait_hist_;
      w.key("wait_hist");
      w.begin_object();
      w.kv("lo", wh.lo());
      w.kv("hi", wh.hi());
      w.kv("buckets", static_cast<std::uint64_t>(wh.bucket_count()));
      w.kv("span", static_cast<std::uint64_t>(wh.span()));
      w.key("windows");
      w.begin_array();
      for (std::size_t i = 0; i < wh.window_count(); ++i) {
        const Histogram& h = wh.window(i);
        w.begin_object();
        w.key("counts");
        w.begin_array();
        for (std::size_t bkt = 0; bkt < h.bucket_count(); ++bkt) {
          w.value(std::uint64_t{h.bucket(bkt)});
        }
        w.end_array();
        w.kv("underflow", std::uint64_t{h.underflow()});
        w.kv("overflow", std::uint64_t{h.overflow()});
        if (h.count() > 0) {
          w.kv("min", h.min());
          w.kv("max", h.max());
        }
        w.end_object();
      }
      w.end_array();
      w.end_object();
      w.key("rows");
      w.begin_array();
      for (const obs::TimelineRecord& r : e.timeline_rows_) {
        w.begin_object();
        w.kv("window", r.window);
        w.kv("t_start", r.t_start);
        w.kv("t_end", r.t_end);
        w.kv("events", r.events);
        w.kv("offered_rate", r.offered_rate);
        w.kv("carried_rate", r.carried_rate);
        w.kv("availability", r.availability);
        w.kv("live", r.live);
        w.kv("queued", r.queued);
        w.kv("retrying", r.retrying);
        w.kv("admitted", r.admitted);
        w.kv("admitted_from_queue", r.admitted_from_queue);
        w.kv("retry_admitted", r.retry_admitted);
        w.kv("rejected", r.rejected);
        w.kv("shed", r.shed);
        w.kv("evacuated", r.evacuated);
        w.kv("parked", r.parked);
        w.kv("migrations", r.migrations);
        w.kv("degraded", r.degraded);
        w.kv("nodes_down", r.nodes_down);
        w.key("node_util");
        w.begin_array();
        for (const double u : r.node_util) w.value(u);
        w.end_array();
        w.kv("wait_count", r.wait_count);
        w.kv("wait_p50", r.wait_p50);
        w.kv("wait_p90", r.wait_p90);
        w.kv("wait_p99", r.wait_p99);
        if (r.has_autoscale) {
          w.kv("instances", r.instances);
          w.kv("draining", r.draining);
          w.kv("scale_outs", r.scale_outs);
          w.kv("scale_ins", r.scale_ins);
        }
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }

    if (e.lifecycle_on()) {
      w.key("lifecycle");  // compact [index, t, request, stage, node, rung]
      w.begin_array();
      for (const obs::LifecycleEvent& ev : e.lifecycle_) {
        w.begin_array();
        w.value(ev.event_index);
        w.value(ev.time);
        w.value(std::uint64_t{ev.request});
        w.value(std::uint64_t{static_cast<std::uint8_t>(ev.stage)});
        w.value(std::uint64_t{ev.node});
        w.value(std::uint64_t{ev.rung});
        w.end_array();
      }
      w.end_array();
    }

    w.end_object();
    out << '\n';
  }

  static void apply(ServeEngine& e, const obs::JsonValue& doc) {
    if (get_uint(doc, "vnf_count") != e.vnfs_.size()) {
      ckpt_fail("vnf_count does not match the provided workload");
    }
    if (get_uint(doc, "node_count") != e.node_free_.size()) {
      ckpt_fail("node_count does not match the provided topology");
    }
    const std::uint64_t vnf_count = e.vnfs_.size();
    const std::uint64_t node_count = e.node_free_.size();

    e.last_time_ = get_double(doc, "last_time");
    e.saw_event_ = get_bool(doc, "saw_event");
    e.next_seq_ = get_uint(doc, "next_seq");
    e.work_ = get_uint(doc, "work");
    e.served_integral_ = get_double(doc, "served_integral");
    e.offered_integral_ = get_double(doc, "offered_integral");
    e.degraded_ = get_bool(doc, "degraded");
    e.pressure_window_.clear();
    for (const obs::JsonValue& b : get_array(doc, "pressure_window")) {
      if (!b.is_number()) ckpt_fail("pressure_window entries must be 0/1");
      e.pressure_window_.push_back(b.as_number() != 0.0 ? 1 : 0);
    }

    const auto& node_free = get_array(doc, "node_free");
    const auto& node_instances = get_array(doc, "node_instances");
    const auto& node_up = get_array(doc, "node_up");
    if (node_free.size() != node_count || node_instances.size() != node_count ||
        node_up.size() != node_count) {
      ckpt_fail("node arrays must have node_count entries");
    }
    for (std::size_t v = 0; v < node_count; ++v) {
      if (!node_free[v].is_number() || !node_instances[v].is_number() ||
          !node_up[v].is_number()) {
        ckpt_fail("node arrays must hold numbers");
      }
      e.node_free_[v] = node_free[v].as_number();
      e.node_instances_[v] =
          static_cast<std::uint32_t>(node_instances[v].as_number());
      e.node_up_[v] = node_up[v].as_number() != 0.0 ? 1 : 0;
    }

    e.instances_.clear();
    for (auto& act : e.active_of_vnf_) act.clear();
    for (const obs::JsonValue& j : get_array(doc, "instances")) {
      if (!j.is_object()) ckpt_fail("instance entries must be objects");
      ServeEngine::Instance inst;
      const std::uint64_t vnf = get_uint(j, "vnf");
      const std::uint64_t node = get_uint(j, "node");
      if (vnf >= vnf_count) ckpt_fail("instance vnf out of range");
      if (node >= node_count) ckpt_fail("instance node out of range");
      inst.vnf = static_cast<std::uint32_t>(vnf);
      inst.node = static_cast<std::uint32_t>(node);
      inst.seq = get_uint(j, "seq");
      inst.raw_load = get_double(j, "raw_load");
      inst.effective_load = get_double(j, "effective_load");
      inst.retired = get_bool(j, "retired");
      if (j.find("draining") != nullptr) {
        if (!e.autoscale_on()) {
          ckpt_fail("instance is draining but autoscaling is off");
        }
        inst.draining = get_bool(j, "draining");
        if (inst.draining && inst.retired) {
          ckpt_fail("instance cannot be both draining and retired");
        }
      }
      inst.members = get_u32_vector(
          j, "members", std::numeric_limits<std::uint32_t>::max());
      const auto slot = static_cast<std::uint32_t>(e.instances_.size());
      if (!inst.retired) e.active_of_vnf_[inst.vnf].push_back(slot);
      e.instances_.push_back(std::move(inst));
    }

    e.live_.clear();
    for (const obs::JsonValue& j : get_array(doc, "live")) {
      if (!j.is_object()) ckpt_fail("live entries must be objects");
      const auto id = static_cast<std::uint32_t>(get_uint(j, "id"));
      ServeEngine::LiveRequest r;
      r.rate = get_double(j, "rate");
      r.prob = get_double(j, "prob");
      r.chain = get_u32_vector(j, "chain", vnf_count);
      r.hop_instance = get_u32_vector(j, "hops", e.instances_.size());
      if (r.hop_instance.size() != r.chain.size()) {
        ckpt_fail("live request hops/chain size mismatch");
      }
      for (const std::uint32_t slot : r.hop_instance) {
        if (e.instances_[slot].retired) {
          ckpt_fail("live request bound to a retired instance");
        }
      }
      if (!e.live_.emplace(id, std::move(r)).second) {
        ckpt_fail("duplicate live request id");
      }
    }

    const auto read_pending = [&](const obs::JsonValue& j) {
      if (!j.is_object()) ckpt_fail("queue entries must be objects");
      ServeEngine::PendingRequest p;
      p.id = static_cast<std::uint32_t>(get_uint(j, "id"));
      p.rate = get_double(j, "rate");
      p.prob = get_double(j, "prob");
      p.chain = get_u32_vector(j, "chain", vnf_count);
      return p;
    };
    e.queue_.clear();
    for (const obs::JsonValue& j : get_array(doc, "queue")) {
      e.queue_.push_back(read_pending(j));
    }
    e.retry_queue_.clear();
    for (const obs::JsonValue& j : get_array(doc, "retry")) {
      ServeEngine::RetryRequest r;
      r.request = read_pending(j);
      r.not_before = get_uint(j, "not_before");
      r.attempts = static_cast<std::uint32_t>(get_uint(j, "attempts"));
      e.retry_queue_.push_back(std::move(r));
    }
    e.gone_.clear();
    for (const std::uint32_t id : get_u32_vector(
             doc, "gone", std::numeric_limits<std::uint32_t>::max())) {
      e.gone_.insert(id);
    }

    const obs::JsonValue& t = get_object(doc, "totals");
    ServeSummary& s = e.totals_;
    s.events = get_uint(t, "events");
    s.arrivals = get_uint(t, "arrivals");
    s.admitted = get_uint(t, "admitted");
    s.admitted_from_queue = get_uint(t, "admitted_from_queue");
    s.rejected = get_uint(t, "rejected");
    s.departures = get_uint(t, "departures");
    s.rate_changes = get_uint(t, "rate_changes");
    s.shed = get_uint(t, "shed");
    s.migrations = get_uint(t, "migrations");
    s.rebalances = get_uint(t, "rebalances");
    s.max_migrations_per_rebalance =
        get_uint(t, "max_migrations_per_rebalance");
    s.scale_outs = get_uint(t, "scale_outs");
    s.scale_ins = get_uint(t, "scale_ins");
    s.node_downs = get_uint(t, "node_downs");
    s.node_ups = get_uint(t, "node_ups");
    s.instances_closed = get_uint(t, "instances_closed");
    s.evacuated_requests = get_uint(t, "evacuated_requests");
    s.evacuation_migrations = get_uint(t, "evacuation_migrations");
    s.parked = get_uint(t, "parked");
    s.retry_admitted = get_uint(t, "retry_admitted");
    s.shed_fault = get_uint(t, "shed_fault");
    s.shed_overload = get_uint(t, "shed_overload");
    s.degradations = get_uint(t, "degradations");
    s.degraded_events = get_uint(t, "degraded_events");

    e.log_.clear();
    for (const obs::JsonValue& j : get_array(doc, "log")) {
      if (!j.is_object()) ckpt_fail("log entries must be objects");
      EventOutcome o;
      o.index = get_uint(j, "index");
      o.time = get_double(j, "t");
      const std::uint64_t kind = get_uint(j, "kind");
      if (kind > static_cast<std::uint64_t>(
                     workload::StreamEventKind::kNodeUp)) {
        ckpt_fail("log entry kind out of range");
      }
      o.kind = static_cast<workload::StreamEventKind>(kind);
      o.request = static_cast<std::uint32_t>(get_uint(j, "request"));
      const std::uint64_t decision = get_uint(j, "decision");
      if (decision > static_cast<std::uint64_t>(Decision::kNodeUp)) {
        ckpt_fail("log entry decision out of range");
      }
      o.decision = static_cast<Decision>(decision);
      o.migrations = static_cast<std::uint32_t>(get_uint(j, "migrations"));
      o.scale_outs = static_cast<std::uint32_t>(get_uint(j, "scale_outs"));
      o.scale_ins = static_cast<std::uint32_t>(get_uint(j, "scale_ins"));
      o.admitted_from_queue =
          static_cast<std::uint32_t>(get_uint(j, "admitted_from_queue"));
      o.evacuated = static_cast<std::uint32_t>(get_uint(j, "evacuated"));
      o.evacuation_migrations =
          static_cast<std::uint32_t>(get_uint(j, "evacuation_migrations"));
      o.parked = static_cast<std::uint32_t>(get_uint(j, "parked"));
      o.retry_admitted =
          static_cast<std::uint32_t>(get_uint(j, "retry_admitted"));
      o.shed_fault = static_cast<std::uint32_t>(get_uint(j, "shed_fault"));
      o.shed_overload =
          static_cast<std::uint32_t>(get_uint(j, "shed_overload"));
      o.degraded = get_bool(j, "degraded");
      o.mean_predicted_latency = get_double(j, "mean_predicted_latency");
      o.p99_predicted_latency = get_double(j, "p99_predicted_latency");
      e.log_.push_back(o);
    }

    const bool has_timeline = doc.find("timeline") != nullptr;
    if (has_timeline != e.timeline_on()) {
      ckpt_fail(has_timeline
                    ? "timeline state present but config disables the timeline"
                    : "config enables the timeline but state is missing");
    }
    if (has_timeline) apply_timeline(e, get_object(doc, "timeline"));

    const bool has_autoscale = doc.find("autoscale") != nullptr;
    if (has_autoscale != e.autoscale_on()) {
      ckpt_fail(has_autoscale
                    ? "autoscale state present but config disables autoscaling"
                    : "config enables autoscaling but state is missing");
    }
    if (has_autoscale) {
      const obs::JsonValue& a = get_object(doc, "autoscale");
      e.as_window_ = get_uint(a, "window");
      e.instance_seconds_ = get_double(a, "instance_seconds");
      e.as_opened_ = get_uint(a, "opened");
      e.as_drained_ = get_uint(a, "drained");
      AutoscaleTotals at;
      at.decisions = get_uint(a, "decisions");
      at.flaps = get_uint(a, "flaps");
      at.blocked_cooldown = get_uint(a, "blocked_cooldown");
      std::vector<VnfPolicyState> states;
      for (const obs::JsonValue& j : get_array(a, "vnf_states")) {
        if (!j.is_object()) ckpt_fail("vnf_states entries must be objects");
        VnfPolicyState st;
        st.ewma = get_double(j, "ewma");
        st.prev_ewma = get_double(j, "prev_ewma");
        st.seeded = get_bool(j, "seeded");
        st.cooldown_until = get_uint(j, "cooldown_until");
        const double sign = get_double(j, "last_sign");
        if (sign != -1.0 && sign != 0.0 && sign != 1.0) {
          ckpt_fail("vnf_states last_sign must be -1, 0, or 1");
        }
        st.last_sign = static_cast<std::int8_t>(sign);
        st.last_action_window = get_uint(j, "last_action_window");
        states.push_back(st);
      }
      if (states.size() != vnf_count) {
        ckpt_fail("vnf_states must have vnf_count entries");
      }
      e.scaler_->restore(std::move(states), at);
    }

    const bool has_lifecycle = doc.find("lifecycle") != nullptr;
    if (has_lifecycle != e.lifecycle_on()) {
      ckpt_fail(has_lifecycle
                    ? "lifecycle log present but config disables it"
                    : "config enables the lifecycle log but it is missing");
    }
    e.lifecycle_.clear();
    if (has_lifecycle) {
      for (const obs::JsonValue& j : get_array(doc, "lifecycle")) {
        if (!j.is_array() || j.as_array().size() != 6) {
          ckpt_fail("lifecycle entries must be 6-element arrays");
        }
        const auto& a = j.as_array();
        const auto tuple_uint = [&](std::size_t i) {
          if (!a[i].is_number() || a[i].as_number() < 0.0 ||
              a[i].as_number() != std::floor(a[i].as_number()) ||
              a[i].as_number() > 1.8e19) {
            ckpt_fail("lifecycle tuple fields must be non-negative integers");
          }
          return static_cast<std::uint64_t>(a[i].as_number());
        };
        obs::LifecycleEvent ev;
        ev.event_index = tuple_uint(0);
        if (!a[1].is_number() || !std::isfinite(a[1].as_number())) {
          ckpt_fail("lifecycle tuple time must be a finite number");
        }
        ev.time = a[1].as_number();
        const std::uint64_t request = tuple_uint(2);
        const std::uint64_t stage = tuple_uint(3);
        const std::uint64_t node = tuple_uint(4);
        const std::uint64_t rung = tuple_uint(5);
        if (request > std::numeric_limits<std::uint32_t>::max() ||
            node > std::numeric_limits<std::uint32_t>::max() ||
            rung > std::numeric_limits<std::uint32_t>::max()) {
          ckpt_fail("lifecycle tuple id fields are out of range");
        }
        if (stage > static_cast<std::uint64_t>(obs::LifecycleStage::kDepart)) {
          ckpt_fail("lifecycle tuple stage is out of range");
        }
        ev.request = static_cast<std::uint32_t>(request);
        ev.stage = static_cast<obs::LifecycleStage>(stage);
        ev.node = static_cast<std::uint32_t>(node);
        ev.rung = static_cast<std::uint32_t>(rung);
        e.lifecycle_.push_back(ev);
      }
    }
  }

  static void apply_timeline(ServeEngine& e, const obs::JsonValue& tl) {
    e.window_index_ = get_uint(tl, "window_index");
    e.win_served_ = get_double(tl, "win_served");
    e.win_offered_ = get_double(tl, "win_offered");

    const obs::JsonValue& b = get_object(tl, "win_base");
    ServeEngine::TimelineBaseline base;
    base.events = get_uint(b, "events");
    base.admitted = get_uint(b, "admitted");
    base.admitted_from_queue = get_uint(b, "admitted_from_queue");
    base.retry_admitted = get_uint(b, "retry_admitted");
    base.rejected = get_uint(b, "rejected");
    base.shed = get_uint(b, "shed");
    base.shed_fault = get_uint(b, "shed_fault");
    base.shed_overload = get_uint(b, "shed_overload");
    base.evacuated_requests = get_uint(b, "evacuated_requests");
    base.parked = get_uint(b, "parked");
    base.migrations = get_uint(b, "migrations");
    if (b.find("scale_outs") != nullptr) {
      base.scale_outs = get_uint(b, "scale_outs");
      base.scale_ins = get_uint(b, "scale_ins");
    }
    e.win_base_ = base;

    e.pending_since_.clear();
    for (const obs::JsonValue& j : get_array(tl, "pending_since")) {
      if (!j.is_object()) ckpt_fail("pending_since entries must be objects");
      const auto id = static_cast<std::uint32_t>(get_uint(j, "id"));
      if (!e.pending_since_.emplace(id, get_double(j, "since")).second) {
        ckpt_fail("duplicate pending_since id");
      }
    }

    const obs::JsonValue& wj = get_object(tl, "wait_hist");
    WindowedHistogram& wh = *e.wait_hist_;
    if (get_double(wj, "lo") != wh.lo() || get_double(wj, "hi") != wh.hi() ||
        get_uint(wj, "buckets") != wh.bucket_count() ||
        get_uint(wj, "span") != wh.span()) {
      ckpt_fail("wait_hist geometry does not match the embedded config");
    }
    std::deque<Histogram> slots;
    for (const obs::JsonValue& j : get_array(wj, "windows")) {
      if (!j.is_object()) ckpt_fail("wait_hist windows must be objects");
      const auto& counts_json = get_array(j, "counts");
      std::vector<std::size_t> counts;
      counts.reserve(counts_json.size());
      for (const obs::JsonValue& cj : counts_json) {
        if (!cj.is_number() || cj.as_number() < 0.0 ||
            cj.as_number() != std::floor(cj.as_number())) {
          ckpt_fail("wait_hist counts must be non-negative integers");
        }
        counts.push_back(static_cast<std::size_t>(cj.as_number()));
      }
      const auto underflow =
          static_cast<std::size_t>(get_uint(j, "underflow"));
      const auto overflow = static_cast<std::size_t>(get_uint(j, "overflow"));
      const bool has_samples = j.find("min") != nullptr;
      const double mn = has_samples ? get_double(j, "min") : 0.0;
      const double mx = has_samples ? get_double(j, "max") : 0.0;
      Histogram h(wh.lo(), wh.hi(), wh.bucket_count());
      try {
        h.restore(counts, underflow, overflow, mn, mx);
      } catch (const std::exception& ex) {
        ckpt_fail(std::string("invalid wait_hist window: ") + ex.what());
      }
      if ((h.count() > 0) != has_samples) {
        ckpt_fail("wait_hist window min/max presence mismatch");
      }
      slots.push_back(std::move(h));
    }
    try {
      wh.restore(std::move(slots));
    } catch (const std::exception& ex) {
      ckpt_fail(std::string("invalid wait_hist state: ") + ex.what());
    }

    e.timeline_rows_.clear();
    const std::size_t node_count = e.node_free_.size();
    for (const obs::JsonValue& j : get_array(tl, "rows")) {
      if (!j.is_object()) ckpt_fail("timeline rows must be objects");
      obs::TimelineRecord r;
      r.window = get_uint(j, "window");
      r.t_start = get_double(j, "t_start");
      r.t_end = get_double(j, "t_end");
      r.events = get_uint(j, "events");
      r.offered_rate = get_double(j, "offered_rate");
      r.carried_rate = get_double(j, "carried_rate");
      r.availability = get_double(j, "availability");
      r.live = get_uint(j, "live");
      r.queued = get_uint(j, "queued");
      r.retrying = get_uint(j, "retrying");
      r.admitted = get_uint(j, "admitted");
      r.admitted_from_queue = get_uint(j, "admitted_from_queue");
      r.retry_admitted = get_uint(j, "retry_admitted");
      r.rejected = get_uint(j, "rejected");
      r.shed = get_uint(j, "shed");
      r.evacuated = get_uint(j, "evacuated");
      r.parked = get_uint(j, "parked");
      r.migrations = get_uint(j, "migrations");
      r.degraded = get_bool(j, "degraded");
      r.nodes_down = get_uint(j, "nodes_down");
      for (const obs::JsonValue& u : get_array(j, "node_util")) {
        if (!u.is_number()) ckpt_fail("node_util entries must be numbers");
        r.node_util.push_back(u.as_number());
      }
      if (r.node_util.size() != node_count) {
        ckpt_fail("timeline row node_util must have node_count entries");
      }
      r.wait_count = get_uint(j, "wait_count");
      r.wait_p50 = get_double(j, "wait_p50");
      r.wait_p90 = get_double(j, "wait_p90");
      r.wait_p99 = get_double(j, "wait_p99");
      if (j.find("instances") != nullptr) {
        r.has_autoscale = true;
        r.instances = get_uint(j, "instances");
        r.draining = get_uint(j, "draining");
        r.scale_outs = get_uint(j, "scale_outs");
        r.scale_ins = get_uint(j, "scale_ins");
      }
      e.timeline_rows_.push_back(std::move(r));
    }
  }
};

void save_checkpoint(const ServeEngine& engine, std::uint64_t cursor,
                     std::ostream& out, const BinaryTraceCursor* btrace) {
  CheckpointIo::save(engine, cursor, out, btrace);
}

std::string save_checkpoint_string(const ServeEngine& engine,
                                   std::uint64_t cursor,
                                   const BinaryTraceCursor* btrace) {
  std::ostringstream os;
  save_checkpoint(engine, cursor, os, btrace);
  return os.str();
}

CheckpointInfo peek_checkpoint(std::string_view text) {
  const obs::JsonValue doc = parse_document(text);
  CheckpointInfo info;
  info.cursor = get_uint(doc, "cursor");
  info.has_btrace_cursor = read_btrace_cursor(doc, &info.btrace);
  info.vnf_count = get_uint(doc, "vnf_count");
  info.node_count = get_uint(doc, "node_count");
  info.live_requests = get_array(doc, "live").size();
  info.logged_events = get_array(doc, "log").size();

  // Full structural sweep: re-run the state walk against a throwaway
  // engine sized from the document itself, so the fuzz target exercises
  // every branch of the deserializer without needing a real topology.
  if (info.vnf_count == 0 || info.vnf_count > 4096 ||
      info.node_count == 0 || info.node_count > 4096) {
    return info;  // no plausible engine shape to validate against
  }
  topo::Topology topo;
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(info.node_count));
  for (std::uint64_t v = 0; v < info.node_count; ++v) {
    ids.push_back(topo.add_compute(1.0));
  }
  // Star links: freeze() requires a connected compute graph, and the probe
  // never looks at latencies (the restored config pins link_latency).
  for (std::size_t i = 1; i < ids.size(); ++i) {
    topo.connect_nodes(ids[0], ids[i], 0.0);
  }
  topo.freeze();
  std::vector<workload::Vnf> vnfs(static_cast<std::size_t>(info.vnf_count));
  for (auto& f : vnfs) {
    f.demand_per_instance = 1.0;
    f.service_rate = 1.0;
  }
  ServeConfig probe_config;
  probe_config.link_latency = 0.0;
  // Honour the telemetry switches so apply() exercises (and validates) the
  // timeline/lifecycle state walk too.
  const obs::JsonValue* config_json = doc.find("config");
  if (config_json != nullptr && config_json->is_object()) {
    read_telemetry_config(*config_json, probe_config);
    read_autoscale_config(*config_json, probe_config);
  }
  ServeEngine probe(std::move(topo), std::move(vnfs), probe_config);
  CheckpointIo::apply(probe, doc);
  return info;
}

ServeEngine restore_checkpoint(std::string_view text, topo::Topology topology,
                               std::vector<workload::Vnf> vnfs,
                               std::uint64_t* cursor,
                               BinaryTraceCursor* btrace, bool* has_btrace) {
  const obs::JsonValue doc = parse_document(text);
  const std::uint64_t at = get_uint(doc, "cursor");
  const bool btrace_present = read_btrace_cursor(doc, btrace);
  if (has_btrace != nullptr) *has_btrace = btrace_present;

  const obs::JsonValue& c = get_object(doc, "config");
  ServeConfig config;
  config.headroom = get_double(c, "headroom");
  config.rebalance_threshold = get_double(c, "rebalance_threshold");
  config.migration_budget =
      static_cast<std::uint32_t>(get_uint(c, "migration_budget"));
  config.queue_capacity =
      static_cast<std::size_t>(get_uint(c, "queue_capacity"));
  const obs::JsonValue& link = member(c, "link_latency");
  if (link.is_number()) {
    config.link_latency = link.as_number();
  } else if (!link.is_null()) {
    ckpt_fail("config.link_latency must be a number or null");
  }
  config.overload_window =
      static_cast<std::size_t>(get_uint(c, "overload_window"));
  config.overload_threshold = get_double(c, "overload_threshold");
  config.degraded_headroom = get_double(c, "degraded_headroom");
  config.retry_backoff_base = get_uint(c, "retry_backoff_base");
  config.retry_budget =
      static_cast<std::uint32_t>(get_uint(c, "retry_budget"));
  read_telemetry_config(c, config);
  read_autoscale_config(c, config);
  try {
    config.validate();
  } catch (const std::invalid_argument& e) {
    ckpt_fail(std::string("embedded config is invalid: ") + e.what());
  }

  ServeEngine engine(std::move(topology), std::move(vnfs), config);
  CheckpointIo::apply(engine, doc);
  if (cursor != nullptr) *cursor = at;
  return engine;
}

}  // namespace nfv::serve
