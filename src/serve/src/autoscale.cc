#include "nfv/serve/autoscale.h"

#include <algorithm>

#include "nfv/common/error.h"

namespace nfv::serve {

ScalingController::ScalingController(AutoscaleConfig config,
                                     std::size_t vnf_count)
    : config_(config), states_(vnf_count), deltas_(vnf_count, 0) {
  config_.validate();
}

void ScalingController::restore(std::vector<VnfPolicyState> states,
                                AutoscaleTotals totals) {
  NFV_CHECK(states.size() == states_.size());
  states_ = std::move(states);
  totals_ = totals;
}

const std::vector<std::int32_t>& ScalingController::on_window(
    std::uint64_t window, const std::vector<VnfObservation>& observations) {
  NFV_CHECK(enabled());
  NFV_CHECK(observations.size() == states_.size());
  ++totals_.decisions;
  // An A→B→A reversal this close together is a flap: the damping knobs
  // (hysteresis band, cooldown) exist to keep this counter at zero.
  const std::uint64_t flap_guard =
      std::max<std::uint64_t>(1, 2 * config_.cooldown_windows);
  const std::int32_t step = static_cast<std::int32_t>(config_.max_step);
  for (std::size_t f = 0; f < observations.size(); ++f) {
    const VnfObservation& obs = observations[f];
    VnfPolicyState& st = states_[f];
    // The forecaster advances every window, acted on or not, so the EWMA
    // is a pure function of the observation sequence.
    if (!st.seeded) {
      st.ewma = obs.offered;
      st.prev_ewma = obs.offered;
      st.seeded = true;
    } else {
      st.prev_ewma = st.ewma;
      st.ewma = config_.ewma_alpha * obs.offered +
                (1.0 - config_.ewma_alpha) * st.ewma;
    }
    std::int32_t delta = config_.policy == ScalePolicy::kReactive
                             ? reactive_delta(config_, obs)
                             : predictive_delta(config_, obs, st);
    if (delta != 0 && window < st.cooldown_until) {
      ++totals_.blocked_cooldown;
      delta = 0;
    }
    delta = std::clamp(delta, -step, step);
    // Never drain below one instance while demand exists: the engine's
    // reactive scale-out would only reopen it next arrival.
    if (delta < 0 && (obs.offered > 0.0 || obs.waiting > 0)) {
      const std::int32_t floor_delta =
          1 - static_cast<std::int32_t>(obs.instances);
      delta = std::max(delta, std::min(0, floor_delta));
    }
    if (delta != 0) {
      const std::int8_t sign = delta > 0 ? std::int8_t{1} : std::int8_t{-1};
      if (st.last_sign != 0 && sign != st.last_sign &&
          window - st.last_action_window <= flap_guard) {
        ++totals_.flaps;
      }
      st.last_sign = sign;
      st.last_action_window = window;
      st.cooldown_until = window + config_.cooldown_windows + 1;
    }
    deltas_[f] = delta;
  }
  return deltas_;
}

}  // namespace nfv::serve
