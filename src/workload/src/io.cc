#include "nfv/workload/io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace nfv::workload {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw WorkloadParseError("workload parse error at line " +
                           std::to_string(line) + ": " + message);
}

double parse_double(std::size_t line, const std::string& token,
                    const char* what) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) {
    fail(line, std::string("bad ") + what + " '" + token + "'");
  }
  return value;
}

std::uint32_t parse_u32(std::size_t line, const std::string& token,
                        const char* what) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(token.c_str(), &end, 10);
  if (token.empty() || end != token.c_str() + token.size() ||
      value > 0xffffffffUL) {
    fail(line, std::string("bad ") + what + " '" + token + "'");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

Workload load_workload(std::istream& in) {
  Workload w;
  std::string line;
  std::size_t line_number = 0;
  bool seen_request = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;
    if (keyword == "vnf") {
      if (seen_request) fail(line_number, "vnf declared after requests");
      std::string name;
      std::string catalog;
      std::string demand;
      std::string instances;
      std::string mu;
      if (!(tokens >> name >> catalog >> demand >> instances >> mu)) {
        fail(line_number,
             "expected 'vnf <name> <catalog> <demand> <instances> <mu>'");
      }
      Vnf f;
      f.id = VnfId{static_cast<std::uint32_t>(w.vnfs.size())};
      f.name = name;
      f.catalog_index = parse_u32(line_number, catalog, "catalog index");
      f.demand_per_instance = parse_double(line_number, demand, "demand");
      f.instance_count = parse_u32(line_number, instances, "instance count");
      f.service_rate = parse_double(line_number, mu, "service rate");
      if (f.demand_per_instance <= 0.0) {
        fail(line_number, "demand must be positive");
      }
      if (f.instance_count == 0) {
        fail(line_number, "instance count must be positive");
      }
      if (f.service_rate <= 0.0) {
        fail(line_number, "service rate must be positive");
      }
      w.vnfs.push_back(std::move(f));
    } else if (keyword == "request") {
      seen_request = true;
      std::string lambda;
      std::string prob;
      if (!(tokens >> lambda >> prob)) {
        fail(line_number,
             "expected 'request <lambda> <P> <vnf-index> ...'");
      }
      Request r;
      r.id = RequestId{static_cast<std::uint32_t>(w.requests.size())};
      r.arrival_rate = parse_double(line_number, lambda, "arrival rate");
      r.delivery_prob = parse_double(line_number, prob, "delivery prob");
      if (r.arrival_rate <= 0.0) {
        fail(line_number, "arrival rate must be positive");
      }
      if (r.delivery_prob <= 0.0 || r.delivery_prob > 1.0) {
        fail(line_number, "delivery probability must be in (0, 1]");
      }
      std::string index_token;
      while (tokens >> index_token) {
        const std::uint32_t f =
            parse_u32(line_number, index_token, "vnf index");
        if (f >= w.vnfs.size()) {
          fail(line_number,
               "vnf index " + index_token + " out of range (have " +
                   std::to_string(w.vnfs.size()) + " vnfs)");
        }
        for (const VnfId existing : r.chain) {
          if (existing.value() == f) {
            fail(line_number, "duplicate vnf " + index_token + " in chain");
          }
        }
        r.chain.emplace_back(f);
      }
      if (r.chain.empty()) fail(line_number, "request has an empty chain");
      w.requests.push_back(std::move(r));
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
  }
  if (w.vnfs.empty()) throw WorkloadParseError("workload has no vnfs");
  if (w.requests.empty()) {
    throw WorkloadParseError("workload has no requests");
  }
  return w;
}

Workload load_workload_string(const std::string& text) {
  std::istringstream in(text);
  return load_workload(in);
}

void save_workload(const Workload& w, std::ostream& out) {
  for (const Vnf& f : w.vnfs) {
    out << "vnf " << f.name << ' ' << f.catalog_index << ' '
        << f.demand_per_instance << ' ' << f.instance_count << ' '
        << f.service_rate << '\n';
  }
  for (const Request& r : w.requests) {
    out << "request " << r.arrival_rate << ' ' << r.delivery_prob;
    for (const VnfId f : r.chain) out << ' ' << f.value();
    out << '\n';
  }
}

std::string save_workload_string(const Workload& w) {
  std::ostringstream out;
  // Full round-trip precision for rates sampled from continuous
  // distributions.
  out.precision(17);
  save_workload(w, out);
  return out.str();
}

}  // namespace nfv::workload
