#include "nfv/workload/trace.h"

#include <algorithm>
#include <cmath>

#include "nfv/common/error.h"

namespace nfv::workload {

LognormalTraceSampler::LognormalTraceSampler(Params params) : params_(params) {
  NFV_REQUIRE(params_.median_interarrival > 0.0);
  NFV_REQUIRE(params_.sigma_log >= 0.0);
  NFV_REQUIRE(params_.rate_min > 0.0);
  NFV_REQUIRE(params_.rate_max >= params_.rate_min);
}

double LognormalTraceSampler::sample_rate(Rng& rng) const {
  const double interarrival =
      rng.lognormal(std::log(params_.median_interarrival), params_.sigma_log);
  return std::clamp(1.0 / interarrival, params_.rate_min, params_.rate_max);
}

double LognormalTraceSampler::sample_interarrival(double rate,
                                                  Rng& rng) const {
  NFV_REQUIRE(rate > 0.0);
  return rng.exponential(rate);
}

EmpiricalRateSampler::EmpiricalRateSampler(
    std::span<const double> observed_rates)
    : sorted_(observed_rates.begin(), observed_rates.end()) {
  NFV_REQUIRE(!sorted_.empty());
  for (const double r : sorted_) NFV_REQUIRE(r > 0.0);
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalRateSampler::sample_rate(Rng& rng) const {
  if (sorted_.size() == 1) return sorted_.front();
  const double pos =
      rng.uniform() * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

}  // namespace nfv::workload
