#include "nfv/workload/catalog.h"

#include <array>

namespace nfv::workload {

std::string_view to_string(VnfCategory c) {
  switch (c) {
    case VnfCategory::kSecurity: return "security";
    case VnfCategory::kGateway: return "gateway";
    case VnfCategory::kLoadBalancing: return "load-balancing";
    case VnfCategory::kWanOptimization: return "wan-optimization";
    case VnfCategory::kMonitoring: return "monitoring";
    case VnfCategory::kTrafficShaping: return "traffic-shaping";
    case VnfCategory::kProxyCache: return "proxy-cache";
    case VnfCategory::kMobileCore: return "mobile-core";
    case VnfCategory::kRouting: return "routing";
  }
  return "unknown";
}

namespace {

// Demand ranges reflect relative CPU weight: DPI/IDS-class functions are the
// heaviest, stateless forwarding the lightest.  Service rates span the
// 10 kpps–1.5 Mpps range of Sec. V-A.2.
constexpr std::array<VnfType, 30> kCatalog{{
    // The paper's core six come first (see core_six_indices()).
    {"NAT", VnfCategory::kGateway, 20, 80, 3.0e5, 1.5e6},
    {"FW", VnfCategory::kSecurity, 30, 120, 2.0e5, 1.0e6},
    {"IDS", VnfCategory::kSecurity, 80, 300, 5.0e4, 3.0e5},
    {"LB", VnfCategory::kLoadBalancing, 20, 100, 3.0e5, 1.2e6},
    {"WANOpt", VnfCategory::kWanOptimization, 60, 250, 8.0e4, 4.0e5},
    {"FlowMonitor", VnfCategory::kMonitoring, 15, 60, 4.0e5, 1.5e6},
    // Security.
    {"IPS", VnfCategory::kSecurity, 90, 320, 5.0e4, 2.5e5},
    {"DPI", VnfCategory::kSecurity, 100, 350, 4.0e4, 2.0e5},
    {"AntiDDoS", VnfCategory::kSecurity, 70, 260, 1.0e5, 5.0e5},
    {"VPNGateway", VnfCategory::kSecurity, 50, 200, 1.0e5, 6.0e5},
    // Gateways.
    {"IPv6Gateway", VnfCategory::kGateway, 25, 90, 2.5e5, 1.2e6},
    {"GTPTunnel", VnfCategory::kGateway, 30, 110, 2.0e5, 9.0e5},
    {"CarrierNAT", VnfCategory::kGateway, 40, 150, 1.5e5, 8.0e5},
    // Load balancing.
    {"L7LB", VnfCategory::kLoadBalancing, 50, 180, 1.0e5, 5.0e5},
    {"GSLB", VnfCategory::kLoadBalancing, 25, 90, 2.5e5, 1.0e6},
    // WAN optimization.
    {"Dedup", VnfCategory::kWanOptimization, 80, 280, 6.0e4, 3.0e5},
    {"Compression", VnfCategory::kWanOptimization, 60, 220, 8.0e4, 4.0e5},
    // Monitoring.
    {"NetFlowProbe", VnfCategory::kMonitoring, 15, 55, 4.0e5, 1.5e6},
    {"SLAMonitor", VnfCategory::kMonitoring, 10, 45, 5.0e5, 1.5e6},
    {"PacketCapture", VnfCategory::kMonitoring, 30, 120, 2.0e5, 8.0e5},
    // Traffic shaping.
    {"QoSShaper", VnfCategory::kTrafficShaping, 20, 80, 3.0e5, 1.2e6},
    {"RateLimiter", VnfCategory::kTrafficShaping, 15, 60, 4.0e5, 1.5e6},
    {"Policer", VnfCategory::kTrafficShaping, 15, 60, 4.0e5, 1.5e6},
    // Proxy / cache.
    {"HTTPProxy", VnfCategory::kProxyCache, 45, 170, 1.2e5, 6.0e5},
    {"CDNCache", VnfCategory::kProxyCache, 55, 210, 1.0e5, 5.0e5},
    // Mobile core.
    {"vMME", VnfCategory::kMobileCore, 40, 160, 1.5e5, 7.0e5},
    {"vSGW", VnfCategory::kMobileCore, 45, 170, 1.5e5, 7.0e5},
    {"vPGW", VnfCategory::kMobileCore, 45, 170, 1.5e5, 7.0e5},
    // Routing.
    {"vRouter", VnfCategory::kRouting, 25, 100, 3.0e5, 1.5e6},
    {"vBRAS", VnfCategory::kRouting, 55, 200, 1.0e5, 5.0e5},
}};

constexpr std::array<std::uint32_t, 6> kCoreSix{0, 1, 2, 3, 4, 5};

}  // namespace

std::span<const VnfType> vnf_catalog() { return kCatalog; }

std::span<const std::uint32_t> core_six_indices() { return kCoreSix; }

}  // namespace nfv::workload
