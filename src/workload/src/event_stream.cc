#include "nfv/workload/event_stream.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "nfv/common/error.h"
#include "nfv/obs/json.h"
#include "nfv/workload/trace.h"

namespace nfv::workload {

namespace {

[[noreturn]] void fail(std::size_t event_index, const std::string& what) {
  throw TraceParseError("trace event " + std::to_string(event_index) + ": " +
                        what);
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

std::string_view to_string(StreamEventKind kind) {
  switch (kind) {
    case StreamEventKind::kArrive:
      return "arrive";
    case StreamEventKind::kDepart:
      return "depart";
    case StreamEventKind::kRateChange:
      return "rate_change";
    case StreamEventKind::kNodeDown:
      return "node_down";
    case StreamEventKind::kNodeUp:
      return "node_up";
  }
  return "?";
}

void EventTrace::validate() const {
  double last_time = -std::numeric_limits<double>::infinity();
  std::unordered_set<std::uint32_t> live;
  std::unordered_set<std::uint32_t> down;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const StreamEvent& e = events[i];
    if (!std::isfinite(e.time) || e.time < 0.0) {
      fail(i, "timestamp must be finite and non-negative");
    }
    if (e.time < last_time) {
      std::ostringstream os;
      os << "non-monotonic timestamp " << e.time << " after " << last_time;
      fail(i, os.str());
    }
    last_time = e.time;
    switch (e.kind) {
      case StreamEventKind::kArrive: {
        if (live.contains(e.request)) {
          fail(i, "arrive for already-live request " +
                      std::to_string(e.request));
        }
        if (!finite_positive(e.rate)) fail(i, "arrival rate must be > 0");
        if (!(e.delivery_prob > 0.0) || e.delivery_prob > 1.0) {
          fail(i, "delivery_prob must be in (0, 1]");
        }
        if (e.chain.empty()) fail(i, "arrive needs a non-empty chain");
        std::unordered_set<std::uint32_t> seen;
        for (const std::uint32_t f : e.chain) {
          if (f >= vnf_count) {
            fail(i, "chain references VNF " + std::to_string(f) +
                        " but vnf_count is " + std::to_string(vnf_count));
          }
          if (!seen.insert(f).second) {
            fail(i, "chain repeats VNF " + std::to_string(f) +
                        " (U_r^f is binary)");
          }
        }
        live.insert(e.request);
        break;
      }
      case StreamEventKind::kDepart:
        if (!live.erase(e.request)) {
          fail(i, "depart for unknown request " + std::to_string(e.request));
        }
        break;
      case StreamEventKind::kRateChange:
        if (!live.contains(e.request)) {
          fail(i, "rate_change for unknown request " +
                      std::to_string(e.request));
        }
        if (!finite_positive(e.rate)) fail(i, "new rate must be > 0");
        break;
      case StreamEventKind::kNodeDown:
        if (!down.insert(e.node).second) {
          fail(i, "node_down for already-down node " + std::to_string(e.node));
        }
        break;
      case StreamEventKind::kNodeUp:
        if (!down.erase(e.node)) {
          fail(i, "node_up for a node that is not down: " +
                      std::to_string(e.node));
        }
        break;
    }
  }
}

EventTrace load_event_trace(std::string_view text) {
  std::string error;
  const auto doc = obs::parse_json(text, &error);
  if (!doc) throw TraceParseError("trace is not valid JSON: " + error);
  if (!doc->is_object()) throw TraceParseError("trace must be a JSON object");
  const std::string schema = doc->string_or("schema");
  const bool v2 = schema == kEventTraceSchemaV2;
  if (schema != kEventTraceSchema && !v2) {
    throw TraceParseError("unsupported trace schema '" + schema +
                          "' (expected '" + std::string(kEventTraceSchema) +
                          "' or '" + std::string(kEventTraceSchemaV2) + "')");
  }

  EventTrace trace;
  const double vnf_count = doc->number_or("vnf_count", -1.0);
  if (!(vnf_count >= 1.0) || vnf_count != std::floor(vnf_count)) {
    throw TraceParseError("vnf_count must be a positive integer");
  }
  trace.vnf_count = static_cast<std::uint32_t>(vnf_count);

  const obs::JsonValue* events = doc->find("events");
  if (events == nullptr || !events->is_array()) {
    throw TraceParseError("trace needs an \"events\" array");
  }
  trace.events.reserve(events->as_array().size());
  std::size_t i = 0;
  for (const obs::JsonValue& ev : events->as_array()) {
    if (!ev.is_object()) fail(i, "event must be an object");
    StreamEvent e;
    const obs::JsonValue* t = ev.find("t");
    if (t == nullptr || !t->is_number()) fail(i, "event needs a numeric \"t\"");
    e.time = t->as_number();
    const std::string kind = ev.string_or("kind");
    if (kind == "arrive") {
      e.kind = StreamEventKind::kArrive;
    } else if (kind == "depart") {
      e.kind = StreamEventKind::kDepart;
    } else if (kind == "rate_change") {
      e.kind = StreamEventKind::kRateChange;
    } else if (kind == "node_down" || kind == "node_up") {
      if (!v2) {
        fail(i, "kind '" + kind + "' requires schema '" +
                    std::string(kEventTraceSchemaV2) + "'");
      }
      e.kind = kind == "node_down" ? StreamEventKind::kNodeDown
                                   : StreamEventKind::kNodeUp;
    } else {
      fail(i, "unknown kind '" + kind + "'");
    }
    if (is_node_event(e.kind)) {
      const obs::JsonValue* node = ev.find("node");
      if (node == nullptr || !node->is_number()) {
        fail(i, "node event needs a numeric \"node\" id");
      }
      const double id = node->as_number();
      if (id < 0.0 || id != std::floor(id)) {
        fail(i, "node id must be a non-negative integer");
      }
      e.node = static_cast<std::uint32_t>(id);
      trace.events.push_back(std::move(e));
      ++i;
      continue;
    }
    const obs::JsonValue* request = ev.find("request");
    if (request == nullptr || !request->is_number()) {
      fail(i, "event needs a numeric \"request\" id");
    }
    const double id = request->as_number();
    if (id < 0.0 || id != std::floor(id)) {
      fail(i, "request id must be a non-negative integer");
    }
    e.request = static_cast<std::uint32_t>(id);
    if (e.kind != StreamEventKind::kDepart) {
      e.rate = ev.number_or("rate");
    }
    if (e.kind == StreamEventKind::kArrive) {
      e.delivery_prob = ev.number_or("delivery_prob", 1.0);
      const obs::JsonValue* chain = ev.find("chain");
      if (chain == nullptr || !chain->is_array()) {
        fail(i, "arrive needs a \"chain\" array");
      }
      for (const obs::JsonValue& hop : chain->as_array()) {
        if (!hop.is_number() || hop.as_number() < 0.0 ||
            hop.as_number() != std::floor(hop.as_number())) {
          fail(i, "chain entries must be non-negative integers");
        }
        e.chain.push_back(static_cast<std::uint32_t>(hop.as_number()));
      }
    }
    trace.events.push_back(std::move(e));
    ++i;
  }
  trace.validate();
  return trace;
}

void save_event_trace(const EventTrace& trace, std::ostream& out) {
  const bool has_node_events =
      std::any_of(trace.events.begin(), trace.events.end(),
                  [](const StreamEvent& e) { return is_node_event(e.kind); });
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", has_node_events ? kEventTraceSchemaV2 : kEventTraceSchema);
  w.kv("vnf_count", std::uint64_t{trace.vnf_count});
  w.key("events");
  w.begin_array();
  for (const StreamEvent& e : trace.events) {
    w.begin_object();
    w.kv("t", e.time);
    w.kv("kind", to_string(e.kind));
    if (is_node_event(e.kind)) {
      w.kv("node", std::uint64_t{e.node});
      w.end_object();
      continue;
    }
    w.kv("request", std::uint64_t{e.request});
    if (e.kind != StreamEventKind::kDepart) w.kv("rate", e.rate);
    if (e.kind == StreamEventKind::kArrive) {
      w.kv("delivery_prob", e.delivery_prob);
      w.key("chain");
      w.begin_array();
      for (const std::uint32_t f : e.chain) w.value(std::uint64_t{f});
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

std::string save_event_trace_string(const EventTrace& trace) {
  std::ostringstream os;
  save_event_trace(trace, os);
  return os.str();
}

void EventStreamConfig::validate() const {
  NFV_REQUIRE(event_count >= 1);
  NFV_REQUIRE(mean_interarrival > 0.0);
  NFV_REQUIRE(target_population >= 1);
  NFV_REQUIRE(rate_change_fraction >= 0.0 && rate_change_fraction < 1.0);
  NFV_REQUIRE(arrival_rate_min > 0.0);
  NFV_REQUIRE(arrival_rate_max >= arrival_rate_min);
  NFV_REQUIRE(delivery_prob > 0.0 && delivery_prob <= 1.0);
  NFV_REQUIRE(rate_sigma_log >= 0.0);
  if (churn_node_count > 0) {
    NFV_REQUIRE(std::isfinite(node_mtbf) && node_mtbf > 0.0);
    NFV_REQUIRE(std::isfinite(node_mttr) && node_mttr > 0.0);
  }
}

EventStreamGenerator::EventStreamGenerator(const Workload& base,
                                           EventStreamConfig config)
    : vnf_count_(static_cast<std::uint32_t>(base.vnfs.size())),
      config_(config) {
  config_.validate();
  NFV_REQUIRE(!base.vnfs.empty());
  // Distinct chains of the base workload, in first-appearance order.
  for (const Request& r : base.requests) {
    std::vector<std::uint32_t> chain;
    chain.reserve(r.chain.size());
    for (const VnfId f : r.chain) chain.push_back(f.value());
    if (std::find(templates_.begin(), templates_.end(), chain) ==
        templates_.end()) {
      templates_.push_back(std::move(chain));
    }
  }
}

EventTrace EventStreamGenerator::generate(Rng& rng) const {
  EventTrace trace;
  trace.vnf_count = vnf_count_;
  trace.events.reserve(config_.event_count);

  const LognormalTraceSampler heavy_tail(
      {0.04, config_.rate_sigma_log, config_.arrival_rate_min,
       config_.arrival_rate_max});
  const auto sample_rate = [&](Rng& r) {
    return config_.rate_sigma_log > 0.0
               ? heavy_tail.sample_rate(r)
               : r.uniform(config_.arrival_rate_min, config_.arrival_rate_max);
  };
  const auto sample_chain = [&](Rng& r) {
    if (!templates_.empty()) {
      return templates_[r.below(templates_.size())];
    }
    // No templates: a fresh chain of distinct VNFs in canonical order.
    const auto max_len = std::min<std::uint64_t>(6, vnf_count_);
    const auto len = static_cast<std::size_t>(r.uniform_int(
        1, static_cast<std::int64_t>(max_len)));
    std::vector<std::uint32_t> all(vnf_count_);
    for (std::uint32_t f = 0; f < vnf_count_; ++f) all[f] = f;
    r.shuffle(all);
    std::vector<std::uint32_t> chain(all.begin(),
                                     all.begin() + static_cast<long>(len));
    std::sort(chain.begin(), chain.end());
    return chain;
  };

  double time = 0.0;
  std::uint32_t next_id = 0;
  std::vector<std::uint32_t> live;
  const double target = static_cast<double>(config_.target_population);
  for (std::size_t i = 0; i < config_.event_count; ++i) {
    time += rng.exponential(1.0 / config_.mean_interarrival);
    StreamEvent e;
    e.time = time;
    if (!live.empty() && rng.chance(config_.rate_change_fraction)) {
      e.kind = StreamEventKind::kRateChange;
      e.request = live[rng.below(live.size())];
      e.rate = sample_rate(rng);
    } else {
      // Birth-death: arrivals dominate below the target population,
      // departures above it; equilibrium sits at `target`.
      const double p_arrive =
          live.empty()
              ? 1.0
              : std::clamp(1.0 - 0.5 * static_cast<double>(live.size()) /
                                     target,
                           0.05, 0.95);
      if (rng.chance(p_arrive)) {
        e.kind = StreamEventKind::kArrive;
        e.request = next_id++;
        e.rate = sample_rate(rng);
        e.delivery_prob = config_.delivery_prob;
        e.chain = sample_chain(rng);
        live.push_back(e.request);
      } else {
        e.kind = StreamEventKind::kDepart;
        const std::size_t pick = rng.below(live.size());
        e.request = live[pick];
        live[pick] = live.back();
        live.pop_back();
      }
    }
    trace.events.push_back(std::move(e));
  }

  if (config_.churn_node_count > 0) {
    // Per-node alternating up/down timelines over the request horizon,
    // merged in by timestamp.  Nodes start up; a node still down at the end
    // of the stream gets a closing node_up just past the horizon so every
    // generated trace satisfies the alternation invariant and leaves the
    // datacenter whole.
    const double horizon = time;
    std::vector<StreamEvent> churn;
    for (std::uint32_t n = 0;
         n < static_cast<std::uint32_t>(config_.churn_node_count); ++n) {
      double t = rng.exponential(1.0 / config_.node_mtbf);
      bool up = true;
      while (t <= horizon) {
        StreamEvent e;
        e.time = t;
        e.kind = up ? StreamEventKind::kNodeDown : StreamEventKind::kNodeUp;
        e.node = n;
        churn.push_back(std::move(e));
        up = !up;
        t += rng.exponential(up ? 1.0 / config_.node_mtbf
                                : 1.0 / config_.node_mttr);
      }
      if (!up) {
        StreamEvent e;
        e.time = horizon;
        e.kind = StreamEventKind::kNodeUp;
        e.node = n;
        churn.push_back(std::move(e));
      }
    }
    std::sort(churn.begin(), churn.end(),
              [](const StreamEvent& a, const StreamEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.node != b.node) return a.node < b.node;
                return a.kind < b.kind;  // down precedes up per node
              });
    const std::size_t split = trace.events.size();
    trace.events.insert(trace.events.end(),
                        std::make_move_iterator(churn.begin()),
                        std::make_move_iterator(churn.end()));
    // Stable on ties: request events stay ahead of node events.
    std::inplace_merge(
        trace.events.begin(),
        trace.events.begin() + static_cast<std::ptrdiff_t>(split),
        trace.events.end(),
        [](const StreamEvent& a, const StreamEvent& b) {
          return a.time < b.time;
        });
  }
  return trace;
}

}  // namespace nfv::workload
