#include "nfv/workload/event_stream.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <system_error>
#include <unordered_set>

#include "nfv/common/error.h"
#include "nfv/obs/json.h"
#include "nfv/workload/trace.h"

namespace nfv::workload {

namespace {

[[noreturn]] void fail(std::size_t event_index, const std::string& what) {
  throw TraceParseError("trace event " + std::to_string(event_index) + ": " +
                        what);
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

std::string_view to_string(StreamEventKind kind) {
  switch (kind) {
    case StreamEventKind::kArrive:
      return "arrive";
    case StreamEventKind::kDepart:
      return "depart";
    case StreamEventKind::kRateChange:
      return "rate_change";
    case StreamEventKind::kNodeDown:
      return "node_down";
    case StreamEventKind::kNodeUp:
      return "node_up";
  }
  return "?";
}

void EventTrace::validate() const {
  double last_time = -std::numeric_limits<double>::infinity();
  std::unordered_set<std::uint32_t> live;
  std::unordered_set<std::uint32_t> down;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const StreamEvent& e = events[i];
    if (!std::isfinite(e.time) || e.time < 0.0) {
      fail(i, "timestamp must be finite and non-negative");
    }
    if (e.time < last_time) {
      std::ostringstream os;
      os << "non-monotonic timestamp " << e.time << " after " << last_time;
      fail(i, os.str());
    }
    last_time = e.time;
    switch (e.kind) {
      case StreamEventKind::kArrive: {
        if (live.contains(e.request)) {
          fail(i, "arrive for already-live request " +
                      std::to_string(e.request));
        }
        if (!finite_positive(e.rate)) fail(i, "arrival rate must be > 0");
        if (!(e.delivery_prob > 0.0) || e.delivery_prob > 1.0) {
          fail(i, "delivery_prob must be in (0, 1]");
        }
        if (e.chain.empty()) fail(i, "arrive needs a non-empty chain");
        std::unordered_set<std::uint32_t> seen;
        for (const std::uint32_t f : e.chain) {
          if (f >= vnf_count) {
            fail(i, "chain references VNF " + std::to_string(f) +
                        " but vnf_count is " + std::to_string(vnf_count));
          }
          if (!seen.insert(f).second) {
            fail(i, "chain repeats VNF " + std::to_string(f) +
                        " (U_r^f is binary)");
          }
        }
        live.insert(e.request);
        break;
      }
      case StreamEventKind::kDepart:
        if (!live.erase(e.request)) {
          fail(i, "depart for unknown request " + std::to_string(e.request));
        }
        break;
      case StreamEventKind::kRateChange:
        if (!live.contains(e.request)) {
          fail(i, "rate_change for unknown request " +
                      std::to_string(e.request));
        }
        if (!finite_positive(e.rate)) fail(i, "new rate must be > 0");
        break;
      case StreamEventKind::kNodeDown:
        if (!down.insert(e.node).second) {
          fail(i, "node_down for already-down node " + std::to_string(e.node));
        }
        break;
      case StreamEventKind::kNodeUp:
        if (!down.erase(e.node)) {
          fail(i, "node_up for a node that is not down: " +
                      std::to_string(e.node));
        }
        break;
    }
  }
}

namespace {

constexpr bool is_json_digit(char c) { return c >= '0' && c <= '9'; }
constexpr bool is_json_ws(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

constexpr double kMaxId =
    static_cast<double>(std::numeric_limits<std::uint32_t>::max());

// In-place single-pass scanner for the trace JSON subset.  Replaces the
// generic obs::parse_json DOM on the serve front door: no tree, no
// per-token strings — std::from_chars straight off the input buffer, a
// reusable scratch only for the (rare) escaped string.  Every error names
// the 1-based line and, for token-level failures, the offending token;
// lines are counted only on the cold error path.
class TraceScanner {
 public:
  explicit TraceScanner(std::string_view text)
      : begin_(text.data()), p_(begin_), end_(begin_ + text.size()) {}

  EventTrace parse() {
    skip_ws();
    consume('{', "trace must be a JSON object");
    skip_ws();
    const char* deferred_events = nullptr;
    if (!try_consume('}')) {
      for (;;) {
        const std::string_view key = parse_string("an object key");
        skip_ws();
        consume(':', "expected ':' after object key");
        skip_ws();
        if (key == "schema") {
          const std::string_view schema = parse_string("\"schema\"");
          v2_ = schema == kEventTraceSchemaV2;
          if (schema != kEventTraceSchema && !v2_) {
            err_plain("unsupported trace schema '" + std::string(schema) +
                      "' (expected '" + std::string(kEventTraceSchema) +
                      "' or '" + std::string(kEventTraceSchemaV2) + "')");
          }
          saw_schema_ = true;
        } else if (key == "vnf_count") {
          const double v = parse_number("vnf_count must be a positive integer");
          if (!(v >= 1.0) || v != std::floor(v) || v > kMaxId) {
            err_plain("vnf_count must be a positive integer");
          }
          trace_.vnf_count = static_cast<std::uint32_t>(v);
          saw_vnf_count_ = true;
        } else if (key == "events") {
          if (saw_schema_) {
            parse_events();
          } else {
            // The node-event kinds are gated on the schema version, so an
            // events array that precedes "schema" is skipped now and
            // re-scanned once the whole object is read.
            deferred_events = p_;
            skip_value();
          }
          saw_events_ = true;
        } else {
          skip_value();
        }
        skip_ws();
        if (try_consume(',')) {
          skip_ws();
          continue;
        }
        consume('}', "expected ',' or '}' in the trace object");
        break;
      }
    }
    if (!saw_schema_) err_plain("trace is missing its \"schema\" field");
    if (!saw_vnf_count_) err_plain("vnf_count must be a positive integer");
    if (!saw_events_) err_plain("trace needs an \"events\" array");
    if (deferred_events != nullptr) {
      const char* after_object = p_;
      p_ = deferred_events;
      parse_events();
      p_ = after_object;
    }
    skip_ws();
    if (p_ != end_) err("trailing content after the trace document");
    try {
      trace_.validate();
    } catch (const TraceParseError& e) {
      rethrow_with_line(e);
    }
    return std::move(trace_);
  }

 private:
  [[nodiscard]] std::size_t line_of(const char* pos) const {
    return 1 + static_cast<std::size_t>(std::count(begin_, pos, '\n'));
  }

  [[nodiscard]] std::string token_at() const {
    if (p_ == end_) return "end of input";
    const char* q = p_;
    const auto is_delim = [](char c) {
      return is_json_ws(c) || c == ',' || c == '}' || c == ']' || c == ':';
    };
    if (is_delim(*q)) {
      ++q;
    } else {
      while (q != end_ && q - p_ < 24 && !is_delim(*q)) ++q;
    }
    return "'" + std::string(p_, q) + "'";
  }

  [[noreturn]] void err(const std::string& what) const {
    throw TraceParseError("trace line " + std::to_string(line_of(p_)) + ": " +
                          what + " near " + token_at());
  }

  [[noreturn]] void err_plain(const std::string& what) const {
    throw TraceParseError("trace line " + std::to_string(line_of(p_)) + ": " +
                          what);
  }

  /// Remaps EventTrace::validate's "trace event N: ..." onto the line the
  /// loader recorded for event N.
  [[noreturn]] void rethrow_with_line(const TraceParseError& e) const {
    const std::string_view msg = e.what();
    constexpr std::string_view prefix = "trace event ";
    if (msg.substr(0, prefix.size()) == prefix) {
      std::size_t i = prefix.size();
      std::size_t n = 0;
      bool any = false;
      while (i < msg.size() && is_json_digit(msg[i])) {
        n = n * 10 + static_cast<std::size_t>(msg[i] - '0');
        any = true;
        ++i;
      }
      if (any && n < event_pos_.size()) {
        throw TraceParseError("trace line " +
                              std::to_string(line_of(event_pos_[n])) + ": " +
                              std::string(msg));
      }
    }
    throw e;
  }

  void skip_ws() {
    while (p_ != end_ && is_json_ws(*p_)) ++p_;
  }

  bool try_consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  void consume(char c, const char* what) {
    if (!try_consume(c)) err(what);
  }

  /// Strict JSON number grammar scanned first (std::from_chars alone would
  /// also accept "inf"/"nan" and non-JSON spellings), then converted off
  /// the input buffer.  `what` is the full failure message.
  double parse_number(const char* what) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !is_json_digit(*p_)) {
      p_ = start;
      err(what);
    }
    if (*p_ == '0') {
      ++p_;
    } else {
      while (p_ != end_ && is_json_digit(*p_)) ++p_;
    }
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !is_json_digit(*p_)) err("malformed number");
      while (p_ != end_ && is_json_digit(*p_)) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !is_json_digit(*p_)) err("malformed number");
      while (p_ != end_ && is_json_digit(*p_)) ++p_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(start, p_, value);
    if (ec != std::errc() || ptr != p_) {
      p_ = start;
      err("number out of range");
    }
    return value;
  }

  /// Returns a view into the input when the string has no escapes (the hot
  /// case for every key and kind); otherwise decodes into a reusable
  /// scratch and returns a view of that.
  std::string_view parse_string(const char* what) {
    if (p_ == end_ || *p_ != '"') {
      err(std::string("expected a string for ") + what);
    }
    ++p_;
    const char* start = p_;
    while (p_ != end_ && *p_ != '"' && *p_ != '\\') {
      if (static_cast<unsigned char>(*p_) < 0x20) {
        err("unescaped control character in string");
      }
      ++p_;
    }
    if (p_ == end_) err_plain("unterminated string");
    if (*p_ == '"') {
      const std::string_view sv(start, static_cast<std::size_t>(p_ - start));
      ++p_;
      return sv;
    }
    scratch_.assign(start, p_);
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) err_plain("unterminated string escape");
        const char c = *p_++;
        switch (c) {
          case '"': scratch_.push_back('"'); break;
          case '\\': scratch_.push_back('\\'); break;
          case '/': scratch_.push_back('/'); break;
          case 'b': scratch_.push_back('\b'); break;
          case 'f': scratch_.push_back('\f'); break;
          case 'n': scratch_.push_back('\n'); break;
          case 'r': scratch_.push_back('\r'); break;
          case 't': scratch_.push_back('\t'); break;
          case 'u': {
            if (end_ - p_ < 4) err_plain("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = *p_++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                err("invalid \\u escape digit");
            }
            if (code < 0x80) {
              scratch_.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              scratch_.push_back(static_cast<char>(0xc0 | (code >> 6)));
              scratch_.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              scratch_.push_back(static_cast<char>(0xe0 | (code >> 12)));
              scratch_.push_back(
                  static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              scratch_.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            --p_;
            err("unknown string escape");
        }
      } else {
        if (static_cast<unsigned char>(*p_) < 0x20) {
          err("unescaped control character in string");
        }
        scratch_.push_back(*p_++);
      }
    }
    if (p_ == end_) err_plain("unterminated string");
    ++p_;
    return scratch_;
  }

  /// Skips any JSON value without building anything.  Iterative (a depth
  /// counter, not recursion) so adversarially nested input cannot blow the
  /// stack; inside a skip, bracket kinds are not cross-checked — the value
  /// is unknown to the schema and only its extent matters.
  void skip_value() {
    skip_ws();
    if (p_ == end_) err_plain("unexpected end of input in value");
    const char c = *p_;
    if (c == '"') {
      (void)parse_string("a skipped value");
      return;
    }
    if (c == '{' || c == '[') {
      std::size_t depth = 0;
      do {
        if (p_ == end_) err_plain("unterminated value");
        const char ch = *p_;
        if (ch == '"') {
          (void)parse_string("a skipped value");
          continue;
        }
        if (ch == '{' || ch == '[') {
          ++depth;
        } else if (ch == '}' || ch == ']') {
          --depth;
        }
        ++p_;
      } while (depth > 0);
      return;
    }
    const char* start = p_;
    while (p_ != end_ && *p_ != ',' && *p_ != '}' && *p_ != ']' &&
           !is_json_ws(*p_)) {
      ++p_;
    }
    if (p_ == start) err("expected a value");
  }

  void parse_events() {
    consume('[', "trace needs an \"events\" array");
    skip_ws();
    if (try_consume(']')) return;
    for (;;) {
      parse_event();
      skip_ws();
      if (try_consume(',')) {
        skip_ws();
        continue;
      }
      consume(']', "expected ',' or ']' in the events array");
      return;
    }
  }

  void parse_event() {
    const std::size_t i = trace_.events.size();
    event_pos_.push_back(p_);
    const auto fail_event = [&](const std::string& what) {
      err_plain("event " + std::to_string(i) + ": " + what);
    };
    if (!try_consume('{')) fail_event("event must be an object");
    bool saw_t = false;
    bool saw_kind = false;
    bool saw_request = false;
    bool saw_node = false;
    bool saw_chain = false;
    double t = 0.0;
    double rate = 0.0;
    double prob = 1.0;
    double request = 0.0;
    double node = 0.0;
    StreamEventKind kind = StreamEventKind::kArrive;
    std::vector<std::uint32_t> chain;
    skip_ws();
    if (!try_consume('}')) {
      for (;;) {
        const std::string_view key = parse_string("an event key");
        skip_ws();
        consume(':', "expected ':' after event key");
        skip_ws();
        if (key == "t") {
          t = parse_number("event needs a numeric \"t\"");
          saw_t = true;
        } else if (key == "kind") {
          const std::string_view k = parse_string("\"kind\"");
          if (k == "arrive") {
            kind = StreamEventKind::kArrive;
          } else if (k == "depart") {
            kind = StreamEventKind::kDepart;
          } else if (k == "rate_change") {
            kind = StreamEventKind::kRateChange;
          } else if (k == "node_down" || k == "node_up") {
            if (!v2_) {
              fail_event("kind '" + std::string(k) + "' requires schema '" +
                         std::string(kEventTraceSchemaV2) + "'");
            }
            kind = k == "node_down" ? StreamEventKind::kNodeDown
                                    : StreamEventKind::kNodeUp;
          } else {
            fail_event("unknown kind '" + std::string(k) + "'");
          }
          saw_kind = true;
        } else if (key == "request") {
          request = parse_number("event needs a numeric \"request\" id");
          saw_request = true;
        } else if (key == "node") {
          node = parse_number("node event needs a numeric \"node\" id");
          saw_node = true;
        } else if (key == "rate") {
          rate = parse_number("\"rate\" must be a number");
        } else if (key == "delivery_prob") {
          prob = parse_number("\"delivery_prob\" must be a number");
        } else if (key == "chain") {
          consume('[', "arrive needs a \"chain\" array");
          skip_ws();
          chain.clear();
          if (!try_consume(']')) {
            for (;;) {
              const double h =
                  parse_number("chain entries must be non-negative integers");
              if (h < 0.0 || h != std::floor(h) || h > kMaxId) {
                fail_event("chain entries must be non-negative integers");
              }
              chain.push_back(static_cast<std::uint32_t>(h));
              skip_ws();
              if (try_consume(',')) {
                skip_ws();
                continue;
              }
              consume(']', "expected ',' or ']' in the chain array");
              break;
            }
          }
          saw_chain = true;
        } else {
          skip_value();
        }
        skip_ws();
        if (try_consume(',')) {
          skip_ws();
          continue;
        }
        consume('}', "expected ',' or '}' in the event object");
        break;
      }
    }
    if (!saw_t) fail_event("event needs a numeric \"t\"");
    if (!saw_kind) fail_event("unknown kind ''");
    StreamEvent e;
    e.time = t;
    e.kind = kind;
    if (is_node_event(kind)) {
      if (!saw_node) fail_event("node event needs a numeric \"node\" id");
      if (node < 0.0 || node != std::floor(node) || node > kMaxId) {
        fail_event("node id must be a non-negative integer");
      }
      e.node = static_cast<std::uint32_t>(node);
    } else {
      if (!saw_request) fail_event("event needs a numeric \"request\" id");
      if (request < 0.0 || request != std::floor(request) || request > kMaxId) {
        fail_event("request id must be a non-negative integer");
      }
      e.request = static_cast<std::uint32_t>(request);
      if (kind != StreamEventKind::kDepart) e.rate = rate;
      if (kind == StreamEventKind::kArrive) {
        e.delivery_prob = prob;
        if (!saw_chain) fail_event("arrive needs a \"chain\" array");
        e.chain = std::move(chain);
      }
    }
    trace_.events.push_back(std::move(e));
  }

  const char* begin_;
  const char* p_;
  const char* end_;
  bool v2_ = false;
  bool saw_schema_ = false;
  bool saw_vnf_count_ = false;
  bool saw_events_ = false;
  EventTrace trace_;
  std::vector<const char*> event_pos_;  ///< event start, for error lines
  std::string scratch_;                 ///< escaped-string decode buffer
};

}  // namespace

EventTrace load_event_trace(std::string_view text) {
  return TraceScanner(text).parse();
}

void save_event_trace(const EventTrace& trace, std::ostream& out) {
  const bool has_node_events =
      std::any_of(trace.events.begin(), trace.events.end(),
                  [](const StreamEvent& e) { return is_node_event(e.kind); });
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", has_node_events ? kEventTraceSchemaV2 : kEventTraceSchema);
  w.kv("vnf_count", std::uint64_t{trace.vnf_count});
  w.key("events");
  w.begin_array();
  for (const StreamEvent& e : trace.events) {
    w.begin_object();
    w.kv("t", e.time);
    w.kv("kind", to_string(e.kind));
    if (is_node_event(e.kind)) {
      w.kv("node", std::uint64_t{e.node});
      w.end_object();
      continue;
    }
    w.kv("request", std::uint64_t{e.request});
    if (e.kind != StreamEventKind::kDepart) w.kv("rate", e.rate);
    if (e.kind == StreamEventKind::kArrive) {
      w.kv("delivery_prob", e.delivery_prob);
      w.key("chain");
      w.begin_array();
      for (const std::uint32_t f : e.chain) w.value(std::uint64_t{f});
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

std::string save_event_trace_string(const EventTrace& trace) {
  std::ostringstream os;
  save_event_trace(trace, os);
  return os.str();
}

void EventStreamConfig::validate() const {
  NFV_REQUIRE(event_count >= 1);
  NFV_REQUIRE(mean_interarrival > 0.0);
  NFV_REQUIRE(target_population >= 1);
  NFV_REQUIRE(rate_change_fraction >= 0.0 && rate_change_fraction < 1.0);
  NFV_REQUIRE(arrival_rate_min > 0.0);
  NFV_REQUIRE(arrival_rate_max >= arrival_rate_min);
  NFV_REQUIRE(delivery_prob > 0.0 && delivery_prob <= 1.0);
  NFV_REQUIRE(rate_sigma_log >= 0.0);
  NFV_REQUIRE(std::isfinite(ramp_amplitude) && ramp_amplitude >= 0.0 &&
              ramp_amplitude < 1.0);
  if (ramp_amplitude > 0.0) {
    NFV_REQUIRE(std::isfinite(ramp_period) && ramp_period > 0.0);
  }
  NFV_REQUIRE(std::isfinite(burst_every) && burst_every >= 0.0);
  if (burst_every > 0.0) {
    NFV_REQUIRE(std::isfinite(burst_length) && burst_length > 0.0 &&
                burst_length <= burst_every);
    NFV_REQUIRE(std::isfinite(burst_factor) && burst_factor >= 1.0);
  }
  if (churn_node_count > 0) {
    NFV_REQUIRE(std::isfinite(node_mtbf) && node_mtbf > 0.0);
    NFV_REQUIRE(std::isfinite(node_mttr) && node_mttr > 0.0);
  }
}

EventStreamGenerator::EventStreamGenerator(const Workload& base,
                                           EventStreamConfig config)
    : vnf_count_(static_cast<std::uint32_t>(base.vnfs.size())),
      config_(config) {
  config_.validate();
  NFV_REQUIRE(!base.vnfs.empty());
  // Distinct chains of the base workload, in first-appearance order.
  for (const Request& r : base.requests) {
    std::vector<std::uint32_t> chain;
    chain.reserve(r.chain.size());
    for (const VnfId f : r.chain) chain.push_back(f.value());
    if (std::find(templates_.begin(), templates_.end(), chain) ==
        templates_.end()) {
      templates_.push_back(std::move(chain));
    }
  }
}

EventTrace EventStreamGenerator::generate(Rng& rng) const {
  EventTrace trace;
  trace.vnf_count = vnf_count_;
  trace.events.reserve(config_.event_count);

  const LognormalTraceSampler heavy_tail(
      {0.04, config_.rate_sigma_log, config_.arrival_rate_min,
       config_.arrival_rate_max});
  // Deterministic rate profile: a pure function of event time layered on
  // top of the seeded base sample (see EventStreamConfig).
  const auto profile = [&](double t) {
    constexpr double kTwoPi = 6.283185307179586;
    double m = 1.0;
    if (config_.ramp_amplitude > 0.0) {
      m *= 1.0 +
           config_.ramp_amplitude * std::sin(kTwoPi * t / config_.ramp_period);
    }
    if (config_.burst_every > 0.0 &&
        std::fmod(t, config_.burst_every) < config_.burst_length) {
      m *= config_.burst_factor;
    }
    return m;
  };
  const auto sample_rate = [&](Rng& r, double t) {
    const double base =
        config_.rate_sigma_log > 0.0
            ? heavy_tail.sample_rate(r)
            : r.uniform(config_.arrival_rate_min, config_.arrival_rate_max);
    return base * profile(t);
  };
  const auto sample_chain = [&](Rng& r) {
    if (!templates_.empty()) {
      return templates_[r.below(templates_.size())];
    }
    // No templates: a fresh chain of distinct VNFs in canonical order.
    const auto max_len = std::min<std::uint64_t>(6, vnf_count_);
    const auto len = static_cast<std::size_t>(r.uniform_int(
        1, static_cast<std::int64_t>(max_len)));
    std::vector<std::uint32_t> all(vnf_count_);
    for (std::uint32_t f = 0; f < vnf_count_; ++f) all[f] = f;
    r.shuffle(all);
    std::vector<std::uint32_t> chain(all.begin(),
                                     all.begin() + static_cast<long>(len));
    std::sort(chain.begin(), chain.end());
    return chain;
  };

  double time = 0.0;
  std::uint32_t next_id = 0;
  std::vector<std::uint32_t> live;
  const double target = static_cast<double>(config_.target_population);
  for (std::size_t i = 0; i < config_.event_count; ++i) {
    time += rng.exponential(1.0 / config_.mean_interarrival);
    StreamEvent e;
    e.time = time;
    if (!live.empty() && rng.chance(config_.rate_change_fraction)) {
      e.kind = StreamEventKind::kRateChange;
      e.request = live[rng.below(live.size())];
      e.rate = sample_rate(rng, time);
    } else {
      // Birth-death: arrivals dominate below the target population,
      // departures above it; equilibrium sits at `target`.
      const double p_arrive =
          live.empty()
              ? 1.0
              : std::clamp(1.0 - 0.5 * static_cast<double>(live.size()) /
                                     target,
                           0.05, 0.95);
      if (rng.chance(p_arrive)) {
        e.kind = StreamEventKind::kArrive;
        e.request = next_id++;
        e.rate = sample_rate(rng, time);
        e.delivery_prob = config_.delivery_prob;
        e.chain = sample_chain(rng);
        live.push_back(e.request);
      } else {
        e.kind = StreamEventKind::kDepart;
        const std::size_t pick = rng.below(live.size());
        e.request = live[pick];
        live[pick] = live.back();
        live.pop_back();
      }
    }
    trace.events.push_back(std::move(e));
  }

  if (config_.churn_node_count > 0) {
    // Per-node alternating up/down timelines over the request horizon,
    // merged in by timestamp.  Nodes start up; a node still down at the end
    // of the stream gets a closing node_up just past the horizon so every
    // generated trace satisfies the alternation invariant and leaves the
    // datacenter whole.
    const double horizon = time;
    std::vector<StreamEvent> churn;
    for (std::uint32_t n = 0;
         n < static_cast<std::uint32_t>(config_.churn_node_count); ++n) {
      double t = rng.exponential(1.0 / config_.node_mtbf);
      bool up = true;
      while (t <= horizon) {
        StreamEvent e;
        e.time = t;
        e.kind = up ? StreamEventKind::kNodeDown : StreamEventKind::kNodeUp;
        e.node = n;
        churn.push_back(std::move(e));
        up = !up;
        t += rng.exponential(up ? 1.0 / config_.node_mtbf
                                : 1.0 / config_.node_mttr);
      }
      if (!up) {
        StreamEvent e;
        e.time = horizon;
        e.kind = StreamEventKind::kNodeUp;
        e.node = n;
        churn.push_back(std::move(e));
      }
    }
    std::sort(churn.begin(), churn.end(),
              [](const StreamEvent& a, const StreamEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.node != b.node) return a.node < b.node;
                return a.kind < b.kind;  // down precedes up per node
              });
    const std::size_t split = trace.events.size();
    trace.events.insert(trace.events.end(),
                        std::make_move_iterator(churn.begin()),
                        std::make_move_iterator(churn.end()));
    // Stable on ties: request events stay ahead of node events.
    std::inplace_merge(
        trace.events.begin(),
        trace.events.begin() + static_cast<std::ptrdiff_t>(split),
        trace.events.end(),
        [](const StreamEvent& a, const StreamEvent& b) {
          return a.time < b.time;
        });
  }
  return trace;
}

}  // namespace nfv::workload
