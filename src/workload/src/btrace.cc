#include "nfv/workload/btrace.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <ostream>
#include <string>

static_assert(std::endian::native == std::endian::little,
              "nfvpr.btrace/1 decode uses raw little-endian loads; add "
              "byte-swapping before porting to a big-endian host");

namespace nfv::workload {

namespace {

// Record kind codes on the wire.  Kept separate from StreamEventKind's
// underlying values on purpose: the enum is free to evolve, the wire is not.
constexpr std::uint8_t kWireArrive = 0;
constexpr std::uint8_t kWireDepart = 1;
constexpr std::uint8_t kWireRateChange = 2;
constexpr std::uint8_t kWireNodeDown = 3;
constexpr std::uint8_t kWireNodeUp = 4;

// Chains at or below this length use the quadratic distinctness scan (no
// memory traffic at all); longer ones fall back to a sort over scratch.
constexpr std::size_t kQuadraticChainLimit = 32;

std::uint64_t bits_of(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

double double_of(std::uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof d);
  return d;
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(0x80 | (v & 0x7f)));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint8_t wire_kind(StreamEventKind kind) {
  switch (kind) {
    case StreamEventKind::kArrive:
      return kWireArrive;
    case StreamEventKind::kDepart:
      return kWireDepart;
    case StreamEventKind::kRateChange:
      return kWireRateChange;
    case StreamEventKind::kNodeDown:
      return kWireNodeDown;
    case StreamEventKind::kNodeUp:
      return kWireNodeUp;
  }
  throw TraceParseError("binary trace: unencodable event kind");
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

bool is_binary_trace(std::string_view data) {
  return data.size() >= kBinaryTraceMagic.size() &&
         data.substr(0, kBinaryTraceMagic.size()) == kBinaryTraceMagic;
}

void save_binary_trace(const EventTrace& trace, std::ostream& out) {
  const std::string bytes = save_binary_trace_string(trace);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string save_binary_trace_string(const EventTrace& trace) {
  std::string out;
  // Header + a rough per-record estimate; exact size is not worth a
  // second pass, the string grows once if the guess is short.
  out.reserve(16 + trace.events.size() * 12);
  out.append(kBinaryTraceMagic);
  out.push_back('\0');  // flags
  put_varint(out, trace.vnf_count);
  put_varint(out, trace.events.size());

  std::string payload;
  std::uint64_t prev_bits = bits_of(0.0);
  for (const StreamEvent& e : trace.events) {
    payload.clear();
    payload.push_back(static_cast<char>(wire_kind(e.kind)));
    const std::uint64_t time_bits = bits_of(e.time);
    put_varint(payload, time_bits ^ prev_bits);
    prev_bits = time_bits;
    switch (e.kind) {
      case StreamEventKind::kArrive:
        put_varint(payload, e.request);
        put_u64le(payload, bits_of(e.rate));
        put_u64le(payload, bits_of(e.delivery_prob));
        put_varint(payload, e.chain.size());
        for (const std::uint32_t f : e.chain) put_varint(payload, f);
        break;
      case StreamEventKind::kDepart:
        put_varint(payload, e.request);
        break;
      case StreamEventKind::kRateChange:
        put_varint(payload, e.request);
        put_u64le(payload, bits_of(e.rate));
        break;
      case StreamEventKind::kNodeDown:
      case StreamEventKind::kNodeUp:
        put_varint(payload, e.node);
        break;
    }
    put_varint(out, payload.size());
    out.append(payload);
  }
  return out;
}

EventTrace load_binary_trace(std::string_view data) {
  BinaryTraceDecoder decoder(data);
  EventTrace trace;
  trace.vnf_count = decoder.vnf_count();
  trace.events.reserve(decoder.event_count());
  StreamEvent e;
  while (decoder.next(e)) trace.events.push_back(e);
  trace.validate();
  return trace;
}

BinaryTraceDecoder::BinaryTraceDecoder(std::string_view data)
    : data_(reinterpret_cast<const std::uint8_t*>(data.data())),
      size_(data.size()) {
  if (!is_binary_trace(data)) {
    throw TraceParseError(
        "binary trace: missing magic \"NFVBT1\" (not an nfvpr.btrace/1 "
        "stream, or an unsupported version)");
  }
  pos_ = kBinaryTraceMagic.size();
  if (pos_ >= size_) fail("truncated header (missing flags byte)");
  const std::uint8_t flags = data_[pos_++];
  if (flags != 0) {
    fail("unsupported flags byte " + std::to_string(flags) +
         " (this reader understands only flags = 0)");
  }
  const std::uint8_t* end = data_ + size_;
  const std::uint64_t vnfs = read_varint("vnf_count", end);
  if (vnfs == 0 ||
      vnfs > std::numeric_limits<std::uint32_t>::max()) {
    fail("vnf_count must be a positive 32-bit integer, got " +
         std::to_string(vnfs));
  }
  vnf_count_ = static_cast<std::uint32_t>(vnfs);
  count_ = read_varint("event_count", end);
  // Cheapest possible record is 3 bytes (length varint, kind, timestamp
  // varint), so an event_count the buffer cannot possibly hold is rejected
  // before anyone reserves storage for it.
  if (count_ > (size_ - pos_) / 3) {
    fail("event_count " + std::to_string(count_) +
         " exceeds what the remaining " + std::to_string(size_ - pos_) +
         " bytes could hold");
  }
}

void BinaryTraceDecoder::fail(const std::string& what) const {
  std::string msg = "binary trace";
  if (index_ != 0 || pos_ > kBinaryTraceMagic.size() + 1) {
    msg += " record " + std::to_string(index_);
  }
  msg += ": " + what;
  throw TraceParseError(msg);
}

std::uint64_t BinaryTraceDecoder::read_varint(const char* what,
                                              const std::uint8_t* end) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  const std::uint8_t* p = data_ + pos_;
  // Single-byte fast path: ids and chain entries are almost always < 128.
  if (p != end && *p < 0x80) {
    ++pos_;
    return *p;
  }
  // SWAR fast path for the XOR-delta timestamps, whose varints run 5-9
  // bytes: one unaligned load finds the terminator (first byte without the
  // continuation bit) via countr_zero, then the 7-bit groups fold together
  // branch-free.  Varints of <= 8 bytes carry at most 56 bits, so the
  // 64-bit overflow check is unreachable here; 9- and 10-byte varints
  // (terminator beyond the load) fall through to the byte loop below.
  if (end - p >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    const std::uint64_t stops = ~chunk & 0x8080808080808080ull;
    if (stops != 0) {
      const int len = (std::countr_zero(stops) >> 3) + 1;
      for (int i = 0; i < len; ++i) {
        value |= ((chunk >> (8 * i)) & 0x7f) << (7 * i);
      }
      pos_ += static_cast<std::uint64_t>(len);
      return value;
    }
  }
  while (true) {
    if (p == end) {
      fail(std::string("truncated varint (") + what + ")");
    }
    const std::uint8_t byte = *p++;
    if (shift == 63 && (byte & 0x7e) != 0) {
      fail(std::string("varint overflows 64 bits (") + what + ")");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) {
      fail(std::string("varint overflows 64 bits (") + what + ")");
    }
  }
  pos_ = static_cast<std::uint64_t>(p - data_);
  return value;
}

std::uint32_t BinaryTraceDecoder::read_id(const char* what,
                                          const std::uint8_t* end) {
  const std::uint64_t v = read_varint(what, end);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    fail(std::string(what) + " " + std::to_string(v) +
         " does not fit in 32 bits");
  }
  return static_cast<std::uint32_t>(v);
}

bool BinaryTraceDecoder::next(StreamEvent& out) {
  if (index_ == count_) {
    if (pos_ != size_) {
      fail(std::to_string(size_ - pos_) +
           " trailing byte(s) after the final record");
    }
    return false;
  }
  const std::uint8_t* buffer_end = data_ + size_;
  const std::uint64_t len = read_varint("record length", buffer_end);
  if (len > size_ - pos_) {
    fail("record length " + std::to_string(len) + " overruns the buffer (" +
         std::to_string(size_ - pos_) + " bytes left)");
  }
  const std::uint8_t* end = data_ + pos_ + len;
  if (len < 1) fail("empty record payload");
  const std::uint8_t kind = data_[pos_++];

  const std::uint64_t time_bits = prev_bits_ ^ read_varint("timestamp", end);
  const double time = double_of(time_bits);
  if (!std::isfinite(time) || time < 0.0) {
    fail("timestamp must be finite and non-negative");
  }
  if (time < prev_time_) {
    fail("non-monotonic timestamp " + std::to_string(time) + " after " +
         std::to_string(prev_time_));
  }

  out.time = time;
  out.request = 0;
  out.rate = 0.0;
  out.delivery_prob = 1.0;
  out.chain.clear();
  out.node = 0;

  switch (kind) {
    case kWireArrive: {
      out.kind = StreamEventKind::kArrive;
      out.request = read_id("request id", end);
      if (end - (data_ + pos_) < 16) fail("truncated arrive rate fields");
      // Little-endian wire matches the host here; memcpy is the portable
      // unaligned load and compiles to two 8-byte moves.
      std::uint64_t rate_bits;
      std::uint64_t prob_bits;
      std::memcpy(&rate_bits, data_ + pos_, 8);
      std::memcpy(&prob_bits, data_ + pos_ + 8, 8);
      pos_ += 16;
      out.rate = double_of(rate_bits);
      out.delivery_prob = double_of(prob_bits);
      if (!finite_positive(out.rate)) fail("arrival rate must be > 0");
      if (!(out.delivery_prob > 0.0) || out.delivery_prob > 1.0) {
        fail("delivery_prob must be in (0, 1]");
      }
      const std::uint64_t chain_len = read_varint("chain length", end);
      if (chain_len == 0) fail("arrive needs a non-empty chain");
      // Each chain entry takes at least one byte, so a length the payload
      // cannot hold is rejected before any reserve.
      if (chain_len > static_cast<std::uint64_t>(end - (data_ + pos_))) {
        fail("chain length " + std::to_string(chain_len) +
             " overruns the record payload");
      }
      if (chain_len > vnf_count_) {
        fail("chain of " + std::to_string(chain_len) +
             " distinct VNFs is impossible with vnf_count " +
             std::to_string(vnf_count_));
      }
      for (std::uint64_t i = 0; i < chain_len; ++i) {
        const std::uint32_t f = read_id("chain entry", end);
        if (f >= vnf_count_) {
          fail("chain references VNF " + std::to_string(f) +
               " but vnf_count is " + std::to_string(vnf_count_));
        }
        out.chain.push_back(f);
      }
      if (out.chain.size() <= kQuadraticChainLimit) {
        for (std::size_t i = 1; i < out.chain.size(); ++i) {
          for (std::size_t j = 0; j < i; ++j) {
            if (out.chain[i] == out.chain[j]) {
              fail("chain repeats VNF " + std::to_string(out.chain[i]) +
                   " (U_r^f is binary)");
            }
          }
        }
      } else {
        chain_scratch_.assign(out.chain.begin(), out.chain.end());
        std::sort(chain_scratch_.begin(), chain_scratch_.end());
        const auto dup = std::adjacent_find(chain_scratch_.begin(),
                                            chain_scratch_.end());
        if (dup != chain_scratch_.end()) {
          fail("chain repeats VNF " + std::to_string(*dup) +
               " (U_r^f is binary)");
        }
      }
      break;
    }
    case kWireDepart:
      out.kind = StreamEventKind::kDepart;
      out.request = read_id("request id", end);
      break;
    case kWireRateChange: {
      out.kind = StreamEventKind::kRateChange;
      out.request = read_id("request id", end);
      if (end - (data_ + pos_) < 8) fail("truncated rate_change rate field");
      std::uint64_t rate_bits;
      std::memcpy(&rate_bits, data_ + pos_, 8);
      pos_ += 8;
      out.rate = double_of(rate_bits);
      if (!finite_positive(out.rate)) fail("new rate must be > 0");
      break;
    }
    case kWireNodeDown:
    case kWireNodeUp:
      out.kind = kind == kWireNodeDown ? StreamEventKind::kNodeDown
                                       : StreamEventKind::kNodeUp;
      out.node = read_id("node id", end);
      break;
    default:
      fail("unknown record kind " + std::to_string(kind));
  }

  if (data_ + pos_ != end) {
    fail("record payload length mismatch (" +
         std::to_string(end - (data_ + pos_)) + " undecoded byte(s))");
  }
  prev_bits_ = time_bits;
  prev_time_ = time;
  ++index_;
  return true;
}

void BinaryTraceDecoder::skip(std::uint64_t n) {
  const std::uint8_t* buffer_end = data_ + size_;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (index_ == count_) fail("skip past the end of the stream");
    const std::uint64_t len = read_varint("record length", buffer_end);
    if (len > size_ - pos_) {
      fail("record length " + std::to_string(len) +
           " overruns the buffer (" + std::to_string(size_ - pos_) +
           " bytes left)");
    }
    const std::uint8_t* end = data_ + pos_ + len;
    if (len < 1) fail("empty record payload");
    ++pos_;  // kind byte; skipping does not interpret it
    // The timestamp varint still has to be decoded: it is the XOR base for
    // every later record.
    prev_bits_ ^= read_varint("timestamp", end);
    prev_time_ = double_of(prev_bits_);
    pos_ = static_cast<std::uint64_t>(end - data_);
    ++index_;
  }
}

void BinaryTraceDecoder::seek(std::uint64_t byte_offset,
                              std::uint64_t record_index,
                              std::uint64_t time_bits) {
  if (byte_offset > size_) {
    fail("seek offset " + std::to_string(byte_offset) +
         " is past the end of the " + std::to_string(size_) +
         "-byte buffer");
  }
  if (record_index > count_) {
    fail("seek index " + std::to_string(record_index) +
         " is past the declared event_count " + std::to_string(count_));
  }
  pos_ = byte_offset;
  index_ = record_index;
  prev_bits_ = time_bits;
  prev_time_ = double_of(time_bits);
}

}  // namespace nfv::workload
