#include "nfv/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "nfv/workload/catalog.h"

namespace nfv::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config) {
  NFV_REQUIRE(config_.vnf_count >= 1);
  NFV_REQUIRE(config_.request_count >= 1);
  NFV_REQUIRE(config_.min_chain_length >= 1);
  NFV_REQUIRE(config_.max_chain_length >= config_.min_chain_length);
  NFV_REQUIRE(config_.arrival_rate_min > 0.0);
  NFV_REQUIRE(config_.arrival_rate_max >= config_.arrival_rate_min);
  NFV_REQUIRE(config_.delivery_prob > 0.0 && config_.delivery_prob <= 1.0);
  NFV_REQUIRE(config_.requests_per_instance >= 1);
  NFV_REQUIRE(config_.service_headroom > 1.0);
  if (config_.fixed_demand_per_instance) {
    NFV_REQUIRE(*config_.fixed_demand_per_instance > 0.0);
  }
}

Workload WorkloadGenerator::generate(Rng& rng) const {
  const auto catalog = vnf_catalog();
  Workload w;
  w.vnfs.reserve(config_.vnf_count);

  // Pick catalog types: the core six first (the paper always deploys NAT,
  // FW, IDS, LB, WANOpt, FlowMonitor), then uniform draws; indices beyond
  // the catalog wrap to replicas of earlier types ("regard each replica as
  // a new VNF").
  std::vector<std::uint32_t> types;
  types.reserve(config_.vnf_count);
  const auto core = core_six_indices();
  for (std::uint32_t i = 0; i < config_.vnf_count; ++i) {
    if (i < core.size() && config_.vnf_count >= core.size()) {
      types.push_back(core[i]);
    } else {
      types.push_back(
          static_cast<std::uint32_t>(rng.below(catalog.size())));
    }
  }

  for (std::uint32_t i = 0; i < config_.vnf_count; ++i) {
    const VnfType& type = catalog[types[i]];
    Vnf f;
    f.id = VnfId{i};
    f.name = std::string(type.name) + "-" + std::to_string(i);
    f.catalog_index = types[i];
    f.demand_per_instance =
        config_.fixed_demand_per_instance
            ? *config_.fixed_demand_per_instance
            : rng.uniform(type.demand_min, type.demand_max);
    // M_f and μ_f are finalized below once chain membership is known.
    w.vnfs.push_back(std::move(f));
  }

  // Chains: distinct VNFs, canonical category order (middleboxes are
  // traversed gateway→security→shaping→...→routing in practice; a stable
  // order also makes runs comparable).
  std::vector<std::uint32_t> vnf_order(config_.vnf_count);
  std::iota(vnf_order.begin(), vnf_order.end(), 0);
  std::stable_sort(vnf_order.begin(), vnf_order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return static_cast<int>(catalog[types[a]].category) <
                            static_cast<int>(catalog[types[b]].category);
                   });
  std::vector<std::uint32_t> rank(config_.vnf_count);
  for (std::uint32_t pos = 0; pos < config_.vnf_count; ++pos) {
    rank[vnf_order[pos]] = pos;
  }

  w.requests.reserve(config_.request_count);
  const std::uint32_t max_len =
      std::min(config_.max_chain_length, config_.vnf_count);
  const std::uint32_t min_len = std::min(config_.min_chain_length, max_len);
  auto sample_chain = [&]() {
    const auto len = static_cast<std::uint32_t>(
        rng.uniform_int(min_len, max_len));
    // Sample `len` distinct VNF indices (Floyd's algorithm).
    std::vector<std::uint32_t> picked;
    picked.reserve(len);
    for (std::uint32_t j = config_.vnf_count - len; j < config_.vnf_count;
         ++j) {
      auto candidate = static_cast<std::uint32_t>(rng.below(j + 1));
      if (std::find(picked.begin(), picked.end(), candidate) != picked.end()) {
        candidate = j;
      }
      picked.push_back(candidate);
    }
    std::sort(picked.begin(), picked.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return rank[a] < rank[b];
              });
    std::vector<VnfId> chain;
    chain.reserve(len);
    for (const std::uint32_t v : picked) chain.emplace_back(v);
    return chain;
  };
  // Optional bounded template pool (trace-driven service-type regime).
  std::vector<std::vector<VnfId>> templates;
  for (std::uint32_t t = 0; t < config_.chain_template_count; ++t) {
    templates.push_back(sample_chain());
  }
  for (std::uint32_t i = 0; i < config_.request_count; ++i) {
    Request r;
    r.id = RequestId{i};
    r.chain = templates.empty()
                  ? sample_chain()
                  : templates[rng.below(templates.size())];
    r.arrival_rate =
        rng.uniform(config_.arrival_rate_min, config_.arrival_rate_max);
    r.delivery_prob = config_.delivery_prob;
    w.requests.push_back(std::move(r));
  }

  // Ensure every VNF is used at least once: append unused VNFs to the
  // shortest requests' chains (preserving canonical order).
  std::vector<std::uint32_t> use_count(config_.vnf_count, 0);
  for (const Request& r : w.requests) {
    for (const VnfId f : r.chain) ++use_count[f.index()];
  }
  for (std::uint32_t f = 0; f < config_.vnf_count; ++f) {
    if (use_count[f] > 0) continue;
    auto lightest = std::min_element(
        w.requests.begin(), w.requests.end(),
        [](const Request& a, const Request& b) {
          return a.chain.size() < b.chain.size();
        });
    lightest->chain.emplace_back(f);
    std::sort(lightest->chain.begin(), lightest->chain.end(),
              [&](VnfId a, VnfId b) { return rank[a.index()] < rank[b.index()]; });
    use_count[f] = 1;
  }

  // Finalize M_f (Eq. 3: M_f ≤ |R_f|) and μ_f.
  for (Vnf& f : w.vnfs) {
    double offered = 0.0;  // Σ_{r ∈ R_f} λ_r / P_r
    std::uint32_t users = 0;
    for (const Request& r : w.requests) {
      if (r.uses(f.id)) {
        ++users;
        offered += r.effective_rate();
      }
    }
    NFV_CHECK(users > 0);
    const auto wanted = static_cast<std::uint32_t>(std::ceil(
        static_cast<double>(users) /
        static_cast<double>(config_.requests_per_instance)));
    f.instance_count = std::clamp<std::uint32_t>(wanted, 1, users);
    switch (config_.service_rate_policy) {
      case ServiceRatePolicy::kCatalog: {
        const VnfType& type = vnf_catalog()[f.catalog_index];
        f.service_rate = rng.uniform(type.service_rate_min,
                                     type.service_rate_max);
        break;
      }
      case ServiceRatePolicy::kScaledToLoad:
        f.service_rate = config_.service_headroom * offered /
                         static_cast<double>(f.instance_count);
        break;
    }
    NFV_CHECK(f.service_rate > 0.0);
  }
  return w;
}

}  // namespace nfv::workload
