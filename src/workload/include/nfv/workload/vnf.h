// VNF and request value types (Table I / Table II of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nfv/common/ids.h"

namespace nfv::workload {

/// A Virtual Network Function f ∈ F as the placement/scheduling problems see
/// it.  All M_f service instances of a VNF are co-located on one node
/// (Eq. 2); a replica on another node is modelled as a distinct Vnf.
struct Vnf {
  VnfId id{};
  std::string name;             ///< e.g. "FW-3" — catalog name + replica tag
  std::uint32_t catalog_index = 0;  ///< index into VnfCatalog
  double demand_per_instance = 0.0;  ///< D_f in capacity units
  std::uint32_t instance_count = 1;  ///< M_f ≥ 1
  double service_rate = 0.0;    ///< μ_f packets/s per instance (exponential)

  /// Total footprint D_f · M_f — the bin-packing "piece size" of Theorem 1.
  [[nodiscard]] double total_demand() const {
    return demand_per_instance * static_cast<double>(instance_count);
  }
};

/// A request r ∈ R: a Poisson packet stream of rate λ_r that must traverse
/// an ordered chain of VNFs, delivered correctly with probability P_r.
struct Request {
  RequestId id{};
  std::vector<VnfId> chain;     ///< ordered; U_r^f = 1 iff f appears here
  double arrival_rate = 0.0;    ///< λ_r > 0, packets/s
  double delivery_prob = 1.0;   ///< P_r ∈ (0, 1]

  /// Burke-corrected effective rate λ_r / P_r that the instances see once
  /// NACK retransmissions are folded in (Eq. 7).
  [[nodiscard]] double effective_rate() const {
    return arrival_rate / delivery_prob;
  }

  /// U_r^f from Table II.
  [[nodiscard]] bool uses(VnfId f) const {
    for (const VnfId g : chain) {
      if (g == f) return true;
    }
    return false;
  }
};

/// A complete problem instance: the VNFs to place and the requests to
/// schedule.  Node capacities live in topo::Topology.
struct Workload {
  std::vector<Vnf> vnfs;
  std::vector<Request> requests;

  /// Σ_f D_f · M_f — must not exceed total node capacity for feasibility.
  [[nodiscard]] double total_demand() const {
    double total = 0.0;
    for (const Vnf& f : vnfs) total += f.total_demand();
    return total;
  }

  /// Requests using VNF f (the set R_f of Algorithm 2).
  [[nodiscard]] std::vector<RequestId> requests_using(VnfId f) const {
    std::vector<RequestId> out;
    for (const Request& r : requests) {
      if (r.uses(f)) out.push_back(r.id);
    }
    return out;
  }
};

}  // namespace nfv::workload
