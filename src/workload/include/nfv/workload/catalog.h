// Catalog of commonly deployed VNF types.
//
// Sec. V-A.1 scales the VNF count from 6 to 30 "traced by" the Li & Chen
// survey (IEEE Access 2015), which classifies 30+ VNFs into nine
// categories.  This catalog reproduces that taxonomy with per-type resource
// profiles in the paper's capacity units (1 unit = 64-B packets @ 10 kpps;
// one CPU core ≈ 150 units).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace nfv::workload {

/// The nine VNF categories of the Li & Chen survey.
enum class VnfCategory : std::uint8_t {
  kSecurity,          ///< FW, IDS, IPS, DPI...
  kGateway,           ///< NAT, IPv6 gateway, tunnel endpoints
  kLoadBalancing,     ///< L4/L7 load balancers
  kWanOptimization,   ///< WAN accelerators, dedup, compression
  kMonitoring,        ///< flow monitors, probes, taps
  kTrafficShaping,    ///< QoS, policers, rate limiters
  kProxyCache,        ///< HTTP proxies, CDN caches
  kMobileCore,        ///< EPC/IMS functions (vMME, vSGW...)
  kRouting,           ///< vRouter, BRAS, BGP speakers
};

[[nodiscard]] std::string_view to_string(VnfCategory c);

/// Static description of one VNF type: typical per-instance CPU demand and
/// service rate ranges used when synthesizing workloads.
struct VnfType {
  std::string_view name;
  VnfCategory category;
  double demand_min;  ///< per-instance demand, capacity units
  double demand_max;
  double service_rate_min;  ///< packets/s per instance
  double service_rate_max;
};

/// The full 30-type catalog (immutable, statically allocated).
[[nodiscard]] std::span<const VnfType> vnf_catalog();

/// The six "commonly-deployed" types the paper names explicitly: NAT, FW,
/// IDS, LB, WAN Optimizer, Flow Monitor — returned as catalog indices.
[[nodiscard]] std::span<const std::uint32_t> core_six_indices();

}  // namespace nfv::workload
