// Synthetic workload generation matching the simulation setup of Sec. V-A:
//  * 6–30 VNFs drawn from the catalog (core six always included),
//  * 30–1000 requests, chain length ≤ 6,
//  * Poisson externals with λ ∈ [1, 100] pps,
//  * delivery probability P ∈ [0.98, 1],
//  * M_f derived from demand (1–200 requests per instance, Eq. 3),
//  * μ_f either from the catalog or scaled to offered load
//    ("we scale μ_f with the number of requests", Sec. V-C).
#pragma once

#include <cstdint>
#include <optional>

#include "nfv/common/rng.h"
#include "nfv/workload/vnf.h"

namespace nfv::workload {

/// How service rates μ_f are assigned.
enum class ServiceRatePolicy : std::uint8_t {
  /// Draw from the catalog's per-type range.
  kCatalog,
  /// μ_f = headroom · (Σ_{r ∈ R_f} λ_r / P_r) / M_f so that ρ ≈ 1/headroom
  /// at perfect balance — the paper's Figs. 11–14 protocol.
  kScaledToLoad,
};

/// Knobs for WorkloadGenerator; defaults reproduce the paper's ranges.
struct WorkloadConfig {
  std::uint32_t vnf_count = 15;        ///< |F| ∈ [6, 30] in the paper
  std::uint32_t request_count = 200;   ///< |R| ∈ [30, 1000]
  std::uint32_t max_chain_length = 6;  ///< "at most 6 VNFs"
  std::uint32_t min_chain_length = 1;
  /// Number of distinct service-chain templates requests draw from.
  /// 0 = every request gets an independently random chain; a positive
  /// value reproduces the trace-driven regime where a datacenter offers a
  /// bounded set of service types (paper Sec. V-A.1).
  std::uint32_t chain_template_count = 0;
  double arrival_rate_min = 1.0;       ///< λ low bound, pps
  double arrival_rate_max = 100.0;     ///< λ high bound, pps
  double delivery_prob = 0.98;         ///< P, uniform across requests
  /// Target number of requests sharing one service instance; M_f =
  /// clamp(ceil(|R_f| / requests_per_instance), 1, |R_f|)  (Eq. 3).
  std::uint32_t requests_per_instance = 10;
  ServiceRatePolicy service_rate_policy = ServiceRatePolicy::kScaledToLoad;
  /// Capacity headroom when service_rate_policy == kScaledToLoad.
  double service_headroom = 1.25;
  /// Optional fixed per-instance demand (overrides catalog ranges) — used by
  /// placement benches that want dimensionally simple pieces.
  std::optional<double> fixed_demand_per_instance;
};

/// Deterministic (seeded) generator of Workload instances.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// Generates a workload; all randomness comes from `rng`.
  ///
  /// Guarantees:
  ///  * every VNF is used by ≥ 1 request (unused VNFs are re-rolled into
  ///    chains), so Eq. 3 can hold with M_f ≥ 1;
  ///  * chains contain distinct VNFs in a fixed canonical order
  ///    (category-ordered, the usual middlebox traversal order);
  ///  * M_f ≤ |R_f| (Eq. 3) and μ_f > 0.
  [[nodiscard]] Workload generate(Rng& rng) const;

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
};

}  // namespace nfv::workload
