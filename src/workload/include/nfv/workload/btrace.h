// Binary event-trace wire format "nfvpr.btrace/1" (DESIGN.md §15): the
// compact, allocation-free twin of the JSON "nfvpr.trace/{1,2}" text
// format, built for the serve engine's production front door where the
// text parser's per-event tokenization dominates the event path.
//
// Layout (all integers little-endian where fixed-width; varints are
// unsigned LEB128, at most 10 bytes):
//
//   header:
//     bytes 0..5   magic "NFVBT1" (format version is baked into the magic)
//     byte  6      flags (reserved, must be 0)
//     varint       vnf_count   (>= 1)
//     varint       event_count
//   then event_count records, each:
//     varint       payload length in bytes (everything after this varint)
//     u8           kind (0 arrive, 1 depart, 2 rate_change,
//                        3 node_down, 4 node_up)
//     varint       timestamp delta: IEEE-754 bits of this event's time
//                  XORed with the previous event's time bits (0.0 before
//                  the first record).  Non-decreasing timestamps share
//                  their high exponent/mantissa bits, so the XOR is a
//                  small integer and the varint stays short — while
//                  decode→encode stays bit-exact for any double.
//     then by kind:
//       arrive:      varint request, u64 rate bits, u64 delivery_prob
//                    bits, varint chain length, chain length × varint
//                    VNF index
//       depart:      varint request
//       rate_change: varint request, u64 rate bits
//       node_down / node_up: varint node
//
// Rate fields are raw IEEE-754 bits (not fixed-point) so every trace the
// text format can carry round-trips byte-exactly in both directions:
// text → binary → text reproduces the canonical JSON byte for byte, and
// binary → text → binary reproduces the binary bytes.
//
// Versioning and evolution rules: the magic pins the major version — any
// incompatible record-layout change bumps "NFVBT1" to "NFVBT2" and keeps
// this decoder rejecting it loudly.  The flags byte is the minor escape
// hatch: readers reject non-zero flags today, so a future writer can only
// set a flag together with a reader that understands it.
//
// Like the text loader, every malformed input throws TraceParseError so
// the CLI maps it to the usage exit code (2).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "nfv/workload/event_stream.h"

namespace nfv::workload {

inline constexpr std::string_view kBinaryTraceSchema = "nfvpr.btrace/1";
/// First bytes of every binary trace; also the format version pin.
inline constexpr std::string_view kBinaryTraceMagic = "NFVBT1";

/// True when `data` starts with the binary-trace magic (how `nfvpr serve`
/// and `nfvpr transcode-trace` auto-detect the format).
[[nodiscard]] bool is_binary_trace(std::string_view data);

/// Serializes under kBinaryTraceSchema; load_binary_trace round-trips the
/// bytes exactly, and save_event_trace(load_binary_trace(b)) reproduces
/// the canonical text form the trace was transcoded from.
void save_binary_trace(const EventTrace& trace, std::ostream& out);
[[nodiscard]] std::string save_binary_trace_string(const EventTrace& trace);

/// Parses and fully validates (EventTrace::validate) a binary trace.
/// Convenience wrapper over BinaryTraceDecoder for transcoding and tests;
/// the serve hot path streams through the decoder instead.
[[nodiscard]] EventTrace load_binary_trace(std::string_view data);

/// Streaming decoder over an in-memory binary trace.  The hot path
/// allocates nothing in steady state: next() writes into a caller-owned
/// StreamEvent whose chain vector is reused (clear() keeps capacity), and
/// the decoder's only buffer — a sort scratch for the distinctness check
/// of unusually long chains — keeps its capacity across records.
///
/// next() enforces every record-local invariant of the text loader
/// (monotonic finite timestamps, positive finite rates, delivery
/// probability in (0, 1], non-empty distinct in-range chains); the
/// cross-event invariants (request liveness, node up/down alternation)
/// are left to the consumer, which tracks that state anyway — the serve
/// engine throws the same TraceParseError on violation, and
/// load_binary_trace runs the full EventTrace::validate replay.
class BinaryTraceDecoder {
 public:
  /// Parses the header; throws TraceParseError on bad magic/flags/counts.
  explicit BinaryTraceDecoder(std::string_view data);

  [[nodiscard]] std::uint32_t vnf_count() const { return vnf_count_; }
  [[nodiscard]] std::uint64_t event_count() const { return count_; }
  /// Records decoded (or skipped) so far.
  [[nodiscard]] std::uint64_t decoded() const { return index_; }
  [[nodiscard]] bool done() const { return index_ == count_; }

  /// Byte offset of the next record (just past the header initially);
  /// pairs with last_time_bits() as a resumable cursor.
  [[nodiscard]] std::uint64_t byte_offset() const { return pos_; }
  /// IEEE-754 bits of the last decoded timestamp (the XOR base for the
  /// next record; bits of 0.0 before the first).
  [[nodiscard]] std::uint64_t last_time_bits() const { return prev_bits_; }

  /// Decodes the next record into `out`, reusing its chain capacity.
  /// Returns false at a clean end of stream (and then requires the buffer
  /// to hold no trailing bytes); throws TraceParseError on corruption.
  bool next(StreamEvent& out);

  /// Skips `n` records without materializing events (decodes only the
  /// record framing and timestamp so the cursor stays consistent).
  /// Throws TraceParseError past the end of the stream.
  void skip(std::uint64_t n);

  /// Restores a cursor previously read off byte_offset() / decoded() /
  /// last_time_bits() — the serve checkpoint's binary trace cursor.  The
  /// offset must lie on a record boundary of this buffer; corruption
  /// surfaces as TraceParseError on the next next()/skip().
  void seek(std::uint64_t byte_offset, std::uint64_t record_index,
            std::uint64_t time_bits);

 private:
  [[noreturn]] void fail(const std::string& what) const;
  [[nodiscard]] std::uint64_t read_varint(const char* what,
                                          const std::uint8_t* end);
  [[nodiscard]] std::uint32_t read_id(const char* what,
                                      const std::uint8_t* end);

  const std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
  std::uint64_t pos_ = 0;
  std::uint64_t index_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t prev_bits_ = 0;
  double prev_time_ = 0.0;  ///< double_of(prev_bits_), cached off the hot path
  std::uint32_t vnf_count_ = 0;
  /// Distinctness scratch for chains too long for the quadratic scan;
  /// sized lazily, capacity retained (no steady-state allocation).
  std::vector<std::uint32_t> chain_scratch_;
};

}  // namespace nfv::workload
