// Plain-text workload interchange, matching the topology format's style
// ('#' comments, one declaration per line):
//
//   vnf <name> <catalog-index> <demand-per-instance> <instances> <mu>
//   request <lambda> <delivery-prob> <vnf-index> [<vnf-index> ...]
//
// VNFs and requests receive dense ids in file order; request chains
// reference VNFs by file position.  Lets users pin down exact scenarios
// (e.g. measured traces) instead of regenerating them from seeds.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "nfv/workload/vnf.h"

namespace nfv::workload {

/// Thrown on malformed input; the message carries the 1-based line number.
class WorkloadParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a workload.  Throws WorkloadParseError on syntax errors, chain
/// references out of range, or violated invariants (Eq. 3: M_f ≤ |R_f|
/// is NOT enforced here — generators may be loaded partially — but
/// non-positive rates/demands are rejected).
[[nodiscard]] Workload load_workload(std::istream& in);
[[nodiscard]] Workload load_workload_string(const std::string& text);

/// Serializes in the same format (VNFs first, then requests).
void save_workload(const Workload& w, std::ostream& out);
[[nodiscard]] std::string save_workload_string(const Workload& w);

}  // namespace nfv::workload
