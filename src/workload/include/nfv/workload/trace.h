// Trace-style arrival-rate sampling.
//
// The paper drives its simulations with datacenter measurements (Benson et
// al., IMC'10): flow inter-arrival times are heavy-tailed, and per-request
// mean rates span [1, 100] pps.  We have no access to the raw traces, so
// this module provides (a) a lognormal inter-arrival sampler matching the
// published heavy-tail shape, and (b) an empirical-CDF sampler so users can
// plug in their own measured distribution.  Both reduce, for the
// algorithms, to the per-request λ_r the paper's model consumes.
#pragma once

#include <span>
#include <vector>

#include "nfv/common/rng.h"

namespace nfv::workload {

/// Heavy-tailed flow model: inter-arrival times are lognormal; a request's
/// mean rate λ_r is the reciprocal of its mean inter-arrival, clamped to the
/// configured range.
class LognormalTraceSampler {
 public:
  struct Params {
    double median_interarrival = 0.04;  ///< seconds (≈25 pps median)
    double sigma_log = 1.0;             ///< log-space spread (heavy tail)
    double rate_min = 1.0;              ///< λ clamp low, pps
    double rate_max = 100.0;            ///< λ clamp high, pps
  };

  explicit LognormalTraceSampler(Params params);

  /// Samples one request's mean arrival rate λ_r.
  [[nodiscard]] double sample_rate(Rng& rng) const;

  /// Samples one packet inter-arrival time for the given mean rate —
  /// exponential, per the paper's Poisson externals assumption.
  [[nodiscard]] double sample_interarrival(double rate, Rng& rng) const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
};

/// Inverse-CDF sampler over a user-supplied empirical rate distribution.
class EmpiricalRateSampler {
 public:
  /// `observed_rates` are measured per-flow rates; must be non-empty with
  /// positive entries.  Values are copied and sorted.
  explicit EmpiricalRateSampler(std::span<const double> observed_rates);

  /// Samples a rate by inverse transform with linear interpolation between
  /// order statistics.
  [[nodiscard]] double sample_rate(Rng& rng) const;

  [[nodiscard]] std::size_t support_size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace nfv::workload
