// Timestamped request event streams for the online serving engine
// (nfv/serve): the versioned JSON trace formats "nfvpr.trace/1" and
// "nfvpr.trace/2" plus a seeded birth-death generator that turns an
// offline Workload's chain templates into a live
// arrival/departure/rate-change stream, optionally interleaved with
// MTBF/MTTR node churn.
//
// Schema ("nfvpr.trace/2"; "/1" is the same without node events):
//
//   {
//     "schema": "nfvpr.trace/2",
//     "vnf_count": 12,
//     "events": [
//       {"t": 0.013, "kind": "arrive", "request": 0, "rate": 12.5,
//        "delivery_prob": 0.98, "chain": [0, 2, 5]},
//       {"t": 0.71,  "kind": "rate_change", "request": 0, "rate": 20.0},
//       {"t": 0.80,  "kind": "node_down", "node": 3},
//       {"t": 0.94,  "kind": "depart", "request": 0},
//       {"t": 1.10,  "kind": "node_up", "node": 3}
//     ]
//   }
//
// Invariants (enforced by load_event_trace / EventTrace::validate):
//  * timestamps are non-decreasing (ties allowed, going backwards is not);
//  * "arrive" events carry a positive finite rate, a delivery probability
//    in (0, 1], and a non-empty chain of distinct VNF indices below
//    vnf_count (the paper's U_r^f is binary — a chain visits a VNF once);
//  * "depart"/"rate_change" reference a currently live request id, and an
//    "arrive" id must not already be live;
//  * "node_down"/"node_up" (schema "/2" only) carry a "node" id and
//    alternate per node: a node goes down only while up and vice versa.
//    The node id's range is checked by the consumer, which knows the
//    topology; a "/1" document containing node events fails to load.
//
// save_event_trace writes "/1" when the stream has no node events, so
// pre-churn traces keep round-tripping byte-identically under the old
// schema tag.
//
// All validation failures throw TraceParseError (NOT std::invalid_argument)
// so the CLI can map a malformed trace to its usage exit code (2) instead
// of the precondition exit code (5).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "nfv/common/rng.h"
#include "nfv/workload/vnf.h"

namespace nfv::workload {

inline constexpr std::string_view kEventTraceSchema = "nfvpr.trace/1";
inline constexpr std::string_view kEventTraceSchemaV2 = "nfvpr.trace/2";

/// Thrown on malformed trace text or violated stream invariants.
class TraceParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class StreamEventKind : std::uint8_t {
  kArrive,      ///< a new request joins with (rate, delivery_prob, chain)
  kDepart,      ///< a live request leaves; its capacity is reclaimed
  kRateChange,  ///< a live request's λ_r changes to `rate`
  kNodeDown,    ///< compute node `node` fails; its instances are lost
  kNodeUp,      ///< compute node `node` recovers with full capacity
};

[[nodiscard]] std::string_view to_string(StreamEventKind kind);

/// True for NODE_DOWN / NODE_UP — events about infrastructure, not about a
/// request.
[[nodiscard]] constexpr bool is_node_event(StreamEventKind kind) {
  return kind == StreamEventKind::kNodeDown ||
         kind == StreamEventKind::kNodeUp;
}

/// One timestamped event of the stream.
struct StreamEvent {
  double time = 0.0;
  StreamEventKind kind = StreamEventKind::kArrive;
  std::uint32_t request = 0;
  double rate = 0.0;           ///< λ_r (arrive / rate_change)
  double delivery_prob = 1.0;  ///< P_r ∈ (0, 1] (arrive only)
  std::vector<std::uint32_t> chain;  ///< VNF indices (arrive only)
  std::uint32_t node = 0;      ///< compute node id (node_down / node_up)

  friend bool operator==(const StreamEvent&, const StreamEvent&) = default;
};

/// A complete event stream plus the VNF universe its chains index into.
struct EventTrace {
  std::uint32_t vnf_count = 0;
  std::vector<StreamEvent> events;

  friend bool operator==(const EventTrace&, const EventTrace&) = default;

  /// Checks every invariant listed at the top of this header (including a
  /// full liveness replay).  Throws TraceParseError with the offending
  /// event index on violation.
  void validate() const;
};

/// Parses and validates an "nfvpr.trace/1" document.
[[nodiscard]] EventTrace load_event_trace(std::string_view text);

/// Serializes under kEventTraceSchema (round-trips through
/// load_event_trace bit-exactly).
void save_event_trace(const EventTrace& trace, std::ostream& out);
[[nodiscard]] std::string save_event_trace_string(const EventTrace& trace);

/// Knobs for EventStreamGenerator.
struct EventStreamConfig {
  std::size_t event_count = 500;
  /// Mean seconds between consecutive events (exponential).
  double mean_interarrival = 0.05;
  /// Birth-death equilibrium: the arrival probability decays as the live
  /// population approaches 2x this target, so the stream hovers around it.
  std::size_t target_population = 40;
  /// Fraction of events (with a live population) that are rate changes.
  double rate_change_fraction = 0.15;
  double arrival_rate_min = 1.0;   ///< λ ∈ [1, 100] pps, as in Sec. V-A.3
  double arrival_rate_max = 100.0;
  double delivery_prob = 0.98;     ///< P_r, uniform across requests
  /// > 0 switches rate sampling to the heavy-tailed lognormal trace model
  /// (LognormalTraceSampler) with this log-space spread; 0 = uniform.
  double rate_sigma_log = 0.0;

  /// Node churn (schema "/2"): > 0 interleaves MTBF/MTTR failure/repair
  /// events for nodes [0, churn_node_count) into the stream.  Each node
  /// alternates exponential up-times (mean node_mtbf) and down-times (mean
  /// node_mttr), starting up at t = 0; any node still down when the request
  /// stream ends gets a closing node_up.  0 = no churn, and the trace
  /// round-trips under schema "/1" exactly as before.
  std::size_t churn_node_count = 0;
  double node_mtbf = 0.0;  ///< mean seconds between failures (per node)
  double node_mttr = 0.0;  ///< mean seconds to repair (per node)

  /// Rate profile (generate-trace --ramp-*/--burst-*): a deterministic
  /// time-varying multiplier applied to every sampled arrival /
  /// rate-change rate, so a trace can exercise diurnal swings and load
  /// spikes (the autoscale bench input).  The multiplier is
  ///   (1 + ramp_amplitude · sin(2π t / ramp_period))
  ///     × (burst_factor while t mod burst_every < burst_length, else 1).
  /// All randomness still comes from the seeded rng; the profile itself is
  /// a pure function of event time, so traces stay reproducible and the
  /// serialized schema is unchanged.
  double ramp_amplitude = 0.0;  ///< ∈ [0, 1); 0 disables the ramp
  double ramp_period = 0.0;     ///< > 0 required when ramp_amplitude > 0
  double burst_every = 0.0;     ///< burst cycle length; 0 disables bursts
  double burst_length = 0.0;    ///< ∈ (0, burst_every]: burst duration
  double burst_factor = 1.0;    ///< ≥ 1: rate multiplier inside a burst

  void validate() const;
};

/// Deterministic (seeded) generator of event traces.  Chains are drawn
/// from the base workload's distinct request chains (the datacenter's
/// service-type templates); when the base workload has no requests, each
/// arrival samples a fresh random chain of distinct VNFs instead.
class EventStreamGenerator {
 public:
  /// `base` supplies the VNF universe and chain templates; it must have at
  /// least one VNF.  Throws std::invalid_argument on bad config.
  EventStreamGenerator(const Workload& base, EventStreamConfig config);

  /// Generates a valid trace; all randomness comes from `rng`.  Request
  /// ids are dense in arrival order (0, 1, 2, ...).
  [[nodiscard]] EventTrace generate(Rng& rng) const;

  [[nodiscard]] const EventStreamConfig& config() const { return config_; }

 private:
  std::uint32_t vnf_count_ = 0;
  std::vector<std::vector<std::uint32_t>> templates_;
  EventStreamConfig config_;
};

}  // namespace nfv::workload
