// The request scheduling problem of Sec. IV-B: assign each of the n
// requests using VNF f to exactly one of its m = M_f service instances
// (Eq. 5) so that the per-instance aggregate arrival rates are balanced,
// minimizing the average M/M/1 response W(f,k) = 1/(P·μ_f − Σ λ_r z_{r,k})
// (Eq. 12/15).  This is m-way number partitioning.
#pragma once

#include <cstdint>
#include <vector>

#include "nfv/common/error.h"
#include "nfv/workload/vnf.h"

namespace nfv::sched {

/// One VNF's scheduling instance.
struct SchedulingProblem {
  std::vector<double> arrival_rates;  ///< raw λ_r of the requests in R_f
  double delivery_prob = 1.0;         ///< uniform P (Eq. 12's special case)
  /// Optional per-request P_r (Eq. 7's general form).  Either empty —
  /// every request uses `delivery_prob` — or one entry per request in
  /// (0, 1].  Algorithms balance the *effective* rates λ_r / P_r.
  std::vector<double> delivery_probs;
  double service_rate = 0.0;          ///< μ_f per instance
  std::uint32_t instance_count = 1;   ///< m = M_f

  [[nodiscard]] std::size_t request_count() const {
    return arrival_rates.size();
  }

  /// Delivery probability of request r (per-request when provided).
  [[nodiscard]] double prob(std::size_t r) const {
    return delivery_probs.empty() ? delivery_prob : delivery_probs[r];
  }

  /// Mean delivery probability — the P̄ used for idle-instance latency.
  [[nodiscard]] double mean_prob() const;

  /// Effective per-request rate λ_r / P_r (Burke feedback, Eq. 7).
  [[nodiscard]] double effective_rate(std::size_t r) const {
    return arrival_rates[r] / prob(r);
  }

  /// Σ λ_r / P_r — the total load the m instances must absorb.
  [[nodiscard]] double total_effective_rate() const;

  /// True iff a perfectly balanced assignment would be stable
  /// (total/m < μ).  A necessary condition for any zero-rejection schedule.
  [[nodiscard]] bool balanced_stable() const;

  void validate() const;
};

/// Builds the scheduling problem for VNF f from a workload (R_f member
/// rates in request-id order).
[[nodiscard]] SchedulingProblem make_problem(const workload::Workload& w,
                                             VnfId f);

/// An assignment z: instance index per request position (same order as
/// SchedulingProblem::arrival_rates).
struct Schedule {
  std::vector<std::uint32_t> instance_of;
  /// Search effort expended (tree nodes for CGA/CKK, combine steps for
  /// KK-family, n for greedy) — comparability metric.
  std::uint64_t work = 0;

  void validate(const SchedulingProblem& problem) const;
};

}  // namespace nfv::sched
