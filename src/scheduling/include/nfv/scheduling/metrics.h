// Scheduling quality metrics (Eq. 11/12/15) and the admission-control
// model behind the job rejection rate of Figs. 15-16.
//
// Supports both the paper's uniform-P special case (Eq. 12) and the
// general per-request P_r form: instance k's equivalent arrival rate is
// Λ_k = Σ λ_r/P_r z_{r,k} (Eq. 7), its utilization ρ_k = Λ_k/μ (Eq. 9),
// and its response follows Eq. 11, W = (ρ/(1−ρ)) / Σ λ_r z_{r,k} — which
// reduces to 1/(P·μ − Σλ) when P_r ≡ P.
#pragma once

#include <cstddef>
#include <vector>

#include "nfv/scheduling/problem.h"

namespace nfv::sched {

/// Analytic metrics of one VNF's schedule under the Jackson model.
struct ScheduleMetrics {
  /// Σ λ_r z_{r,k} per instance (raw external rates).
  std::vector<double> instance_load;
  /// Λ_k = Σ λ_r/P_r z_{r,k} per instance (Eq. 7) — what stability and
  /// utilization are judged on.
  std::vector<double> instance_effective_load;
  double max_load = 0.0;   ///< on raw loads
  double min_load = 0.0;
  /// max_load − min_load (raw): the number-partitioning objective.
  double imbalance = 0.0;
  /// True iff every instance satisfies ρ_k = Λ_k/μ < 1 (Eq. 9).
  bool stable = false;
  /// Objective 2 (Eq. 15): (1/m) Σ_k W(f,k).  +inf when unstable.
  double avg_response = 0.0;
  /// Largest per-instance W; +inf when unstable.
  double max_response = 0.0;
  /// Throughput-weighted mean response — what a random *packet* sees:
  /// Σ_k (λ_k/Σλ)·W_k.  +inf when unstable.
  double packet_weighted_response = 0.0;
  /// Per-instance utilizations ρ_k = Λ_k/μ ∈ [0, ∞).
  std::vector<double> utilization;
};

/// Evaluates a schedule.  `schedule` must be valid for `problem`.
[[nodiscard]] ScheduleMetrics evaluate(const SchedulingProblem& problem,
                                       const Schedule& schedule);

/// Admission control (Sec. I / Figs. 15-16): requests are admitted in
/// arrival (index) order; a request is rejected when its instance's
/// equivalent rate would reach rho_max · μ (ρ_k ≥ rho_max).
struct AdmissionResult {
  std::vector<bool> admitted;      ///< per request
  std::size_t rejected_count = 0;
  double rejection_rate = 0.0;     ///< rejected / total
  /// Metrics over the admitted subset only (always stable by construction
  /// when rho_max < 1).
  ScheduleMetrics admitted_metrics;
};

[[nodiscard]] AdmissionResult apply_admission(const SchedulingProblem& problem,
                                              const Schedule& schedule,
                                              double rho_max = 0.999);

/// The paper's enhancement ratio (W_base − W_ours) / W_base.
[[nodiscard]] double enhancement_ratio(double baseline, double ours);

}  // namespace nfv::sched
