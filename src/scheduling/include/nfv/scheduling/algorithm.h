// Scheduling algorithm interface and the concrete algorithms of
// Sec. IV-B / V-C:
//   * RCKK — the paper's Algorithm 2 (reverse-order Karmarkar-Karp m-way
//     differencing with request-set tracking),
//   * CGA  — Complete Greedy Algorithm (Korf [24]) baseline,
// plus LPT greedy, round-robin, forward-KK (ablation) and CKK (complete
// Karmarkar-Karp) comparators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nfv/common/rng.h"
#include "nfv/scheduling/problem.h"

namespace nfv::sched {

/// Abstract scheduler.  Implementations are stateless; all randomness (none
/// of the current algorithms use any) flows through the Rng argument.
class SchedulingAlgorithm {
 public:
  virtual ~SchedulingAlgorithm() = default;

  /// Computes an assignment of every request to an instance.
  [[nodiscard]] virtual Schedule schedule(const SchedulingProblem& problem,
                                          Rng& rng) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Longest Processing Time greedy: requests by descending rate, each to the
/// currently least-loaded instance.  This is CGA's first descent.
class LptScheduling final : public SchedulingAlgorithm {
 public:
  [[nodiscard]] Schedule schedule(const SchedulingProblem& problem,
                                  Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "LPT"; }
};

/// Round-robin over descending rates — the weakest sane baseline.
class RoundRobinScheduling final : public SchedulingAlgorithm {
 public:
  [[nodiscard]] Schedule schedule(const SchedulingProblem& problem,
                                  Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "RR"; }
};

/// Complete Greedy Algorithm (Korf): DFS over instance choices in
/// ascending-load order, pruning dominated branches; anytime under a search
/// budget.  The default budget of 0 runs the first descent only — exactly
/// what a wall-clock-capped CGA yields at the paper's evaluation scale,
/// where the full m^n tree is unreachable (Sec. IV-B: CGA "does not scale
/// well").  Raise the budget to let it search.
class CgaScheduling final : public SchedulingAlgorithm {
 public:
  struct Options {
    /// Max search-tree nodes; 0 = first descent only (pure LPT when
    /// sort_decreasing, online least-loaded greedy otherwise).
    std::uint64_t node_budget = 0;
    /// Process requests in descending-rate order (Korf's CGA).  The
    /// paper's evaluation matches an implementation that keeps arrival
    /// order instead (see EXPERIMENTS.md); registry name "CGA-online".
    bool sort_decreasing = true;
  };

  CgaScheduling() = default;
  explicit CgaScheduling(Options options);

  [[nodiscard]] Schedule schedule(const SchedulingProblem& problem,
                                  Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override {
    return options_.sort_decreasing ? "CGA" : "CGA-online";
  }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_{};
};

/// Forward multi-way Karmarkar-Karp: like RCKK but combines the two
/// selected partitions largest-with-largest instead of in reverse order.
/// Exists to quantify the paper's reverse-combination design choice.
class KkForwardScheduling final : public SchedulingAlgorithm {
 public:
  [[nodiscard]] Schedule schedule(const SchedulingProblem& problem,
                                  Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "KK-fwd"; }
};

/// RCKK — Algorithm 2.  Each request starts as a partition (λ_r, 0, ..., 0);
/// repeatedly the two partitions with the largest leading value are combined
/// position-wise in reverse order, re-sorted descending, normalized by the
/// smallest position, and reinserted; request sets merge accordingly.  The
/// surviving partition's position sets are the instance assignment.
class RckkScheduling final : public SchedulingAlgorithm {
 public:
  [[nodiscard]] Schedule schedule(const SchedulingProblem& problem,
                                  Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "RCKK"; }
};

/// Complete Karmarkar-Karp: CKK search with RCKK's combine as the first
/// branch and alternative pairings as backtracks, under a node budget.
class CkkScheduling final : public SchedulingAlgorithm {
 public:
  struct Options {
    std::uint64_t node_budget = 20'000;
  };

  CkkScheduling() = default;
  explicit CkkScheduling(Options options);

  [[nodiscard]] Schedule schedule(const SchedulingProblem& problem,
                                  Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "CKK"; }

 private:
  Options options_{};
};

/// Exact 2-way partitioner via subset-sum dynamic programming on rates
/// quantized to `resolution` buckets — a ground-truth oracle for m = 2
/// (throws for any other instance count).  Pseudo-polynomial:
/// O(n · resolution) time and memory.
class TwoWayDpScheduling final : public SchedulingAlgorithm {
 public:
  struct Options {
    /// DP grid size; the quantum is Σλ / resolution, so the result is
    /// optimal to within one quantum per request.
    std::uint32_t resolution = 1'000'000;
  };

  TwoWayDpScheduling() = default;
  explicit TwoWayDpScheduling(Options options);

  [[nodiscard]] Schedule schedule(const SchedulingProblem& problem,
                                  Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "DP2"; }

 private:
  Options options_{};
};

/// Returns the scheduler registered under `name` ("RCKK", "CGA",
/// "CGA-online", "LPT", "RR", "KK-fwd", "CKK", "DP2"); nullptr if unknown.
[[nodiscard]] std::unique_ptr<SchedulingAlgorithm> make_scheduling_algorithm(
    std::string_view name);

/// All registered algorithm names.
[[nodiscard]] std::vector<std::string> scheduling_algorithm_names();

}  // namespace nfv::sched
