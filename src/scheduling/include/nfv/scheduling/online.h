// Online request scheduling — the dynamic regime the paper defers to
// future work (Sec. IV-A discusses dynamic scaling but fixes assignments
// per batch).  Requests arrive and depart over time; the scheduler keeps
// per-instance loads balanced with a bounded number of migrations, since
// moving a flow between service instances costs state transfer in a real
// NFV dataplane (cf. OpenNF [5]).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nfv/common/error.h"
#include "nfv/common/ids.h"

namespace nfv::sched {

/// Maintains the assignment of a dynamic request population onto the
/// m service instances of one VNF.
///
/// Inserts go to the least-loaded instance (online greedy); departures
/// free their load; rebalance() migrates requests from hot to cold
/// instances under a migration budget.  With auto_rebalance enabled, a
/// rebalance pass triggers whenever the relative imbalance exceeds the
/// threshold after a mutation.
class OnlineScheduler {
 public:
  struct Options {
    /// Trigger threshold: (max_load − min_load) / mean_load.
    double rebalance_threshold = 0.25;
    /// Max migrations per automatic rebalance pass.
    std::uint32_t migration_budget = 4;
    /// Rebalance automatically after add/remove when the threshold trips.
    bool auto_rebalance = true;
  };

  struct RebalanceResult {
    std::uint32_t migrations = 0;
    double imbalance_before = 0.0;
    double imbalance_after = 0.0;
  };

  explicit OnlineScheduler(std::uint32_t instance_count)
      : OnlineScheduler(instance_count, Options{}) {}
  OnlineScheduler(std::uint32_t instance_count, Options options);

  /// Admits a request; returns its instance.  Throws if the id is already
  /// present or the rate is not positive and finite (NaN/inf rejected).
  InstanceIndex add(RequestId id, double rate);

  /// Removes a request.  Throws if unknown.
  void remove(RequestId id);

  /// Instance currently serving `id`, or nullopt.
  [[nodiscard]] std::optional<InstanceIndex> instance_of(RequestId id) const;

  /// Current per-instance raw loads (Σ λ).
  [[nodiscard]] const std::vector<double>& loads() const { return loads_; }

  [[nodiscard]] std::size_t request_count() const { return requests_.size(); }
  [[nodiscard]] std::uint32_t instance_count() const {
    return static_cast<std::uint32_t>(loads_.size());
  }

  /// (max − min) / mean over instances; 0 when idle.
  [[nodiscard]] double relative_imbalance() const;

  /// One bounded rebalance pass: repeatedly moves the best single request
  /// from the most- to the least-loaded instance while that strictly
  /// shrinks the max-min gap.  Returns what happened.
  RebalanceResult rebalance(std::uint32_t max_migrations);

  /// Total migrations performed since construction (manual + automatic).
  [[nodiscard]] std::uint64_t total_migrations() const {
    return total_migrations_;
  }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Entry {
    double rate = 0.0;
    InstanceIndex instance = 0;
  };

  [[nodiscard]] InstanceIndex least_loaded() const;
  void maybe_auto_rebalance();

  Options options_;
  std::vector<double> loads_;
  std::unordered_map<RequestId, Entry> requests_;
  std::uint64_t total_migrations_ = 0;
};

}  // namespace nfv::sched
