// Bounded-migration planning for the online serving engine: given a live
// per-VNF assignment and a freshly re-solved target schedule (RCKK), pick
// at most K request moves that walk the live state toward the target.
//
// A full re-solve reshuffles almost every request; live traffic cannot
// absorb that.  The planner therefore (1) matches target parts to live
// instances so the overlap of effective load is maximal — the identity of
// an instance is "whatever part it already mostly serves" — and (2) moves
// only the heaviest mismatched requests, largest effective rate first,
// until the budget is spent.  Everything is deterministic: ties break on
// the lower index.
#pragma once

#include <cstdint>
#include <vector>

#include "nfv/scheduling/problem.h"

namespace nfv::sched {

/// One planned request move between instances of the same VNF.
struct MigrationMove {
  std::size_t request = 0;  ///< problem position (see SchedulingProblem)
  std::uint32_t from = 0;   ///< current instance
  std::uint32_t to = 0;     ///< target instance

  friend bool operator==(const MigrationMove&, const MigrationMove&) = default;
};

struct MigrationPlan {
  /// At most `budget` moves, ordered largest effective rate first.
  std::vector<MigrationMove> moves;
  /// Target part matched to each current instance (part_of_instance[k] is
  /// the target-schedule part whose requests instance k keeps/absorbs).
  std::vector<std::uint32_t> part_of_instance;
  double imbalance_before = 0.0;  ///< max−min effective load, pre-plan
  double imbalance_after = 0.0;   ///< max−min effective load, post-plan
};

/// Plans at most `budget` moves from `current` toward `target`.
///
/// `current` and `target.instance_of` assign every problem position an
/// instance in [0, problem.instance_count).  When `capacity_limit` > 0, a
/// move whose destination effective load would exceed it is skipped (the
/// serving engine passes its admission limit so rebalancing can never
/// overload an instance).
[[nodiscard]] MigrationPlan plan_bounded_migration(
    const SchedulingProblem& problem, const std::vector<std::uint32_t>& current,
    const Schedule& target, std::uint32_t budget, double capacity_limit = 0.0);

}  // namespace nfv::sched
