#include "nfv/scheduling/algorithm.h"

namespace nfv::sched {

std::unique_ptr<SchedulingAlgorithm> make_scheduling_algorithm(
    std::string_view name) {
  if (name == "RCKK") return std::make_unique<RckkScheduling>();
  if (name == "CGA") return std::make_unique<CgaScheduling>();
  if (name == "CGA-online") {
    CgaScheduling::Options online;
    online.sort_decreasing = false;
    return std::make_unique<CgaScheduling>(online);
  }
  if (name == "LPT") return std::make_unique<LptScheduling>();
  if (name == "RR") return std::make_unique<RoundRobinScheduling>();
  if (name == "KK-fwd") return std::make_unique<KkForwardScheduling>();
  if (name == "CKK") return std::make_unique<CkkScheduling>();
  if (name == "DP2") return std::make_unique<TwoWayDpScheduling>();
  return nullptr;
}

std::vector<std::string> scheduling_algorithm_names() {
  return {"RCKK", "CGA", "CGA-online", "LPT", "RR", "KK-fwd", "CKK", "DP2"};
}

}  // namespace nfv::sched
