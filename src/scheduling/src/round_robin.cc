// Round-robin over descending rates — the weakest sane baseline.
#include <algorithm>
#include <numeric>

#include "nfv/scheduling/algorithm.h"

namespace nfv::sched {

Schedule RoundRobinScheduling::schedule(const SchedulingProblem& problem,
                                        Rng& /*rng*/) const {
  problem.validate();
  Schedule out;
  out.instance_of.resize(problem.request_count());
  out.work = problem.request_count();
  std::vector<std::uint32_t> order(problem.request_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return problem.effective_rate(a) >
                            problem.effective_rate(b);
                   });
  for (std::size_t i = 0; i < order.size(); ++i) {
    out.instance_of[order[i]] =
        static_cast<std::uint32_t>(i % problem.instance_count);
  }
  out.validate(problem);
  return out;
}

}  // namespace nfv::sched
