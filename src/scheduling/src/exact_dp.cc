// Exact 2-way partitioning by subset-sum dynamic programming over scaled
// integer rates — a ground-truth oracle for validating CKK and measuring
// heuristic optimality gaps on two-instance problems.
#include <algorithm>
#include <cmath>
#include <vector>

#include "nfv/scheduling/algorithm.h"

namespace nfv::sched {

TwoWayDpScheduling::TwoWayDpScheduling(Options options) : options_(options) {
  NFV_REQUIRE(options_.resolution > 0);
}

Schedule TwoWayDpScheduling::schedule(const SchedulingProblem& problem,
                                      Rng& /*rng*/) const {
  problem.validate();
  NFV_REQUIRE(problem.instance_count == 2);

  // Scale rates to integers: value = round(rate / quantum), where the
  // quantum keeps the DP table within `resolution` cells.
  const double total = problem.total_effective_rate();
  const double quantum =
      std::max(total / static_cast<double>(options_.resolution), 1e-12);
  std::vector<std::uint32_t> scaled;
  scaled.reserve(problem.request_count());
  std::uint64_t scaled_total = 0;
  for (std::size_t r = 0; r < problem.request_count(); ++r) {
    const auto v = static_cast<std::uint32_t>(
        std::llround(problem.effective_rate(r) / quantum));
    scaled.push_back(v);
    scaled_total += v;
  }
  const auto half = static_cast<std::size_t>(scaled_total / 2);

  // reachable[s] = true if some subset sums to s; parent choice is
  // reconstructed from per-item snapshots of the frontier.
  std::vector<char> reachable(half + 1, 0);
  reachable[0] = 1;
  // took[i][s] = item i was used to reach s first.
  std::vector<std::vector<std::uint32_t>> took_at(
      scaled.size());  // for each item: list of sums it newly reached
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    const std::uint32_t v = scaled[i];
    if (v == 0 || v > half) continue;
    for (std::size_t s = half; s >= v; --s) {
      if (!reachable[s] && reachable[s - v]) {
        reachable[s] = 1;
        took_at[i].push_back(static_cast<std::uint32_t>(s));
      }
    }
  }
  std::size_t best = half;
  while (best > 0 && !reachable[best]) --best;

  // Reconstruct: walk items backwards; item i is in the subset iff it was
  // the one that first reached the current sum.
  Schedule out;
  out.instance_of.assign(problem.request_count(), 1);
  std::size_t remaining = best;
  for (std::size_t i = scaled.size(); i-- > 0 && remaining > 0;) {
    const auto& sums = took_at[i];
    if (std::find(sums.begin(), sums.end(),
                  static_cast<std::uint32_t>(remaining)) != sums.end()) {
      out.instance_of[i] = 0;
      remaining -= scaled[i];
    }
  }
  out.work = scaled.size() * (half + 1);
  out.validate(problem);
  return out;
}

}  // namespace nfv::sched
