// RCKK — Algorithm 2 of the paper, verbatim: reverse-order m-way
// Karmarkar-Karp differencing with request-set tracking.
#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"
#include "nfv/scheduling/algorithm.h"
#include "kk_util.h"

namespace nfv::sched {

Schedule RckkScheduling::schedule(const SchedulingProblem& problem,
                                  Rng& /*rng*/) const {
  const obs::ScopedSpan span("sched.rckk.schedule");
  problem.validate();
  Schedule out;
  if (problem.instance_count == 1) {
    out.instance_of.assign(problem.request_count(), 0);
    out.work = problem.request_count();
    obs::count("sched.rckk.runs");
    obs::count("sched.rckk.combines", out.work);
    return out;
  }
  auto list = detail::initial_partitions(problem);
  while (list.size() > 1) {
    // Lines 2-6: combine the two partitions with the largest leading
    // values in reverse order, normalize, reinsert.
    detail::Partition a = std::move(list[0]);
    detail::Partition b = std::move(list[1]);
    list.erase(list.begin(), list.begin() + 2);
    detail::insert_sorted(list, detail::combine_reverse(a, b));
    ++out.work;
  }
  out.instance_of = detail::to_assignment(list.front(),
                                          problem.request_count());
  out.validate(problem);
  obs::count("sched.rckk.runs");
  obs::count("sched.rckk.combines", out.work);
  return out;
}

}  // namespace nfv::sched
