// RCKK — Algorithm 2 of the paper, verbatim: reverse-order m-way
// Karmarkar-Karp differencing with request-set tracking.
#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"
#include "nfv/scheduling/algorithm.h"
#include "kk_util.h"

namespace nfv::sched {

Schedule RckkScheduling::schedule(const SchedulingProblem& problem,
                                  Rng& /*rng*/) const {
  const obs::ScopedSpan span("sched.rckk.schedule");
  problem.validate();
  Schedule out;
  if (problem.instance_count == 1) {
    out.instance_of.assign(problem.request_count(), 0);
    out.work = problem.request_count();
    obs::count("sched.rckk.runs");
    obs::count("sched.rckk.combines", out.work);
    return out;
  }
  detail::PartitionHeap heap(detail::initial_partitions(problem));
  while (heap.size() > 1) {
    // Lines 2-6: combine the two partitions with the largest leading
    // values in reverse order, normalize, reinsert.
    detail::Partition a = heap.pop();
    detail::Partition b = heap.pop();
    heap.push(detail::combine_reverse(a, b));
    ++out.work;
  }
  out.instance_of = detail::to_assignment(heap.top(),
                                          problem.request_count());
  out.validate(problem);
  obs::count("sched.rckk.runs");
  obs::count("sched.rckk.combines", out.work);
  return out;
}

}  // namespace nfv::sched
