// Longest Processing Time greedy — requests by descending rate, each to the
// least-loaded instance.  Also the first descent of CGA.
#include <algorithm>
#include <numeric>

#include "nfv/scheduling/algorithm.h"

namespace nfv::sched {

Schedule LptScheduling::schedule(const SchedulingProblem& problem,
                                 Rng& /*rng*/) const {
  problem.validate();
  Schedule out;
  out.instance_of.resize(problem.request_count());
  out.work = problem.request_count();
  std::vector<std::uint32_t> order(problem.request_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return problem.effective_rate(a) >
                            problem.effective_rate(b);
                   });
  std::vector<double> load(problem.instance_count, 0.0);
  for (const std::uint32_t r : order) {
    const auto k = static_cast<std::uint32_t>(std::distance(
        load.begin(), std::min_element(load.begin(), load.end())));
    out.instance_of[r] = k;
    load[k] += problem.effective_rate(r);
  }
  out.validate(problem);
  return out;
}

}  // namespace nfv::sched
