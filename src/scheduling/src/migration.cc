#include "nfv/scheduling/migration.h"

#include <algorithm>
#include <limits>

#include "nfv/common/error.h"

namespace nfv::sched {

namespace {

double spread(const std::vector<double>& loads) {
  if (loads.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  return *hi - *lo;
}

}  // namespace

MigrationPlan plan_bounded_migration(const SchedulingProblem& problem,
                                     const std::vector<std::uint32_t>& current,
                                     const Schedule& target,
                                     std::uint32_t budget,
                                     double capacity_limit) {
  const std::size_t n = problem.request_count();
  const std::uint32_t m = problem.instance_count;
  NFV_REQUIRE(current.size() == n);
  NFV_REQUIRE(target.instance_of.size() == n);
  for (std::size_t r = 0; r < n; ++r) {
    NFV_REQUIRE(current[r] < m);
    NFV_REQUIRE(target.instance_of[r] < m);
  }

  // Effective-load overlap between target part p and live instance k.
  std::vector<double> overlap(static_cast<std::size_t>(m) * m, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    overlap[static_cast<std::size_t>(target.instance_of[r]) * m + current[r]] +=
        problem.effective_rate(r);
  }

  // Greedy maximum-overlap matching of parts to instances; ties break on
  // the lower part then the lower instance, so the result is deterministic.
  MigrationPlan plan;
  std::vector<std::uint32_t> instance_of_part(m,
                                              std::numeric_limits<std::uint32_t>::max());
  std::vector<bool> part_taken(m, false);
  std::vector<bool> instance_taken(m, false);
  for (std::uint32_t round = 0; round < m; ++round) {
    double best = -1.0;
    std::uint32_t best_p = 0;
    std::uint32_t best_k = 0;
    for (std::uint32_t p = 0; p < m; ++p) {
      if (part_taken[p]) continue;
      for (std::uint32_t k = 0; k < m; ++k) {
        if (instance_taken[k]) continue;
        const double o = overlap[static_cast<std::size_t>(p) * m + k];
        if (o > best) {
          best = o;
          best_p = p;
          best_k = k;
        }
      }
    }
    part_taken[best_p] = true;
    instance_taken[best_k] = true;
    instance_of_part[best_p] = best_k;
  }
  plan.part_of_instance.assign(m, 0);
  for (std::uint32_t p = 0; p < m; ++p) {
    plan.part_of_instance[instance_of_part[p]] = p;
  }

  // Current effective loads, and the instance each request should end on.
  std::vector<double> load(m, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    load[current[r]] += problem.effective_rate(r);
  }
  plan.imbalance_before = spread(load);

  std::vector<std::size_t> mismatched;
  for (std::size_t r = 0; r < n; ++r) {
    if (instance_of_part[target.instance_of[r]] != current[r]) {
      mismatched.push_back(r);
    }
  }
  std::stable_sort(mismatched.begin(), mismatched.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.effective_rate(a) >
                            problem.effective_rate(b);
                   });

  for (const std::size_t r : mismatched) {
    if (plan.moves.size() >= budget) break;
    const std::uint32_t from = current[r];
    const std::uint32_t to = instance_of_part[target.instance_of[r]];
    const double rate = problem.effective_rate(r);
    if (capacity_limit > 0.0 && load[to] + rate > capacity_limit) continue;
    load[from] -= rate;
    load[to] += rate;
    plan.moves.push_back({r, from, to});
  }
  plan.imbalance_after = spread(load);
  return plan;
}

}  // namespace nfv::sched
