// Complete Greedy Algorithm (Korf 2009) for m-way partitioning, anytime
// under a node budget.  The search orders requests by descending rate and,
// at each depth, tries instances by ascending current load — so the first
// descent is exactly LPT, and further budget refines it.  Duplicate-load
// instances are branch-pruned (assigning to either is symmetric), and a
// branch is cut when its max load already reaches the incumbent's.
#include <algorithm>
#include <numeric>

#include "nfv/scheduling/algorithm.h"

namespace nfv::sched {

CgaScheduling::CgaScheduling(Options options) : options_(options) {}

namespace {

struct CgaSearch {
  const SchedulingProblem* problem = nullptr;
  std::vector<std::uint32_t> order;        // requests by descending rate
  std::vector<double> suffix_sum;          // remaining rate from depth d
  std::vector<double> load;                // per-instance current load
  std::vector<std::uint32_t> assignment;   // per depth: chosen instance
  std::vector<std::uint32_t> best;         // per depth
  double best_max = 0.0;
  std::uint64_t nodes = 0;
  std::uint64_t budget = 0;
  bool exhausted = false;                  // budget hit

  [[nodiscard]] double current_max() const {
    return *std::max_element(load.begin(), load.end());
  }

  void dfs(std::size_t depth) {
    if (exhausted) return;
    if (depth == order.size()) {
      const double mx = current_max();
      if (best.empty() || mx < best_max) {
        best = assignment;
        best_max = mx;
      }
      return;
    }
    if (++nodes > budget && !best.empty()) {
      exhausted = true;
      return;
    }
    // Perfect-balance lower bound: even ideal spreading of the remaining
    // rate cannot beat the incumbent -> prune.
    if (!best.empty()) {
      const double total_remaining = suffix_sum[depth];
      const double lb = std::max(
          current_max(),
          (std::accumulate(load.begin(), load.end(), 0.0) + total_remaining) /
              static_cast<double>(load.size()));
      if (lb >= best_max) return;
    }
    const double rate = problem->effective_rate(order[depth]);
    // Instances by ascending load; equal loads are symmetric, try one.
    std::vector<std::uint32_t> ks(load.size());
    std::iota(ks.begin(), ks.end(), 0);
    std::stable_sort(ks.begin(), ks.end(), [&](std::uint32_t a, std::uint32_t b) {
      return load[a] < load[b];
    });
    double last_load = -1.0;
    for (const std::uint32_t k : ks) {
      if (load[k] == last_load) continue;
      last_load = load[k];
      if (!best.empty() && load[k] + rate >= best_max) break;  // sorted: done
      load[k] += rate;
      assignment[depth] = k;
      dfs(depth + 1);
      load[k] -= rate;
      if (exhausted) return;
    }
  }
};

}  // namespace

Schedule CgaScheduling::schedule(const SchedulingProblem& problem,
                                 Rng& /*rng*/) const {
  problem.validate();
  Schedule out;
  if (problem.instance_count == 1) {
    out.instance_of.assign(problem.request_count(), 0);
    out.work = problem.request_count();
    return out;
  }
  CgaSearch search;
  search.problem = &problem;
  search.order.resize(problem.request_count());
  std::iota(search.order.begin(), search.order.end(), 0);
  if (options_.sort_decreasing) {
    std::stable_sort(search.order.begin(), search.order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return problem.effective_rate(a) >
                              problem.effective_rate(b);
                     });
  }
  search.suffix_sum.assign(problem.request_count() + 1, 0.0);
  for (std::size_t d = problem.request_count(); d-- > 0;) {
    search.suffix_sum[d] =
        search.suffix_sum[d + 1] + problem.effective_rate(search.order[d]);
  }
  search.load.assign(problem.instance_count, 0.0);
  search.assignment.resize(problem.request_count());
  search.budget = options_.node_budget == 0
                      ? problem.request_count()  // first descent only
                      : options_.node_budget;
  search.dfs(0);

  out.instance_of.resize(problem.request_count());
  for (std::size_t d = 0; d < search.order.size(); ++d) {
    out.instance_of[search.order[d]] = search.best[d];
  }
  out.work = search.nodes;
  out.validate(problem);
  return out;
}

}  // namespace nfv::sched
