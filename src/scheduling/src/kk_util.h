// Internal machinery shared by the Karmarkar-Karp family (RCKK, forward KK,
// CKK): partitions carrying per-position request sets, kept sorted by
// leading value.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "nfv/scheduling/problem.h"

namespace nfv::sched::detail {

/// A partition in the sense of Algorithm 2: m position values (sorted
/// descending) and, per position, the set of request indices whose rates
/// sum to that value.
struct Partition {
  std::vector<double> values;                        // size m, descending
  std::vector<std::vector<std::uint32_t>> sets;      // size m

  /// Leading (largest) value — the sort key of the Partition_list.
  [[nodiscard]] double head() const { return values.front(); }
};

/// Builds the initial Partition_list: one partition (λ_r/P_r, 0, ..., 0)
/// per request, sorted descending by effective rate (line 1 of Algorithm 2;
/// with uniform P this is the paper's λ_r ordering).
[[nodiscard]] inline std::vector<Partition> initial_partitions(
    const SchedulingProblem& problem) {
  const std::uint32_t m = problem.instance_count;
  std::vector<std::uint32_t> order(problem.request_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return problem.effective_rate(a) >
                            problem.effective_rate(b);
                   });
  std::vector<Partition> list;
  list.reserve(order.size());
  for (const std::uint32_t r : order) {
    Partition p;
    p.values.assign(m, 0.0);
    p.sets.resize(m);
    p.values[0] = problem.effective_rate(r);
    p.sets[0].push_back(r);
    list.push_back(std::move(p));
  }
  return list;
}

/// Combines partitions a and b position-wise: position i of the result is
/// a_i + b_{perm(i)} (sets merged accordingly), then re-sorted descending
/// and normalized by subtracting the last value (lines 3-5).  `perm(i)`
/// = m-1-i for the paper's reverse combine; the identity for forward KK.
template <typename Perm>
[[nodiscard]] Partition combine(const Partition& a, const Partition& b,
                                Perm perm) {
  const std::size_t m = a.values.size();
  Partition merged;
  merged.values.resize(m);
  merged.sets.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = perm(i);
    merged.values[i] = a.values[i] + b.values[j];
    merged.sets[i] = a.sets[i];
    merged.sets[i].insert(merged.sets[i].end(), b.sets[j].begin(),
                          b.sets[j].end());
  }
  // Re-sort positions by value descending, keeping sets attached.
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return merged.values[x] > merged.values[y];
  });
  Partition out;
  out.values.resize(m);
  out.sets.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.values[i] = merged.values[order[i]];
    out.sets[i] = std::move(merged.sets[order[i]]);
  }
  // Normalize: subtract the smallest value from every position.  The
  // offsets discarded here are equal across positions, so the *relative*
  // balance — all any later combine needs — is preserved.
  const double base = out.values.back();
  for (double& v : out.values) v -= base;
  return out;
}

[[nodiscard]] inline Partition combine_reverse(const Partition& a,
                                               const Partition& b) {
  const std::size_t m = a.values.size();
  return combine(a, b, [m](std::size_t i) { return m - 1 - i; });
}

[[nodiscard]] inline Partition combine_forward(const Partition& a,
                                               const Partition& b) {
  return combine(a, b, [](std::size_t i) { return i; });
}

/// Inserts into a descending-by-head list, keeping it sorted (line 6).
///
/// Reference implementation of the Partition_list: O(n) per insert from
/// the vector shift.  The algorithms use PartitionHeap below (O(log n)
/// per operation, identical pop order); this stays as the executable
/// specification the heap is unit-tested against.
inline void insert_sorted(std::vector<Partition>& list, Partition p) {
  const auto pos = std::upper_bound(
      list.begin(), list.end(), p,
      [](const Partition& x, const Partition& y) { return x.head() > y.head(); });
  list.insert(pos, std::move(p));
}

/// The Partition_list as a binary max-heap: pop() yields the partition
/// with the largest head, and — like the sorted list, where insert_sorted
/// places a new partition *after* existing equal heads — ties break FIFO
/// by insertion order.  Keying the heap on (head desc, insertion-seq asc)
/// reproduces the list's pop sequence exactly while cutting the
/// Partition_list maintenance from O(n) per combine (vector shift) to
/// O(log n), i.e. O(n log n) total for a full RCKK/KK run.
class PartitionHeap {
 public:
  PartitionHeap() = default;

  /// Heapifies an initial list; element i gets insertion sequence i, so
  /// the pop order of an initial_partitions() vector (already sorted
  /// descending, stable) is preserved.
  explicit PartitionHeap(std::vector<Partition> initial) {
    entries_.reserve(initial.size());
    for (Partition& p : initial) {
      entries_.push_back(Entry{std::move(p), next_seq_++});
    }
    std::make_heap(entries_.begin(), entries_.end(), Before{});
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Largest head (ties: earliest inserted) without removing it.
  [[nodiscard]] const Partition& top() const { return entries_.front().p; }

  /// Sum of every head except the largest — the CKK pruning bound.
  /// O(n), but only reached on un-pruned search nodes.
  [[nodiscard]] double other_heads_sum() const {
    double sum = 0.0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      sum += entries_[i].p.head();
    }
    return sum;
  }

  Partition pop() {
    std::pop_heap(entries_.begin(), entries_.end(), Before{});
    Partition p = std::move(entries_.back().p);
    entries_.pop_back();
    return p;
  }

  void push(Partition p) {
    entries_.push_back(Entry{std::move(p), next_seq_++});
    std::push_heap(entries_.begin(), entries_.end(), Before{});
  }

 private:
  struct Entry {
    Partition p;
    std::uint64_t seq = 0;
  };
  /// std:: heap algorithms keep the *largest* element (by this "less
  /// than") at the front; an earlier seq wins among equal heads.
  struct Before {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.p.head() != b.p.head()) return a.p.head() < b.p.head();
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

/// Converts the surviving partition's sets to a per-request instance map
/// (lines 8-10).
[[nodiscard]] inline std::vector<std::uint32_t> to_assignment(
    const Partition& final_partition, std::size_t request_count) {
  std::vector<std::uint32_t> instance_of(request_count, 0);
  for (std::uint32_t k = 0; k < final_partition.sets.size(); ++k) {
    for (const std::uint32_t r : final_partition.sets[k]) {
      instance_of[r] = k;
    }
  }
  return instance_of;
}

}  // namespace nfv::sched::detail
