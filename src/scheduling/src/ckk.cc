// Complete Karmarkar-Karp for m-way partitioning, anytime under a node
// budget.  At each combine step the first branch is RCKK's reverse-order
// pairing; alternatives rotate the reversed positions of the second
// partition (m-1 further pairings), which covers the pairing space Korf's
// m-way CKK explores without enumerating all m! bijections.  The best
// complete differencing (minimum final spread) wins.
#include <algorithm>

#include "nfv/scheduling/algorithm.h"
#include "kk_util.h"

namespace nfv::sched {

CkkScheduling::CkkScheduling(Options options) : options_(options) {
  NFV_REQUIRE(options_.node_budget >= 1);
}

namespace {

struct CkkSearch {
  std::size_t m = 0;
  std::uint64_t nodes = 0;
  std::uint64_t budget = 0;
  bool exhausted = false;
  double best_spread = 0.0;
  detail::Partition best;

  void dfs(detail::PartitionHeap list) {
    if (exhausted) return;
    if (list.size() == 1) {
      const double spread = list.top().values.front();  // normalized: min==0
      if (best.values.empty() || spread < best_spread) {
        best = list.pop();
        best_spread = spread;
      }
      return;
    }
    if (++nodes > budget && !best.values.empty()) {
      exhausted = true;
      return;
    }
    // Lower bound: combining can reduce the largest head by at most the sum
    // of all other heads (classic KK bound, generalized).
    if (!best.values.empty()) {
      if (list.top().head() - list.other_heads_sum() >= best_spread) {
        // Even perfect cancellation leaves a spread >= incumbent.
        return;
      }
    }
    detail::Partition a = list.pop();
    detail::Partition b = list.pop();
    for (std::size_t shift = 0; shift < m; ++shift) {
      auto perm = [this, shift](std::size_t i) {
        return (m - 1 - i + shift) % m;
      };
      detail::PartitionHeap next = list;  // copy remaining
      next.push(detail::combine(a, b, perm));
      dfs(std::move(next));
      if (exhausted) return;
      if (m == 1) break;
    }
  }
};

}  // namespace

Schedule CkkScheduling::schedule(const SchedulingProblem& problem,
                                 Rng& /*rng*/) const {
  problem.validate();
  Schedule out;
  if (problem.instance_count == 1) {
    out.instance_of.assign(problem.request_count(), 0);
    out.work = problem.request_count();
    return out;
  }
  CkkSearch search;
  search.m = problem.instance_count;
  search.budget = options_.node_budget;
  search.dfs(detail::PartitionHeap(detail::initial_partitions(problem)));
  NFV_CHECK(!search.best.values.empty());
  out.instance_of = detail::to_assignment(search.best,
                                          problem.request_count());
  out.work = search.nodes;
  out.validate(problem);
  return out;
}

}  // namespace nfv::sched
