// Forward multi-way Karmarkar-Karp: identical to RCKK except positions are
// combined largest-with-largest.  Ablation for the paper's reverse-order
// design choice (Sec. IV-C: "we attempt to combine two normalized
// partitions in reverse order").
#include "nfv/scheduling/algorithm.h"
#include "kk_util.h"

namespace nfv::sched {

Schedule KkForwardScheduling::schedule(const SchedulingProblem& problem,
                                       Rng& /*rng*/) const {
  problem.validate();
  Schedule out;
  if (problem.instance_count == 1) {
    out.instance_of.assign(problem.request_count(), 0);
    out.work = problem.request_count();
    return out;
  }
  detail::PartitionHeap heap(detail::initial_partitions(problem));
  while (heap.size() > 1) {
    detail::Partition a = heap.pop();
    detail::Partition b = heap.pop();
    heap.push(detail::combine_forward(a, b));
    ++out.work;
  }
  out.instance_of = detail::to_assignment(heap.top(),
                                          problem.request_count());
  out.validate(problem);
  return out;
}

}  // namespace nfv::sched
