#include "nfv/scheduling/problem.h"

namespace nfv::sched {

double SchedulingProblem::mean_prob() const {
  if (delivery_probs.empty()) return delivery_prob;
  double total = 0.0;
  for (const double p : delivery_probs) total += p;
  return total / static_cast<double>(delivery_probs.size());
}

double SchedulingProblem::total_effective_rate() const {
  double total = 0.0;
  for (std::size_t r = 0; r < arrival_rates.size(); ++r) {
    total += effective_rate(r);
  }
  return total;
}

bool SchedulingProblem::balanced_stable() const {
  return total_effective_rate() / static_cast<double>(instance_count) <
         service_rate;
}

void SchedulingProblem::validate() const {
  NFV_REQUIRE(!arrival_rates.empty());
  for (const double r : arrival_rates) NFV_REQUIRE(r > 0.0);
  NFV_REQUIRE(delivery_prob > 0.0 && delivery_prob <= 1.0);
  NFV_REQUIRE(delivery_probs.empty() ||
              delivery_probs.size() == arrival_rates.size());
  for (const double p : delivery_probs) {
    NFV_REQUIRE(p > 0.0 && p <= 1.0);
  }
  NFV_REQUIRE(service_rate > 0.0);
  NFV_REQUIRE(instance_count >= 1);
}

SchedulingProblem make_problem(const workload::Workload& w, VnfId f) {
  NFV_REQUIRE(f.index() < w.vnfs.size());
  const workload::Vnf& vnf = w.vnfs[f.index()];
  SchedulingProblem p;
  p.instance_count = vnf.instance_count;
  p.service_rate = vnf.service_rate;
  bool uniform = true;
  for (const auto& r : w.requests) {
    if (!r.uses(f)) continue;
    p.arrival_rates.push_back(r.arrival_rate);
    p.delivery_probs.push_back(r.delivery_prob);
    if (r.delivery_prob != p.delivery_probs.front()) uniform = false;
  }
  if (uniform && !p.delivery_probs.empty()) {
    // Collapse to the Eq. 12 special case.
    p.delivery_prob = p.delivery_probs.front();
    p.delivery_probs.clear();
  }
  p.validate();
  return p;
}

void Schedule::validate(const SchedulingProblem& problem) const {
  NFV_REQUIRE(instance_of.size() == problem.request_count());
  for (const std::uint32_t k : instance_of) {
    NFV_REQUIRE(k < problem.instance_count);
  }
}

}  // namespace nfv::sched
