#include "nfv/scheduling/online.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace nfv::sched {

OnlineScheduler::OnlineScheduler(std::uint32_t instance_count,
                                 Options options)
    : options_(options), loads_(instance_count, 0.0) {
  NFV_REQUIRE(instance_count >= 1);
  NFV_REQUIRE(options_.rebalance_threshold >= 0.0);
}

InstanceIndex OnlineScheduler::least_loaded() const {
  return static_cast<InstanceIndex>(std::distance(
      loads_.begin(), std::min_element(loads_.begin(), loads_.end())));
}

InstanceIndex OnlineScheduler::add(RequestId id, double rate) {
  // A NaN or infinite λ would poison the load vector for every later
  // imbalance/rebalance decision; reject it at the door.
  NFV_REQUIRE(std::isfinite(rate));
  NFV_REQUIRE(rate > 0.0);
  NFV_REQUIRE(!requests_.contains(id));
  const InstanceIndex k = least_loaded();
  loads_[k] += rate;
  requests_.emplace(id, Entry{rate, k});
  maybe_auto_rebalance();
  return requests_.at(id).instance;  // may have moved during rebalance
}

void OnlineScheduler::remove(RequestId id) {
  const auto it = requests_.find(id);
  NFV_REQUIRE(it != requests_.end());
  loads_[it->second.instance] -= it->second.rate;
  // Guard FP drift toward exactly-empty instances.
  if (loads_[it->second.instance] < 1e-12) {
    loads_[it->second.instance] = 0.0;
  }
  requests_.erase(it);
  maybe_auto_rebalance();
}

std::optional<InstanceIndex> OnlineScheduler::instance_of(
    RequestId id) const {
  const auto it = requests_.find(id);
  if (it == requests_.end()) return std::nullopt;
  return it->second.instance;
}

double OnlineScheduler::relative_imbalance() const {
  const auto [lo, hi] = std::minmax_element(loads_.begin(), loads_.end());
  const double total =
      std::accumulate(loads_.begin(), loads_.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const double mean = total / static_cast<double>(loads_.size());
  return (*hi - *lo) / mean;
}

OnlineScheduler::RebalanceResult OnlineScheduler::rebalance(
    std::uint32_t max_migrations) {
  RebalanceResult result;
  result.imbalance_before = relative_imbalance();
  while (result.migrations < max_migrations) {
    const auto hot = static_cast<InstanceIndex>(std::distance(
        loads_.begin(), std::max_element(loads_.begin(), loads_.end())));
    const auto cold = least_loaded();
    const double gap = loads_[hot] - loads_[cold];
    if (gap <= 0.0) break;
    // Best single move: the request on `hot` whose rate is closest to
    // gap/2 (shrinks the pairwise gap the most without overshooting into
    // a larger reversed gap).
    RequestId best{};
    double best_rate = 0.0;
    double best_score = std::numeric_limits<double>::infinity();
    for (const auto& [id, entry] : requests_) {
      if (entry.instance != hot) continue;
      if (entry.rate >= gap) continue;  // would overshoot
      const double score = std::abs(entry.rate - gap / 2.0);
      if (score < best_score) {
        best_score = score;
        best = id;
        best_rate = entry.rate;
      }
    }
    if (best_rate == 0.0) break;  // no improving single move exists
    loads_[hot] -= best_rate;
    loads_[cold] += best_rate;
    requests_.at(best).instance = cold;
    ++result.migrations;
    ++total_migrations_;
  }
  result.imbalance_after = relative_imbalance();
  return result;
}

void OnlineScheduler::maybe_auto_rebalance() {
  if (!options_.auto_rebalance) return;
  if (relative_imbalance() > options_.rebalance_threshold) {
    (void)rebalance(options_.migration_budget);
  }
}

}  // namespace nfv::sched
