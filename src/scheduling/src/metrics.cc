#include "nfv/scheduling/metrics.h"

#include <algorithm>
#include <limits>

namespace nfv::sched {

namespace {

/// Builds the full metric set from per-instance raw and effective loads.
ScheduleMetrics metrics_from_loads(const SchedulingProblem& problem,
                                   std::vector<double> raw,
                                   std::vector<double> effective) {
  ScheduleMetrics m;
  m.instance_load = std::move(raw);
  m.instance_effective_load = std::move(effective);
  m.max_load =
      *std::max_element(m.instance_load.begin(), m.instance_load.end());
  m.min_load =
      *std::min_element(m.instance_load.begin(), m.instance_load.end());
  m.imbalance = m.max_load - m.min_load;
  const double mu = problem.service_rate;
  const double idle_response = 1.0 / (problem.mean_prob() * mu);
  m.stable = true;
  m.utilization.reserve(m.instance_load.size());
  double response_sum = 0.0;
  double weighted_sum = 0.0;
  double raw_total = 0.0;
  m.max_response = 0.0;
  for (std::size_t k = 0; k < m.instance_load.size(); ++k) {
    const double lambda_raw = m.instance_load[k];
    const double lambda_eff = m.instance_effective_load[k];
    const double rho = lambda_eff / mu;
    m.utilization.push_back(rho);
    raw_total += lambda_raw;
    if (rho >= 1.0) {
      m.stable = false;
      continue;
    }
    // Eq. 11: W = N/(Σλ z) with N = ρ/(1−ρ); idle instances contribute
    // the service-only latency 1/(P̄μ) (Eq. 12 at zero load).
    const double w = lambda_raw > 0.0
                         ? (rho / (1.0 - rho)) / lambda_raw
                         : idle_response;
    response_sum += w;
    weighted_sum += w * lambda_raw;
    m.max_response = std::max(m.max_response, w);
  }
  if (m.stable) {
    m.avg_response =
        response_sum / static_cast<double>(m.instance_load.size());
    m.packet_weighted_response =
        raw_total > 0.0 ? weighted_sum / raw_total : idle_response;
  } else {
    m.avg_response = std::numeric_limits<double>::infinity();
    m.max_response = std::numeric_limits<double>::infinity();
    m.packet_weighted_response = std::numeric_limits<double>::infinity();
  }
  return m;
}

}  // namespace

ScheduleMetrics evaluate(const SchedulingProblem& problem,
                         const Schedule& schedule) {
  schedule.validate(problem);
  std::vector<double> raw(problem.instance_count, 0.0);
  std::vector<double> effective(problem.instance_count, 0.0);
  for (std::size_t r = 0; r < problem.request_count(); ++r) {
    raw[schedule.instance_of[r]] += problem.arrival_rates[r];
    effective[schedule.instance_of[r]] += problem.effective_rate(r);
  }
  return metrics_from_loads(problem, std::move(raw), std::move(effective));
}

AdmissionResult apply_admission(const SchedulingProblem& problem,
                                const Schedule& schedule, double rho_max) {
  schedule.validate(problem);
  NFV_REQUIRE(rho_max > 0.0 && rho_max <= 1.0);
  AdmissionResult out;
  out.admitted.assign(problem.request_count(), false);
  const double limit = rho_max * problem.service_rate;  // on Λ_k
  std::vector<double> raw(problem.instance_count, 0.0);
  std::vector<double> effective(problem.instance_count, 0.0);
  for (std::size_t r = 0; r < problem.request_count(); ++r) {
    const std::uint32_t k = schedule.instance_of[r];
    if (effective[k] + problem.effective_rate(r) < limit) {
      raw[k] += problem.arrival_rates[r];
      effective[k] += problem.effective_rate(r);
      out.admitted[r] = true;
    } else {
      ++out.rejected_count;
    }
  }
  out.rejection_rate = static_cast<double>(out.rejected_count) /
                       static_cast<double>(problem.request_count());
  out.admitted_metrics =
      metrics_from_loads(problem, std::move(raw), std::move(effective));
  return out;
}

double enhancement_ratio(double baseline, double ours) {
  NFV_REQUIRE(baseline > 0.0);
  return (baseline - ours) / baseline;
}

}  // namespace nfv::sched
