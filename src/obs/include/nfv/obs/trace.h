// Scoped span tracer emitting Chrome trace-event JSON.
//
// Instrumentation sites construct a ScopedSpan with a string-literal name;
// the span measures wall time from construction to destruction and, when a
// global Tracer is installed, records one complete ("ph": "X") event.
// Nesting falls out of the format: chrome://tracing (or Perfetto) nests
// events on the same tid by their [ts, ts+dur] containment.
//
// Null-sink: without an installed tracer a span costs one relaxed atomic
// load in the constructor and a null check in the destructor — no clock
// read, no allocation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nfv::obs {

/// One completed span, timestamped in microseconds since the tracer epoch.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

/// Collects spans; thread-safe.  Timestamps are relative to construction.
class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  Tracer() : epoch_(Clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record(std::string_view name, Clock::time_point start,
              Clock::time_point end);

  [[nodiscard]] std::vector<TraceEvent> events() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  /// Chrome trace-event JSON: an array of
  /// {"name": ..., "ph": "X", "ts": µs, "dur": µs, "pid": 1, "tid": n},
  /// loadable directly in chrome://tracing and Perfetto.
  void write_json(std::ostream& os) const;

 private:
  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// The globally installed tracer, or nullptr when tracing is disabled.
[[nodiscard]] Tracer* tracer() noexcept;

/// Installs (or clears) the global tracer; returns the previous one.
Tracer* set_tracer(Tracer* t) noexcept;

/// RAII install/uninstall of a tracer as the global sink.
class ScopedTracing {
 public:
  explicit ScopedTracing(Tracer& t) : prev_(set_tracer(&t)) {}
  ~ScopedTracing() { set_tracer(prev_); }
  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;

 private:
  Tracer* prev_;
};

/// RAII phase timer.  `name` must outlive the span (use string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) : tracer_(tracer()) {
    if (tracer_ != nullptr) {
      name_ = name;
      start_ = Tracer::Clock::now();
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, start_, Tracer::Clock::now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  std::string_view name_;
  Tracer::Clock::time_point start_{};
};

}  // namespace nfv::obs
