// Machine-readable run reports: a stable JSON schema describing one whole
// pipeline run (placement summary, per-instance loads and response times,
// DES counters, resilience recovery trail, metrics-registry snapshot).
//
// The obs library owns the schema, serialization, loading, pretty-printing
// and diffing; it knows nothing about the solver types.  The core library
// provides the builder that converts a JointResult / SimResult /
// RecoveryReport stream into a RunReport (nfv/core/report_builder.h).
//
// Schema ("nfvpr.run_report/1"):
//
//   {
//     "schema": "nfvpr.run_report/1",
//     "command": "pipeline", "seed": 1,
//     "placement":  {feasible, algorithm, iterations, nodes_in_service,
//                    node_count, avg_utilization, occupation},
//     "scheduling": {algorithm, vnfs: [{vnf, instances, service_rate,
//                    delivery_prob, admitted, rejected, work,
//                    instance_load: [Λ_k...], instance_response: [W_k...]}]},
//     "requests":   {total, admitted, rejection_rate, avg_total_latency,
//                    avg_response},
//     "des":        {events, measured_window, truncated, generated,
//                    delivered, retransmissions, buffer_drops,
//                    fault_retransmissions, station_drops,
//                    station_fault_drops, station_failures,
//                    avg_utilization, mean_latency, total_downtime},
//     "resilience": {events: [...], final_availability, worst_availability,
//                    total_shed, resolutions: {rung: count}},
//     "shard":      {shards, components, splits, fallback_monolithic,
//                    repair_moves, drain_moves, drained_nodes,
//                    boundary_requests, rebalances, migrations},
//     "metrics":    {counters: {...}, gauges: {...}, histograms: {...}}
//   }
//
// Absent sections are omitted, never emitted empty, so diffs across
// commands stay meaningful.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "nfv/obs/json.h"
#include "nfv/obs/metrics.h"
#include "nfv/obs/timeline.h"

namespace nfv::obs {

inline constexpr std::string_view kRunReportSchema = "nfvpr.run_report/1";

struct PlacementSection {
  bool present = false;
  bool feasible = false;
  std::string algorithm;
  std::uint64_t iterations = 0;
  std::uint64_t nodes_in_service = 0;
  std::uint64_t node_count = 0;
  double avg_utilization = 0.0;
  double occupation = 0.0;
};

struct VnfScheduleEntry {
  std::string vnf;                       ///< catalog name, e.g. "FW-3"
  std::uint32_t instances = 0;           ///< M_f
  double service_rate = 0.0;             ///< μ_f
  double delivery_prob = 0.0;            ///< P
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t work = 0;                ///< algorithm work units
  std::vector<double> instance_load;     ///< Λ_k per instance (Eq. 7)
  std::vector<double> instance_response; ///< W(f,k) per instance (Eq. 12)
};

struct SchedulingSection {
  bool present = false;
  std::string algorithm;
  std::vector<VnfScheduleEntry> vnfs;
};

struct RequestSection {
  bool present = false;
  std::uint64_t total = 0;
  std::uint64_t admitted = 0;
  double rejection_rate = 0.0;
  double avg_total_latency = 0.0;  ///< Eq. 16 per admitted request
  double avg_response = 0.0;       ///< mean instance W (Eq. 15)
};

struct DesSection {
  bool present = false;
  std::uint64_t events = 0;
  double measured_window = 0.0;
  bool truncated = false;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t buffer_drops = 0;
  std::uint64_t fault_retransmissions = 0;
  std::uint64_t station_drops = 0;
  std::uint64_t station_fault_drops = 0;
  std::uint64_t station_failures = 0;
  double avg_utilization = 0.0;  ///< mean station utilization
  double mean_latency = 0.0;     ///< delivered-weighted end-to-end mean
  double total_downtime = 0.0;   ///< summed station down-seconds
};

struct ResilienceEventEntry {
  double time = 0.0;
  std::string node;
  bool node_up = false;
  std::string resolution;
  std::uint64_t vnfs_migrated = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t requests_restored = 0;
  double time_to_recover = 0.0;
  double availability = 0.0;
};

struct ResilienceSection {
  bool present = false;
  std::vector<ResilienceEventEntry> events;
  double final_availability = 0.0;
  double worst_availability = 1.0;
  std::uint64_t total_shed = 0;
  /// Resolution rung name -> number of events it resolved.
  std::map<std::string, std::uint64_t> resolutions;
};

struct MetricsSection {
  bool present = false;
  MetricsRegistry::Snapshot snapshot;
};

/// One event decision of the online serving engine (nfv/serve).
struct ServeEventEntry {
  std::uint64_t index = 0;
  double time = 0.0;
  std::string kind;      ///< "arrive" / "depart" / "rate_change"
  std::uint64_t request = 0;
  std::string decision;  ///< "admitted" / "queued" / "rejected" / ...
  std::uint64_t migrations = 0;
  std::uint64_t scale_outs = 0;
  std::uint64_t scale_ins = 0;
  std::uint64_t admitted_from_queue = 0;
  std::uint64_t evacuated = 0;
  std::uint64_t evacuation_migrations = 0;
  std::uint64_t parked = 0;
  std::uint64_t retry_admitted = 0;
  std::uint64_t shed_fault = 0;
  std::uint64_t shed_overload = 0;
  bool degraded = false;
  double mean_predicted_latency = 0.0;
  double p99_predicted_latency = 0.0;
};

/// Summary + optional per-event log of one `nfvpr serve` replay.
struct ServeSection {
  bool present = false;
  std::uint64_t events = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t admitted_from_queue = 0;
  std::uint64_t rejected = 0;
  std::uint64_t departures = 0;
  std::uint64_t rate_changes = 0;
  std::uint64_t shed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t max_migrations_per_rebalance = 0;
  std::uint64_t scale_outs = 0;
  std::uint64_t scale_ins = 0;
  std::uint64_t live_requests = 0;
  std::uint64_t queued_requests = 0;
  std::uint64_t retry_queued = 0;
  std::uint64_t active_instances = 0;
  std::uint64_t nodes_in_service = 0;
  // Fault tolerance and degradation (DESIGN.md §13).
  std::uint64_t node_downs = 0;
  std::uint64_t node_ups = 0;
  std::uint64_t instances_closed = 0;
  std::uint64_t evacuated_requests = 0;
  std::uint64_t evacuation_migrations = 0;
  std::uint64_t parked = 0;
  std::uint64_t retry_admitted = 0;
  std::uint64_t shed_fault = 0;
  std::uint64_t shed_overload = 0;
  std::uint64_t degradations = 0;
  std::uint64_t degraded_events = 0;
  double availability = 1.0;
  double admission_rate = 0.0;
  double mean_predicted_latency = 0.0;
  double p99_predicted_latency = 0.0;
  std::uint64_t work = 0;
  /// Elastic autoscaling (DESIGN.md §16); serialized under
  /// "serve.autoscale" only when the run scaled.
  bool autoscale_present = false;
  std::string autoscale_policy;  ///< "reactive" / "predictive"
  std::uint64_t autoscale_decisions = 0;
  std::uint64_t autoscale_scale_outs = 0;  ///< controller-opened instances
  std::uint64_t autoscale_scale_ins = 0;   ///< controller-started drains
  std::uint64_t autoscale_flaps = 0;
  std::uint64_t autoscale_blocked_cooldown = 0;
  std::uint64_t autoscale_draining = 0;  ///< drains still in flight at end
  double instance_seconds = 0.0;         ///< ∫ active instances dt
  /// Whole-stream timeline aggregates (serve --snapshot-every); serialized
  /// under "serve.timeline" so the regression differ gates them too.
  bool timeline_present = false;
  TimelineAggregates timeline;
  std::vector<ServeEventEntry> events_log;
};

/// Counters of one sharded solve (src/shard, DESIGN.md §12).
struct ShardSection {
  bool present = false;
  std::uint64_t shards = 0;
  std::uint64_t components = 0;
  std::uint64_t splits = 0;
  bool fallback_monolithic = false;
  std::uint64_t repair_moves = 0;
  std::uint64_t drain_moves = 0;
  std::uint64_t drained_nodes = 0;
  std::uint64_t boundary_requests = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t migrations = 0;
};

/// One backend's line in a solver portfolio race (DESIGN.md §17).
struct SolverBackendEntry {
  std::string id;  ///< "bfdsu" | "lp" | "pso"
  bool feasible = false;
  std::uint64_t rejected = 0;
  double objective = 0.0;  ///< Eq. 16 latency (node count for place races)
  std::uint64_t work = 0;  ///< placement iterations consumed
};

/// Outcome of a --solver portfolio race (DESIGN.md §17).
struct SolverSection {
  bool present = false;
  std::string solver;  ///< requested id ("portfolio" or a single backend)
  std::string winner;  ///< backend the reported result came from
  bool deterministic = false;  ///< work-budget race (clock ignored)
  std::uint64_t budget_work = 0;
  double budget_ms = 0.0;
  std::vector<SolverBackendEntry> backends;  ///< in backend-id order
};

struct RunReport {
  std::string command;
  std::uint64_t seed = 0;
  PlacementSection placement;
  SchedulingSection scheduling;
  RequestSection requests;
  DesSection des;
  ResilienceSection resilience;
  ServeSection serve;
  ShardSection shard;
  SolverSection solver;
  MetricsSection metrics;
};

/// Serializes a report under kRunReportSchema.
void write_run_report(const RunReport& report, std::ostream& os);

/// Parses a saved run report; throws std::invalid_argument on malformed
/// JSON or a missing/unknown "schema" field.
[[nodiscard]] JsonValue load_run_report(std::string_view text);

/// Human-readable summary of a loaded report.
[[nodiscard]] std::string pretty_print_report(const JsonValue& report);

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

/// One numeric leaf that differs between two reports.
struct DiffEntry {
  std::string path;  ///< dotted path, e.g. "requests.avg_total_latency"
  double before = 0.0;
  double after = 0.0;
  double delta = 0.0;
  /// 100·(after−before)/|before|; ±inf when before == 0 and after != 0.
  double pct = 0.0;
  /// +1 when a higher value is worse (latency, drops, ...), −1 when a
  /// higher value is better (availability, admitted, ...), 0 when neutral.
  int direction = 0;
  /// True when the change exceeds the threshold in the worsening
  /// direction.
  bool regression = false;
  /// True when the change exceeds the threshold in the improving
  /// direction.
  bool improvement = false;
};

/// A leaf present on only one side of a diff, with its rendered value —
/// such metrics print as added/removed instead of being silently dropped.
struct LeafChange {
  std::string path;
  std::string value;  ///< rendered value on the side it exists on
};

struct ReportDiff {
  std::vector<DiffEntry> changed;        ///< numeric leaves that moved
  std::vector<std::string> only_before;  ///< paths absent from `after`
  std::vector<std::string> only_after;   ///< paths absent from `before`
  std::vector<LeafChange> removed;       ///< only_before, with values
  std::vector<LeafChange> added;         ///< only_after, with values
  /// Paths whose leaf is numeric in one report but not the other — a
  /// schema change, reported explicitly rather than dropped.
  std::vector<std::string> type_changed;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
};

/// Compares every numeric leaf of two reports.  `threshold_pct` is the
/// minimum |relative change| (percent) for a directional metric to count
/// as a regression/improvement.
[[nodiscard]] ReportDiff diff_reports(const JsonValue& before,
                                      const JsonValue& after,
                                      double threshold_pct = 1.0);

/// Markdown rendering of a diff: regressions first, then improvements,
/// then neutral changes; structural differences at the end.
[[nodiscard]] std::string render_diff(const ReportDiff& diff);

}  // namespace nfv::obs
