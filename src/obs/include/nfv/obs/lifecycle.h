// Request lifecycle tracing for the serving engine (DESIGN.md §14): the
// causal path of every request — admit → place@node → migrations →
// evacuations → retry backoffs → depart/shed — recorded at the engine's
// decision points and rendered as Chrome trace-event spans (same format as
// obs::Tracer, so a serve run opens directly in chrome://tracing with one
// row per request).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace nfv::obs {

inline constexpr std::string_view kLifecycleSchema = "nfvpr.lifecycle/1";

/// No node attached to this stage (admission, parking, shedding...).
inline constexpr std::uint32_t kLifecycleNoNode = 0xffffffffu;

class LifecycleParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class LifecycleStage : std::uint8_t {
  kAdmit,         ///< request accepted (on arrival, from queue, or retry)
  kPlace,         ///< one chain hop bound to an instance on `node`
  kQueue,         ///< parked in the FIFO waiting room
  kReject,        ///< dropped on arrival (queue full)
  kMigrate,       ///< one hop moved to `node` (rebalance / relocate)
  kEvacuate,      ///< one broken hop re-placed on `node` after a failure
  kPark,          ///< evacuated with nowhere to go; waiting with backoff
  kRetryBackoff,  ///< a retry attempt failed; backoff doubled (rung = attempt)
  kRetryAdmit,    ///< re-admitted from the retry queue (rung = attempt)
  kShedFault,     ///< dropped by the fault ladder
  kShedOverload,  ///< dropped by degraded-mode load shedding
  kShed,          ///< dropped because a rate change made it unservable
  kDepart,        ///< trace-visible departure
};

[[nodiscard]] std::string_view to_string(LifecycleStage stage);

/// One decision-point event on a request's causal path.
struct LifecycleEvent {
  std::uint64_t event_index = 0;  ///< trace event that caused it
  double time = 0.0;              ///< trace time
  std::uint32_t request = 0;
  LifecycleStage stage = LifecycleStage::kAdmit;
  std::uint32_t node = kLifecycleNoNode;
  /// Stage-specific detail: hop index for place/migrate/evacuate, ladder
  /// rung (attempt count) for park/retry stages, 0 otherwise.
  std::uint32_t rung = 0;

  friend bool operator==(const LifecycleEvent&,
                         const LifecycleEvent&) = default;
};

/// Renders events as a Chrome trace-event JSON array ("ph": "X" complete
/// spans, tid = request id): each stage spans until the request's next
/// stage (or `trace_end`), so the whole run reads as per-request swimlanes.
/// Event order must be the engine's recording order (event index, then
/// intra-event order).
void write_lifecycle_trace(const std::vector<LifecycleEvent>& events,
                           double trace_end, std::ostream& os);

/// Parses a lifecycle trace written by write_lifecycle_trace back into
/// recording order; throws LifecycleParseError on malformed input.
[[nodiscard]] std::vector<LifecycleEvent> load_lifecycle(
    std::string_view text);

}  // namespace nfv::obs
