// Streaming time-series telemetry for the serving engine (DESIGN.md §14).
//
// A timeline is a header line plus one JSONL record per event-time window
// of `snapshot_every` trace-time units.  Records are produced by the engine
// purely from event time — never wall clock — so the stream is
// byte-identical for any --threads/--shards and across checkpoint/resume.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nfv::obs {

inline constexpr std::string_view kTimelineSchema = "nfvpr.timeline/1";

/// Malformed timeline input (bad JSONL, wrong schema, missing fields).
/// The CLI maps it to exit code 2 like the other parse errors.
class TimelineParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One snapshot window [t_start, t_end).  Rates are window averages
/// (integral / width); counts are instantaneous at window close; the
/// counters are deltas over the window; wait_* are admission-wait
/// percentiles over a sliding span of recent windows.
struct TimelineRecord {
  std::uint64_t window = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  std::uint64_t events = 0;
  double offered_rate = 0.0;
  double carried_rate = 0.0;
  double availability = 1.0;
  std::uint64_t live = 0;
  std::uint64_t queued = 0;
  std::uint64_t retrying = 0;
  std::uint64_t admitted = 0;
  std::uint64_t admitted_from_queue = 0;
  std::uint64_t retry_admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t evacuated = 0;
  std::uint64_t parked = 0;
  std::uint64_t migrations = 0;
  bool degraded = false;
  std::uint64_t nodes_down = 0;
  std::vector<double> node_util;  ///< (cap - free)/cap per node; 0 when down
  std::uint64_t wait_count = 0;
  double wait_p50 = 0.0;
  double wait_p90 = 0.0;
  double wait_p99 = 0.0;
  /// Autoscaler extension (DESIGN.md §16): written only when the engine
  /// runs with --autoscale, optional on load, so autoscale-off streams
  /// stay byte-identical to the base format.
  bool has_autoscale = false;
  std::uint64_t instances = 0;   ///< active (non-retired) at window close
  std::uint64_t draining = 0;    ///< of those, draining for scale-in
  std::uint64_t scale_outs = 0;  ///< instances opened this window
  std::uint64_t scale_ins = 0;   ///< instances retired this window

  friend bool operator==(const TimelineRecord&,
                         const TimelineRecord&) = default;
};

/// A whole stream: the header metadata plus the records in window order.
struct TimelineDoc {
  double snapshot_every = 0.0;
  std::uint64_t nodes = 0;
  std::vector<TimelineRecord> records;

  friend bool operator==(const TimelineDoc&, const TimelineDoc&) = default;
};

/// Serializes as JSONL: a {"schema": "nfvpr.timeline/1", ...} header line,
/// then one compact record object per line.  Doubles print at %.17g so the
/// stream round-trips bit-exactly (the determinism contract depends on it).
void write_timeline(const TimelineDoc& doc, std::ostream& os);

/// Parses a serialized timeline; throws TimelineParseError on any
/// structural problem.
[[nodiscard]] TimelineDoc load_timeline(std::string_view text);

/// Whole-stream aggregates for `nfvpr analyze-timeline` and the run-report
/// regression gate.  Names reuse the differ's direction keywords
/// (availability → higher-better; shed/queued/latency → higher-worse).
struct TimelineAggregates {
  std::uint64_t windows = 0;
  double availability_min = 1.0;
  double availability_mean = 1.0;
  std::uint64_t worst_window = 0;  ///< window index of the availability min
  double worst_window_t_start = 0.0;
  double offered_rate_max = 0.0;
  double carried_rate_min = 0.0;
  std::uint64_t live_max = 0;
  std::uint64_t queued_max = 0;
  std::uint64_t retrying_max = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t rejected_total = 0;
  std::uint64_t parked_total = 0;
  std::uint64_t evacuated_total = 0;
  std::uint64_t migrations_total = 0;
  double wait_p99_latency_max = 0.0;
  std::uint64_t degraded_windows = 0;
  std::uint64_t nodes_down_max = 0;
};

[[nodiscard]] TimelineAggregates aggregate_timeline(
    const std::vector<TimelineRecord>& records);

/// Stable name → value view of the aggregates, in print order.  This is the
/// vocabulary `analyze-timeline --fail-on` accepts.
[[nodiscard]] std::vector<std::pair<std::string, double>> aggregate_values(
    const TimelineAggregates& agg);

}  // namespace nfv::obs
