// Minimal JSON support for the telemetry layer: a streaming writer (used
// by the metrics/trace/report emitters) and a small recursive-descent
// parser (used by `nfvpr report` to reload and diff saved run reports).
// No external dependencies; numbers are written with enough precision to
// round-trip doubles.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace nfv::obs {

/// Escapes a string for inclusion in a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Streaming JSON writer with automatic comma/indent handling.
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("events"); w.begin_array();
///   w.value(1.5); w.value("x");
///   w.end_array();
///   w.end_object();
///
/// Misuse (e.g. a value where a key is required) throws via NFV_CHECK.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);  ///< NaN / infinity are emitted as null
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);
  void null();

  /// Convenience: key + value in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  void newline();

  std::ostream& os_;
  int indent_width_;
  std::vector<Frame> stack_;
  std::vector<bool> has_members_;
  bool pending_key_ = false;
};

/// A parsed JSON document.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// std::map keeps member iteration deterministic for diffing.
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(v_);
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// find(key) as a number, or `fallback` when absent / wrong type.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback = 0.0) const;
  /// find(key) as a string, or `fallback`.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback = "") const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses a complete JSON document.  On failure returns nullopt and, when
/// `error` is non-null, stores a byte-offset diagnostic.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace nfv::obs
