// Flight recorder (DESIGN.md §14): a fixed-size in-memory ring of the last
// K engine decisions, mirroring the obs null-sink pattern — when no
// recorder is installed a probe costs one relaxed atomic load and an
// untaken branch; when installed, recording overwrites a preallocated slot
// (zero allocation steady-state).  The ring is dumped to JSON
// ("nfvpr.flight/1") on crash, on checkpoint write, or at exit via
// `nfvpr serve --flight-recorder-dump-on-exit`.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string_view>
#include <vector>

namespace nfv::obs {

inline constexpr std::string_view kFlightSchema = "nfvpr.flight/1";

/// One recorded decision.  Fixed-size POD: the string fields are views of
/// static literals (serve::to_string / workload::to_string), so recording
/// never allocates.
struct FlightEntry {
  std::uint64_t index = 0;
  double time = 0.0;
  std::string_view kind;      ///< event kind name (static literal)
  std::string_view decision;  ///< engine decision name (static literal)
  std::uint32_t request = 0;
  std::uint32_t migrations = 0;
  std::uint32_t scale_outs = 0;
  std::uint32_t scale_ins = 0;
  std::uint32_t admitted_from_queue = 0;
  std::uint32_t evacuated = 0;
  std::uint32_t parked = 0;
  std::uint32_t retry_admitted = 0;
  std::uint32_t shed_fault = 0;
  std::uint32_t shed_overload = 0;
  bool degraded = false;
};

class FlightRecorder {
 public:
  /// Preallocates a ring of `capacity` (> 0) slots.
  explicit FlightRecorder(std::size_t capacity);

  /// Overwrites the oldest slot once the ring is full.  Thread-safe.
  void record(const FlightEntry& entry);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Total entries ever recorded (>= size retained).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Retained entries, oldest first.
  [[nodiscard]] std::vector<FlightEntry> entries() const;

  /// Dumps {"schema": "nfvpr.flight/1", ...} with the retained entries
  /// oldest-first.  Safe to call mid-flight (takes the ring lock).
  void dump_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<FlightEntry> ring_;
  std::size_t next_ = 0;           ///< slot the next record lands in
  std::uint64_t recorded_ = 0;
};

/// Process-wide recorder; nullptr (the default) disables recording.
[[nodiscard]] FlightRecorder* flight_recorder() noexcept;
/// Installs `fr` and returns the previous recorder.
FlightRecorder* set_flight_recorder(FlightRecorder* fr) noexcept;

/// RAII installer mirroring ScopedMetrics / the tracer scope.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder& fr)
      : previous_(set_flight_recorder(&fr)) {}
  ~ScopedFlightRecorder() { set_flight_recorder(previous_); }
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* previous_;
};

/// Probe: records into the installed recorder, or does nothing (one
/// relaxed atomic load) when none is installed.
inline void flight_record(const FlightEntry& entry) {
  if (FlightRecorder* fr = flight_recorder()) fr->record(entry);
}

}  // namespace nfv::obs
