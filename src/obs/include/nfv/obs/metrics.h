// Thread-safe metrics registry for the whole pipeline.
//
// Metrics are named counters (monotone uint64), gauges (last-write double)
// and histograms (nfv::Histogram + OnlineStats under one lock).  A metric
// name may carry labels, flattened into the registry key with labeled():
//
//   obs::count(obs::labeled("placement.passes", {{"algo", "BFDSU"}}));
//   -> counter "placement.passes{algo=BFDSU}"
//
// Null-sink design: instrumentation sites call the free helpers (count /
// gauge_set / observe) or construct ScopedSpan, which consult a global
// registry pointer.  When no registry is installed — the default — each
// call is one relaxed atomic load and a not-taken branch: no allocation,
// no locking, no string handling.  Telemetry is enabled by installing a
// registry for a scope (ScopedMetrics), typically from the CLI when a
// --metrics-out flag is present.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "nfv/common/histogram.h"
#include "nfv/common/stats.h"

namespace nfv::obs {

/// Monotone event counter; add() is lock-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins double; set()/add() are lock-free.
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Value-distribution metric: a fixed-bucket Histogram for quantiles plus
/// an OnlineStats accumulator for exact mean/extrema.  observe() locks.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets)
      : hist_(lo, hi, buckets) {}

  void observe(double x) {
    const std::lock_guard<std::mutex> lock(mu_);
    hist_.add(x);
    stats_.add(x);
  }

  /// Merges another metric's samples (parallel reduction); bucket
  /// geometries must match.
  void merge(const HistogramMetric& other);

  [[nodiscard]] Histogram snapshot_histogram() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }
  [[nodiscard]] OnlineStats snapshot_stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
  OnlineStats stats_;
};

/// One label dimension of a metric name.
struct Label {
  std::string_view key;
  std::string_view value;
};

/// Flattens a name plus labels into the registry key:
/// labeled("a.b", {{"k","v"},{"x","y"}}) == "a.b{k=v,x=y}".
[[nodiscard]] std::string labeled(std::string_view name,
                                  std::initializer_list<Label> labels);

/// Thread-safe metric store.  Lookup takes a mutex; the returned references
/// are stable for the registry's lifetime, so hot paths can resolve a
/// handle once and update lock-free afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric.  Heterogeneous lookup: no string
  /// allocation when the metric already exists.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// The bucket geometry arguments apply on first creation only.
  HistogramMetric& histogram(std::string_view name, double lo, double hi,
                             std::size_t buckets);

  /// Point-in-time copy of every metric, sorted by name.
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    [[nodiscard]] bool empty() const {
      return counters.empty() && gauges.empty() && histograms.empty();
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Serializes snapshot() as a JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
};

/// The globally installed registry, or nullptr when telemetry is disabled.
[[nodiscard]] MetricsRegistry* registry() noexcept;

/// Installs (or clears, with nullptr) the global registry; returns the
/// previous one.  Not synchronized against in-flight helpers — install
/// before the instrumented work starts and uninstall after it ends.
MetricsRegistry* set_registry(MetricsRegistry* r) noexcept;

/// RAII install/uninstall of a registry as the global sink.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry& r) : prev_(set_registry(&r)) {}
  ~ScopedMetrics() { set_registry(prev_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

// ---------------------------------------------------------------------------
// Fast-path helpers: one relaxed atomic load + branch when disabled.
// ---------------------------------------------------------------------------

inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (MetricsRegistry* r = registry()) r->counter(name).add(delta);
}

inline void gauge_set(std::string_view name, double x) {
  if (MetricsRegistry* r = registry()) r->gauge(name).set(x);
}

inline void observe(std::string_view name, double x, double lo, double hi,
                    std::size_t buckets = 50) {
  if (MetricsRegistry* r = registry()) {
    r->histogram(name, lo, hi, buckets).observe(x);
  }
}

}  // namespace nfv::obs
