#include "nfv/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "nfv/common/error.h"

namespace nfv::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_width_(indent) {}

void JsonWriter::newline() {
  if (indent_width_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int j = 0; j < indent_width_; ++j) os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level value
  if (stack_.back() == Frame::kObject) {
    NFV_CHECK(pending_key_);  // object members need key() first
    pending_key_ = false;
    return;
  }
  if (has_members_.back()) os_ << ',';
  has_members_.back() = true;
  newline();
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  has_members_.push_back(false);
}

void JsonWriter::end_object() {
  NFV_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  NFV_CHECK(!pending_key_);
  const bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) newline();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  has_members_.push_back(false);
}

void JsonWriter::end_array() {
  NFV_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  const bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) newline();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  NFV_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  NFV_CHECK(!pending_key_);
  if (has_members_.back()) os_ << ',';
  has_members_.back() = true;
  newline();
  os_ << '"' << json_escape(k) << "\": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Infinity
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    if (depth_ > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (literal("true")) return JsonValue(true);
    if (literal("false")) return JsonValue(false);
    if (literal("null")) return JsonValue(nullptr);
    return parse_number();
  }

  std::optional<JsonValue> parse_object() {
    ++depth_;
    ++pos_;  // '{'
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' in object");
        return std::nullopt;
      }
      skip_ws();
      auto val = parse_value();
      if (!val) return std::nullopt;
      obj.insert_or_assign(std::move(*key), std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
    --depth_;
    return JsonValue(std::move(obj));
  }

  std::optional<JsonValue> parse_array() {
    ++depth_;
    ++pos_;  // '['
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      skip_ws();
      auto val = parse_value();
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
    --depth_;
    return JsonValue(std::move(arr));
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode the basic-plane code point (the emitters only
          // produce \u for control characters; surrogate pairs are passed
          // through as two 3-byte sequences, which is lossy but safe).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return std::nullopt;
    }
    const std::string copy(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue(d);
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

}  // namespace nfv::obs
