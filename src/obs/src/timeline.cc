#include "nfv/obs/timeline.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

#include "nfv/obs/json.h"

namespace nfv::obs {

namespace {

[[noreturn]] void timeline_fail(std::size_t line, const std::string& what) {
  throw TimelineParseError("timeline line " + std::to_string(line) + ": " +
                           what);
}

void append_number(std::string& out, double v) {
  char buf[32];
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_count(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

double get_number(const JsonValue& o, std::string_view key, std::size_t line) {
  const JsonValue* v = o.find(key);
  if (v == nullptr || !v->is_number()) {
    timeline_fail(line, "missing numeric field \"" + std::string(key) + "\"");
  }
  const double x = v->as_number();
  if (!std::isfinite(x)) {
    timeline_fail(line, "non-finite field \"" + std::string(key) + "\"");
  }
  return x;
}

std::uint64_t get_count(const JsonValue& o, std::string_view key,
                        std::size_t line) {
  const double x = get_number(o, key, line);
  if (x < 0.0 || x != std::floor(x)) {
    timeline_fail(line, "field \"" + std::string(key) +
                            "\" is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(x);
}

bool get_bool(const JsonValue& o, std::string_view key, std::size_t line) {
  const JsonValue* v = o.find(key);
  if (v == nullptr || !v->is_bool()) {
    timeline_fail(line, "missing boolean field \"" + std::string(key) + "\"");
  }
  return v->as_bool();
}

}  // namespace

void write_timeline(const TimelineDoc& doc, std::ostream& os) {
  // Hand-rolled compact JSON: one record per line is the JSONL contract,
  // and the pretty-printing JsonWriter would spread records over lines.
  std::string line;
  line += "{\"schema\": \"";
  line += kTimelineSchema;
  line += "\", \"snapshot_every\": ";
  append_number(line, doc.snapshot_every);
  line += ", \"nodes\": ";
  append_count(line, doc.nodes);
  line += ", \"windows\": ";
  append_count(line, doc.records.size());
  line += "}\n";
  os << line;
  for (const TimelineRecord& r : doc.records) {
    line.clear();
    line += "{\"window\": ";
    append_count(line, r.window);
    line += ", \"t_start\": ";
    append_number(line, r.t_start);
    line += ", \"t_end\": ";
    append_number(line, r.t_end);
    line += ", \"events\": ";
    append_count(line, r.events);
    line += ", \"offered_rate\": ";
    append_number(line, r.offered_rate);
    line += ", \"carried_rate\": ";
    append_number(line, r.carried_rate);
    line += ", \"availability\": ";
    append_number(line, r.availability);
    line += ", \"live\": ";
    append_count(line, r.live);
    line += ", \"queued\": ";
    append_count(line, r.queued);
    line += ", \"retrying\": ";
    append_count(line, r.retrying);
    line += ", \"admitted\": ";
    append_count(line, r.admitted);
    line += ", \"admitted_from_queue\": ";
    append_count(line, r.admitted_from_queue);
    line += ", \"retry_admitted\": ";
    append_count(line, r.retry_admitted);
    line += ", \"rejected\": ";
    append_count(line, r.rejected);
    line += ", \"shed\": ";
    append_count(line, r.shed);
    line += ", \"evacuated\": ";
    append_count(line, r.evacuated);
    line += ", \"parked\": ";
    append_count(line, r.parked);
    line += ", \"migrations\": ";
    append_count(line, r.migrations);
    line += ", \"degraded\": ";
    line += r.degraded ? "true" : "false";
    line += ", \"nodes_down\": ";
    append_count(line, r.nodes_down);
    line += ", \"node_util\": [";
    for (std::size_t i = 0; i < r.node_util.size(); ++i) {
      if (i > 0) line += ", ";
      append_number(line, r.node_util[i]);
    }
    line += "], \"wait_count\": ";
    append_count(line, r.wait_count);
    line += ", \"wait_p50\": ";
    append_number(line, r.wait_p50);
    line += ", \"wait_p90\": ";
    append_number(line, r.wait_p90);
    line += ", \"wait_p99\": ";
    append_number(line, r.wait_p99);
    if (r.has_autoscale) {
      line += ", \"instances\": ";
      append_count(line, r.instances);
      line += ", \"draining\": ";
      append_count(line, r.draining);
      line += ", \"scale_outs\": ";
      append_count(line, r.scale_outs);
      line += ", \"scale_ins\": ";
      append_count(line, r.scale_ins);
    }
    line += "}\n";
    os << line;
  }
}

TimelineDoc load_timeline(std::string_view text) {
  TimelineDoc doc;
  std::size_t line_no = 0;
  bool saw_header = false;
  std::uint64_t promised = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    // Skip blank lines (trailing newline produces one).
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;

    std::string err;
    const auto parsed = parse_json(line, &err);
    if (!parsed || !parsed->is_object()) {
      timeline_fail(line_no, parsed ? "record is not a JSON object" : err);
    }
    const JsonValue& o = *parsed;
    if (!saw_header) {
      const JsonValue* schema = o.find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->as_string() != kTimelineSchema) {
        timeline_fail(line_no, "missing or unsupported schema (want \"" +
                                   std::string(kTimelineSchema) + "\")");
      }
      doc.snapshot_every = get_number(o, "snapshot_every", line_no);
      if (doc.snapshot_every <= 0.0) {
        timeline_fail(line_no, "snapshot_every must be > 0");
      }
      doc.nodes = get_count(o, "nodes", line_no);
      promised = get_count(o, "windows", line_no);
      saw_header = true;
      continue;
    }
    TimelineRecord r;
    r.window = get_count(o, "window", line_no);
    r.t_start = get_number(o, "t_start", line_no);
    r.t_end = get_number(o, "t_end", line_no);
    if (r.t_end < r.t_start) timeline_fail(line_no, "t_end < t_start");
    r.events = get_count(o, "events", line_no);
    r.offered_rate = get_number(o, "offered_rate", line_no);
    r.carried_rate = get_number(o, "carried_rate", line_no);
    r.availability = get_number(o, "availability", line_no);
    r.live = get_count(o, "live", line_no);
    r.queued = get_count(o, "queued", line_no);
    r.retrying = get_count(o, "retrying", line_no);
    r.admitted = get_count(o, "admitted", line_no);
    r.admitted_from_queue = get_count(o, "admitted_from_queue", line_no);
    r.retry_admitted = get_count(o, "retry_admitted", line_no);
    r.rejected = get_count(o, "rejected", line_no);
    r.shed = get_count(o, "shed", line_no);
    r.evacuated = get_count(o, "evacuated", line_no);
    r.parked = get_count(o, "parked", line_no);
    r.migrations = get_count(o, "migrations", line_no);
    r.degraded = get_bool(o, "degraded", line_no);
    r.nodes_down = get_count(o, "nodes_down", line_no);
    const JsonValue* util = o.find("node_util");
    if (util == nullptr || !util->is_array()) {
      timeline_fail(line_no, "missing array field \"node_util\"");
    }
    r.node_util.reserve(util->as_array().size());
    for (const JsonValue& u : util->as_array()) {
      if (!u.is_number() || !std::isfinite(u.as_number())) {
        timeline_fail(line_no, "node_util entries must be finite numbers");
      }
      r.node_util.push_back(u.as_number());
    }
    if (doc.nodes != 0 && r.node_util.size() != doc.nodes) {
      timeline_fail(line_no, "node_util length disagrees with header nodes");
    }
    r.wait_count = get_count(o, "wait_count", line_no);
    r.wait_p50 = get_number(o, "wait_p50", line_no);
    r.wait_p90 = get_number(o, "wait_p90", line_no);
    r.wait_p99 = get_number(o, "wait_p99", line_no);
    // Autoscaler extension: all-or-nothing when present.
    if (o.find("instances") != nullptr) {
      r.has_autoscale = true;
      r.instances = get_count(o, "instances", line_no);
      r.draining = get_count(o, "draining", line_no);
      r.scale_outs = get_count(o, "scale_outs", line_no);
      r.scale_ins = get_count(o, "scale_ins", line_no);
    }
    if (!doc.records.empty() && r.window <= doc.records.back().window) {
      timeline_fail(line_no, "window indices must be strictly increasing");
    }
    doc.records.push_back(std::move(r));
  }
  if (!saw_header) {
    throw TimelineParseError("timeline: empty input (no header line)");
  }
  // A killed writer leaves a short stream; the header count makes that
  // detectable instead of silently under-aggregating.
  if (doc.records.size() != promised) {
    throw TimelineParseError(
        "timeline: header promises " + std::to_string(promised) +
        " windows, stream carries " + std::to_string(doc.records.size()));
  }
  return doc;
}

TimelineAggregates aggregate_timeline(
    const std::vector<TimelineRecord>& records) {
  TimelineAggregates agg;
  agg.windows = records.size();
  if (records.empty()) return agg;
  agg.availability_min = records.front().availability;
  agg.carried_rate_min = records.front().carried_rate;
  double availability_sum = 0.0;
  for (const TimelineRecord& r : records) {
    availability_sum += r.availability;
    if (r.availability < agg.availability_min) {
      agg.availability_min = r.availability;
      agg.worst_window = r.window;
      agg.worst_window_t_start = r.t_start;
    }
    agg.offered_rate_max = std::max(agg.offered_rate_max, r.offered_rate);
    agg.carried_rate_min = std::min(agg.carried_rate_min, r.carried_rate);
    agg.live_max = std::max(agg.live_max, r.live);
    agg.queued_max = std::max(agg.queued_max, r.queued);
    agg.retrying_max = std::max(agg.retrying_max, r.retrying);
    agg.shed_total += r.shed;
    agg.rejected_total += r.rejected;
    agg.parked_total += r.parked;
    agg.evacuated_total += r.evacuated;
    agg.migrations_total += r.migrations;
    agg.wait_p99_latency_max = std::max(agg.wait_p99_latency_max, r.wait_p99);
    if (r.degraded) ++agg.degraded_windows;
    agg.nodes_down_max = std::max(agg.nodes_down_max, r.nodes_down);
  }
  agg.availability_mean =
      availability_sum / static_cast<double>(records.size());
  return agg;
}

std::vector<std::pair<std::string, double>> aggregate_values(
    const TimelineAggregates& agg) {
  return {
      {"windows", static_cast<double>(agg.windows)},
      {"availability_min", agg.availability_min},
      {"availability_mean", agg.availability_mean},
      {"worst_window", static_cast<double>(agg.worst_window)},
      {"worst_window_t_start", agg.worst_window_t_start},
      {"offered_rate_max", agg.offered_rate_max},
      {"carried_rate_min", agg.carried_rate_min},
      {"live_max", static_cast<double>(agg.live_max)},
      {"queued_max", static_cast<double>(agg.queued_max)},
      {"retrying_max", static_cast<double>(agg.retrying_max)},
      {"shed_total", static_cast<double>(agg.shed_total)},
      {"rejected_total", static_cast<double>(agg.rejected_total)},
      {"parked_total", static_cast<double>(agg.parked_total)},
      {"evacuated_total", static_cast<double>(agg.evacuated_total)},
      {"migrations_total", static_cast<double>(agg.migrations_total)},
      {"wait_p99_latency_max", agg.wait_p99_latency_max},
      {"degraded_windows", static_cast<double>(agg.degraded_windows)},
      {"nodes_down_max", static_cast<double>(agg.nodes_down_max)},
  };
}

}  // namespace nfv::obs
