#include "nfv/obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "nfv/common/error.h"

namespace nfv::obs {

namespace {

void write_metrics_snapshot(JsonWriter& w,
                            const MetricsRegistry::Snapshot& snap) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : snap.counters) w.kv(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : snap.gauges) w.kv(g.name, g.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("mean", h.mean);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("p50", h.p50);
    w.kv("p90", h.p90);
    w.kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string format_number(double v) {
  char buf[32];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

}  // namespace

void write_run_report(const RunReport& report, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kRunReportSchema);
  w.kv("command", report.command);
  w.kv("seed", report.seed);

  if (report.placement.present) {
    const PlacementSection& p = report.placement;
    w.key("placement");
    w.begin_object();
    w.kv("feasible", p.feasible);
    w.kv("algorithm", p.algorithm);
    w.kv("iterations", p.iterations);
    w.kv("nodes_in_service", p.nodes_in_service);
    w.kv("node_count", p.node_count);
    w.kv("avg_utilization", p.avg_utilization);
    w.kv("occupation", p.occupation);
    w.end_object();
  }

  if (report.scheduling.present) {
    const SchedulingSection& s = report.scheduling;
    w.key("scheduling");
    w.begin_object();
    w.kv("algorithm", s.algorithm);
    w.key("vnfs");
    w.begin_array();
    for (const VnfScheduleEntry& v : s.vnfs) {
      w.begin_object();
      w.kv("vnf", v.vnf);
      w.kv("instances", std::uint64_t{v.instances});
      w.kv("service_rate", v.service_rate);
      w.kv("delivery_prob", v.delivery_prob);
      w.kv("admitted", v.admitted);
      w.kv("rejected", v.rejected);
      w.kv("work", v.work);
      w.key("instance_load");
      w.begin_array();
      for (const double x : v.instance_load) w.value(x);
      w.end_array();
      w.key("instance_response");
      w.begin_array();
      for (const double x : v.instance_response) w.value(x);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (report.requests.present) {
    const RequestSection& r = report.requests;
    w.key("requests");
    w.begin_object();
    w.kv("total", r.total);
    w.kv("admitted", r.admitted);
    w.kv("rejection_rate", r.rejection_rate);
    w.kv("avg_total_latency", r.avg_total_latency);
    w.kv("avg_response", r.avg_response);
    w.end_object();
  }

  if (report.des.present) {
    const DesSection& d = report.des;
    w.key("des");
    w.begin_object();
    w.kv("events", d.events);
    w.kv("measured_window", d.measured_window);
    w.kv("truncated", d.truncated);
    w.kv("generated", d.generated);
    w.kv("delivered", d.delivered);
    w.kv("retransmissions", d.retransmissions);
    w.kv("buffer_drops", d.buffer_drops);
    w.kv("fault_retransmissions", d.fault_retransmissions);
    w.kv("station_drops", d.station_drops);
    w.kv("station_fault_drops", d.station_fault_drops);
    w.kv("station_failures", d.station_failures);
    w.kv("avg_utilization", d.avg_utilization);
    w.kv("mean_latency", d.mean_latency);
    w.kv("total_downtime", d.total_downtime);
    w.end_object();
  }

  if (report.resilience.present) {
    const ResilienceSection& r = report.resilience;
    w.key("resilience");
    w.begin_object();
    w.kv("final_availability", r.final_availability);
    w.kv("worst_availability", r.worst_availability);
    w.kv("total_shed", r.total_shed);
    w.key("resolutions");
    w.begin_object();
    for (const auto& [rung, n] : r.resolutions) w.kv(rung, n);
    w.end_object();
    w.key("events");
    w.begin_array();
    for (const ResilienceEventEntry& e : r.events) {
      w.begin_object();
      w.kv("time", e.time);
      w.kv("node", e.node);
      w.kv("event", e.node_up ? "UP" : "DOWN");
      w.kv("resolution", e.resolution);
      w.kv("vnfs_migrated", e.vnfs_migrated);
      w.kv("requests_shed", e.requests_shed);
      w.kv("requests_restored", e.requests_restored);
      w.kv("time_to_recover", e.time_to_recover);
      w.kv("availability", e.availability);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (report.serve.present) {
    const ServeSection& s = report.serve;
    w.key("serve");
    w.begin_object();
    w.kv("events", s.events);
    w.kv("arrivals", s.arrivals);
    w.kv("admitted", s.admitted);
    w.kv("admitted_from_queue", s.admitted_from_queue);
    w.kv("rejected", s.rejected);
    w.kv("departures", s.departures);
    w.kv("rate_changes", s.rate_changes);
    w.kv("shed", s.shed);
    w.kv("migrations", s.migrations);
    w.kv("rebalances", s.rebalances);
    w.kv("max_migrations_per_rebalance", s.max_migrations_per_rebalance);
    w.kv("scale_outs", s.scale_outs);
    w.kv("scale_ins", s.scale_ins);
    w.kv("live_requests", s.live_requests);
    w.kv("queued_requests", s.queued_requests);
    w.kv("retry_queued", s.retry_queued);
    w.kv("active_instances", s.active_instances);
    w.kv("nodes_in_service", s.nodes_in_service);
    // Fault-tolerance counters nest under "churn" so they diff and print
    // as one group rather than a flat sprawl of serve.* paths.
    w.key("churn");
    w.begin_object();
    w.kv("node_downs", s.node_downs);
    w.kv("node_ups", s.node_ups);
    w.kv("instances_closed", s.instances_closed);
    w.kv("evacuated_requests", s.evacuated_requests);
    w.kv("evacuation_migrations", s.evacuation_migrations);
    w.kv("parked", s.parked);
    w.kv("retry_admitted", s.retry_admitted);
    w.kv("shed_fault", s.shed_fault);
    w.kv("shed_overload", s.shed_overload);
    w.kv("degradations", s.degradations);
    w.kv("degraded_events", s.degraded_events);
    w.end_object();
    if (s.autoscale_present) {
      // Autoscaler counters nest like churn: one diffable group, emitted
      // only when the run scaled so autoscale-off reports are unchanged.
      w.key("autoscale");
      w.begin_object();
      w.kv("policy", s.autoscale_policy);
      w.kv("decisions", s.autoscale_decisions);
      w.kv("scale_outs", s.autoscale_scale_outs);
      w.kv("scale_ins", s.autoscale_scale_ins);
      w.kv("flaps", s.autoscale_flaps);
      w.kv("blocked_cooldown", s.autoscale_blocked_cooldown);
      w.kv("draining", s.autoscale_draining);
      w.kv("instance_seconds", s.instance_seconds);
      w.end_object();
    }
    w.kv("availability", s.availability);
    w.kv("admission_rate", s.admission_rate);
    w.kv("mean_predicted_latency", s.mean_predicted_latency);
    w.kv("p99_predicted_latency", s.p99_predicted_latency);
    w.kv("work", s.work);
    if (s.timeline_present) {
      // The aggregate_values vocabulary doubles as the schema here, so the
      // report keys stay in lock-step with `analyze-timeline --fail-on`.
      w.key("timeline");
      w.begin_object();
      for (const auto& [name, value] : aggregate_values(s.timeline)) {
        w.kv(name, value);
      }
      w.end_object();
    }
    if (!s.events_log.empty()) {
      w.key("events_log");
      w.begin_array();
      for (const ServeEventEntry& e : s.events_log) {
        w.begin_object();
        w.kv("index", e.index);
        w.kv("t", e.time);
        w.kv("kind", e.kind);
        w.kv("request", e.request);
        w.kv("decision", e.decision);
        w.kv("migrations", e.migrations);
        w.kv("scale_outs", e.scale_outs);
        w.kv("scale_ins", e.scale_ins);
        w.kv("admitted_from_queue", e.admitted_from_queue);
        w.kv("evacuated", e.evacuated);
        w.kv("evacuation_migrations", e.evacuation_migrations);
        w.kv("parked", e.parked);
        w.kv("retry_admitted", e.retry_admitted);
        w.kv("shed_fault", e.shed_fault);
        w.kv("shed_overload", e.shed_overload);
        w.kv("degraded", e.degraded);
        w.kv("mean_predicted_latency", e.mean_predicted_latency);
        w.kv("p99_predicted_latency", e.p99_predicted_latency);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }

  if (report.shard.present) {
    const ShardSection& s = report.shard;
    w.key("shard");
    w.begin_object();
    w.kv("shards", s.shards);
    w.kv("components", s.components);
    w.kv("splits", s.splits);
    w.kv("fallback_monolithic", s.fallback_monolithic);
    w.kv("repair_moves", s.repair_moves);
    w.kv("drain_moves", s.drain_moves);
    w.kv("drained_nodes", s.drained_nodes);
    w.kv("boundary_requests", s.boundary_requests);
    w.kv("rebalances", s.rebalances);
    w.kv("migrations", s.migrations);
    w.end_object();
  }

  if (report.solver.present) {
    const SolverSection& s = report.solver;
    w.key("solver");
    w.begin_object();
    w.kv("solver", s.solver);
    w.kv("winner", s.winner);
    w.kv("deterministic", s.deterministic);
    w.kv("budget", s.budget_work);
    w.kv("budget_ms", s.budget_ms);
    w.key("backends");
    w.begin_array();
    for (const SolverBackendEntry& b : s.backends) {
      w.begin_object();
      w.kv("id", b.id);
      w.kv("feasible", b.feasible);
      w.kv("rejected", b.rejected);
      w.kv("objective", b.objective);
      w.kv("work", b.work);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (report.metrics.present) {
    w.key("metrics");
    write_metrics_snapshot(w, report.metrics.snapshot);
  }

  w.end_object();
  os << '\n';
}

JsonValue load_run_report(std::string_view text) {
  std::string error;
  auto doc = parse_json(text, &error);
  if (!doc) {
    throw std::invalid_argument("run report is not valid JSON: " + error);
  }
  if (!doc->is_object()) {
    throw std::invalid_argument("run report must be a JSON object");
  }
  const std::string schema = doc->string_or("schema");
  // Bench tables share the report tooling (pretty-print + regression
  // diff), so both schemas load here.
  if (schema != kRunReportSchema && schema != "nfvpr.bench/1") {
    throw std::invalid_argument(
        "unsupported run-report schema '" + schema + "' (expected '" +
        std::string(kRunReportSchema) + "' or 'nfvpr.bench/1')");
  }
  return std::move(*doc);
}

std::string pretty_print_report(const JsonValue& report) {
  std::ostringstream os;
  os << "run report — command '" << report.string_or("command", "?")
     << "', seed " << format_number(report.number_or("seed")) << "\n";

  if (const JsonValue* p = report.find("placement")) {
    os << "\nplacement (" << p->string_or("algorithm", "?") << ")\n";
    const JsonValue* feasible = p->find("feasible");
    os << "  feasible          : "
       << ((feasible != nullptr && feasible->is_bool() && feasible->as_bool())
               ? "yes"
               : "no")
       << "\n";
    os << "  nodes in service  : " << format_number(p->number_or("nodes_in_service"))
       << " / " << format_number(p->number_or("node_count")) << "\n";
    os << "  avg utilization   : "
       << format_number(100.0 * p->number_or("avg_utilization")) << "%\n";
    os << "  occupation        : " << format_number(p->number_or("occupation"))
       << "\n";
    os << "  iterations        : " << format_number(p->number_or("iterations"))
       << "\n";
  }

  if (const JsonValue* s = report.find("scheduling")) {
    const JsonValue* vnfs = s->find("vnfs");
    const std::size_t n =
        (vnfs != nullptr && vnfs->is_array()) ? vnfs->as_array().size() : 0;
    os << "\nscheduling (" << s->string_or("algorithm", "?") << "), " << n
       << " VNFs\n";
    if (vnfs != nullptr && vnfs->is_array()) {
      for (const JsonValue& v : vnfs->as_array()) {
        os << "  " << v.string_or("vnf", "?") << ": "
           << format_number(v.number_or("instances")) << " instances, "
           << format_number(v.number_or("admitted")) << " admitted, "
           << format_number(v.number_or("rejected")) << " rejected\n";
      }
    }
  }

  if (const JsonValue* r = report.find("requests")) {
    os << "\nrequests\n";
    os << "  admitted          : " << format_number(r->number_or("admitted"))
       << " / " << format_number(r->number_or("total")) << "\n";
    os << "  rejection rate    : "
       << format_number(100.0 * r->number_or("rejection_rate")) << "%\n";
    os << "  avg total latency : "
       << format_number(r->number_or("avg_total_latency")) << " s (Eq. 16)\n";
    os << "  avg response      : "
       << format_number(r->number_or("avg_response")) << " s\n";
  }

  if (const JsonValue* d = report.find("des")) {
    os << "\ndiscrete-event simulation\n";
    os << "  events processed  : " << format_number(d->number_or("events"))
       << "\n";
    os << "  delivered         : " << format_number(d->number_or("delivered"))
       << " / " << format_number(d->number_or("generated")) << " generated\n";
    os << "  mean latency      : "
       << format_number(d->number_or("mean_latency")) << " s\n";
    os << "  retransmissions   : "
       << format_number(d->number_or("retransmissions")) << " (+"
       << format_number(d->number_or("fault_retransmissions"))
       << " fault)\n";
  }

  if (const JsonValue* r = report.find("resilience")) {
    const JsonValue* events = r->find("events");
    const std::size_t n = (events != nullptr && events->is_array())
                              ? events->as_array().size()
                              : 0;
    os << "\nresilience (" << n << " churn events)\n";
    os << "  final availability: "
       << format_number(r->number_or("final_availability")) << "\n";
    os << "  worst availability: "
       << format_number(r->number_or("worst_availability")) << "\n";
    os << "  requests shed     : " << format_number(r->number_or("total_shed"))
       << "\n";
    if (const JsonValue* res = r->find("resolutions");
        res != nullptr && res->is_object()) {
      for (const auto& [rung, count] : res->as_object()) {
        if (count.is_number()) {
          os << "  resolved by " << rung << ": "
             << format_number(count.as_number()) << "\n";
        }
      }
    }
  }

  if (const JsonValue* s = report.find("serve")) {
    // Churn counters nest under serve.churn since the telemetry PR; fall
    // back to the flat fields so pre-telemetry reports still print.
    const JsonValue* churn = s->find("churn");
    const auto churn_num = [&](std::string_view name) {
      if (churn != nullptr && churn->is_object() &&
          churn->find(name) != nullptr) {
        return churn->number_or(name);
      }
      return s->number_or(name);
    };
    os << "\nserving (" << format_number(s->number_or("events"))
       << " events)\n";
    os << "  admitted          : "
       << format_number(s->number_or("admitted")) << " (+"
       << format_number(s->number_or("admitted_from_queue"))
       << " from queue) / " << format_number(s->number_or("arrivals"))
       << " arrivals\n";
    os << "  rejected / shed   : " << format_number(s->number_or("rejected"))
       << " / " << format_number(s->number_or("shed")) << " (+"
       << format_number(churn_num("shed_fault")) << " fault, "
       << format_number(churn_num("shed_overload")) << " overload)\n";
    os << "  availability      : "
       << format_number(s->number_or("availability", 1.0)) << " over "
       << format_number(churn_num("node_downs")) << " node failures ("
       << format_number(churn_num("instances_closed"))
       << " instances closed)\n";
    os << "  evacuations       : "
       << format_number(churn_num("evacuated_requests")) << " requests ("
       << format_number(churn_num("evacuation_migrations"))
       << " hop moves), " << format_number(churn_num("parked"))
       << " parked, " << format_number(churn_num("retry_admitted"))
       << " retry-admitted\n";
    os << "  degradations      : "
       << format_number(churn_num("degradations")) << " ("
       << format_number(churn_num("degraded_events"))
       << " events degraded)\n";
    if (churn != nullptr && churn->is_object()) {
      os << "  churn\n";
      std::size_t width = 0;
      for (const auto& [name, value] : churn->as_object()) {
        if (value.is_number()) width = std::max(width, name.size());
      }
      for (const auto& [name, value] : churn->as_object()) {
        if (!value.is_number()) continue;
        os << "    " << name << std::string(width - name.size(), ' ')
           << " : " << format_number(value.as_number()) << "\n";
      }
    }
    if (const JsonValue* a = s->find("autoscale");
        a != nullptr && a->is_object()) {
      os << "  autoscale (" << a->string_or("policy", "?") << ")\n";
      std::size_t width = 0;
      for (const auto& [name, value] : a->as_object()) {
        if (value.is_number()) width = std::max(width, name.size());
      }
      for (const auto& [name, value] : a->as_object()) {
        if (!value.is_number()) continue;
        os << "    " << name << std::string(width - name.size(), ' ')
           << " : " << format_number(value.as_number()) << "\n";
      }
    }
    if (const JsonValue* t = s->find("timeline");
        t != nullptr && t->is_object()) {
      os << "  timeline          : "
         << format_number(t->number_or("windows")) << " windows, min avail "
         << format_number(t->number_or("availability_min", 1.0))
         << " (window " << format_number(t->number_or("worst_window"))
         << " @ t=" << format_number(t->number_or("worst_window_t_start"))
         << "), " << format_number(t->number_or("shed_total")) << " shed\n";
    }
    os << "  migrations        : "
       << format_number(s->number_or("migrations")) << " over "
       << format_number(s->number_or("rebalances")) << " rebalances (max "
       << format_number(s->number_or("max_migrations_per_rebalance"))
       << " per pass)\n";
    os << "  scale out / in    : "
       << format_number(s->number_or("scale_outs")) << " / "
       << format_number(s->number_or("scale_ins")) << "\n";
    os << "  live at end       : "
       << format_number(s->number_or("live_requests")) << " requests on "
       << format_number(s->number_or("active_instances")) << " instances ("
       << format_number(s->number_or("nodes_in_service")) << " nodes), "
       << format_number(s->number_or("queued_requests")) << " queued, "
       << format_number(s->number_or("retry_queued")) << " retrying\n";
    os << "  predicted latency : mean "
       << format_number(s->number_or("mean_predicted_latency")) << " s, p99 "
       << format_number(s->number_or("p99_predicted_latency"))
       << " s (Eq. 16)\n";
  }

  if (const JsonValue* s = report.find("shard")) {
    // Rendered like serve: an unknown-to-the-printer section must never be
    // silently dropped from the summary.
    os << "\nsharded solve (" << format_number(s->number_or("shards"))
       << " shards)\n";
    os << "  components        : "
       << format_number(s->number_or("components")) << " ("
       << format_number(s->number_or("splits")) << " split)\n";
    const JsonValue* fallback = s->find("fallback_monolithic");
    os << "  fallback          : "
       << ((fallback != nullptr && fallback->is_bool() && fallback->as_bool())
               ? "monolithic re-solve"
               : "none")
       << "\n";
    os << "  repair moves      : "
       << format_number(s->number_or("repair_moves")) << " (+"
       << format_number(s->number_or("drain_moves")) << " drain, "
       << format_number(s->number_or("drained_nodes"))
       << " nodes drained)\n";
    os << "  boundary requests : "
       << format_number(s->number_or("boundary_requests")) << "\n";
    os << "  rebalances        : "
       << format_number(s->number_or("rebalances")) << " ("
       << format_number(s->number_or("migrations")) << " migrations)\n";
  }

  if (const JsonValue* s = report.find("solver")) {
    os << "\nsolver race (" << s->string_or("solver", "?") << ")\n";
    os << "  winner            : " << s->string_or("winner", "?") << "\n";
    const JsonValue* det = s->find("deterministic");
    os << "  budget            : "
       << format_number(s->number_or("budget")) << " work units, "
       << format_number(s->number_or("budget_ms")) << " ms"
       << ((det != nullptr && det->is_bool() && det->as_bool())
               ? " (deterministic)"
               : "")
       << "\n";
    if (const JsonValue* backends = s->find("backends");
        backends != nullptr && backends->is_array()) {
      for (const JsonValue& b : backends->as_array()) {
        const JsonValue* feasible = b.find("feasible");
        os << "  " << b.string_or("id", "?") << ": "
           << ((feasible != nullptr && feasible->is_bool() &&
                feasible->as_bool())
                   ? "feasible"
                   : "infeasible")
           << ", objective " << format_number(b.number_or("objective"))
           << ", " << format_number(b.number_or("rejected"))
           << " rejected, " << format_number(b.number_or("work"))
           << " work\n";
      }
    }
  }

  if (const JsonValue* m = report.find("metrics")) {
    std::size_t counters = 0;
    std::size_t gauges = 0;
    std::size_t hists = 0;
    if (const JsonValue* c = m->find("counters");
        c != nullptr && c->is_object()) {
      counters = c->as_object().size();
    }
    if (const JsonValue* g = m->find("gauges");
        g != nullptr && g->is_object()) {
      gauges = g->as_object().size();
    }
    if (const JsonValue* h = m->find("histograms");
        h != nullptr && h->is_object()) {
      hists = h->as_object().size();
    }
    os << "\nmetrics registry: " << counters << " counters, " << gauges
       << " gauges, " << hists << " histograms\n";
    if (const JsonValue* c = m->find("counters");
        c != nullptr && c->is_object()) {
      for (const auto& [name, value] : c->as_object()) {
        if (value.is_number()) {
          os << "  " << name << " = " << format_number(value.as_number())
             << "\n";
        }
      }
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

namespace {

/// Metrics where a larger value signals a worse run.
constexpr std::string_view kHigherWorse[] = {
    "latency", "response", "rejection", "rejected", "shed",     "drop",
    "downtime", "retransmission", "failure",        "occupation",
    "nodes_in_service", "queue_depth", "imbalance", "wall",     "work",
    "gap", "repair_moves", "unaccounted", "queued", "retrying",
    "flaps", "instance_seconds", "objective",
};

/// Metrics where a larger value signals a better run.
constexpr std::string_view kHigherBetter[] = {
    "availability", "admitted", "delivered", "utilization", "restored",
};

int classify_direction(std::string_view path) {
  // higher-better wins on e.g. "avg_utilization" vs. none; check it first
  // so "fault_retransmissions" (worse) is not shadowed — order the checks
  // worst-first because "drop"/"shed" substrings are the more specific
  // signals in this schema.
  for (const std::string_view needle : kHigherWorse) {
    if (path.find(needle) != std::string_view::npos) return +1;
  }
  for (const std::string_view needle : kHigherBetter) {
    if (path.find(needle) != std::string_view::npos) return -1;
  }
  return 0;
}

std::string leaf_repr(const JsonValue& v) {
  if (v.is_number()) return format_number(v.as_number());
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_string()) return "\"" + v.as_string() + "\"";
  return "null";
}

void collect_leaves(const JsonValue& v, const std::string& path,
                    std::map<std::string, double>& numbers,
                    std::map<std::string, std::string>& reprs) {
  if (v.is_object()) {
    for (const auto& [key, child] : v.as_object()) {
      collect_leaves(child, path.empty() ? key : path + "." + key, numbers,
                     reprs);
    }
    return;
  }
  if (v.is_array()) {
    const auto& arr = v.as_array();
    for (std::size_t i = 0; i < arr.size(); ++i) {
      collect_leaves(arr[i], path + "[" + std::to_string(i) + "]", numbers,
                     reprs);
    }
    return;
  }
  reprs.emplace(path, leaf_repr(v));
  if (v.is_number()) numbers.emplace(path, v.as_number());
  if (v.is_bool()) numbers.emplace(path, v.as_bool() ? 1.0 : 0.0);
}

}  // namespace

ReportDiff diff_reports(const JsonValue& before, const JsonValue& after,
                        double threshold_pct) {
  NFV_REQUIRE(threshold_pct >= 0.0);
  std::map<std::string, double> before_nums;
  std::map<std::string, double> after_nums;
  std::map<std::string, std::string> before_reprs;
  std::map<std::string, std::string> after_reprs;
  collect_leaves(before, "", before_nums, before_reprs);
  collect_leaves(after, "", after_nums, after_reprs);

  ReportDiff diff;
  for (const auto& [p, repr] : before_reprs) {
    if (after_reprs.find(p) == after_reprs.end()) {
      diff.only_before.push_back(p);
      diff.removed.push_back({p, repr});
    } else if (before_nums.count(p) != after_nums.count(p)) {
      // Numeric on exactly one side: a type change, not a value change —
      // without this, such leaves would vanish from the diff entirely.
      diff.type_changed.push_back(p);
    }
  }
  for (const auto& [p, repr] : after_reprs) {
    if (before_reprs.find(p) == before_reprs.end()) {
      diff.only_after.push_back(p);
      diff.added.push_back({p, repr});
    }
  }

  for (const auto& [path, b] : before_nums) {
    const auto it = after_nums.find(path);
    if (it == after_nums.end()) continue;
    const double a = it->second;
    if (a == b) continue;
    DiffEntry e;
    e.path = path;
    e.before = b;
    e.after = a;
    e.delta = a - b;
    e.pct = b != 0.0
                ? 100.0 * (a - b) / std::abs(b)
                : (a > 0.0 ? std::numeric_limits<double>::infinity()
                           : -std::numeric_limits<double>::infinity());
    e.direction = classify_direction(path);
    const bool significant = std::abs(e.pct) >= threshold_pct;
    if (e.direction != 0 && significant) {
      const bool worse = (e.delta > 0.0) == (e.direction > 0);
      e.regression = worse;
      e.improvement = !worse;
    }
    if (e.regression) ++diff.regressions;
    if (e.improvement) ++diff.improvements;
    diff.changed.push_back(std::move(e));
  }

  // Regressions first (largest |pct| first), then improvements, then
  // neutral changes — the order render_diff prints them in.
  std::stable_sort(diff.changed.begin(), diff.changed.end(),
                   [](const DiffEntry& x, const DiffEntry& y) {
                     const auto rank = [](const DiffEntry& e) {
                       if (e.regression) return 0;
                       if (e.improvement) return 1;
                       return 2;
                     };
                     if (rank(x) != rank(y)) return rank(x) < rank(y);
                     return std::abs(x.pct) > std::abs(y.pct);
                   });
  return diff;
}

std::string render_diff(const ReportDiff& diff) {
  std::ostringstream os;
  if (diff.changed.empty() && diff.only_before.empty() &&
      diff.only_after.empty() && diff.type_changed.empty()) {
    os << "reports are identical\n";
    return os.str();
  }
  os << diff.changed.size() << " metrics changed, " << diff.regressions
     << " regressions, " << diff.improvements << " improvements";
  if (!diff.added.empty() || !diff.removed.empty()) {
    os << ", " << diff.added.size() << " added, " << diff.removed.size()
       << " removed";
  }
  os << "\n\n";
  os << "| metric | before | after | delta | change | flag |\n";
  os << "|---|---|---|---|---|---|\n";
  for (const DiffEntry& e : diff.changed) {
    char pct[32];
    if (std::isfinite(e.pct)) {
      std::snprintf(pct, sizeof pct, "%+.2f%%", e.pct);
    } else {
      std::snprintf(pct, sizeof pct, "%s", e.pct > 0 ? "+inf" : "-inf");
    }
    os << "| " << e.path << " | " << format_number(e.before) << " | "
       << format_number(e.after) << " | " << format_number(e.delta) << " | "
       << pct << " | "
       << (e.regression ? "REGRESSION" : (e.improvement ? "improved" : ""))
       << " |\n";
  }
  for (const LeafChange& c : diff.removed) {
    os << "only in baseline: " << c.path << " = " << c.value << " (removed)\n";
  }
  for (const LeafChange& c : diff.added) {
    os << "only in current:  " << c.path << " = " << c.value << " (added)\n";
  }
  for (const std::string& p : diff.type_changed) {
    os << "type changed:     " << p << "\n";
  }
  return os.str();
}

}  // namespace nfv::obs
