#include "nfv/obs/flight_recorder.h"

#include <ostream>

#include "nfv/common/error.h"
#include "nfv/obs/json.h"

namespace nfv::obs {

namespace {

std::atomic<FlightRecorder*> g_flight_recorder{nullptr};

}  // namespace

FlightRecorder* flight_recorder() noexcept {
  return g_flight_recorder.load(std::memory_order_relaxed);
}

FlightRecorder* set_flight_recorder(FlightRecorder* fr) noexcept {
  return g_flight_recorder.exchange(fr, std::memory_order_relaxed);
}

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(capacity) {
  NFV_REQUIRE(capacity > 0);
}

void FlightRecorder::record(const FlightEntry& entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = entry;
  next_ = (next_ + 1) % ring_.size();
  ++recorded_;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::vector<FlightEntry> FlightRecorder::entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEntry> out;
  const std::size_t n = recorded_ < ring_.size()
                            ? static_cast<std::size_t>(recorded_)
                            : ring_.size();
  out.reserve(n);
  // Oldest first: when the ring has wrapped, next_ points at the oldest.
  const std::size_t start = recorded_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::dump_json(std::ostream& os) const {
  const std::vector<FlightEntry> snapshot = entries();
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kFlightSchema);
  w.kv("capacity", std::uint64_t{ring_.size()});
  w.kv("recorded", recorded());
  w.key("entries");
  w.begin_array();
  for (const FlightEntry& e : snapshot) {
    w.begin_object();
    w.kv("index", e.index);
    w.kv("t", e.time);
    w.kv("kind", e.kind);
    w.kv("decision", e.decision);
    w.kv("request", std::uint64_t{e.request});
    w.kv("migrations", std::uint64_t{e.migrations});
    w.kv("scale_outs", std::uint64_t{e.scale_outs});
    w.kv("scale_ins", std::uint64_t{e.scale_ins});
    w.kv("admitted_from_queue", std::uint64_t{e.admitted_from_queue});
    w.kv("evacuated", std::uint64_t{e.evacuated});
    w.kv("parked", std::uint64_t{e.parked});
    w.kv("retry_admitted", std::uint64_t{e.retry_admitted});
    w.kv("shed_fault", std::uint64_t{e.shed_fault});
    w.kv("shed_overload", std::uint64_t{e.shed_overload});
    w.kv("degraded", e.degraded);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace nfv::obs
