#include "nfv/obs/metrics.h"

#include <ostream>

#include "nfv/common/error.h"
#include "nfv/obs/json.h"

namespace nfv::obs {

namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

}  // namespace

MetricsRegistry* registry() noexcept {
  return g_registry.load(std::memory_order_relaxed);
}

MetricsRegistry* set_registry(MetricsRegistry* r) noexcept {
  return g_registry.exchange(r, std::memory_order_relaxed);
}

void HistogramMetric::merge(const HistogramMetric& other) {
  // Lock ordering by address prevents deadlock on concurrent cross-merges.
  if (this == &other) return;
  const std::lock_guard<std::mutex> a(this < &other ? mu_ : other.mu_);
  const std::lock_guard<std::mutex> b(this < &other ? other.mu_ : mu_);
  hist_.merge(other.hist_);
  stats_.merge(other.stats_);
}

std::string labeled(std::string_view name,
                    std::initializer_list<Label> labels) {
  std::string out(name);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += '=';
    out += l.value;
  }
  out += '}';
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, double lo,
                                            double hi, std::size_t buckets) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<HistogramMetric>(lo, hi, buckets))
              .first->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    const OnlineStats stats = h->snapshot_stats();
    s.count = stats.count();
    if (s.count > 0) {
      const Histogram hist = h->snapshot_histogram();
      s.mean = stats.mean();
      s.min = stats.min();
      s.max = stats.max();
      s.p50 = hist.quantile(0.50);
      s.p90 = hist.quantile(0.90);
      s.p99 = hist.quantile(0.99);
    }
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  JsonWriter w(os);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : snap.counters) w.kv(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : snap.gauges) w.kv(g.name, g.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.kv("count", h.count);
    w.kv("mean", h.mean);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("p50", h.p50);
    w.kv("p90", h.p90);
    w.kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace nfv::obs
