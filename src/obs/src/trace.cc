#include "nfv/obs/trace.h"

#include <ostream>

#include "nfv/obs/json.h"

namespace nfv::obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

/// Small dense thread ids for the "tid" field (thread::id hashes are
/// unreadable in the trace viewer).
std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Tracer* tracer() noexcept { return g_tracer.load(std::memory_order_relaxed); }

Tracer* set_tracer(Tracer* t) noexcept {
  return g_tracer.exchange(t, std::memory_order_relaxed);
}

void Tracer::record(std::string_view name, Clock::time_point start,
                    Clock::time_point end) {
  using Micros = std::chrono::duration<double, std::micro>;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.ts_us = Micros(start - epoch_).count();
  ev.dur_us = Micros(end - start).count();
  ev.tid = this_thread_tid();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void Tracer::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> snapshot = events();
  JsonWriter w(os);
  w.begin_array();
  for (const TraceEvent& ev : snapshot) {
    w.begin_object();
    w.kv("name", ev.name);
    w.kv("ph", "X");
    w.kv("ts", ev.ts_us);
    w.kv("dur", ev.dur_us);
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", std::uint64_t{ev.tid});
    w.end_object();
  }
  w.end_array();
}

}  // namespace nfv::obs
