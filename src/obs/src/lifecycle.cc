#include "nfv/obs/lifecycle.h"

#include <array>
#include <cmath>
#include <map>
#include <ostream>
#include <string>

#include "nfv/obs/json.h"

namespace nfv::obs {

namespace {

constexpr std::array<LifecycleStage, 13> kAllStages = {
    LifecycleStage::kAdmit,        LifecycleStage::kPlace,
    LifecycleStage::kQueue,        LifecycleStage::kReject,
    LifecycleStage::kMigrate,      LifecycleStage::kEvacuate,
    LifecycleStage::kPark,         LifecycleStage::kRetryBackoff,
    LifecycleStage::kRetryAdmit,   LifecycleStage::kShedFault,
    LifecycleStage::kShedOverload, LifecycleStage::kShed,
    LifecycleStage::kDepart,
};

[[noreturn]] void lifecycle_fail(const std::string& what) {
  throw LifecycleParseError("lifecycle: " + what);
}

}  // namespace

std::string_view to_string(LifecycleStage stage) {
  switch (stage) {
    case LifecycleStage::kAdmit: return "admit";
    case LifecycleStage::kPlace: return "place";
    case LifecycleStage::kQueue: return "queue";
    case LifecycleStage::kReject: return "reject";
    case LifecycleStage::kMigrate: return "migrate";
    case LifecycleStage::kEvacuate: return "evacuate";
    case LifecycleStage::kPark: return "park";
    case LifecycleStage::kRetryBackoff: return "retry_backoff";
    case LifecycleStage::kRetryAdmit: return "retry_admit";
    case LifecycleStage::kShedFault: return "shed_fault";
    case LifecycleStage::kShedOverload: return "shed_overload";
    case LifecycleStage::kShed: return "shed";
    case LifecycleStage::kDepart: return "depart";
  }
  return "?";
}

void write_lifecycle_trace(const std::vector<LifecycleEvent>& events,
                           double trace_end, std::ostream& os) {
  // Each stage's span runs to the request's next stage so the swimlane
  // tiles without gaps; terminal stages (and the last stage of a request
  // still live at trace end) run to trace_end.
  std::map<std::uint32_t, double> next_start;  // request -> next stage time
  std::vector<double> span_end(events.size(), trace_end);
  for (std::size_t i = events.size(); i-- > 0;) {
    const LifecycleEvent& e = events[i];
    const auto it = next_start.find(e.request);
    if (it != next_start.end()) span_end[i] = it->second;
    next_start[e.request] = e.time;
  }

  JsonWriter w(os);
  w.begin_array();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const LifecycleEvent& e = events[i];
    const double dur = std::max(span_end[i] - e.time, 0.0);
    w.begin_object();
    w.kv("name", to_string(e.stage));
    w.kv("cat", kLifecycleSchema);
    w.kv("ph", "X");
    w.kv("ts", e.time * 1e6);  // chrome://tracing wants microseconds
    w.kv("dur", dur * 1e6);
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", std::uint64_t{e.request});  // one swimlane per request
    w.key("args");
    w.begin_object();
    w.kv("event_index", e.event_index);
    w.kv("t", e.time);  // exact trace time (ts is scaled for the viewer)
    w.kv("request", std::uint64_t{e.request});
    if (e.node == kLifecycleNoNode) {
      w.key("node");
      w.null();
    } else {
      w.kv("node", std::uint64_t{e.node});
    }
    w.kv("rung", std::uint64_t{e.rung});
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

std::vector<LifecycleEvent> load_lifecycle(std::string_view text) {
  std::string err;
  const auto parsed = parse_json(text, &err);
  if (!parsed) lifecycle_fail(err);
  if (!parsed->is_array()) lifecycle_fail("top level is not an array");
  std::vector<LifecycleEvent> out;
  out.reserve(parsed->as_array().size());
  for (const JsonValue& jv : parsed->as_array()) {
    if (!jv.is_object()) lifecycle_fail("trace event is not an object");
    const JsonValue* name = jv.find("name");
    if (name == nullptr || !name->is_string()) {
      lifecycle_fail("trace event has no name");
    }
    LifecycleEvent e;
    bool known = false;
    for (const LifecycleStage s : kAllStages) {
      if (name->as_string() == to_string(s)) {
        e.stage = s;
        known = true;
        break;
      }
    }
    if (!known) lifecycle_fail("unknown stage \"" + name->as_string() + "\"");
    const JsonValue* args = jv.find("args");
    if (args == nullptr || !args->is_object()) {
      lifecycle_fail("trace event has no args object");
    }
    const auto count = [&](std::string_view key,
                           bool required) -> std::uint64_t {
      const JsonValue* v = args->find(key);
      if (v == nullptr || !v->is_number()) {
        if (!required) return 0;
        lifecycle_fail("args missing numeric \"" + std::string(key) + "\"");
      }
      const double x = v->as_number();
      if (!std::isfinite(x) || x < 0.0 || x != std::floor(x)) {
        lifecycle_fail("args field \"" + std::string(key) +
                       "\" is not a non-negative integer");
      }
      return static_cast<std::uint64_t>(x);
    };
    e.event_index = count("event_index", true);
    const JsonValue* t = args->find("t");
    if (t == nullptr || !t->is_number() || !std::isfinite(t->as_number())) {
      lifecycle_fail("args missing finite \"t\"");
    }
    e.time = t->as_number();
    e.request = static_cast<std::uint32_t>(count("request", true));
    const JsonValue* node = args->find("node");
    if (node == nullptr) lifecycle_fail("args missing \"node\"");
    e.node = node->is_null() ? kLifecycleNoNode
                             : static_cast<std::uint32_t>(count("node", true));
    e.rung = static_cast<std::uint32_t>(count("rung", true));
    out.push_back(e);
  }
  return out;
}

}  // namespace nfv::obs
