// LP-relaxation placement with deterministic rounding (ROADMAP O5,
// DESIGN.md §17).
//
// The fractional placement LP assigns each VNF a distribution x_{f,v} over
// nodes (Σ_v x_{f,v} = 1, x ≥ 0) and is solved dependency-free by projected
// subgradient descent on a concentration objective with a growing capacity
// penalty.  Rounding is deterministic largest-fraction: VNFs in descending
// demand order each take the highest-mass node among those with remaining
// capacity (lowest index on ties), which repairs fractional choices the
// earlier, larger VNFs have already filled.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "nfv/placement/algorithm.h"

namespace nfv::placement {

/// Projected-subgradient solver for the fractional placement LP plus
/// largest-fraction rounding.  Fully deterministic — the Rng argument is
/// never drawn from.  `iterations` of the returned Placement counts
/// subgradient steps, the work unit the portfolio budget is charged in.
class LpRoundPlacement final : public PlacementAlgorithm {
 public:
  struct Options {
    std::uint32_t iterations = 240;  ///< projected-subgradient steps
    double step = 0.5;               ///< base step size η (decays as η/√t)
    double penalty = 8.0;            ///< final capacity-overload weight β
    /// Anytime wall-clock cutoff: checked once per step; rounding uses
    /// the fractional solution reached so far.  Unset in deterministic
    /// (work-budget) mode — see DESIGN.md §17.
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  LpRoundPlacement() = default;
  explicit LpRoundPlacement(Options options);

  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "LP"; }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_{};
};

}  // namespace nfv::placement
