// Placement algorithm interface and the concrete algorithms of Sec. IV-A /
// Sec. V-B:
//   * BFDSU  — the paper's Algorithm 1 (priority-driven weighted best fit),
//   * FFD    — First Fit Decreasing baseline,
//   * NAH    — Node Assignment Heuristic of Xia et al. [12],
// plus classical fits (BFD / FF / NF / WFD) and an exact branch-and-bound
// for small instances (used to validate Theorem 2's factor-2 bound).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nfv/common/rng.h"
#include "nfv/placement/problem.h"

namespace nfv::placement {

/// Abstract placement algorithm.  Implementations are stateless and
/// thread-compatible; all randomness flows through the Rng argument.
class PlacementAlgorithm {
 public:
  virtual ~PlacementAlgorithm() = default;

  /// Computes a placement.  Returns feasible=false (with an empty/partial
  /// assignment) when the algorithm could not fit every VNF.
  [[nodiscard]] virtual Placement place(const PlacementProblem& problem,
                                        Rng& rng) const = 0;

  /// Stable display name ("BFDSU", "FFD", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// First Fit Decreasing: VNFs by descending demand, each to the
/// lowest-indexed node with room.  Single pass, iterations == 1.
class FfdPlacement final : public PlacementAlgorithm {
 public:
  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "FFD"; }
};

/// First Fit in the given VNF order (no sort) — ablation baseline.
class FirstFitPlacement final : public PlacementAlgorithm {
 public:
  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "FF"; }
};

/// Next Fit Decreasing: keeps a single open node, moves on when full.
class NfdPlacement final : public PlacementAlgorithm {
 public:
  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "NFD"; }
};

/// Best Fit Decreasing (deterministic): each VNF to the feasible node with
/// minimal remaining capacity — the non-randomized core of BFDSU, used as
/// an ablation.
class BfdPlacement final : public PlacementAlgorithm {
 public:
  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "BFD"; }
};

/// Worst Fit Decreasing: each VNF to the feasible node with maximal
/// remaining capacity (the "spread" policy NAH approximates).
class WfdPlacement final : public PlacementAlgorithm {
 public:
  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "WFD"; }
};

/// Node Assignment Heuristic (Xia et al. [12], as described in Sec. V-B):
/// for each chain, place its most resource-demanding unplaced VNF at the
/// node with the largest remaining capacity, then co-locate as many of the
/// chain's remaining VNFs there as fit; spill the rest to the next
/// largest-capacity node, and so on.  Keeps no used/spare distinction.
/// iterations counts node-selection rounds (initial picks + spills).
class NahPlacement final : public PlacementAlgorithm {
 public:
  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "NAH"; }
};

/// BFDSU (Algorithm 1): Best Fit Decreasing using Smallest Used nodes with
/// the largest probability.
///
/// One pass: VNFs by descending total demand; candidate nodes are the
/// already-used ones with sufficient remaining capacity (falling back to
/// spare nodes), and the target is drawn with probability proportional to
/// 1/(1 + RST(v) − D_f·M_f) — i.e. tightest fits are likeliest but not
/// certain, which lets restarts escape infeasible corners ("Go back to
/// Begin", line 9).
///
/// Runs as a multi-start: passes repeat until `stall_limit` consecutive
/// passes fail to reduce the number of used nodes (or `max_passes` is hit),
/// and the best feasible pass wins.  `iterations` reports the number of
/// passes, the quantity plotted in Fig. 10.
class BfdsuPlacement final : public PlacementAlgorithm {
 public:
  struct Options {
    std::uint32_t stall_limit = 10;  ///< stop after this many non-improving passes
    std::uint32_t max_passes = 60;   ///< hard cap incl. infeasible restarts
  };

  BfdsuPlacement() = default;
  explicit BfdsuPlacement(Options options);

  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "BFDSU"; }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  /// One randomized pass of Algorithm 1; feasible=false when some VNF had
  /// no candidate node.
  [[nodiscard]] Placement single_pass(const PlacementProblem& problem,
                                      Rng& rng) const;

  Options options_{};
};

/// Exact branch-and-bound minimizing the number of used nodes.  Exponential;
/// intended for |F| ≤ ~16 (validation of Theorem 2 and optimality gaps).
class ExactPlacement final : public PlacementAlgorithm {
 public:
  explicit ExactPlacement(std::uint64_t max_expansions = 50'000'000);

  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "Exact"; }

 private:
  std::uint64_t max_expansions_;
};

/// Returns the algorithm instance registered under `name` ("BFDSU", "FFD",
/// "NAH", "BFD", "WFD", "FF", "NFD", "PSO", "LP", "Exact"); nullptr if
/// unknown — callers surface that as a usage error, never fall back.
[[nodiscard]] std::unique_ptr<PlacementAlgorithm> make_placement_algorithm(
    std::string_view name);

/// All registered algorithm names.
[[nodiscard]] std::vector<std::string> placement_algorithm_names();

}  // namespace nfv::placement
