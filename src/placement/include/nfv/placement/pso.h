// Particle-swarm placement search (ROADMAP O5, DESIGN.md §17).
//
// A particle encodes a continuous node preference per VNF; decoding walks
// the VNFs in descending demand order, takes the preferred node when it
// fits and repairs via best fit (tightest feasible node) otherwise.  The
// swarm is fixed-size and every particle owns an RNG stream forked from
// the parent up-front in index order, so a run is bit-identical for any
// thread count and any racing arrangement.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "nfv/placement/algorithm.h"

namespace nfv::placement {

/// Seeded PSO over node-preference vectors with best-fit feasibility
/// repair.  `iterations` of the returned Placement counts decode
/// evaluations (swarm × completed sweeps), the work unit the portfolio
/// budget is charged in.
class PsoPlacement final : public PlacementAlgorithm {
 public:
  struct Options {
    std::uint32_t swarm = 16;       ///< particles (fixed; streams fork 0..swarm-1)
    std::uint32_t iterations = 48;  ///< velocity/position sweeps after init
    double inertia = 0.72;          ///< velocity damping w
    double cognitive = 1.49;        ///< personal-best pull c1
    double social = 1.49;           ///< global-best pull c2
    /// Anytime wall-clock cutoff: checked once per sweep, the best
    /// evaluated placement so far is returned.  Unset in deterministic
    /// (work-budget) mode — see DESIGN.md §17.
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  PsoPlacement() = default;
  explicit PsoPlacement(Options options);

  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "PSO"; }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_{};
};

}  // namespace nfv::placement
