// Simulated-annealing placement — a metaheuristic upper-reference for the
// constructive heuristics.  BFDSU answers "how well can a cheap randomized
// pass do?"; annealing answers "how much is left on the table with a real
// search budget?".
//
// Objective: maximize Σ_v (load_v / A_v)² — the classical bin-packing
// potential.  It is Schur-convex in the per-node fill levels, so pushing
// load from an emptier node onto a fuller one always increases it; maxima
// polarize nodes into full-or-empty, which simultaneously minimizes the
// nodes in service (Eq. 14) and maximizes the utilization of the used
// ones (Eq. 13).
#pragma once

#include <cstdint>

#include "nfv/placement/algorithm.h"

namespace nfv::placement {

/// Metropolis search over single-VNF moves and pairwise swaps, geometric
/// cooling, seeded from FFD.
class AnnealingPlacement final : public PlacementAlgorithm {
 public:
  struct Options {
    std::uint32_t iterations = 20'000;
    double initial_temperature = 0.05;  ///< in objective units (fills²)
    double cooling = 0.9995;            ///< per-iteration multiplier
    /// Probability of proposing a swap instead of a single move.
    double swap_probability = 0.3;
  };

  AnnealingPlacement() = default;
  explicit AnnealingPlacement(Options options);

  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "SA"; }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_{};
};

}  // namespace nfv::placement
