// The VNF chain placement (VNF-CP) problem of Sec. III-C / IV-A.
//
// Inputs: node capacities A_v and per-VNF total demands D_f·M_f (each VNF's
// instances are co-located, Eq. 2).  Chains are carried along because the
// NAH baseline [12] places chain-by-chain; pure bin-packing algorithms
// ignore them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nfv/common/ids.h"
#include "nfv/topology/topology.h"
#include "nfv/workload/vnf.h"

namespace nfv::placement {

/// A placement instance: |V| capacities, |F| demands, and the distinct VNF
/// chains occurring in the request set.
struct PlacementProblem {
  std::vector<double> capacities;  ///< A_v, indexed by NodeId
  std::vector<double> demands;     ///< D_f · M_f, indexed by VnfId
  /// Distinct chains (each a sequence of VNF indices), most frequent first;
  /// used by chain-aware algorithms (NAH, CABP).
  std::vector<std::vector<std::uint32_t>> chains;
  /// Optional per-chain weights (request multiplicity); either empty
  /// (all chains weigh 1) or the same size as `chains`.
  std::vector<double> chain_weights;

  [[nodiscard]] std::size_t node_count() const { return capacities.size(); }
  [[nodiscard]] std::size_t vnf_count() const { return demands.size(); }

  [[nodiscard]] double total_capacity() const;
  [[nodiscard]] double total_demand() const;

  /// Quick necessary feasibility conditions: every demand fits in some node
  /// and total demand ≤ total capacity.
  [[nodiscard]] bool obviously_infeasible() const;

  /// Validates invariants (positive capacities/demands, chain indices in
  /// range); throws std::invalid_argument on violation.
  void validate() const;
};

/// Builds a PlacementProblem from a topology and a workload; chains are
/// deduplicated across requests and ordered by descending frequency.
[[nodiscard]] PlacementProblem make_problem(const topo::Topology& topology,
                                            const workload::Workload& workload);

/// A placement: node per VNF (nullopt = unplaced / infeasible run).
struct Placement {
  std::vector<std::optional<NodeId>> assignment;  ///< indexed by VnfId
  bool feasible = false;
  /// Algorithm-reported iteration count (Fig. 10's "execution cost"):
  /// passes over the VNF list for multi-start algorithms, node-scan rounds
  /// for chain-based ones; exactly 1 for single-pass deterministic fits.
  std::uint64_t iterations = 0;

  /// x_v^f of Table II.
  [[nodiscard]] bool places(VnfId f, NodeId v) const {
    return f.index() < assignment.size() && assignment[f.index()] == v;
  }
};

}  // namespace nfv::placement
