// CABP — Chain-Affinity Best-fit Placement (an extension beyond the
// paper).  BFDSU optimizes only Objective 1 (consolidation); the link
// term of Eq. 16 then depends on luck in how chains landed.  CABP keeps
// BFDSU's skeleton (decreasing demands, used-nodes-first, weighted random
// draw, multi-start) but multiplies each candidate node's weight by a
// chain-affinity factor: nodes already hosting this VNF's chain
// neighbours are preferred, so chains co-locate as they are placed
// (the paper's Fig. 1 inter-server → intra-server conversion, performed
// during placement rather than as an afterthought).
#pragma once

#include <cstdint>

#include "nfv/placement/algorithm.h"

namespace nfv::placement {

/// Chain-affinity best-fit placement (BFDSU x chain co-location).
class CabpPlacement final : public PlacementAlgorithm {
 public:
  struct Options {
    std::uint32_t stall_limit = 10;
    std::uint32_t max_passes = 60;
    /// Strength of the affinity factor: candidate weight is multiplied by
    /// (1 + affinity_bias · A(v, f)) where A(v, f) is the
    /// frequency-weighted fraction of f's chain neighbours already on v.
    double affinity_bias = 8.0;
  };

  CabpPlacement() = default;
  explicit CabpPlacement(Options options);

  [[nodiscard]] Placement place(const PlacementProblem& problem,
                                Rng& rng) const override;
  [[nodiscard]] std::string_view name() const override { return "CABP"; }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  [[nodiscard]] Placement single_pass(const PlacementProblem& problem,
                                      Rng& rng) const;

  Options options_{};
};

}  // namespace nfv::placement
