// Multi-resource placement — the generalization the paper scopes out in
// Sec. III-A ("CPU is usually defined as the bottleneck resource, while
// other hardware resources are ... modeled as additional constraints").
// Here the additional constraints become first-class: every node and VNF
// carries a small resource vector (CPU, memory, bandwidth) and a
// placement must fit in every dimension (vector bin packing).
//
// The algorithms mirror the scalar ones through the standard
// dominant-share reduction (Grandl et al., "Multi-resource packing for
// cluster schedulers"): items order by their largest normalized demand,
// and fit quality is measured on the dominant residual dimension.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "nfv/common/ids.h"
#include "nfv/common/rng.h"

namespace nfv::placement {

/// Resource dimensions tracked by the vector model.
enum class Resource : std::uint8_t { kCpu = 0, kMemory = 1, kBandwidth = 2 };
inline constexpr std::size_t kResourceCount = 3;

using ResourceVector = std::array<double, kResourceCount>;

/// A vector bin-packing instance.
struct VectorPlacementProblem {
  std::vector<ResourceVector> capacities;  ///< per node, all entries > 0
  std::vector<ResourceVector> demands;     ///< per VNF footprint, >= 0, some > 0

  [[nodiscard]] std::size_t node_count() const { return capacities.size(); }
  [[nodiscard]] std::size_t vnf_count() const { return demands.size(); }
  void validate() const;

  /// Demand of VNF f normalized by node v's capacity, per dimension.
  [[nodiscard]] ResourceVector normalized_demand(std::uint32_t f,
                                                 std::uint32_t v) const;

  /// Dominant share of VNF f against the average node capacity — the
  /// sort key for "decreasing" orders.
  [[nodiscard]] double dominant_share(std::uint32_t f) const;
};

/// Assignment result (same shape as the scalar Placement).
struct VectorPlacement {
  std::vector<std::optional<NodeId>> assignment;
  bool feasible = false;
  std::uint64_t iterations = 0;
};

/// Per-dimension utilization metrics.
struct VectorMetrics {
  std::size_t nodes_in_service = 0;
  /// Mean over used nodes of the per-node dominant (max-dimension)
  /// utilization.
  double avg_dominant_utilization = 0.0;
  /// Mean utilization per dimension over used nodes.
  ResourceVector avg_utilization{};
};

/// First Fit Decreasing by dominant share.
[[nodiscard]] VectorPlacement vector_ffd(const VectorPlacementProblem& p);

/// Best Fit Decreasing: tightest dominant residual after placing.
[[nodiscard]] VectorPlacement vector_bfd(const VectorPlacementProblem& p);

/// BFDSU lifted to vectors: used-nodes-first candidate set and a weighted
/// random draw with weight 1/(1 + dominant residual slack), multi-start
/// with the same stall/max-pass policy as the scalar algorithm.
struct VectorBfdsuOptions {
  std::uint32_t stall_limit = 10;
  std::uint32_t max_passes = 60;
};
[[nodiscard]] VectorPlacement vector_bfdsu(const VectorPlacementProblem& p,
                                           Rng& rng,
                                           VectorBfdsuOptions options = {});

/// Evaluates a placement; throws on any per-dimension capacity violation.
[[nodiscard]] VectorMetrics evaluate(const VectorPlacementProblem& p,
                                     const VectorPlacement& placement);

}  // namespace nfv::placement
