// Placement quality metrics — the quantities plotted in Figs. 5-10.
#pragma once

#include <cstddef>
#include <vector>

#include "nfv/placement/problem.h"

namespace nfv::placement {

/// Metrics of a feasible placement.
struct PlacementMetrics {
  /// Σ_v y_v — nodes hosting at least one VNF (Eq. 14, Fig. 8).
  std::size_t nodes_in_service = 0;
  /// Objective 1 (Eq. 13): mean over used nodes of load_v / A_v (Figs. 5-7).
  double avg_utilization_of_used = 0.0;
  /// Σ_{v used} A_v — total capacity claimed by used nodes (Fig. 9).
  double resource_occupation = 0.0;
  /// Σ_f D_f·M_f placed (== problem.total_demand() when feasible).
  double total_load = 0.0;
  /// Per-node load (indexed by node), for inspection.
  std::vector<double> node_load;
};

/// Evaluates a placement against its problem.  Unplaced VNFs contribute no
/// load; callers should check Placement::feasible first for headline
/// numbers.  Throws on out-of-range assignments or capacity violations
/// beyond FP tolerance.
[[nodiscard]] PlacementMetrics evaluate(const PlacementProblem& problem,
                                        const Placement& placement);

}  // namespace nfv::placement
