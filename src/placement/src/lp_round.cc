#include "nfv/placement/lp_round.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nfv/common/error.h"
#include "nfv/obs/metrics.h"
#include "fit_util.h"

namespace nfv::placement {

namespace {

/// Euclidean projection of one row onto the probability simplex
/// (Duchi et al. 2008): sort descending, find the pivot, shift and clip.
/// O(V log V), deterministic.
void project_to_simplex(std::vector<double>& row,
                        std::vector<double>& sorted) {
  sorted = row;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0.0;
  double theta = 0.0;
  std::size_t pivot = 0;
  for (std::size_t j = 0; j < sorted.size(); ++j) {
    cumulative += sorted[j];
    const double candidate =
        (cumulative - 1.0) / static_cast<double>(j + 1);
    if (sorted[j] - candidate > 0.0) {
      theta = candidate;
      pivot = j + 1;
    }
  }
  NFV_CHECK(pivot >= 1);
  for (double& x : row) x = std::max(0.0, x - theta);
}

}  // namespace

LpRoundPlacement::LpRoundPlacement(Options options) : options_(options) {
  NFV_REQUIRE(options_.iterations >= 1);
  NFV_REQUIRE(options_.step > 0.0);
  NFV_REQUIRE(options_.penalty >= 0.0);
}

Placement LpRoundPlacement::place(const PlacementProblem& problem,
                                  Rng& /*rng*/) const {
  problem.validate();
  const std::size_t vnfs = problem.vnf_count();
  const std::size_t nodes = problem.node_count();

  // x[f*nodes + v]: fractional assignment rows, each on the simplex.
  std::vector<double> x(vnfs * nodes,
                        1.0 / static_cast<double>(nodes));
  std::vector<double> load(nodes);
  std::vector<double> score(nodes);
  std::vector<double> sorted_scratch(nodes);
  const double max_capacity =
      *std::max_element(problem.capacities.begin(), problem.capacities.end());

  std::uint64_t steps = 0;
  for (std::uint32_t t = 1; t <= options_.iterations; ++t) {
    if (options_.deadline &&
        std::chrono::steady_clock::now() >= *options_.deadline) {
      break;  // anytime: round the fractional point reached so far
    }
    ++steps;
    std::fill(load.begin(), load.end(), 0.0);
    for (std::size_t f = 0; f < vnfs; ++f) {
      for (std::size_t v = 0; v < nodes; ++v) {
        load[v] += problem.demands[f] * x[f * nodes + v];
      }
    }
    // Per-node subgradient: concentrate onto large nodes (capacity cost)
    // while a growing penalty β_t prices fractional overload.  The demand
    // factor d_f scales a whole row uniformly, so it cancels against the
    // row-wise simplex projection and is dropped.
    const double beta =
        options_.penalty * static_cast<double>(t) /
        static_cast<double>(options_.iterations);
    for (std::size_t v = 0; v < nodes; ++v) {
      const double capacity = problem.capacities[v];
      const double overload = std::max(0.0, load[v] - capacity) / capacity;
      score[v] = max_capacity / capacity - 1.0 + beta * overload;
    }
    const double eta = options_.step / std::sqrt(static_cast<double>(t));
    for (std::size_t f = 0; f < vnfs; ++f) {
      std::vector<double> row(x.begin() +
                                  static_cast<std::ptrdiff_t>(f * nodes),
                              x.begin() +
                                  static_cast<std::ptrdiff_t>((f + 1) * nodes));
      for (std::size_t v = 0; v < nodes; ++v) row[v] -= eta * score[v];
      project_to_simplex(row, sorted_scratch);
      std::copy(row.begin(), row.end(),
                x.begin() + static_cast<std::ptrdiff_t>(f * nodes));
    }
  }

  // Deterministic largest-fraction rounding with best-fit capacity repair:
  // descending-demand VNFs take their highest-mass node that still fits
  // (lowest index on ties), falling back to the tightest feasible node.
  Placement result;
  result.assignment.assign(vnfs, std::nullopt);
  result.iterations = steps;
  std::vector<double> residual = problem.capacities;
  bool feasible = true;
  for (const std::uint32_t f : detail::demand_order_desc(problem)) {
    const double demand = problem.demands[f];
    std::uint32_t chosen = 0xffffffffu;
    double best_mass = -1.0;
    for (std::uint32_t v = 0; v < nodes; ++v) {
      if (!detail::fits(residual[v], demand)) continue;
      const double mass = x[f * nodes + v];
      if (mass > best_mass) {
        best_mass = mass;
        chosen = v;
      }
    }
    if (chosen == 0xffffffffu) {
      // No feasible node at all for this VNF: the rounded solution is
      // infeasible (best-fit would scan the same empty candidate set).
      feasible = false;
      continue;
    }
    detail::assign(result, residual, f, chosen, demand);
  }
  result.feasible = feasible;
  obs::count("placement.lp.steps", steps);
  return result;
}

}  // namespace nfv::placement
