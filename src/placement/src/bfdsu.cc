// BFDSU — Algorithm 1 of the paper ("Best Fit Decreasing using Smallest
// Used nodes with the largest probability").
#include <algorithm>
#include <vector>

#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"
#include "nfv/placement/algorithm.h"
#include "nfv/placement/metrics.h"
#include "fit_util.h"

namespace nfv::placement {

BfdsuPlacement::BfdsuPlacement(Options options) : options_(options) {
  NFV_REQUIRE(options_.stall_limit >= 1);
  NFV_REQUIRE(options_.max_passes >= 1);
}

Placement BfdsuPlacement::single_pass(const PlacementProblem& problem,
                                      Rng& rng) const {
  Placement result;
  result.assignment.resize(problem.vnf_count());
  std::vector<double> residual = problem.capacities;
  std::vector<bool> used(problem.node_count(), false);

  // Scratch reused across VNFs: candidate node set V_rst(f) and weights.
  std::vector<std::uint32_t> candidates;
  std::vector<double> weights;

  for (const std::uint32_t f : detail::demand_order_desc(problem)) {
    const double demand = problem.demands[f];

    // Lines 4-8: search Used_list first, fall back to Spare_list.
    candidates.clear();
    for (std::uint32_t v = 0; v < problem.node_count(); ++v) {
      if (used[v] && detail::fits(residual[v], demand)) {
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) {
      for (std::uint32_t v = 0; v < problem.node_count(); ++v) {
        if (!used[v] && detail::fits(residual[v], demand)) {
          candidates.push_back(v);
        }
      }
    }
    if (candidates.empty()) return result;  // line 9: go back to Begin

    // Lines 12-16: weight each candidate by the reciprocal of its slack
    // after placing f; the +1 keeps the weight finite on exact fits.
    std::sort(candidates.begin(), candidates.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return residual[a] < residual[b];
              });
    weights.clear();
    weights.reserve(candidates.size());
    for (const std::uint32_t v : candidates) {
      weights.push_back(1.0 / (1.0 + residual[v] - demand));
    }
    const std::uint32_t chosen = candidates[rng.weighted_index(weights)];
    detail::assign(result, residual, f, chosen, demand);
    used[chosen] = true;
  }
  result.feasible = true;
  return result;
}

Placement BfdsuPlacement::place(const PlacementProblem& problem,
                                Rng& rng) const {
  const obs::ScopedSpan span("placement.bfdsu.place");
  problem.validate();
  // Multi-start: keep the pass using the fewest nodes (ties broken by
  // higher mean utilization of used nodes); stop after stall_limit passes
  // without improvement.  Infeasible passes are the paper's "go back to
  // Begin" restarts and count toward iterations but not toward stalls
  // until a feasible placement exists.
  Placement best;
  double best_util = -1.0;
  std::size_t best_nodes = problem.node_count() + 1;
  std::uint32_t stall = 0;
  std::uint64_t passes = 0;
  std::uint64_t restarts = 0;
  while (passes < options_.max_passes && stall < options_.stall_limit) {
    ++passes;
    Placement candidate = single_pass(problem, rng);
    if (!candidate.feasible) {
      ++restarts;
      if (best.feasible) ++stall;
      continue;
    }
    const PlacementMetrics m = evaluate(problem, candidate);
    if (m.nodes_in_service < best_nodes ||
        (m.nodes_in_service == best_nodes &&
         m.avg_utilization_of_used > best_util)) {
      best = std::move(candidate);
      best_nodes = m.nodes_in_service;
      best_util = m.avg_utilization_of_used;
      stall = 0;
    } else {
      ++stall;
    }
  }
  best.iterations = passes;
  obs::count("placement.bfdsu.runs");
  obs::count("placement.bfdsu.passes", passes);
  obs::count("placement.bfdsu.restarts", restarts);
  obs::observe("placement.bfdsu.passes_per_run",
               static_cast<double>(passes), 0.0,
               static_cast<double>(options_.max_passes) + 1.0, 32);
  if (!best.feasible) {
    obs::count("placement.bfdsu.infeasible");
    best.assignment.assign(problem.vnf_count(), std::nullopt);
  }
  return best;
}

}  // namespace nfv::placement
