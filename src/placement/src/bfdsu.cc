// BFDSU — Algorithm 1 of the paper ("Best Fit Decreasing using Smallest
// Used nodes with the largest probability").
#include <algorithm>
#include <vector>

#include "nfv/exec/thread_pool.h"
#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"
#include "nfv/placement/algorithm.h"
#include "nfv/placement/metrics.h"
#include "fit_util.h"

namespace nfv::placement {

BfdsuPlacement::BfdsuPlacement(Options options) : options_(options) {
  NFV_REQUIRE(options_.stall_limit >= 1);
  NFV_REQUIRE(options_.max_passes >= 1);
}

Placement BfdsuPlacement::single_pass(const PlacementProblem& problem,
                                      Rng& rng) const {
  Placement result;
  result.assignment.resize(problem.vnf_count());
  std::vector<double> residual = problem.capacities;

  // Algorithm 1 keeps Used_list / Spare_list explicitly; maintaining them
  // incrementally means each VNF scans only the used nodes (typically a
  // small prefix of V) and touches the spare list just on the fallback,
  // instead of two full |V| sweeps per VNF.  spare_nodes is unordered
  // (swap-remove on promotion); determinism comes from the candidate sort
  // below, which orders by (residual, node id) regardless of scan order.
  std::vector<std::uint32_t> used_nodes;
  std::vector<std::uint32_t> spare_nodes(problem.node_count());
  for (std::uint32_t v = 0; v < problem.node_count(); ++v) spare_nodes[v] = v;

  // Scratch reused across VNFs: candidate node set V_rst(f) and weights.
  std::vector<std::uint32_t> candidates;
  std::vector<double> weights;

  for (const std::uint32_t f : detail::demand_order_desc(problem)) {
    const double demand = problem.demands[f];

    // Lines 4-8: search Used_list first, fall back to Spare_list.
    candidates.clear();
    for (const std::uint32_t v : used_nodes) {
      if (detail::fits(residual[v], demand)) candidates.push_back(v);
    }
    bool from_spare = false;
    if (candidates.empty()) {
      from_spare = true;
      for (const std::uint32_t v : spare_nodes) {
        if (detail::fits(residual[v], demand)) candidates.push_back(v);
      }
    }
    if (candidates.empty()) return result;  // line 9: go back to Begin

    // Lines 12-16: weight each candidate by the reciprocal of its slack
    // after placing f; the +1 keeps the weight finite on exact fits.
    std::sort(candidates.begin(), candidates.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (residual[a] != residual[b]) {
                  return residual[a] < residual[b];
                }
                return a < b;
              });
    weights.clear();
    weights.reserve(candidates.size());
    for (const std::uint32_t v : candidates) {
      weights.push_back(1.0 / (1.0 + residual[v] - demand));
    }
    const std::uint32_t chosen = candidates[rng.weighted_index(weights)];
    detail::assign(result, residual, f, chosen, demand);
    if (from_spare) {
      const auto it =
          std::find(spare_nodes.begin(), spare_nodes.end(), chosen);
      *it = spare_nodes.back();
      spare_nodes.pop_back();
      used_nodes.push_back(chosen);
    }
  }
  result.feasible = true;
  return result;
}

Placement BfdsuPlacement::place(const PlacementProblem& problem,
                                Rng& rng) const {
  const obs::ScopedSpan span("placement.bfdsu.place");
  problem.validate();
  // Multi-start: keep the pass using the fewest nodes (ties broken by
  // higher mean utilization of used nodes); stop after stall_limit passes
  // without improvement.  Infeasible passes are the paper's "go back to
  // Begin" restarts and count toward iterations but not toward stalls
  // until a feasible placement exists.
  //
  // Pass i always draws from rng.fork(i), forked up-front in index order:
  // the caller's rng advances identically however the passes execute, and
  // the reduction below consumes pass results in index order with the
  // serial stall rule — so the winning placement is bit-identical for any
  // thread count.  Passes run in waves of the current fan-out width; a
  // wave may compute a few passes past the stall cutoff, which are
  // discarded (wasted work bounded by one wave), never folded in.
  std::vector<Rng> pass_rng;
  pass_rng.reserve(options_.max_passes);
  for (std::uint32_t i = 0; i < options_.max_passes; ++i) {
    pass_rng.push_back(rng.fork(i));
  }

  struct PassResult {
    Placement placement;
    PlacementMetrics metrics;
  };

  Placement best;
  double best_util = -1.0;
  std::size_t best_nodes = problem.node_count() + 1;
  std::uint32_t stall = 0;
  std::uint64_t passes = 0;
  std::uint64_t restarts = 0;
  std::uint32_t launched = 0;
  while (launched < options_.max_passes && stall < options_.stall_limit) {
    const std::uint32_t wave = std::min(exec::current_concurrency(),
                                        options_.max_passes - launched);
    std::vector<PassResult> results =
        exec::parallel_map(wave, [&, launched](std::size_t i) {
          PassResult r;
          r.placement =
              single_pass(problem, pass_rng[launched + static_cast<std::uint32_t>(i)]);
          if (r.placement.feasible) {
            r.metrics = evaluate(problem, r.placement);
          }
          return r;
        });
    launched += wave;
    // Index-ordered reduction replaying the serial stopping rule.
    for (PassResult& r : results) {
      if (stall >= options_.stall_limit) break;  // computed past the cutoff
      ++passes;
      if (!r.placement.feasible) {
        ++restarts;
        if (best.feasible) ++stall;
        continue;
      }
      if (r.metrics.nodes_in_service < best_nodes ||
          (r.metrics.nodes_in_service == best_nodes &&
           r.metrics.avg_utilization_of_used > best_util)) {
        best = std::move(r.placement);
        best_nodes = r.metrics.nodes_in_service;
        best_util = r.metrics.avg_utilization_of_used;
        stall = 0;
      } else {
        ++stall;
      }
    }
  }
  best.iterations = passes;
  obs::count("placement.bfdsu.runs");
  obs::count("placement.bfdsu.passes", passes);
  obs::count("placement.bfdsu.restarts", restarts);
  obs::observe("placement.bfdsu.passes_per_run",
               static_cast<double>(passes), 0.0,
               static_cast<double>(options_.max_passes) + 1.0, 32);
  if (!best.feasible) {
    obs::count("placement.bfdsu.infeasible");
    best.assignment.assign(problem.vnf_count(), std::nullopt);
  }
  return best;
}

}  // namespace nfv::placement
