// Node Assignment Heuristic (Xia et al. [12]) as summarized in Sec. V-B of
// the paper: chain-by-chain, anchor the most demanding VNF at the node with
// the largest remaining capacity, co-locate the rest of the chain there if
// possible, spill leftovers to the next largest node.  NAH keeps no
// used/spare bookkeeping, so it tends to spread VNFs across many
// lightly-loaded nodes (worst-fit behaviour), which is exactly what
// Figs. 5-9 penalize.
#include <algorithm>

#include "nfv/placement/algorithm.h"
#include "fit_util.h"

namespace nfv::placement {

Placement NahPlacement::place(const PlacementProblem& problem,
                              Rng& /*rng*/) const {
  problem.validate();
  Placement result;
  result.assignment.resize(problem.vnf_count());
  std::vector<double> residual = problem.capacities;
  std::vector<bool> placed(problem.vnf_count(), false);

  auto largest_node_fitting = [&](double demand) -> std::uint32_t {
    std::uint32_t chosen = static_cast<std::uint32_t>(problem.node_count());
    for (std::uint32_t v = 0; v < problem.node_count(); ++v) {
      if (!detail::fits(residual[v], demand)) continue;
      if (chosen == problem.node_count() || residual[v] > residual[chosen]) {
        chosen = v;
      }
    }
    return chosen;
  };

  auto place_chain = [&](const std::vector<std::uint32_t>& chain) -> bool {
    // NAH keeps no used/spare state, so every chain costs at least one
    // node-scan round (Fig. 10's cost unit) even when all of its members
    // were already placed by earlier chains.
    ++result.iterations;
    // Unplaced members, most demanding first.
    std::vector<std::uint32_t> pending;
    for (const std::uint32_t f : chain) {
      if (!placed[f]) pending.push_back(f);
    }
    if (pending.empty()) return true;
    std::stable_sort(pending.begin(), pending.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return problem.demands[a] > problem.demands[b];
                     });
    bool first_round = true;
    while (!pending.empty()) {
      // Spill rounds re-scan the node list — each costs another iteration
      // (the first selection reuses the per-chain scan counted above).
      if (!first_round) ++result.iterations;
      first_round = false;
      const std::uint32_t anchor = largest_node_fitting(
          problem.demands[pending.front()]);
      if (anchor == problem.node_count()) return false;
      // Greedily co-locate as many pending chain members as fit.
      std::vector<std::uint32_t> leftovers;
      for (const std::uint32_t f : pending) {
        if (detail::fits(residual[anchor], problem.demands[f])) {
          detail::assign(result, residual, f, anchor, problem.demands[f]);
          placed[f] = true;
        } else {
          leftovers.push_back(f);
        }
      }
      pending = std::move(leftovers);
    }
    return true;
  };

  for (const auto& chain : problem.chains) {
    if (!place_chain(chain)) return result;
  }
  // VNFs used by no chain (possible in hand-built problems): place each at
  // the largest-capacity node, same policy.
  for (std::uint32_t f = 0; f < problem.vnf_count(); ++f) {
    if (placed[f]) continue;
    ++result.iterations;
    const std::uint32_t v = largest_node_fitting(problem.demands[f]);
    if (v == problem.node_count()) return result;
    detail::assign(result, residual, f, v, problem.demands[f]);
    placed[f] = true;
  }
  result.feasible = true;
  return result;
}

}  // namespace nfv::placement
