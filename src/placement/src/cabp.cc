#include "nfv/placement/cabp.h"

#include <algorithm>
#include <set>
#include <vector>

#include "nfv/placement/metrics.h"
#include "fit_util.h"

namespace nfv::placement {

CabpPlacement::CabpPlacement(Options options) : options_(options) {
  NFV_REQUIRE(options_.stall_limit >= 1);
  NFV_REQUIRE(options_.max_passes >= 1);
  NFV_REQUIRE(options_.affinity_bias >= 0.0);
}

namespace {

/// Weight of chain c (1.0 when the problem carries no weights).
double chain_weight(const PlacementProblem& p, std::size_t c) {
  return p.chain_weights.empty() ? 1.0 : p.chain_weights[c];
}

/// Chain-spread proxy of an assignment: Σ_c w_c · (distinct nodes − 1) —
/// the placement-level stand-in for the Eq. 16 link term.
double chain_spread(const PlacementProblem& p,
                    const std::vector<std::optional<NodeId>>& assignment) {
  double spread = 0.0;
  for (std::size_t c = 0; c < p.chains.size(); ++c) {
    std::set<NodeId> nodes;
    for (const std::uint32_t f : p.chains[c]) {
      if (assignment[f].has_value()) nodes.insert(*assignment[f]);
    }
    if (nodes.size() > 1) {
      spread += chain_weight(p, c) * static_cast<double>(nodes.size() - 1);
    }
  }
  return spread;
}

}  // namespace

Placement CabpPlacement::single_pass(const PlacementProblem& problem,
                                     Rng& rng) const {
  Placement result;
  result.assignment.resize(problem.vnf_count());
  std::vector<double> residual = problem.capacities;
  std::vector<bool> used(problem.node_count(), false);

  // chains_of[f]: indices of chains containing VNF f, for the affinity
  // lookup during placement.
  std::vector<std::vector<std::uint32_t>> chains_of(problem.vnf_count());
  for (std::uint32_t c = 0; c < problem.chains.size(); ++c) {
    for (const std::uint32_t f : problem.chains[c]) {
      chains_of[f].push_back(c);
    }
  }

  // A(v, f): weighted fraction of f's already-placed chain neighbours
  // hosted by v, averaged over the chains containing f.
  auto affinity = [&](std::uint32_t v, std::uint32_t f) {
    double score = 0.0;
    double total_weight = 0.0;
    for (const std::uint32_t c : chains_of[f]) {
      const auto& chain = problem.chains[c];
      if (chain.size() < 2) continue;
      const double w = chain_weight(problem, c);
      std::uint32_t placed_here = 0;
      for (const std::uint32_t g : chain) {
        if (g != f && result.assignment[g].has_value() &&
            result.assignment[g]->index() == v) {
          ++placed_here;
        }
      }
      score += w * static_cast<double>(placed_here) /
               static_cast<double>(chain.size() - 1);
      total_weight += w;
    }
    return total_weight > 0.0 ? score / total_weight : 0.0;
  };

  std::vector<std::uint32_t> candidates;
  std::vector<double> weights;
  for (const std::uint32_t f : detail::demand_order_desc(problem)) {
    const double demand = problem.demands[f];
    candidates.clear();
    for (std::uint32_t v = 0; v < problem.node_count(); ++v) {
      if (used[v] && detail::fits(residual[v], demand)) {
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) {
      for (std::uint32_t v = 0; v < problem.node_count(); ++v) {
        if (!used[v] && detail::fits(residual[v], demand)) {
          candidates.push_back(v);
        }
      }
    }
    if (candidates.empty()) return result;
    weights.clear();
    for (const std::uint32_t v : candidates) {
      const double tightness = 1.0 / (1.0 + residual[v] - demand);
      weights.push_back(tightness *
                        (1.0 + options_.affinity_bias * affinity(v, f)));
    }
    const std::uint32_t chosen = candidates[rng.weighted_index(weights)];
    detail::assign(result, residual, f, chosen, demand);
    used[chosen] = true;
  }
  result.feasible = true;
  return result;
}

Placement CabpPlacement::place(const PlacementProblem& problem,
                               Rng& rng) const {
  problem.validate();
  Placement best;
  std::size_t best_nodes = problem.node_count() + 1;
  double best_spread = 0.0;
  double best_util = -1.0;
  std::uint32_t stall = 0;
  std::uint64_t passes = 0;
  while (passes < options_.max_passes && stall < options_.stall_limit) {
    ++passes;
    Placement candidate = single_pass(problem, rng);
    if (!candidate.feasible) {
      if (best.feasible) ++stall;
      continue;
    }
    const PlacementMetrics m = evaluate(problem, candidate);
    const double spread = chain_spread(problem, candidate.assignment);
    // Lexicographic: fewest nodes, then least chain spread, then highest
    // utilization.
    const bool better =
        m.nodes_in_service < best_nodes ||
        (m.nodes_in_service == best_nodes &&
         (spread < best_spread - 1e-12 ||
          (spread <= best_spread + 1e-12 &&
           m.avg_utilization_of_used > best_util)));
    if (better) {
      best = std::move(candidate);
      best_nodes = m.nodes_in_service;
      best_spread = spread;
      best_util = m.avg_utilization_of_used;
      stall = 0;
    } else {
      ++stall;
    }
  }
  best.iterations = passes;
  if (!best.feasible) {
    best.assignment.assign(problem.vnf_count(), std::nullopt);
  }
  return best;
}

}  // namespace nfv::placement
