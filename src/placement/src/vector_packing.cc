#include "nfv/placement/vector_packing.h"

#include <algorithm>
#include <numeric>

#include "nfv/common/error.h"

namespace nfv::placement {

namespace {

/// True iff demand fits residual in every dimension (FP tolerance).
bool fits(const ResourceVector& residual, const ResourceVector& demand) {
  for (std::size_t d = 0; d < kResourceCount; ++d) {
    if (residual[d] < demand[d] - 1e-9) return false;
  }
  return true;
}

void subtract(ResourceVector& residual, const ResourceVector& demand) {
  for (std::size_t d = 0; d < kResourceCount; ++d) residual[d] -= demand[d];
}

/// Dominant residual fraction of a node after hypothetically placing the
/// demand: max over dimensions of residual'/capacity — the vector
/// analogue of the scalar RST(v).
double dominant_slack(const ResourceVector& residual,
                      const ResourceVector& capacity,
                      const ResourceVector& demand) {
  double slack = 0.0;
  for (std::size_t d = 0; d < kResourceCount; ++d) {
    slack = std::max(slack, (residual[d] - demand[d]) / capacity[d]);
  }
  return slack;
}

std::vector<std::uint32_t> dominant_order_desc(
    const VectorPlacementProblem& p) {
  std::vector<std::uint32_t> order(p.vnf_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return p.dominant_share(a) > p.dominant_share(b);
                   });
  return order;
}

}  // namespace

void VectorPlacementProblem::validate() const {
  NFV_REQUIRE(!capacities.empty());
  NFV_REQUIRE(!demands.empty());
  for (const auto& c : capacities) {
    for (const double x : c) NFV_REQUIRE(x > 0.0);
  }
  for (const auto& demand : demands) {
    double total = 0.0;
    for (const double x : demand) {
      NFV_REQUIRE(x >= 0.0);
      total += x;
    }
    NFV_REQUIRE(total > 0.0);
  }
}

ResourceVector VectorPlacementProblem::normalized_demand(
    std::uint32_t f, std::uint32_t v) const {
  NFV_REQUIRE(f < vnf_count() && v < node_count());
  ResourceVector out{};
  for (std::size_t d = 0; d < kResourceCount; ++d) {
    out[d] = demands[f][d] / capacities[v][d];
  }
  return out;
}

double VectorPlacementProblem::dominant_share(std::uint32_t f) const {
  NFV_REQUIRE(f < vnf_count());
  ResourceVector mean_capacity{};
  for (const auto& c : capacities) {
    for (std::size_t d = 0; d < kResourceCount; ++d) mean_capacity[d] += c[d];
  }
  double share = 0.0;
  for (std::size_t d = 0; d < kResourceCount; ++d) {
    mean_capacity[d] /= static_cast<double>(node_count());
    share = std::max(share, demands[f][d] / mean_capacity[d]);
  }
  return share;
}

VectorPlacement vector_ffd(const VectorPlacementProblem& p) {
  p.validate();
  VectorPlacement result;
  result.assignment.resize(p.vnf_count());
  result.iterations = 1;
  std::vector<ResourceVector> residual = p.capacities;
  for (const std::uint32_t f : dominant_order_desc(p)) {
    bool placed = false;
    for (std::uint32_t v = 0; v < p.node_count(); ++v) {
      if (fits(residual[v], p.demands[f])) {
        subtract(residual[v], p.demands[f]);
        result.assignment[f] = NodeId{v};
        placed = true;
        break;
      }
    }
    if (!placed) return result;
  }
  result.feasible = true;
  return result;
}

VectorPlacement vector_bfd(const VectorPlacementProblem& p) {
  p.validate();
  VectorPlacement result;
  result.assignment.resize(p.vnf_count());
  result.iterations = 1;
  std::vector<ResourceVector> residual = p.capacities;
  for (const std::uint32_t f : dominant_order_desc(p)) {
    auto chosen = static_cast<std::uint32_t>(p.node_count());
    double chosen_slack = 0.0;
    for (std::uint32_t v = 0; v < p.node_count(); ++v) {
      if (!fits(residual[v], p.demands[f])) continue;
      const double slack =
          dominant_slack(residual[v], p.capacities[v], p.demands[f]);
      if (chosen == p.node_count() || slack < chosen_slack) {
        chosen = v;
        chosen_slack = slack;
      }
    }
    if (chosen == p.node_count()) return result;
    subtract(residual[chosen], p.demands[f]);
    result.assignment[f] = NodeId{chosen};
  }
  result.feasible = true;
  return result;
}

namespace {

VectorPlacement vector_bfdsu_pass(const VectorPlacementProblem& p, Rng& rng) {
  VectorPlacement result;
  result.assignment.resize(p.vnf_count());
  std::vector<ResourceVector> residual = p.capacities;
  std::vector<bool> used(p.node_count(), false);
  std::vector<std::uint32_t> candidates;
  std::vector<double> weights;
  for (const std::uint32_t f : dominant_order_desc(p)) {
    candidates.clear();
    for (std::uint32_t v = 0; v < p.node_count(); ++v) {
      if (used[v] && fits(residual[v], p.demands[f])) candidates.push_back(v);
    }
    if (candidates.empty()) {
      for (std::uint32_t v = 0; v < p.node_count(); ++v) {
        if (!used[v] && fits(residual[v], p.demands[f])) {
          candidates.push_back(v);
        }
      }
    }
    if (candidates.empty()) return result;
    weights.clear();
    for (const std::uint32_t v : candidates) {
      weights.push_back(
          1.0 /
          (1.0 + dominant_slack(residual[v], p.capacities[v], p.demands[f])));
    }
    const std::uint32_t chosen = candidates[rng.weighted_index(weights)];
    subtract(residual[chosen], p.demands[f]);
    used[chosen] = true;
    result.assignment[f] = NodeId{chosen};
  }
  result.feasible = true;
  return result;
}

}  // namespace

VectorPlacement vector_bfdsu(const VectorPlacementProblem& p, Rng& rng,
                             VectorBfdsuOptions options) {
  p.validate();
  NFV_REQUIRE(options.stall_limit >= 1);
  NFV_REQUIRE(options.max_passes >= 1);
  VectorPlacement best;
  std::size_t best_nodes = p.node_count() + 1;
  double best_util = -1.0;
  std::uint32_t stall = 0;
  std::uint64_t passes = 0;
  while (passes < options.max_passes && stall < options.stall_limit) {
    ++passes;
    VectorPlacement candidate = vector_bfdsu_pass(p, rng);
    if (!candidate.feasible) {
      if (best.feasible) ++stall;
      continue;
    }
    const VectorMetrics m = evaluate(p, candidate);
    if (m.nodes_in_service < best_nodes ||
        (m.nodes_in_service == best_nodes &&
         m.avg_dominant_utilization > best_util)) {
      best = std::move(candidate);
      best_nodes = m.nodes_in_service;
      best_util = m.avg_dominant_utilization;
      stall = 0;
    } else {
      ++stall;
    }
  }
  best.iterations = passes;
  if (!best.feasible) {
    best.assignment.assign(p.vnf_count(), std::nullopt);
  }
  return best;
}

VectorMetrics evaluate(const VectorPlacementProblem& p,
                       const VectorPlacement& placement) {
  NFV_REQUIRE(placement.assignment.size() == p.vnf_count());
  std::vector<ResourceVector> load(p.node_count(), ResourceVector{});
  for (std::uint32_t f = 0; f < p.vnf_count(); ++f) {
    const auto& node = placement.assignment[f];
    if (!node.has_value()) continue;
    NFV_REQUIRE(node->index() < p.node_count());
    for (std::size_t d = 0; d < kResourceCount; ++d) {
      load[node->index()][d] += p.demands[f][d];
    }
  }
  VectorMetrics m;
  double dominant_sum = 0.0;
  ResourceVector per_dim_sum{};
  for (std::uint32_t v = 0; v < p.node_count(); ++v) {
    double total_load = 0.0;
    double dominant = 0.0;
    for (std::size_t d = 0; d < kResourceCount; ++d) {
      NFV_REQUIRE(load[v][d] <= p.capacities[v][d] + 1e-6);
      total_load += load[v][d];
      dominant = std::max(dominant, load[v][d] / p.capacities[v][d]);
    }
    if (total_load <= 0.0) continue;
    ++m.nodes_in_service;
    dominant_sum += dominant;
    for (std::size_t d = 0; d < kResourceCount; ++d) {
      per_dim_sum[d] += load[v][d] / p.capacities[v][d];
    }
  }
  if (m.nodes_in_service > 0) {
    const auto n = static_cast<double>(m.nodes_in_service);
    m.avg_dominant_utilization = dominant_sum / n;
    for (std::size_t d = 0; d < kResourceCount; ++d) {
      m.avg_utilization[d] = per_dim_sum[d] / n;
    }
  }
  return m;
}

}  // namespace nfv::placement
