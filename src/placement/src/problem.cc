#include "nfv/placement/problem.h"

#include <algorithm>
#include <map>

#include "nfv/common/error.h"

namespace nfv::placement {

double PlacementProblem::total_capacity() const {
  double total = 0.0;
  for (const double c : capacities) total += c;
  return total;
}

double PlacementProblem::total_demand() const {
  double total = 0.0;
  for (const double d : demands) total += d;
  return total;
}

bool PlacementProblem::obviously_infeasible() const {
  if (total_demand() > total_capacity()) return true;
  const double max_capacity =
      capacities.empty() ? 0.0
                         : *std::max_element(capacities.begin(), capacities.end());
  for (const double d : demands) {
    if (d > max_capacity) return true;
  }
  return false;
}

void PlacementProblem::validate() const {
  NFV_REQUIRE(!capacities.empty());
  NFV_REQUIRE(!demands.empty());
  for (const double c : capacities) NFV_REQUIRE(c > 0.0);
  for (const double d : demands) NFV_REQUIRE(d > 0.0);
  for (const auto& chain : chains) {
    for (const std::uint32_t f : chain) NFV_REQUIRE(f < demands.size());
  }
  NFV_REQUIRE(chain_weights.empty() || chain_weights.size() == chains.size());
  for (const double w : chain_weights) NFV_REQUIRE(w > 0.0);
}

PlacementProblem make_problem(const topo::Topology& topology,
                              const workload::Workload& workload) {
  PlacementProblem p;
  p.capacities.reserve(topology.compute_count());
  for (const NodeId v : topology.nodes()) {
    p.capacities.push_back(topology.capacity(v));
  }
  p.demands.reserve(workload.vnfs.size());
  for (const auto& f : workload.vnfs) {
    NFV_REQUIRE(f.id.index() == p.demands.size());  // dense VnfIds
    p.demands.push_back(f.total_demand());
  }
  // Deduplicate chains; keep descending frequency so chain-based algorithms
  // handle the hottest chains first.
  std::map<std::vector<std::uint32_t>, std::size_t> frequency;
  for (const auto& r : workload.requests) {
    std::vector<std::uint32_t> chain;
    chain.reserve(r.chain.size());
    for (const VnfId f : r.chain) chain.push_back(f.value());
    ++frequency[std::move(chain)];
  }
  std::vector<std::pair<std::vector<std::uint32_t>, std::size_t>> ordered(
      frequency.begin(), frequency.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  p.chains.reserve(ordered.size());
  p.chain_weights.reserve(ordered.size());
  for (auto& [chain, count] : ordered) {
    p.chains.push_back(std::move(chain));
    p.chain_weights.push_back(static_cast<double>(count));
  }
  p.validate();
  return p;
}

}  // namespace nfv::placement
