// Exact branch-and-bound for the VNF-CP objective: minimize the number of
// used nodes subject to capacities.  Exponential in |F|; used in tests to
// validate Theorem 2's factor-2 bound and to measure heuristic optimality
// gaps on small instances.
#include <algorithm>
#include <cmath>
#include <vector>

#include "nfv/placement/algorithm.h"
#include "fit_util.h"

namespace nfv::placement {

ExactPlacement::ExactPlacement(std::uint64_t max_expansions)
    : max_expansions_(max_expansions) {
  NFV_REQUIRE(max_expansions_ > 0);
}

namespace {

struct SearchState {
  const PlacementProblem* problem = nullptr;
  std::vector<std::uint32_t> order;  // VNFs by descending demand
  std::vector<double> residual;
  std::vector<std::uint32_t> assignment;  // per position in `order`
  std::vector<std::uint32_t> best_assignment;
  std::size_t used = 0;
  std::size_t best_used = 0;
  double max_capacity = 0.0;
  std::uint64_t expansions = 0;
  std::uint64_t max_expansions = 0;
  bool truncated = false;

  void dfs(std::size_t depth, double remaining_demand) {
    if (truncated) return;
    if (++expansions > max_expansions) {
      truncated = true;
      return;
    }
    if (used >= best_used) return;  // cannot improve
    if (depth == order.size()) {
      best_used = used;
      best_assignment = assignment;
      return;
    }
    // Lower bound on additional nodes: remaining demand cannot fit in the
    // free space of currently-used nodes plus fewer than k fresh nodes.
    double used_free = 0.0;
    for (std::size_t v = 0; v < residual.size(); ++v) {
      if (residual[v] < problem->capacities[v]) used_free += residual[v];
    }
    const double overflow = remaining_demand - used_free;
    if (overflow > 0.0) {
      const auto extra = static_cast<std::size_t>(
          std::ceil(overflow / max_capacity - 1e-12));
      if (used + extra >= best_used) return;
    }

    const std::uint32_t f = order[depth];
    const double demand = problem->demands[f];
    // Try used nodes first (cheaper subtrees), then one representative
    // fresh node per distinct capacity value (symmetry breaking).
    std::vector<double> tried_fresh;
    for (std::uint32_t v = 0; v < residual.size(); ++v) {
      if (!detail::fits(residual[v], demand)) continue;
      const bool fresh = residual[v] == problem->capacities[v];
      if (fresh) {
        if (std::find(tried_fresh.begin(), tried_fresh.end(),
                      problem->capacities[v]) != tried_fresh.end()) {
          continue;
        }
        tried_fresh.push_back(problem->capacities[v]);
      }
      residual[v] -= demand;
      assignment[depth] = v;
      if (fresh) ++used;
      dfs(depth + 1, remaining_demand - demand);
      if (fresh) --used;
      residual[v] += demand;
      if (truncated) return;
    }
  }
};

}  // namespace

Placement ExactPlacement::place(const PlacementProblem& problem,
                                Rng& rng) const {
  problem.validate();
  Placement result;
  result.assignment.resize(problem.vnf_count());
  if (problem.obviously_infeasible()) return result;

  // Seed the incumbent with FFD so pruning starts tight.
  const Placement warm = FfdPlacement{}.place(problem, rng);

  SearchState state;
  state.problem = &problem;
  state.order = detail::demand_order_desc(problem);
  state.residual = problem.capacities;
  state.assignment.resize(problem.vnf_count());
  state.max_capacity =
      *std::max_element(problem.capacities.begin(), problem.capacities.end());
  state.max_expansions = max_expansions_;
  state.best_used = problem.node_count() + 1;
  if (warm.feasible) {
    std::size_t warm_used = 0;
    std::vector<bool> seen(problem.node_count(), false);
    for (const auto& a : warm.assignment) {
      if (a && !seen[a->index()]) {
        seen[a->index()] = true;
        ++warm_used;
      }
    }
    state.best_used = warm_used;  // strictly-better search below
    state.best_assignment.resize(problem.vnf_count());
    for (std::size_t pos = 0; pos < state.order.size(); ++pos) {
      state.best_assignment[pos] = warm.assignment[state.order[pos]]->value();
    }
  }

  state.dfs(0, problem.total_demand());

  if (state.best_assignment.empty()) return result;  // infeasible
  for (std::size_t pos = 0; pos < state.order.size(); ++pos) {
    result.assignment[state.order[pos]] = NodeId{state.best_assignment[pos]};
  }
  result.feasible = true;
  result.iterations = state.expansions;
  return result;
}

}  // namespace nfv::placement
