#include "nfv/placement/annealing.h"

#include <cmath>
#include <vector>

#include "nfv/placement/metrics.h"
#include "fit_util.h"

namespace nfv::placement {

AnnealingPlacement::AnnealingPlacement(Options options) : options_(options) {
  NFV_REQUIRE(options_.iterations >= 1);
  NFV_REQUIRE(options_.initial_temperature > 0.0);
  NFV_REQUIRE(options_.cooling > 0.0 && options_.cooling <= 1.0);
  NFV_REQUIRE(options_.swap_probability >= 0.0 &&
              options_.swap_probability <= 1.0);
}

Placement AnnealingPlacement::place(const PlacementProblem& problem,
                                    Rng& rng) const {
  problem.validate();
  // Seed with FFD; if even that fails, report infeasible (annealing could
  // repair some instances, but a repair loop without a feasibility proof
  // is not worth the complexity at these scales).
  Placement current = FfdPlacement{}.place(problem, rng);
  if (!current.feasible) return current;

  const std::size_t n = problem.node_count();
  std::vector<double> load(n, 0.0);
  for (std::uint32_t f = 0; f < problem.vnf_count(); ++f) {
    load[current.assignment[f]->index()] += problem.demands[f];
  }
  auto fill2 = [&](std::uint32_t v, double l) {
    const double fill = l / problem.capacities[v];
    return fill * fill;
  };
  double objective = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) objective += fill2(v, load[v]);

  Placement best = current;
  double best_objective = objective;
  double temperature = options_.initial_temperature;

  for (std::uint32_t iter = 0; iter < options_.iterations; ++iter) {
    temperature *= options_.cooling;
    const bool swap_move =
        problem.vnf_count() >= 2 && rng.chance(options_.swap_probability);
    if (!swap_move) {
      // Move one VNF to another node with room.
      const auto f = static_cast<std::uint32_t>(
          rng.below(problem.vnf_count()));
      const std::uint32_t from = current.assignment[f]->value();
      const auto to = static_cast<std::uint32_t>(rng.below(n));
      if (to == from) continue;
      const double demand = problem.demands[f];
      if (!detail::fits(problem.capacities[to] - load[to], demand)) continue;
      const double delta = fill2(from, load[from] - demand) +
                           fill2(to, load[to] + demand) -
                           fill2(from, load[from]) - fill2(to, load[to]);
      if (delta < 0.0 && !rng.chance(std::exp(delta / temperature))) {
        continue;
      }
      load[from] -= demand;
      load[to] += demand;
      current.assignment[f] = NodeId{to};
      objective += delta;
    } else {
      // Swap the hosts of two VNFs.
      const auto f1 = static_cast<std::uint32_t>(
          rng.below(problem.vnf_count()));
      const auto f2 = static_cast<std::uint32_t>(
          rng.below(problem.vnf_count()));
      const std::uint32_t v1 = current.assignment[f1]->value();
      const std::uint32_t v2 = current.assignment[f2]->value();
      if (f1 == f2 || v1 == v2) continue;
      const double d1 = problem.demands[f1];
      const double d2 = problem.demands[f2];
      const double new_load1 = load[v1] - d1 + d2;
      const double new_load2 = load[v2] - d2 + d1;
      if (new_load1 > problem.capacities[v1] + 1e-9 ||
          new_load2 > problem.capacities[v2] + 1e-9) {
        continue;
      }
      const double delta = fill2(v1, new_load1) + fill2(v2, new_load2) -
                           fill2(v1, load[v1]) - fill2(v2, load[v2]);
      if (delta < 0.0 && !rng.chance(std::exp(delta / temperature))) {
        continue;
      }
      load[v1] = new_load1;
      load[v2] = new_load2;
      current.assignment[f1] = NodeId{v2};
      current.assignment[f2] = NodeId{v1};
      objective += delta;
    }
    if (objective > best_objective) {
      best_objective = objective;
      best = current;
    }
  }
  best.feasible = true;
  best.iterations = options_.iterations;
  return best;
}

}  // namespace nfv::placement
