#include "nfv/placement/algorithm.h"
#include "nfv/placement/annealing.h"
#include "nfv/placement/cabp.h"
#include "nfv/placement/lp_round.h"
#include "nfv/placement/pso.h"

namespace nfv::placement {

std::unique_ptr<PlacementAlgorithm> make_placement_algorithm(
    std::string_view name) {
  if (name == "BFDSU") return std::make_unique<BfdsuPlacement>();
  if (name == "FFD") return std::make_unique<FfdPlacement>();
  if (name == "NAH") return std::make_unique<NahPlacement>();
  if (name == "BFD") return std::make_unique<BfdPlacement>();
  if (name == "WFD") return std::make_unique<WfdPlacement>();
  if (name == "FF") return std::make_unique<FirstFitPlacement>();
  if (name == "NFD") return std::make_unique<NfdPlacement>();
  if (name == "CABP") return std::make_unique<CabpPlacement>();
  if (name == "SA") return std::make_unique<AnnealingPlacement>();
  if (name == "PSO") return std::make_unique<PsoPlacement>();
  if (name == "LP") return std::make_unique<LpRoundPlacement>();
  if (name == "Exact") return std::make_unique<ExactPlacement>();
  return nullptr;
}

std::vector<std::string> placement_algorithm_names() {
  return {"BFDSU", "CABP", "SA",  "PSO", "LP", "FFD",
          "NAH",   "BFD",  "WFD", "FF",  "NFD", "Exact"};
}

}  // namespace nfv::placement
