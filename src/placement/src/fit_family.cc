// First Fit (unsorted), Next Fit Decreasing, Best Fit Decreasing and Worst
// Fit Decreasing — classical comparators and ablation baselines.
#include "nfv/placement/algorithm.h"
#include "fit_util.h"

namespace nfv::placement {

Placement FirstFitPlacement::place(const PlacementProblem& problem,
                                   Rng& /*rng*/) const {
  problem.validate();
  Placement result;
  result.assignment.resize(problem.vnf_count());
  result.iterations = 1;
  std::vector<double> residual = problem.capacities;
  for (std::uint32_t f = 0; f < problem.vnf_count(); ++f) {
    bool placed = false;
    for (std::uint32_t v = 0; v < problem.node_count(); ++v) {
      if (detail::fits(residual[v], problem.demands[f])) {
        detail::assign(result, residual, f, v, problem.demands[f]);
        placed = true;
        break;
      }
    }
    if (!placed) return result;
  }
  result.feasible = true;
  return result;
}

Placement NfdPlacement::place(const PlacementProblem& problem,
                              Rng& /*rng*/) const {
  problem.validate();
  Placement result;
  result.assignment.resize(problem.vnf_count());
  result.iterations = 1;
  std::vector<double> residual = problem.capacities;
  std::uint32_t open = 0;
  for (const std::uint32_t f : detail::demand_order_desc(problem)) {
    while (open < problem.node_count() &&
           !detail::fits(residual[open], problem.demands[f])) {
      ++open;  // Next Fit never returns to a closed node
    }
    if (open == problem.node_count()) return result;
    detail::assign(result, residual, f, open, problem.demands[f]);
  }
  result.feasible = true;
  return result;
}

namespace {

enum class FitPolicy { kBest, kWorst };

Placement fit_decreasing(const PlacementProblem& problem, FitPolicy policy) {
  problem.validate();
  Placement result;
  result.assignment.resize(problem.vnf_count());
  result.iterations = 1;
  std::vector<double> residual = problem.capacities;
  for (const std::uint32_t f : detail::demand_order_desc(problem)) {
    const double demand = problem.demands[f];
    auto chosen = static_cast<std::uint32_t>(problem.node_count());
    for (std::uint32_t v = 0; v < problem.node_count(); ++v) {
      if (!detail::fits(residual[v], demand)) continue;
      if (chosen == problem.node_count()) {
        chosen = v;
        continue;
      }
      const bool better = policy == FitPolicy::kBest
                              ? residual[v] < residual[chosen]
                              : residual[v] > residual[chosen];
      if (better) chosen = v;
    }
    if (chosen == problem.node_count()) return result;
    detail::assign(result, residual, f, chosen, demand);
  }
  result.feasible = true;
  return result;
}

}  // namespace

Placement BfdPlacement::place(const PlacementProblem& problem,
                              Rng& /*rng*/) const {
  return fit_decreasing(problem, FitPolicy::kBest);
}

Placement WfdPlacement::place(const PlacementProblem& problem,
                              Rng& /*rng*/) const {
  return fit_decreasing(problem, FitPolicy::kWorst);
}

}  // namespace nfv::placement
