#include "nfv/placement/pso.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nfv/common/error.h"
#include "nfv/obs/metrics.h"
#include "fit_util.h"

namespace nfv::placement {

namespace {

/// Lexicographic particle quality, lower is better: fewest unplaced VNFs,
/// then fewest nodes in service, then the most concentrated load (maximal
/// Σ load²_v, i.e. the tightest packing of whatever fits).
struct Fitness {
  std::uint32_t unplaced = 0xffffffffu;
  std::uint32_t nodes_used = 0xffffffffu;
  double neg_concentration = 0.0;  ///< −Σ load²_v

  [[nodiscard]] bool better_than(const Fitness& other) const {
    if (unplaced != other.unplaced) return unplaced < other.unplaced;
    if (nodes_used != other.nodes_used) return nodes_used < other.nodes_used;
    return neg_concentration < other.neg_concentration;
  }
};

/// Decodes a preference vector into a placement: preferred node first,
/// best-fit (tightest feasible node, lowest index on ties) as repair.
Fitness decode(const PlacementProblem& problem,
               const std::vector<std::uint32_t>& order,
               const std::vector<double>& position, Placement& out,
               std::vector<double>& residual) {
  const std::size_t nodes = problem.node_count();
  residual = problem.capacities;
  out.assignment.assign(problem.vnf_count(), std::nullopt);
  Fitness fit;
  fit.unplaced = 0;
  for (const std::uint32_t f : order) {
    const double demand = problem.demands[f];
    const double clamped = std::clamp(
        position[f], 0.0, static_cast<double>(nodes) - 1.0);
    const auto preferred = static_cast<std::uint32_t>(clamped);
    std::uint32_t chosen = 0xffffffffu;
    if (detail::fits(residual[preferred], demand)) {
      chosen = preferred;
    } else {
      double best_after = 0.0;
      for (std::uint32_t v = 0; v < nodes; ++v) {
        if (!detail::fits(residual[v], demand)) continue;
        const double after = residual[v] - demand;
        if (chosen == 0xffffffffu || after < best_after) {
          chosen = v;
          best_after = after;
        }
      }
    }
    if (chosen == 0xffffffffu) {
      ++fit.unplaced;
      continue;
    }
    detail::assign(out, residual, f, chosen, demand);
  }
  out.feasible = fit.unplaced == 0;
  fit.nodes_used = 0;
  double concentration = 0.0;
  for (std::size_t v = 0; v < nodes; ++v) {
    const double load = problem.capacities[v] - residual[v];
    if (load > 1e-9) {
      ++fit.nodes_used;
      concentration += load * load;
    }
  }
  fit.neg_concentration = -concentration;
  return fit;
}

}  // namespace

PsoPlacement::PsoPlacement(Options options) : options_(options) {
  NFV_REQUIRE(options_.swarm >= 1);
  NFV_REQUIRE(options_.iterations >= 1);
}

Placement PsoPlacement::place(const PlacementProblem& problem,
                              Rng& rng) const {
  problem.validate();
  const std::size_t vnfs = problem.vnf_count();
  const auto nodes = static_cast<double>(problem.node_count());
  const std::size_t swarm = options_.swarm;
  const std::vector<std::uint32_t> order = detail::demand_order_desc(problem);

  // Per-particle streams fork serially in index order before any particle
  // moves, so particle i's randomness is a pure function of (seed, i).
  std::vector<Rng> streams;
  streams.reserve(swarm);
  for (std::size_t i = 0; i < swarm; ++i) streams.push_back(rng.fork(i));

  struct Particle {
    std::vector<double> position;
    std::vector<double> velocity;
    std::vector<double> best_position;
    Fitness best_fitness;
  };
  std::vector<Particle> particles(swarm);
  std::vector<double> residual;
  Placement scratch;
  Placement global_best;
  Fitness global_fitness;
  std::size_t global_index = 0;
  std::uint64_t evaluations = 0;

  for (std::size_t i = 0; i < swarm; ++i) {
    Particle& p = particles[i];
    p.position.resize(vnfs);
    p.velocity.resize(vnfs);
    for (std::size_t f = 0; f < vnfs; ++f) {
      p.position[f] = streams[i].uniform(0.0, nodes);
      p.velocity[f] = streams[i].uniform(-0.1, 0.1) * nodes;
    }
    const Fitness fit = decode(problem, order, p.position, scratch, residual);
    ++evaluations;
    p.best_position = p.position;
    p.best_fitness = fit;
    if (i == 0 || fit.better_than(global_fitness)) {
      global_fitness = fit;
      global_best = scratch;
      global_index = i;
    }
  }

  for (std::uint32_t it = 0; it < options_.iterations; ++it) {
    if (options_.deadline &&
        std::chrono::steady_clock::now() >= *options_.deadline) {
      break;  // anytime: the best decoded placement so far stands
    }
    // Synchronous PSO: every particle moves against the sweep-entry global
    // best, then the global best updates scanning particles in index
    // order — a total, deterministic order of updates.
    const std::vector<double>& gbest =
        particles[global_index].best_position;
    for (std::size_t i = 0; i < swarm; ++i) {
      Particle& p = particles[i];
      for (std::size_t f = 0; f < vnfs; ++f) {
        const double r1 = streams[i].uniform();
        const double r2 = streams[i].uniform();
        p.velocity[f] = options_.inertia * p.velocity[f] +
                        options_.cognitive * r1 *
                            (p.best_position[f] - p.position[f]) +
                        options_.social * r2 * (gbest[f] - p.position[f]);
        p.velocity[f] = std::clamp(p.velocity[f], -nodes, nodes);
        p.position[f] =
            std::clamp(p.position[f] + p.velocity[f], 0.0, nodes);
      }
    }
    for (std::size_t i = 0; i < swarm; ++i) {
      Particle& p = particles[i];
      const Fitness fit =
          decode(problem, order, p.position, scratch, residual);
      ++evaluations;
      if (fit.better_than(p.best_fitness)) {
        p.best_fitness = fit;
        p.best_position = p.position;
      }
      if (fit.better_than(global_fitness)) {
        global_fitness = fit;
        global_best = scratch;
        global_index = i;
      }
    }
  }

  obs::count("placement.pso.evaluations", evaluations);
  global_best.iterations = evaluations;
  return global_best;
}

}  // namespace nfv::placement
