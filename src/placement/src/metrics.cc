#include "nfv/placement/metrics.h"

#include "nfv/common/error.h"

namespace nfv::placement {

PlacementMetrics evaluate(const PlacementProblem& problem,
                          const Placement& placement) {
  NFV_REQUIRE(placement.assignment.size() == problem.vnf_count());
  PlacementMetrics m;
  m.node_load.assign(problem.node_count(), 0.0);
  for (std::uint32_t f = 0; f < problem.vnf_count(); ++f) {
    const auto& node = placement.assignment[f];
    if (!node.has_value()) continue;
    NFV_REQUIRE(node->index() < problem.node_count());
    m.node_load[node->index()] += problem.demands[f];
    m.total_load += problem.demands[f];
  }
  double utilization_sum = 0.0;
  for (std::size_t v = 0; v < problem.node_count(); ++v) {
    if (m.node_load[v] <= 0.0) continue;
    NFV_REQUIRE(m.node_load[v] <= problem.capacities[v] + 1e-6);
    ++m.nodes_in_service;
    m.resource_occupation += problem.capacities[v];
    utilization_sum += m.node_load[v] / problem.capacities[v];
  }
  if (m.nodes_in_service > 0) {
    m.avg_utilization_of_used =
        utilization_sum / static_cast<double>(m.nodes_in_service);
  }
  return m;
}

}  // namespace nfv::placement
