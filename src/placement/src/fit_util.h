// Internal helpers shared by the fit-family placement algorithms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "nfv/placement/problem.h"

namespace nfv::placement::detail {

/// VNF indices sorted by descending demand (stable for determinism).
inline std::vector<std::uint32_t> demand_order_desc(
    const PlacementProblem& problem) {
  std::vector<std::uint32_t> order(problem.vnf_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return problem.demands[a] > problem.demands[b];
                   });
  return order;
}

/// Commits VNF f to node v in an in-progress placement.
inline void assign(Placement& placement, std::vector<double>& residual,
                   std::uint32_t f, std::uint32_t v, double demand) {
  placement.assignment[f] = NodeId{v};
  residual[v] -= demand;
}

/// True when a node can still hold `demand` (with an epsilon for the FP
/// accumulation of repeated subtractions).
inline bool fits(double residual, double demand) {
  return residual >= demand - 1e-9;
}

}  // namespace nfv::placement::detail
