#include "nfv/placement/algorithm.h"
#include "fit_util.h"

namespace nfv::placement {

Placement FfdPlacement::place(const PlacementProblem& problem,
                              Rng& /*rng*/) const {
  problem.validate();
  Placement result;
  result.assignment.resize(problem.vnf_count());
  result.iterations = 1;  // single deterministic pass (Fig. 10 baseline)
  std::vector<double> residual = problem.capacities;
  for (const std::uint32_t f : detail::demand_order_desc(problem)) {
    bool placed = false;
    for (std::uint32_t v = 0; v < problem.node_count(); ++v) {
      if (detail::fits(residual[v], problem.demands[f])) {
        detail::assign(result, residual, f, v, problem.demands[f]);
        placed = true;
        break;
      }
    }
    if (!placed) return result;  // feasible stays false
  }
  result.feasible = true;
  return result;
}

}  // namespace nfv::placement
