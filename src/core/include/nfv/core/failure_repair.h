// Node-failure repair — operational resilience on top of the paper's
// static pipeline.  When a compute node dies, every VNF it hosted (with
// all of its co-located service instances) must be re-placed on the
// surviving nodes without disturbing the rest of the placement; request
// schedules are untouched because instances follow their VNF.
#pragma once

#include <vector>

#include "nfv/common/ids.h"
#include "nfv/core/joint_optimizer.h"

namespace nfv::core {

/// Outcome of a repair attempt.
struct RepairResult {
  bool feasible = false;           ///< all displaced VNFs were re-placed
  placement::Placement placement;  ///< repaired assignment (valid iff feasible)
  std::vector<VnfId> displaced;    ///< VNFs that lived on the failed node
  std::size_t nodes_in_service_before = 0;
  std::size_t nodes_in_service_after = 0;
};

/// Re-places the VNFs of `failed` onto the surviving nodes using the
/// BFDSU policy on the residual capacities (used-nodes-first, weighted
/// tight fit).  The failed node is excluded permanently; VNFs on other
/// nodes keep their assignment.  Returns feasible == false when the
/// surviving capacity cannot absorb the displaced load (callers can then
/// escalate, e.g. by re-running the full pipeline or splitting replicas).
[[nodiscard]] RepairResult repair_after_node_failure(
    const SystemModel& model, const JointResult& result, NodeId failed,
    Rng& rng);

}  // namespace nfv::core
