// The paper's two-phase pipeline (Sec. IV): place VNF chains, then schedule
// requests onto service instances, and evaluate the joint objective
// Eq. 16 — per-request response latency plus (Σ_v η_v^r − 1)·L of
// inter-node link latency.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nfv/common/ids.h"
#include "nfv/exec/thread_pool.h"
#include "nfv/placement/algorithm.h"
#include "nfv/placement/metrics.h"
#include "nfv/scheduling/algorithm.h"
#include "nfv/scheduling/metrics.h"
#include "nfv/shard/partition.h"
#include "nfv/topology/topology.h"
#include "nfv/workload/vnf.h"

namespace nfv::core {

/// A full problem instance: where VNFs may run and who wants them.
struct SystemModel {
  topo::Topology topology;
  workload::Workload workload;

  void validate() const;
};

/// Pipeline configuration.
struct JointConfig {
  std::string placement_algorithm = "BFDSU";
  std::string scheduling_algorithm = "RCKK";
  /// When set, phase 1 builds its algorithm from this factory instead of
  /// make_placement_algorithm(placement_algorithm); the solver portfolio
  /// (DESIGN.md §17) injects budgeted PSO/LP/BFDSU backends through it.
  /// `placement_algorithm` stays the display name for reports.
  std::function<std::unique_ptr<placement::PlacementAlgorithm>()>
      placement_factory;
  /// Admission-control utilization ceiling ρ_max per instance.
  double rho_max = 0.999;
  /// Per-hop latency L of Eq. 16; defaults to the topology's mean link
  /// latency when unset.
  std::optional<double> link_latency;
  /// Fan-out width for multi-start placement and per-VNF scheduling.
  /// Results are bit-identical for any thread count (see DESIGN.md §10).
  exec::ExecConfig exec;
  /// Sharded solving (DESIGN.md §12).  Off by default; when enabled the
  /// instance is partitioned canonically, so results are bit-identical
  /// for any `--shards`/`--threads` combination.
  shard::ShardConfig shard;
};

/// Scheduling context of one VNF: its m-way partitioning problem plus the
/// mapping from problem positions back to request ids.
struct VnfSchedulingContext {
  sched::SchedulingProblem problem;
  std::vector<RequestId> members;  ///< problem position -> request id
};

/// Per-request outcome under the joint solution.
struct RequestOutcome {
  bool admitted = false;          ///< admitted at every VNF of its chain
  double response_latency = 0.0;  ///< Σ_chain W(f, k_r)   (0 if rejected)
  double link_latency = 0.0;      ///< (nodes_traversed − 1) · L
  std::uint32_t nodes_traversed = 0;  ///< Σ_v η_v^r

  [[nodiscard]] double total_latency() const {
    return response_latency + link_latency;
  }
};

/// Complete result of one pipeline run.
struct JointResult {
  bool feasible = false;  ///< placement succeeded & all schedules stable
  placement::Placement placement;
  placement::PlacementMetrics placement_metrics;
  std::vector<VnfSchedulingContext> contexts;    ///< per VNF
  std::vector<sched::Schedule> schedules;        ///< per VNF
  std::vector<sched::AdmissionResult> admissions;///< per VNF
  std::vector<RequestOutcome> requests;          ///< per request
  shard::ShardStats shard_stats;                 ///< sharded-solve counters

  // Aggregates over admitted requests / all instances.
  double total_latency = 0.0;       ///< Eq. 16 objective
  double avg_total_latency = 0.0;   ///< per admitted request
  double avg_response = 0.0;        ///< mean W over all service instances
  double job_rejection_rate = 0.0;  ///< rejected requests / |R|
};

/// Two-phase optimizer.  Stateless; all randomness flows through the seed.
class JointOptimizer {
 public:
  explicit JointOptimizer(JointConfig config);

  /// Runs placement, then per-VNF scheduling + admission, then evaluates
  /// Eq. 16.  Throws std::invalid_argument for unknown algorithm names.
  [[nodiscard]] JointResult run(const SystemModel& model,
                                std::uint64_t seed) const;

  [[nodiscard]] const JointConfig& config() const { return config_; }

 private:
  [[nodiscard]] JointResult run_impl(const SystemModel& model,
                                     std::uint64_t seed) const;
  /// Sharded variant of run_impl (DESIGN.md §12): per-shard placement and
  /// scheduling, boundary merge, same Eq. 16 evaluation.  Single-shard
  /// plans delegate to run_impl — sharding a connected instance is the
  /// identity.
  [[nodiscard]] JointResult run_sharded(const SystemModel& model,
                                        std::uint64_t seed) const;

  JointConfig config_;
};

/// Builds the per-VNF scheduling contexts for a workload (member lists in
/// request-id order).  Exposed for benches that schedule without placing.
[[nodiscard]] std::vector<VnfSchedulingContext> make_scheduling_contexts(
    const workload::Workload& workload);

}  // namespace nfv::core
