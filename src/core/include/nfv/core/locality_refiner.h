// Link-locality refinement — the optimization the paper's Fig. 1
// motivates but its pipeline only reaches indirectly: after BFDSU fixes a
// placement, chains can still straddle nodes unnecessarily.  This local
// search moves single VNFs between nodes (capacity-respecting) to shrink
// the Eq. 16 link term Σ_r (Σ_v η_v^r − 1)·L directly, converting
// inter-server chains into intra-server ones.
//
// Moving a VNF never changes the response term W (that depends only on
// the schedules), so any accepted move is a strict Eq. 16 improvement.
#pragma once

#include <cstdint>

#include "nfv/core/joint_optimizer.h"

namespace nfv::core {

/// Search controls.
struct RefineConfig {
  /// Upper bound on accepted moves (the search also stops at a local
  /// optimum).
  std::uint32_t max_moves = 1000;
  /// Permit moves onto currently empty nodes.  Off by default: opening a
  /// node regresses Objective 1 (Eq. 14), and co-location never needs it.
  bool allow_new_nodes = false;
};

/// Outcome of a refinement pass.
struct RefineResult {
  placement::Placement placement;   ///< refined assignment
  double initial_link_cost = 0.0;   ///< Σ_admitted (η−1), in units of L
  double final_link_cost = 0.0;
  std::uint32_t moves_applied = 0;

  [[nodiscard]] double improvement() const {
    return initial_link_cost - final_link_cost;
  }
};

/// Greedy first-improvement local search over single-VNF moves.  The
/// returned placement keeps result's schedules valid (scheduling is
/// per-VNF and placement-independent).  Throws if result.feasible is
/// false.
[[nodiscard]] RefineResult refine_link_locality(const SystemModel& model,
                                                const JointResult& result,
                                                const RefineConfig& config = {});

}  // namespace nfv::core
