// Solver portfolio with anytime racing (ROADMAP O5, DESIGN.md §17).
//
// A common interface over the joint pipeline's interchangeable phase-1
// backends — BFDSU (the paper's Algorithm 1), seeded PSO search, and an
// LP-relaxation/rounding solver — plus a PortfolioDriver that races them
// on the exec pool under a wall-clock or work budget and returns the best
// feasible result under a total deterministic order.
//
// Budget semantics:
//   * work budget (`work`, or --work-budget): every backend is granted the
//     same number of abstract work units (Placement::iterations), mapped to
//     backend-local effort (PSO sweeps, LP subgradient steps, BFDSU
//     passes).  With `det` (--deterministic-budget) set, the race depends
//     only on the budget — results are bit-identical for any thread count.
//   * wall budget (`budget-ms`, or --budget-ms): a shared steady-clock
//     deadline handed to the anytime backends (PSO, LP check it once per
//     sweep/step; BFDSU runs its stall-bounded multi-start to completion).
//     Faster machines explore more — results are *not* run-to-run stable
//     unless `det` is also set, which ignores the clock.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nfv/core/joint_optimizer.h"

namespace nfv::core {

/// Solver selection + budget knobs, shared by the CLI --solver flags, the
/// `solver[:key=value,...]` spec grammar, and the fuzz harness.
struct SolverConfig {
  /// "bfdsu" | "pso" | "lp" | "portfolio" (race all three).
  std::string solver = "bfdsu";
  /// Wall-clock budget in milliseconds; 0 = none.
  double budget_ms = 0.0;
  /// Work-unit budget per backend; 0 = backend defaults.
  std::uint64_t work_budget = 0;
  /// Ignore the clock: effort derives from work_budget only, so a run is
  /// bit-identical for any --threads/--shards (the acceptance contract).
  bool deterministic_budget = false;

  // Backend effort defaults, used when work_budget == 0.
  std::uint32_t pso_swarm = 16;
  std::uint32_t pso_iterations = 48;
  std::uint32_t lp_iterations = 240;

  /// Throws std::invalid_argument on an unknown solver id or an
  /// out-of-range knob (non-finite/negative budgets, zero swarm, ...).
  void validate() const;

  /// All solver ids, sorted — the deterministic tie-break order.
  [[nodiscard]] static const std::vector<std::string>& solver_ids();
  [[nodiscard]] static bool known_solver(std::string_view id);
};

/// Parses `solver[:key=value,...]` — e.g. "portfolio:work=64,det=1" or
/// "pso:pso-swarm=8,pso-iters=4".  Keys: pso-swarm, pso-iters, lp-iters,
/// work, budget-ms, det.  Throws std::invalid_argument on malformed input
/// or out-of-range values (the parsed config is validate()d).
[[nodiscard]] SolverConfig parse_solver_spec(std::string_view spec);

/// One backend's entry in the race, for reports and benches.
struct BackendRun {
  std::string id;            ///< "bfdsu" | "lp" | "pso"
  bool feasible = false;
  std::uint64_t rejected = 0;  ///< rejected requests (unplaced VNFs in place())
  double objective = 0.0;      ///< Eq. 16 latency (nodes in service in place())
  std::uint64_t work = 0;      ///< Placement::iterations consumed
};

/// Result of a full-pipeline race.
struct SolverOutcome {
  JointResult result;        ///< the winner's result, verbatim
  std::string winner;        ///< backend id of `result`
  bool deterministic = false;
  std::uint64_t budget_work = 0;
  double budget_ms = 0.0;
  std::vector<BackendRun> backends;  ///< in id order
};

/// Result of a placement-only race (cmd_place).
struct PlacementOutcome {
  placement::Placement placement;
  placement::PlacementMetrics metrics;
  std::string winner;
  std::vector<BackendRun> backends;  ///< in id order
};

/// Races the configured backend set on the exec pool and keeps the best
/// result under the total order (feasible, rejected, objective, backend
/// id).  A single-backend "race" is the identity: same seed, same effort,
/// bitwise the same result as running that backend directly.
class PortfolioDriver {
 public:
  /// `base` supplies everything but the placement backend (scheduling
  /// algorithm, rho_max, link latency, exec/shard config); `solver` picks
  /// the backends and budget.  Both are validated here.
  PortfolioDriver(JointConfig base, SolverConfig solver);

  /// Full pipeline race: placement + scheduling + admission per backend,
  /// every backend seeded with the same user seed.
  [[nodiscard]] SolverOutcome run(const SystemModel& model,
                                  std::uint64_t seed) const;

  /// Placement-only race (no scheduling phase).  Order: feasible, fewest
  /// unplaced, nodes in service, resource occupation, backend id.
  [[nodiscard]] PlacementOutcome place(
      const placement::PlacementProblem& problem, std::uint64_t seed) const;

  [[nodiscard]] const SolverConfig& solver_config() const { return solver_; }

  /// Backend ids this driver races, sorted ("bfdsu" < "lp" < "pso");
  /// singleton unless solver == "portfolio".
  [[nodiscard]] std::vector<std::string> backend_ids() const;

  /// Maps a solver backend id to the placement algorithm display name
  /// ("bfdsu" -> "BFDSU", "pso" -> "PSO", "lp" -> "LP").
  [[nodiscard]] static std::string backend_algorithm(std::string_view id);

 private:
  JointConfig base_;
  SolverConfig solver_;
};

}  // namespace nfv::core
