// Bridges the solver types to the obs run-report schema: converts a
// JointResult (and optionally a SimResult, a resilience recovery trail and
// the live metrics registry) into an obs::RunReport ready for
// obs::write_run_report.  Lives in core — obs stays a leaf library that
// knows nothing about placement/scheduling/sim types.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "nfv/core/joint_optimizer.h"
#include "nfv/core/resilience.h"
#include "nfv/core/solver.h"
#include "nfv/obs/report.h"
#include "nfv/sim/des.h"

namespace nfv::core {

/// Everything a run report can describe; leave pointers null / spans empty
/// for sections that do not apply to the command.
struct ReportInputs {
  std::string command;             ///< nfvpr subcommand ("pipeline", ...)
  std::uint64_t seed = 0;
  std::string placement_algorithm;
  std::string scheduling_algorithm;
  const SystemModel* model = nullptr;       ///< required with `result`
  const JointResult* result = nullptr;      ///< placement + scheduling
  const sim::SimResult* sim = nullptr;      ///< DES section
  std::span<const RecoveryReport> resilience = {};
  /// Pre-built serving section (the serve library owns the conversion);
  /// copied verbatim when non-null and present.
  const obs::ServeSection* serve = nullptr;
  /// Solver portfolio race (DESIGN.md §17); non-null when --solver was
  /// given, along with the requested solver id for the section header.
  const SolverOutcome* solver = nullptr;
  std::string solver_id;
  const obs::MetricsRegistry* metrics = nullptr;  ///< registry snapshot
};

/// Builds the report; sections with null/empty inputs are marked absent.
[[nodiscard]] obs::RunReport build_run_report(const ReportInputs& inputs);

}  // namespace nfv::core
