// Energy accounting — the paper's operator-cost motivation made
// quantitative ("using fewer computing nodes is beneficial for saving
// operation cost", Sec. III-C; energy characterization per Xu et al.
// [28]).  Servers draw a large idle floor plus a roughly linear dynamic
// component in CPU utilization; a node with no VNFs can be powered off
// entirely.  This model turns a placement into watts, so consolidation
// quality reads directly as energy savings.
#pragma once

#include <vector>

#include "nfv/core/joint_optimizer.h"

namespace nfv::core {

/// Linear server power model: off = 0; on = idle + (peak − idle)·util.
struct PowerModel {
  double idle_watts = 150.0;  ///< typical 2-socket server floor
  double peak_watts = 400.0;  ///< at 100% CPU

  [[nodiscard]] double node_power(double utilization) const;
};

/// Energy view of a feasible placement.
struct EnergyReport {
  double total_watts = 0.0;       ///< Σ over powered nodes
  double idle_floor_watts = 0.0;  ///< Σ idle_watts over powered nodes
  double dynamic_watts = 0.0;     ///< utilization-proportional part
  std::size_t nodes_powered = 0;
  /// Watts if every node in the cluster stayed powered at its current
  /// load (the no-consolidation baseline).
  double all_on_watts = 0.0;
  /// all_on − total: what switching idle nodes off saves.
  [[nodiscard]] double savings_watts() const {
    return all_on_watts - total_watts;
  }
};

/// Evaluates the energy of a joint result's placement.  Utilization per
/// node is CPU load over capacity (the paper's bottleneck resource).
[[nodiscard]] EnergyReport evaluate_energy(const SystemModel& model,
                                           const JointResult& result,
                                           const PowerModel& power = {});

}  // namespace nfv::core
