// Analytic counterpart of sim_builder: maps a joint solution onto an open
// Jackson network (Sec. III-B) whose stations are the service instances.
//
// Each admitted request contributes its external Poisson rate at the first
// instance of its chain; per-station routing probabilities are the
// flow-mix shares of the deterministic chain transitions, and the NACK
// loss feedback routes (1−P)/1 of the final-hop traffic back to the chain
// head.  Solving the traffic equations reproduces the Λ_k = Σ λ_r/P_r
// loads of Eq. 7 and yields the closed-form W and sojourn predictions the
// optimizer's evaluator uses — now derived from first principles rather
// than assumed.
#pragma once

#include "nfv/core/joint_optimizer.h"
#include "nfv/core/sim_builder.h"
#include "nfv/queueing/jackson.h"

namespace nfv::core {

/// The Jackson view of a feasible JointResult.
struct JacksonBuildOutput {
  queueing::OpenJacksonNetwork network;
  InstanceIndexMap index_map;  ///< (VNF, instance) -> station index
};

/// Builds the network from admitted requests only (rejected requests
/// carry no traffic).  Throws if result.feasible is false.
[[nodiscard]] JacksonBuildOutput build_jackson_network(
    const SystemModel& model, const JointResult& result);

}  // namespace nfv::core
