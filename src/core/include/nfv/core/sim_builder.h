// Bridges a joint placement/scheduling solution to the packet-level
// discrete-event simulator: every service instance becomes a station,
// every admitted request becomes a flow whose path visits its assigned
// instance at each chain VNF, with inter-node hops charged the topology's
// shortest-path latency.
#pragma once

#include "nfv/core/joint_optimizer.h"
#include "nfv/sim/des.h"

namespace nfv::core {

/// Mapping between (VNF, instance) pairs and flattened station indices.
struct InstanceIndexMap {
  std::vector<std::uint32_t> base;  ///< per VNF: first station index

  [[nodiscard]] std::uint32_t station(VnfId f, InstanceIndex k) const {
    return base[f.index()] + k;
  }
};

/// Builds the simulator input from a feasible JointResult.  Rejected
/// requests are excluded (admission already dropped them).  Throws if
/// `result.feasible` is false.
struct SimBuildOutput {
  sim::SimNetwork network;
  InstanceIndexMap index_map;
  /// Flow index -> request id (admitted requests only).
  std::vector<RequestId> flow_request;
};

[[nodiscard]] SimBuildOutput build_sim_network(const SystemModel& model,
                                               const JointResult& result);

}  // namespace nfv::core
