// Resilience control loop — turns the repo's robustness fragments (node
// repair, VNF replication, the full pipeline, admission control) into one
// escalation ladder that survives node churn.
//
// The controller owns a deployed placement/schedule and consumes a stream
// of node DOWN/UP events.  On a failure it climbs the ladder until the
// deployment is feasible and stable again:
//
//   1. local repair     — re-place only the displaced VNFs on the survivors
//                         (repair_after_node_failure; schedules untouched),
//   2. replica split    — split VNFs whose footprint no longer fits any
//                         surviving node (core/replication.h), then re-run,
//   3. full re-run      — two-phase pipeline from scratch on the degraded
//                         topology,
//   4. degradation      — shed the lowest-rate requests (and shrink
//                         instance counts to the surviving demand) until
//                         the pipeline fits and every instance is stable,
//                         i.e. Λ_k < ρ_max·P·μ_f.
//
// On a recovery the controller re-admits shed requests by re-running the
// pipeline on the restored capacity.  Every event yields a RecoveryReport
// (actions taken, migrations, sheds, modelled time-to-recover), and the
// whole trajectory is deterministic given the construction seed.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "nfv/common/ids.h"
#include "nfv/common/rng.h"
#include "nfv/core/joint_optimizer.h"

namespace nfv::core {

/// One node availability transition consumed by the controller.
struct ChurnEvent {
  double time = 0.0;  ///< simulated seconds, non-decreasing across a stream
  NodeId node{};
  bool up = false;    ///< true = recovery, false = failure
};

/// Rung of the escalation ladder (also used to label the resolution).
enum class RecoveryAction : std::uint8_t {
  kNone = 0,      ///< no action needed (e.g. the failed node was idle)
  kLocalRepair,   ///< BFDSU patch of the displaced VNFs only
  kReplicaSplit,  ///< split oversized VNFs, then pipeline re-run
  kFullRerun,     ///< full two-phase pipeline re-run
  kDegrade,       ///< shed lowest-rate requests until stable
};

[[nodiscard]] std::string_view to_string(RecoveryAction action);

/// What one churn event cost and how it was absorbed.
struct RecoveryReport {
  double time = 0.0;
  NodeId node{};
  bool node_up = false;
  /// Ladder rungs actually attempted, in order.
  std::vector<RecoveryAction> attempted;
  /// The rung that restored the deployment (kNone when nothing was needed
  /// or when even degradation could not recover — see `recovered`).
  RecoveryAction resolution = RecoveryAction::kNone;
  /// True iff the deployment is feasible and stable after the event.
  bool recovered = false;
  std::size_t vnfs_displaced = 0;   ///< hosted by the failed node
  std::size_t vnfs_migrated = 0;    ///< assignments that changed host
  std::size_t replicas_added = 0;   ///< new replica VNFs (rung 2)
  std::size_t requests_shed = 0;    ///< newly shed by this event (rung 4)
  std::size_t requests_restored = 0;///< re-admitted on recovery
  /// Modelled recovery latency in simulated seconds (migration / replica /
  /// re-run costs from ResilienceConfig).
  double time_to_recover = 0.0;
  /// Served fraction of the offered arrival rate after the event (sheds
  /// and admission rejections both count against it).
  double availability = 0.0;
};

/// Ladder knobs and modelled action costs.
struct ResilienceConfig {
  /// Algorithms + ρ_max used for every pipeline (re-)run.
  JointConfig joint;
  // Modelled costs in simulated seconds (cf. OpenNF-style state transfer).
  double seconds_per_migration = 0.5;   ///< per VNF moved between nodes
  double seconds_per_replica = 2.0;     ///< per replica instantiated
  double seconds_full_rerun = 5.0;      ///< fixed re-optimization cost
  double seconds_per_shed = 0.05;       ///< per request shed / restored
  /// Safety factor over the stability minimum when shrinking instance
  /// counts during degradation (M' ≥ headroom · Λ / (ρ_max·μ)).
  double degrade_headroom = 1.1;
  /// Re-admit shed requests when capacity returns.
  bool readmit_on_recovery = true;

  void validate() const;
};

/// Deterministic seeded failure storm over `node_count` nodes: failures
/// and recoveries interleave with exponential inter-event times of mean
/// `mean_interval`, never taking more than `max_concurrent_down` nodes
/// down at once (clamped to node_count − 1 so one survivor always
/// remains).  Same rng state in → identical storm out.
[[nodiscard]] std::vector<ChurnEvent> make_failure_storm(
    std::size_t node_count, std::size_t event_count, Rng& rng,
    double mean_interval = 5.0, std::size_t max_concurrent_down = 2);

/// Stateful controller; all randomness flows from the construction seed.
class ResilienceController {
 public:
  /// Deploys `model` (escalating through replication/degradation if even
  /// the initial pipeline does not fit).  Throws std::invalid_argument on
  /// malformed input.
  ResilienceController(SystemModel model, ResilienceConfig config,
                       std::uint64_t seed);

  /// Processes one failure or recovery and returns its report.
  RecoveryReport on_event(const ChurnEvent& event);

  /// Processes a whole stream in order; returns one report per event.
  std::vector<RecoveryReport> replay(std::span<const ChurnEvent> events);

  /// The currently deployed solution (over deployed_model()).
  [[nodiscard]] const JointResult& deployment() const { return current_; }

  /// The model the deployment was computed on: degraded topology (down
  /// nodes carry ~zero capacity) and the non-shed workload subset.
  [[nodiscard]] const SystemModel& deployed_model() const {
    return deployed_;
  }

  /// The full workload the controller wants to serve (base requests, VNFs
  /// possibly split into replicas), including currently shed requests.
  [[nodiscard]] const workload::Workload& active_workload() const {
    return active_;
  }

  [[nodiscard]] bool is_down(NodeId node) const {
    return down_[node.index()];
  }
  [[nodiscard]] std::size_t down_count() const;
  [[nodiscard]] std::size_t shed_count() const;

  /// Σ λ_r of requests currently served (deployed and admitted) divided by
  /// Σ λ_r of the base workload — the availability the reports carry.
  [[nodiscard]] double served_fraction() const;

  /// Every report produced so far, in event order.
  [[nodiscard]] const std::vector<RecoveryReport>& history() const {
    return history_;
  }

 private:
  /// Deployable model: degraded topology + non-shed requests with dense
  /// ids, plus maps back to active-workload indices.
  struct Build {
    SystemModel model;
    std::vector<std::uint32_t> vnf_to_active;
    std::vector<std::uint32_t> req_to_active;
    bool empty = false;  ///< nothing left to deploy (all requests shed)
  };

  [[nodiscard]] Build build_deployable() const;
  /// Runs the pipeline on a build; returns feasibility.
  bool try_deploy(Build build, RecoveryReport& report);
  /// Rung 4: sheds lowest-rate requests (geometric batches) until a deploy
  /// fits; updates the report.
  void degrade(RecoveryReport& report);
  void handle_failure(const ChurnEvent& event, RecoveryReport& report);
  void handle_recovery(const ChurnEvent& event, RecoveryReport& report);
  /// Counts assignment changes between the current deploy and a candidate
  /// one, matching VNFs through the active-workload index maps.
  [[nodiscard]] std::size_t count_migrations(
      const Build& build, const placement::Placement& next) const;
  void finish_report(RecoveryReport& report);

  SystemModel base_;            ///< pristine topology + workload
  ResilienceConfig cfg_;
  Rng rng_;
  workload::Workload active_;   ///< base workload after replica splits
  std::vector<bool> down_;      ///< by NodeId
  std::vector<bool> shed_;      ///< by active request index
  SystemModel deployed_;
  std::vector<std::uint32_t> deployed_vnf_to_active_;
  std::vector<std::uint32_t> deployed_req_to_active_;
  JointResult current_;
  double base_total_rate_ = 0.0;
  std::vector<RecoveryReport> history_;
};

}  // namespace nfv::core
