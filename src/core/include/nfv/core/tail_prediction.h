// Per-request latency *tail* prediction — beyond the paper, which reports
// only means.  Under the Jackson assumptions a request's single chain
// traversal is hypoexponential over its instances' slacks ν_k = μ − Λ_k;
// with packet loss the delivered latency is a geometric compound of
// traversals (one per NACK round).
//
// For P = 1 the quantiles are exact closed forms.  For P < 1 the compound
// is evaluated by seeded sampling from the analytic distribution (stage
// exponentials + geometric round count) — still a model computation, not
// a packet simulation: queue-state correlation across rounds is ignored
// exactly as the open-Jackson product form ignores it.
#pragma once

#include "nfv/core/joint_optimizer.h"

namespace nfv::core {

/// Predicted end-to-end latency distribution of one admitted request
/// (response + its fixed link latency).
struct TailPrediction {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// True when the quantiles are closed-form (P = 1); false when they
  /// come from analytic-model sampling (P < 1).
  bool exact = false;
};

/// Controls for the P < 1 sampling path.
struct TailPredictionConfig {
  std::uint32_t samples = 50'000;
  std::uint64_t seed = 1;
};

/// Predicts the latency distribution of `request` under `result`.
/// Throws if the result is infeasible or the request was rejected.
[[nodiscard]] TailPrediction predict_request_tail(
    const SystemModel& model, const JointResult& result, RequestId request,
    const TailPredictionConfig& config = {});

}  // namespace nfv::core
