// VNF replication (Sec. III-A of the paper): all service instances of a
// VNF are co-located, and "if all the service instances still cannot cope
// with all the requests, we can then place some replicas of the VNF on
// different nodes, and regard each replica as a new VNF."
//
// This module implements that escape hatch: any VNF whose total footprint
// D_f·M_f exceeds a per-node budget is split into the smallest number of
// replicas that fit, its instances divided across them, and its requests
// re-pointed (balanced by effective rate) so every chain references a
// concrete replica.
#pragma once

#include <vector>

#include "nfv/common/ids.h"
#include "nfv/workload/vnf.h"

namespace nfv::core {

/// Result of a replication pass.
struct ReplicationPlan {
  /// The rewritten workload: replica VNFs appended with dense ids, chains
  /// re-pointed.  Identical to the input when changed == false.
  workload::Workload workload;
  /// Per original VNF: the ids implementing it (size 1 = not split; the
  /// first entry is always the original id).
  std::vector<std::vector<VnfId>> replicas_of;
  bool changed = false;

  /// Total number of replica VNFs added.
  [[nodiscard]] std::size_t added() const {
    return workload.vnfs.size() - replicas_of.size();
  }
};

/// Splits every VNF whose footprint exceeds `max_footprint`.
///
/// Guarantees on the returned workload:
///  * every VNF footprint ≤ max_footprint (throws InfeasibleError if even
///    a single instance of some VNF exceeds it);
///  * each original instance ends up in exactly one replica (ΣM preserved);
///  * every request that used VNF f now uses exactly one replica of f, in
///    the same chain position;
///  * each replica serves ≥ 1 request and M_replica ≤ |R_replica| (Eq. 3
///    preserved) — instance counts are rebalanced to the request split;
///  * per-replica effective load per instance is balanced LPT-style.
[[nodiscard]] ReplicationPlan split_oversized(const workload::Workload& w,
                                              double max_footprint);

}  // namespace nfv::core
