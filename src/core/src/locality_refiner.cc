#include "nfv/core/locality_refiner.h"

#include <algorithm>
#include <set>
#include <vector>

#include "nfv/common/error.h"

namespace nfv::core {

namespace {

/// Σ over admitted requests of (distinct nodes in chain − 1); the Eq. 16
/// link term divided by L.
double link_cost(const SystemModel& model, const JointResult& result,
                 const std::vector<std::optional<NodeId>>& assignment) {
  double cost = 0.0;
  for (const auto& request : model.workload.requests) {
    if (!result.requests[request.id.index()].admitted) continue;
    std::set<NodeId> nodes;
    for (const VnfId f : request.chain) {
      nodes.insert(*assignment[f.index()]);
    }
    cost += static_cast<double>(nodes.size() - 1);
  }
  return cost;
}

}  // namespace

RefineResult refine_link_locality(const SystemModel& model,
                                  const JointResult& result,
                                  const RefineConfig& config) {
  NFV_REQUIRE(result.feasible);
  NFV_REQUIRE(config.max_moves > 0);

  RefineResult out;
  out.placement = result.placement;
  auto& assignment = out.placement.assignment;

  // Residual capacity per node under the current assignment.
  std::vector<double> residual;
  residual.reserve(model.topology.compute_count());
  for (const NodeId v : model.topology.nodes()) {
    residual.push_back(model.topology.capacity(v));
  }
  std::vector<double> footprint(model.workload.vnfs.size());
  for (std::size_t f = 0; f < model.workload.vnfs.size(); ++f) {
    footprint[f] = model.workload.vnfs[f].total_demand();
    residual[assignment[f]->index()] -= footprint[f];
  }
  std::vector<bool> used(model.topology.compute_count(), false);
  for (const auto& a : assignment) used[a->index()] = true;

  out.initial_link_cost = link_cost(model, result, assignment);
  double current = out.initial_link_cost;

  bool improved = true;
  while (improved && out.moves_applied < config.max_moves) {
    improved = false;
    for (std::uint32_t f = 0;
         f < model.workload.vnfs.size() && out.moves_applied < config.max_moves;
         ++f) {
      const NodeId from = *assignment[f];
      for (std::uint32_t v = 0; v < model.topology.compute_count(); ++v) {
        const NodeId to{v};
        if (to == from) continue;
        if (!config.allow_new_nodes && !used[v]) continue;
        if (residual[v] < footprint[f] - 1e-9) continue;
        assignment[f] = to;
        const double candidate = link_cost(model, result, assignment);
        if (candidate < current - 1e-12) {
          residual[from.index()] += footprint[f];
          residual[v] -= footprint[f];
          used[v] = true;
          current = candidate;
          ++out.moves_applied;
          improved = true;
          break;  // restart the node scan for this VNF's new neighborhood
        }
        assignment[f] = from;  // revert
      }
    }
  }
  out.final_link_cost = current;
  return out;
}

}  // namespace nfv::core
