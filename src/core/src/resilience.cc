#include "nfv/core/resilience.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "nfv/common/error.h"
#include "nfv/core/failure_repair.h"
#include "nfv/core/replication.h"
#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"
#include "nfv/placement/metrics.h"
#include "nfv/placement/problem.h"

namespace nfv::core {

namespace {

/// Capacity assigned to a down node in the degraded topology: positive (so
/// PlacementProblem::validate passes) but far below any realistic demand,
/// so no placement algorithm ever targets it.
constexpr double kDownCapacity = 1e-12;

/// Clones `base` with down nodes' capacity clamped to ~zero.  Vertex order
/// is preserved, so NodeIds and link structure are identical to the base.
topo::Topology make_degraded_topology(const topo::Topology& base,
                                      const std::vector<bool>& down) {
  topo::Topology out;
  std::uint32_t next_compute = 0;
  for (std::uint32_t v = 0; v < base.vertex_count(); ++v) {
    const topo::Vertex& vertex = base.vertex(v);
    if (vertex.kind == topo::VertexKind::kCompute) {
      const NodeId id{next_compute++};
      out.add_compute(down[id.index()] ? kDownCapacity : base.capacity(id),
                      vertex.label);
    } else {
      out.add_switch(vertex.label);
    }
  }
  for (std::uint32_t l = 0; l < base.link_count(); ++l) {
    const topo::Link& link = base.link(LinkId{l});
    out.connect(link.a, link.b, link.latency);
  }
  out.freeze();
  return out;
}

}  // namespace

std::string_view to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kNone: return "none";
    case RecoveryAction::kLocalRepair: return "local-repair";
    case RecoveryAction::kReplicaSplit: return "replica-split";
    case RecoveryAction::kFullRerun: return "full-rerun";
    case RecoveryAction::kDegrade: return "degrade";
  }
  return "?";
}

std::vector<ChurnEvent> make_failure_storm(std::size_t node_count,
                                           std::size_t event_count, Rng& rng,
                                           double mean_interval,
                                           std::size_t max_concurrent_down) {
  NFV_REQUIRE(node_count >= 2);
  NFV_REQUIRE(mean_interval > 0.0);
  max_concurrent_down =
      std::clamp<std::size_t>(max_concurrent_down, 1, node_count - 1);
  std::vector<bool> down(node_count, false);
  std::size_t down_count = 0;
  std::vector<ChurnEvent> events;
  events.reserve(event_count);
  double t = 0.0;
  for (std::size_t i = 0; i < event_count; ++i) {
    t += rng.exponential(1.0 / mean_interval);
    const bool fail = down_count == 0 ||
                      (down_count < max_concurrent_down && rng.chance(0.5));
    // Uniform draw over the eligible nodes (up ones for a failure, down
    // ones for a recovery).
    const std::size_t eligible = fail ? node_count - down_count : down_count;
    std::uint64_t pick = rng.below(eligible);
    std::uint32_t node = 0;
    for (std::uint32_t v = 0; v < node_count; ++v) {
      if (down[v] != fail) {  // up nodes when failing, down when recovering
        if (pick == 0) {
          node = v;
          break;
        }
        --pick;
      }
    }
    down[node] = fail;
    if (fail) {
      ++down_count;
    } else {
      --down_count;
    }
    events.push_back(ChurnEvent{t, NodeId{node}, !fail});
  }
  return events;
}

void ResilienceConfig::validate() const {
  NFV_REQUIRE(seconds_per_migration >= 0.0);
  NFV_REQUIRE(seconds_per_replica >= 0.0);
  NFV_REQUIRE(seconds_full_rerun >= 0.0);
  NFV_REQUIRE(seconds_per_shed >= 0.0);
  NFV_REQUIRE(degrade_headroom >= 1.0);
}

ResilienceController::ResilienceController(SystemModel model,
                                           ResilienceConfig config,
                                           std::uint64_t seed)
    : base_(std::move(model)), cfg_(std::move(config)), rng_(seed) {
  base_.validate();
  cfg_.validate();
  (void)JointOptimizer(cfg_.joint);  // validates the joint knobs early
  active_ = base_.workload;
  down_.assign(base_.topology.compute_count(), false);
  shed_.assign(active_.requests.size(), false);
  for (const auto& r : base_.workload.requests) {
    base_total_rate_ += r.arrival_rate;
  }

  // Initial deployment: pipeline, then the non-local rungs of the ladder
  // if even the pristine model does not fit (over-provisioned demand is
  // exactly the Sang et al. regime graceful degradation is for).
  RecoveryReport bootstrap;
  if (!try_deploy(build_deployable(), bootstrap)) {
    double max_cap = 0.0;
    for (const NodeId v : base_.topology.nodes()) {
      max_cap = std::max(max_cap, base_.topology.capacity(v));
    }
    bool split_ok = true;
    try {
      ReplicationPlan plan = split_oversized(active_, max_cap);
      if (plan.changed) active_ = std::move(plan.workload);
    } catch (const InfeasibleError&) {
      split_ok = false;  // some instance fits nowhere; shed around it
    }
    if (!split_ok || !try_deploy(build_deployable(), bootstrap)) {
      degrade(bootstrap);
    }
  }
}

std::size_t ResilienceController::down_count() const {
  return static_cast<std::size_t>(
      std::count(down_.begin(), down_.end(), true));
}

std::size_t ResilienceController::shed_count() const {
  return static_cast<std::size_t>(
      std::count(shed_.begin(), shed_.end(), true));
}

double ResilienceController::served_fraction() const {
  if (!current_.feasible || base_total_rate_ <= 0.0) return 0.0;
  double served = 0.0;
  for (std::size_t r = 0; r < deployed_.workload.requests.size(); ++r) {
    if (current_.requests[r].admitted) {
      served += deployed_.workload.requests[r].arrival_rate;
    }
  }
  return served / base_total_rate_;
}

ResilienceController::Build ResilienceController::build_deployable() const {
  Build build;
  build.model.topology = make_degraded_topology(base_.topology, down_);

  // Requests that stay deployed, in active (== base) index order.
  std::vector<std::uint32_t> kept_requests;
  for (std::uint32_t r = 0; r < active_.requests.size(); ++r) {
    if (!shed_[r]) kept_requests.push_back(r);
  }
  if (kept_requests.empty()) {
    build.empty = true;
    return build;
  }

  // A VNF stays deployed iff at least one kept request traverses it.
  std::vector<std::vector<std::uint32_t>> members(active_.vnfs.size());
  for (const std::uint32_t r : kept_requests) {
    for (const VnfId f : active_.requests[r].chain) {
      members[f.index()].push_back(r);
    }
  }
  const bool any_shed = kept_requests.size() < active_.requests.size();
  std::vector<std::uint32_t> active_to_new(active_.vnfs.size(), 0);
  for (std::uint32_t f = 0; f < active_.vnfs.size(); ++f) {
    if (members[f].empty()) continue;
    workload::Vnf vnf = active_.vnfs[f];
    vnf.id = VnfId{static_cast<std::uint32_t>(build.model.workload.vnfs.size())};
    // Degradation shrinks the footprint with the surviving demand: just
    // enough instances for Λ < ρ_max·μ with headroom, within Eq. 3's
    // M ≤ |R_f| and never scaling out past the active M.
    auto max_instances =
        static_cast<std::uint32_t>(std::min<std::size_t>(
            vnf.instance_count, members[f].size()));
    if (any_shed) {
      double total_eff = 0.0;
      for (const std::uint32_t r : members[f]) {
        total_eff += active_.requests[r].effective_rate();
      }
      const auto needed = static_cast<std::uint32_t>(std::ceil(
          cfg_.degrade_headroom * total_eff /
          (cfg_.joint.rho_max * vnf.service_rate)));
      vnf.instance_count = std::clamp(needed, 1u, max_instances);
    } else {
      vnf.instance_count = std::max(1u, max_instances);
    }
    active_to_new[f] = vnf.id.value();
    build.vnf_to_active.push_back(f);
    build.model.workload.vnfs.push_back(std::move(vnf));
  }

  for (const std::uint32_t r : kept_requests) {
    workload::Request request = active_.requests[r];
    request.id = RequestId{
        static_cast<std::uint32_t>(build.model.workload.requests.size())};
    for (VnfId& hop : request.chain) {
      hop = VnfId{active_to_new[hop.index()]};
    }
    build.req_to_active.push_back(r);
    build.model.workload.requests.push_back(std::move(request));
  }
  return build;
}

std::size_t ResilienceController::count_migrations(
    const Build& build, const placement::Placement& next) const {
  // Active VNF index -> host in the current deployment.
  std::unordered_map<std::uint32_t, NodeId> prev;
  if (current_.feasible) {
    for (std::size_t f = 0; f < deployed_vnf_to_active_.size(); ++f) {
      prev.emplace(deployed_vnf_to_active_[f],
                   *current_.placement.assignment[f]);
    }
  }
  std::size_t migrations = 0;
  for (std::size_t f = 0; f < build.vnf_to_active.size(); ++f) {
    const auto it = prev.find(build.vnf_to_active[f]);
    // A VNF with no previous host (fresh replica, redeploy from outage) is
    // an instantiation — charged like a migration.
    if (it == prev.end() || it->second != *next.assignment[f]) ++migrations;
  }
  return migrations;
}

bool ResilienceController::try_deploy(Build build, RecoveryReport& report) {
  if (build.empty) return false;
  JointResult result = JointOptimizer(cfg_.joint).run(build.model, rng_.next());
  if (!result.feasible) return false;
  const std::size_t migrations = count_migrations(build, result.placement);
  report.vnfs_migrated += migrations;
  report.time_to_recover +=
      cfg_.seconds_full_rerun +
      static_cast<double>(migrations) * cfg_.seconds_per_migration;
  deployed_ = std::move(build.model);
  deployed_vnf_to_active_ = std::move(build.vnf_to_active);
  deployed_req_to_active_ = std::move(build.req_to_active);
  current_ = std::move(result);
  return true;
}

void ResilienceController::degrade(RecoveryReport& report) {
  report.attempted.push_back(RecoveryAction::kDegrade);
  // Non-shed requests, cheapest (lowest λ) first; ties by index so the
  // shed sequence is deterministic.
  std::vector<std::uint32_t> order;
  for (std::uint32_t r = 0; r < active_.requests.size(); ++r) {
    if (!shed_[r]) order.push_back(r);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return active_.requests[a].arrival_rate <
                            active_.requests[b].arrival_rate;
                   });
  // Shed a geometrically growing prefix of `order` until the pipeline
  // fits (O(log |R|) runs), then binary-search the minimal fitting prefix
  // in (last failing, first fitting] so low-rate requests are not
  // overshed.  Probes are feasibility-only — nothing is committed and the
  // report is untouched until the winning prefix deploys for real below.
  const auto shed_prefix = [&](std::size_t n) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      shed_[order[i]] = i < n;
    }
  };
  const auto prefix_fits = [&](std::size_t n) {
    shed_prefix(n);
    const Build build = build_deployable();
    if (build.empty) return false;
    return JointOptimizer(cfg_.joint).run(build.model, rng_.next()).feasible;
  };
  std::size_t lo = 0;  // largest prefix known NOT to fit
  std::size_t hi = 0;  // smallest prefix known to fit (once found)
  bool fits = false;
  for (std::size_t batch = 1; !fits;) {
    const std::size_t probe = std::min(lo + batch, order.size());
    if (prefix_fits(probe)) {
      hi = probe;
      fits = true;
    } else {
      lo = probe;
      if (probe == order.size()) break;  // nothing left to shed
      batch *= 2;
    }
  }
  while (fits && hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (prefix_fits(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Commit the winning prefix.  The committing run draws a fresh pipeline
  // seed, so on a borderline instance it can miss the packing a probe
  // found — shed one more and retry rather than give up.
  while (fits) {
    shed_prefix(hi);
    if (try_deploy(build_deployable(), report)) {
      report.requests_shed = hi;
      report.resolution = RecoveryAction::kDegrade;
      report.time_to_recover +=
          static_cast<double>(hi) * cfg_.seconds_per_shed;
      return;
    }
    if (hi == order.size()) break;
    ++hi;
  }
  const std::size_t shed_now = order.size();
  // Even the empty-but-one deployment failed: total outage.
  report.requests_shed = shed_now;
  report.resolution = RecoveryAction::kNone;
  current_ = JointResult{};
  deployed_ = SystemModel{};
  deployed_.topology = make_degraded_topology(base_.topology, down_);
  deployed_vnf_to_active_.clear();
  deployed_req_to_active_.clear();
}

void ResilienceController::handle_failure(const ChurnEvent& event,
                                          RecoveryReport& report) {
  if (down_[event.node.index()]) return;  // duplicate DOWN
  down_[event.node.index()] = true;

  if (current_.feasible) {
    std::size_t displaced = 0;
    for (const auto& host : current_.placement.assignment) {
      if (*host == event.node) ++displaced;
    }
    report.vnfs_displaced = displaced;
    if (displaced == 0) {
      // The node was idle; keep the deployment, refresh the capacity view.
      deployed_.topology = make_degraded_topology(base_.topology, down_);
      return;
    }

    // Rung 1 — local repair: move only the displaced VNFs, keep schedules.
    report.attempted.push_back(RecoveryAction::kLocalRepair);
    SystemModel repair_model;
    repair_model.topology = make_degraded_topology(base_.topology, down_);
    repair_model.workload = deployed_.workload;
    const RepairResult repair =
        repair_after_node_failure(repair_model, current_, event.node, rng_);
    if (repair.feasible) {
      current_.placement = repair.placement;
      current_.placement_metrics = placement::evaluate(
          placement::make_problem(repair_model.topology,
                                  repair_model.workload),
          current_.placement);
      deployed_.topology = std::move(repair_model.topology);
      report.vnfs_migrated = repair.displaced.size();
      report.resolution = RecoveryAction::kLocalRepair;
      report.time_to_recover +=
          static_cast<double>(repair.displaced.size()) *
          cfg_.seconds_per_migration;
      return;
    }
  }

  double max_cap = 0.0;
  for (const NodeId v : base_.topology.nodes()) {
    if (!down_[v.index()]) {
      max_cap = std::max(max_cap, base_.topology.capacity(v));
    }
  }
  if (max_cap > 0.0) {
    // Rung 2 — replica split, only when some deployable VNF's footprint no
    // longer fits any surviving node.
    bool oversized = false;
    for (const auto& vnf : active_.vnfs) {
      if (vnf.total_demand() > max_cap) {
        oversized = true;
        break;
      }
    }
    if (oversized) {
      report.attempted.push_back(RecoveryAction::kReplicaSplit);
      try {
        ReplicationPlan plan = split_oversized(active_, max_cap);
        if (plan.changed) {
          report.replicas_added = plan.added();
          active_ = std::move(plan.workload);
          report.time_to_recover +=
              static_cast<double>(report.replicas_added) *
              cfg_.seconds_per_replica;
        }
        if (try_deploy(build_deployable(), report)) {
          report.resolution = RecoveryAction::kReplicaSplit;
          return;
        }
      } catch (const InfeasibleError&) {
        // A single instance exceeds every survivor; only shedding helps.
      }
    }

    // Rung 3 — full pipeline re-run on the degraded topology.
    report.attempted.push_back(RecoveryAction::kFullRerun);
    if (try_deploy(build_deployable(), report)) {
      report.resolution = RecoveryAction::kFullRerun;
      return;
    }
  }

  // Rung 4 — graceful degradation.
  degrade(report);
}

void ResilienceController::handle_recovery(const ChurnEvent& event,
                                           RecoveryReport& report) {
  if (!down_[event.node.index()]) return;  // duplicate UP
  down_[event.node.index()] = false;

  const std::size_t prev_shed = shed_count();
  if (!cfg_.readmit_on_recovery || (prev_shed == 0 && current_.feasible)) {
    // Nothing to restore; the deployment ignores the returning node.
    deployed_.topology = make_degraded_topology(base_.topology, down_);
    return;
  }

  // Restore: clear the shed set and re-run on the recovered capacity.
  report.attempted.push_back(RecoveryAction::kFullRerun);
  std::fill(shed_.begin(), shed_.end(), false);
  if (try_deploy(build_deployable(), report)) {
    report.requests_restored = prev_shed;
    report.resolution = RecoveryAction::kFullRerun;
    report.time_to_recover +=
        static_cast<double>(prev_shed) * cfg_.seconds_per_shed;
    return;
  }
  // Still short on capacity: degrade again, restoring what fits.
  degrade(report);
  const std::size_t still_shed = shed_count();
  report.requests_restored =
      prev_shed > still_shed ? prev_shed - still_shed : 0;
}

RecoveryReport ResilienceController::on_event(const ChurnEvent& event) {
  NFV_REQUIRE(event.node.index() < base_.topology.compute_count());
  const obs::ScopedSpan span("core.resilience.on_event");
  RecoveryReport report;
  report.time = event.time;
  report.node = event.node;
  report.node_up = event.up;
  if (event.up) {
    handle_recovery(event, report);
  } else {
    handle_failure(event, report);
  }
  finish_report(report);
  history_.push_back(report);
  return report;
}

std::vector<RecoveryReport> ResilienceController::replay(
    std::span<const ChurnEvent> events) {
  std::vector<RecoveryReport> reports;
  reports.reserve(events.size());
  for (const ChurnEvent& event : events) {
    reports.push_back(on_event(event));
  }
  return reports;
}

void ResilienceController::finish_report(RecoveryReport& report) {
  report.recovered = current_.feasible;
  report.availability = served_fraction();
  if (obs::registry() == nullptr) return;
  obs::count("core.resilience.events");
  // Escalation ladder: one counter per rung attempted and per resolution,
  // so a run report shows how far the controller had to climb.
  for (const RecoveryAction rung : report.attempted) {
    obs::count(obs::labeled("core.resilience.rung",
                            {{"action", to_string(rung)}}));
  }
  obs::count(obs::labeled("core.resilience.resolution",
                          {{"action", to_string(report.resolution)}}));
  obs::count("core.resilience.shed", report.requests_shed);
  obs::count("core.resilience.restored", report.requests_restored);
  obs::count("core.resilience.migrations", report.vnfs_migrated);
}

}  // namespace nfv::core
