#include "nfv/core/sim_builder.h"

#include "nfv/common/error.h"

namespace nfv::core {

SimBuildOutput build_sim_network(const SystemModel& model,
                                 const JointResult& result) {
  NFV_REQUIRE(result.feasible);
  SimBuildOutput out;

  // Stations: all instances of all VNFs, flattened.
  out.index_map.base.resize(model.workload.vnfs.size());
  for (std::size_t f = 0; f < model.workload.vnfs.size(); ++f) {
    out.index_map.base[f] =
        static_cast<std::uint32_t>(out.network.stations.size());
    const workload::Vnf& vnf = model.workload.vnfs[f];
    for (std::uint32_t k = 0; k < vnf.instance_count; ++k) {
      out.network.stations.push_back(sim::Station{vnf.service_rate});
    }
  }

  // Request id -> per-VNF problem position (as in JointOptimizer::run).
  std::vector<std::vector<std::uint32_t>> position(
      model.workload.vnfs.size(),
      std::vector<std::uint32_t>(model.workload.requests.size(), 0));
  for (std::size_t f = 0; f < result.contexts.size(); ++f) {
    for (std::size_t pos = 0; pos < result.contexts[f].members.size(); ++pos) {
      position[f][result.contexts[f].members[pos].index()] =
          static_cast<std::uint32_t>(pos);
    }
  }

  for (const auto& r : model.workload.requests) {
    const RequestOutcome& outcome = result.requests[r.id.index()];
    if (!outcome.admitted) continue;
    sim::Flow flow;
    flow.rate = r.arrival_rate;
    flow.delivery_prob = r.delivery_prob;
    flow.path.reserve(r.chain.size());
    flow.hop_latency.assign(r.chain.size() + 1, 0.0);
    NodeId previous_node{};
    bool have_previous = false;
    for (std::size_t hop = 0; hop < r.chain.size(); ++hop) {
      const VnfId f = r.chain[hop];
      const std::uint32_t pos = position[f.index()][r.id.index()];
      const InstanceIndex k = result.schedules[f.index()].instance_of[pos];
      flow.path.push_back(out.index_map.station(f, k));
      const NodeId node = *result.placement.assignment[f.index()];
      if (have_previous && node != previous_node) {
        flow.hop_latency[hop] =
            model.topology.path_latency(previous_node, node);
      }
      previous_node = node;
      have_previous = true;
    }
    out.network.flows.push_back(std::move(flow));
    out.flow_request.push_back(r.id);
  }
  NFV_REQUIRE(!out.network.flows.empty());
  out.network.validate();
  return out;
}

}  // namespace nfv::core
