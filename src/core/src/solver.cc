#include "nfv/core/solver.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "nfv/common/error.h"
#include "nfv/obs/metrics.h"
#include "nfv/placement/lp_round.h"
#include "nfv/placement/metrics.h"
#include "nfv/placement/pso.h"

namespace nfv::core {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("solver spec: " + what);
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad("invalid integer for '" + std::string(key) + "': '" +
        std::string(value) + "'");
  }
  return out;
}

double parse_double(std::string_view key, std::string_view value) {
  // from_chars for double is not universally available; use strtod on a
  // NUL-terminated copy (the CliParser does the same).
  const std::string copy(value);
  char* end = nullptr;
  const double out = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    bad("invalid number for '" + std::string(key) + "': '" +
        std::string(value) + "'");
  }
  return out;
}

std::uint32_t checked_u32(std::string_view key, std::uint64_t v) {
  if (v > 0xffffffffULL) {
    bad("'" + std::string(key) + "' out of range");
  }
  return static_cast<std::uint32_t>(v);
}

/// Maps the shared work budget W to backend-local effort.  Every backend
/// receives its units through Placement::iterations-compatible knobs so
/// the race depends only on W, never on the clock.
struct Effort {
  placement::PsoPlacement::Options pso;
  placement::LpRoundPlacement::Options lp;
  placement::BfdsuPlacement::Options bfdsu;
};

Effort effort_for(
    const SolverConfig& cfg,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  Effort e;
  e.pso.swarm = cfg.pso_swarm;
  e.pso.iterations = cfg.pso_iterations;
  e.lp.iterations = cfg.lp_iterations;
  if (cfg.work_budget > 0) {
    const std::uint64_t w = cfg.work_budget;
    // PSO charges swarm evaluations per sweep; LP one step per unit; BFDSU
    // one pass per unit (its own stall logic may stop earlier).
    e.pso.iterations = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        w / std::max<std::uint64_t>(1, e.pso.swarm), 1, 10'000'000));
    e.lp.iterations = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(w, 1, 10'000'000));
    e.bfdsu.max_passes =
        static_cast<std::uint32_t>(std::clamp<std::uint64_t>(w, 1, 60));
    e.bfdsu.stall_limit = std::min(e.bfdsu.stall_limit, e.bfdsu.max_passes);
  }
  e.pso.deadline = deadline;
  e.lp.deadline = deadline;
  return e;
}

std::unique_ptr<placement::PlacementAlgorithm> make_backend(
    std::string_view id, const Effort& effort) {
  if (id == "bfdsu") {
    return std::make_unique<placement::BfdsuPlacement>(effort.bfdsu);
  }
  if (id == "pso") {
    return std::make_unique<placement::PsoPlacement>(effort.pso);
  }
  NFV_CHECK(id == "lp");  // backend_ids() only yields the three
  return std::make_unique<placement::LpRoundPlacement>(effort.lp);
}

std::optional<std::chrono::steady_clock::time_point> race_deadline(
    const SolverConfig& cfg) {
  if (cfg.deterministic_budget || cfg.budget_ms <= 0.0) return std::nullopt;
  const auto budget = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(cfg.budget_ms));
  return std::chrono::steady_clock::now() + budget;
}

std::uint64_t count_rejected(const JointResult& result) {
  std::uint64_t rejected = 0;
  for (const auto& r : result.requests) {
    if (!r.admitted) ++rejected;
  }
  return rejected;
}

/// Total order over full-pipeline runs: feasible first, then fewest
/// rejections, then lowest Eq. 16 objective, then backend id — every
/// comparison is exact, so the argmin is unique and thread-count free.
bool run_better(const BackendRun& a, const BackendRun& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (a.rejected != b.rejected) return a.rejected < b.rejected;
  if (a.objective != b.objective) return a.objective < b.objective;
  return a.id < b.id;
}

}  // namespace

void SolverConfig::validate() const {
  if (!known_solver(solver)) {
    bad("unknown solver '" + solver + "'");
  }
  if (!std::isfinite(budget_ms) || budget_ms < 0.0 || budget_ms > 1e9) {
    bad("'budget-ms' must be finite, >= 0 and <= 1e9");
  }
  if (work_budget > 1'000'000'000'000ULL) {
    bad("'work' must be <= 1e12");
  }
  if (pso_swarm < 1 || pso_swarm > 4096) {
    bad("'pso-swarm' must be in [1, 4096]");
  }
  if (pso_iterations < 1 || pso_iterations > 10'000'000) {
    bad("'pso-iters' must be in [1, 1e7]");
  }
  if (lp_iterations < 1 || lp_iterations > 10'000'000) {
    bad("'lp-iters' must be in [1, 1e7]");
  }
}

const std::vector<std::string>& SolverConfig::solver_ids() {
  static const std::vector<std::string> kIds = {"bfdsu", "lp", "portfolio",
                                                "pso"};
  return kIds;
}

bool SolverConfig::known_solver(std::string_view id) {
  const auto& ids = solver_ids();
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

SolverConfig parse_solver_spec(std::string_view spec) {
  SolverConfig cfg;
  const std::size_t colon = spec.find(':');
  const std::string_view id =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  if (id.empty()) bad("empty solver id");
  cfg.solver = std::string(id);
  if (colon != std::string_view::npos) {
    std::string_view rest = spec.substr(colon + 1);
    if (rest.empty()) bad("empty option list after ':'");
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view item =
          comma == std::string_view::npos ? rest : rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        bad("expected key=value, got '" + std::string(item) + "'");
      }
      const std::string_view key = item.substr(0, eq);
      const std::string_view value = item.substr(eq + 1);
      if (value.empty()) {
        bad("empty value for '" + std::string(key) + "'");
      }
      if (key == "pso-swarm") {
        cfg.pso_swarm = checked_u32(key, parse_u64(key, value));
      } else if (key == "pso-iters") {
        cfg.pso_iterations = checked_u32(key, parse_u64(key, value));
      } else if (key == "lp-iters") {
        cfg.lp_iterations = checked_u32(key, parse_u64(key, value));
      } else if (key == "work") {
        cfg.work_budget = parse_u64(key, value);
      } else if (key == "budget-ms") {
        cfg.budget_ms = parse_double(key, value);
      } else if (key == "det") {
        const std::uint64_t v = parse_u64(key, value);
        if (v > 1) bad("'det' must be 0 or 1");
        cfg.deterministic_budget = v == 1;
      } else {
        bad("unknown option '" + std::string(key) + "'");
      }
    }
  }
  cfg.validate();
  return cfg;
}

PortfolioDriver::PortfolioDriver(JointConfig base, SolverConfig solver)
    : base_(std::move(base)), solver_(std::move(solver)) {
  solver_.validate();
  base_.exec.validate();
}

std::vector<std::string> PortfolioDriver::backend_ids() const {
  if (solver_.solver == "portfolio") return {"bfdsu", "lp", "pso"};
  return {solver_.solver};
}

std::string PortfolioDriver::backend_algorithm(std::string_view id) {
  if (id == "bfdsu") return "BFDSU";
  if (id == "pso") return "PSO";
  NFV_CHECK(id == "lp");
  return "LP";
}

SolverOutcome PortfolioDriver::run(const SystemModel& model,
                                   std::uint64_t seed) const {
  const std::vector<std::string> ids = backend_ids();
  const auto deadline = race_deadline(solver_);
  const Effort effort = effort_for(solver_, deadline);

  // Race on the installed pool; install one for the scope when the exec
  // config asks for threads and none is active (mirrors JointOptimizer).
  std::optional<exec::ThreadPool> local;
  std::optional<exec::ScopedPool> scope;
  if (base_.exec.threads > 1 && exec::pool() == nullptr &&
      !exec::ThreadPool::on_worker_thread()) {
    local.emplace(base_.exec.threads);
    scope.emplace(*local);
  }

  // Every backend gets the SAME user seed: a single-backend race is the
  // identity, and adding a backend never perturbs another's stream.
  std::vector<JointResult> results =
      exec::parallel_map(ids.size(), [&](std::size_t i) {
        JointConfig cfg = base_;
        cfg.placement_algorithm = backend_algorithm(ids[i]);
        cfg.placement_factory = [&effort, id = ids[i]] {
          return make_backend(id, effort);
        };
        return JointOptimizer(cfg).run(model, seed);
      });

  SolverOutcome outcome;
  outcome.deterministic = solver_.deterministic_budget;
  outcome.budget_work = solver_.work_budget;
  outcome.budget_ms = solver_.budget_ms;
  outcome.backends.reserve(ids.size());
  std::size_t best = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    BackendRun entry;
    entry.id = ids[i];
    entry.feasible = results[i].feasible;
    entry.rejected = count_rejected(results[i]);
    entry.objective = results[i].total_latency;
    entry.work = results[i].placement.iterations;
    outcome.backends.push_back(std::move(entry));
    if (run_better(outcome.backends[i], outcome.backends[best])) best = i;
    obs::count("core.solver.backend_runs");
  }
  outcome.winner = ids[best];
  outcome.result = std::move(results[best]);
  obs::count("core.solver.races");
  obs::count("core.solver.work", outcome.backends[best].work);
  return outcome;
}

PlacementOutcome PortfolioDriver::place(
    const placement::PlacementProblem& problem, std::uint64_t seed) const {
  problem.validate();
  const std::vector<std::string> ids = backend_ids();
  const auto deadline = race_deadline(solver_);
  const Effort effort = effort_for(solver_, deadline);

  std::optional<exec::ThreadPool> local;
  std::optional<exec::ScopedPool> scope;
  if (base_.exec.threads > 1 && exec::pool() == nullptr &&
      !exec::ThreadPool::on_worker_thread()) {
    local.emplace(base_.exec.threads);
    scope.emplace(*local);
  }

  struct Entry {
    placement::Placement placement;
    placement::PlacementMetrics metrics;
  };
  std::vector<Entry> entries =
      exec::parallel_map(ids.size(), [&](std::size_t i) {
        const auto backend = make_backend(ids[i], effort);
        Rng rng(seed);  // same seed per backend, as cmd_place runs directly
        Entry entry;
        entry.placement = backend->place(problem, rng);
        entry.metrics = placement::evaluate(problem, entry.placement);
        return entry;
      });

  PlacementOutcome outcome;
  outcome.backends.reserve(ids.size());
  std::size_t best = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::uint64_t unplaced = 0;
    for (const auto& a : entries[i].placement.assignment) {
      if (!a.has_value()) ++unplaced;
    }
    BackendRun entry;
    entry.id = ids[i];
    entry.feasible = entries[i].placement.feasible;
    entry.rejected = unplaced;
    // Placement objective is Eq. 14's node count; resource occupation
    // breaks exact ties below (it is not folded into `objective`).
    entry.objective = static_cast<double>(entries[i].metrics.nodes_in_service);
    entry.work = entries[i].placement.iterations;
    outcome.backends.push_back(std::move(entry));
    const auto& a = outcome.backends[i];
    const auto& b = outcome.backends[best];
    const bool better =
        a.feasible != b.feasible ? a.feasible
        : a.rejected != b.rejected ? a.rejected < b.rejected
        : a.objective != b.objective ? a.objective < b.objective
        : entries[i].metrics.resource_occupation !=
                entries[best].metrics.resource_occupation
            ? entries[i].metrics.resource_occupation <
                  entries[best].metrics.resource_occupation
            : a.id < b.id;
    if (i != best && better) best = i;
    obs::count("core.solver.backend_runs");
  }
  outcome.winner = ids[best];
  outcome.placement = std::move(entries[best].placement);
  outcome.metrics = std::move(entries[best].metrics);
  obs::count("core.solver.races");
  return outcome;
}

}  // namespace nfv::core
