#include "nfv/core/report_builder.h"

#include <algorithm>

#include "nfv/common/error.h"

namespace nfv::core {

namespace {

void fill_placement(const ReportInputs& in, obs::PlacementSection& out) {
  const JointResult& r = *in.result;
  out.present = true;
  out.feasible = r.placement.feasible;
  out.algorithm = in.placement_algorithm;
  out.iterations = r.placement.iterations;
  out.nodes_in_service = r.placement_metrics.nodes_in_service;
  out.node_count = in.model->topology.compute_count();
  out.avg_utilization = r.placement_metrics.avg_utilization_of_used;
  out.occupation = r.placement_metrics.resource_occupation;
}

void fill_scheduling(const ReportInputs& in, obs::SchedulingSection& out) {
  const JointResult& r = *in.result;
  if (r.admissions.empty()) return;
  out.present = true;
  out.algorithm = in.scheduling_algorithm;
  out.vnfs.reserve(r.contexts.size());
  for (std::size_t f = 0; f < r.contexts.size(); ++f) {
    const VnfSchedulingContext& ctx = r.contexts[f];
    const sched::AdmissionResult& admission = r.admissions[f];
    obs::VnfScheduleEntry entry;
    entry.vnf = in.model->workload.vnfs[f].name;
    entry.instances = ctx.problem.instance_count;
    entry.service_rate = ctx.problem.service_rate;
    entry.delivery_prob = ctx.problem.delivery_prob;
    entry.rejected = admission.rejected_count;
    entry.admitted = ctx.problem.request_count() - admission.rejected_count;
    entry.work = r.schedules[f].work;
    // Λ_k per instance (Eq. 7, post-admission) and the matching W(f,k).
    const auto& m = admission.admitted_metrics;
    entry.instance_load = m.instance_effective_load;
    entry.instance_response.reserve(m.instance_load.size());
    const double mu_eff =
        ctx.problem.delivery_prob * ctx.problem.service_rate;
    for (const double load : m.instance_load) {
      entry.instance_response.push_back(
          load < mu_eff ? 1.0 / (mu_eff - load) : -1.0);
    }
    out.vnfs.push_back(std::move(entry));
  }
}

void fill_requests(const ReportInputs& in, obs::RequestSection& out) {
  const JointResult& r = *in.result;
  if (r.requests.empty()) return;
  out.present = true;
  out.total = r.requests.size();
  out.admitted = static_cast<std::uint64_t>(
      std::count_if(r.requests.begin(), r.requests.end(),
                    [](const RequestOutcome& o) { return o.admitted; }));
  out.rejection_rate = r.job_rejection_rate;
  out.avg_total_latency = r.avg_total_latency;
  out.avg_response = r.avg_response;
}

void fill_des(const sim::SimResult& sim, obs::DesSection& out) {
  out.present = true;
  out.events = sim.events_processed;
  out.measured_window = sim.measured_window;
  out.truncated = sim.truncated;
  double latency_weighted = 0.0;
  double utilization = 0.0;
  for (const sim::FlowResult& f : sim.flows) {
    out.generated += f.generated;
    out.delivered += f.delivered;
    out.retransmissions += f.retransmissions;
    out.buffer_drops += f.buffer_drops;
    out.fault_retransmissions += f.fault_retransmissions;
    latency_weighted +=
        f.end_to_end.mean() * static_cast<double>(f.delivered);
  }
  for (const sim::StationResult& s : sim.stations) {
    out.station_drops += s.drops;
    out.station_fault_drops += s.fault_drops;
    out.station_failures += s.failures;
    out.total_downtime += s.downtime;
    utilization += s.utilization;
  }
  if (!sim.stations.empty()) {
    out.avg_utilization =
        utilization / static_cast<double>(sim.stations.size());
  }
  if (out.delivered > 0) {
    out.mean_latency = latency_weighted / static_cast<double>(out.delivered);
  }
}

void fill_resilience(const ReportInputs& in, obs::ResilienceSection& out) {
  out.present = true;
  out.events.reserve(in.resilience.size());
  for (const RecoveryReport& r : in.resilience) {
    obs::ResilienceEventEntry e;
    e.time = r.time;
    e.node = in.model != nullptr
                 ? in.model->topology.label(r.node)
                 : "node" + std::to_string(r.node.value());
    e.node_up = r.node_up;
    e.resolution = std::string(to_string(r.resolution));
    e.vnfs_migrated = r.vnfs_migrated;
    e.requests_shed = r.requests_shed;
    e.requests_restored = r.requests_restored;
    e.time_to_recover = r.time_to_recover;
    e.availability = r.availability;
    out.worst_availability = std::min(out.worst_availability, r.availability);
    out.final_availability = r.availability;
    out.total_shed += r.requests_shed;
    ++out.resolutions[e.resolution];
    out.events.push_back(std::move(e));
  }
}

void fill_shard(const ReportInputs& in, obs::ShardSection& out) {
  const shard::ShardStats& s = in.result->shard_stats;
  if (!s.enabled) return;  // monolithic run: no shard section at all
  out.present = true;
  out.shards = s.shards;
  out.components = s.components;
  out.splits = s.splits;
  out.fallback_monolithic = s.fallback_monolithic;
  out.repair_moves = s.repair_moves;
  out.drain_moves = s.drain_moves;
  out.drained_nodes = s.drained_nodes;
  out.boundary_requests = s.boundary_requests;
  out.rebalances = s.rebalances;
  out.migrations = s.migrations;
}

void fill_solver(const ReportInputs& in, obs::SolverSection& out) {
  const SolverOutcome& s = *in.solver;
  out.present = true;
  out.solver = in.solver_id;
  out.winner = s.winner;
  out.deterministic = s.deterministic;
  out.budget_work = s.budget_work;
  out.budget_ms = s.budget_ms;
  out.backends.reserve(s.backends.size());
  for (const BackendRun& b : s.backends) {
    obs::SolverBackendEntry e;
    e.id = b.id;
    e.feasible = b.feasible;
    e.rejected = b.rejected;
    e.objective = b.objective;
    e.work = b.work;
    out.backends.push_back(std::move(e));
  }
}

}  // namespace

obs::RunReport build_run_report(const ReportInputs& inputs) {
  obs::RunReport report;
  report.command = inputs.command;
  report.seed = inputs.seed;
  if (inputs.result != nullptr) {
    NFV_REQUIRE(inputs.model != nullptr);
    fill_placement(inputs, report.placement);
    fill_scheduling(inputs, report.scheduling);
    fill_requests(inputs, report.requests);
    fill_shard(inputs, report.shard);
  }
  if (inputs.sim != nullptr) fill_des(*inputs.sim, report.des);
  if (!inputs.resilience.empty()) {
    fill_resilience(inputs, report.resilience);
  }
  if (inputs.serve != nullptr) report.serve = *inputs.serve;
  if (inputs.solver != nullptr) fill_solver(inputs, report.solver);
  if (inputs.metrics != nullptr) {
    report.metrics.present = true;
    report.metrics.snapshot = inputs.metrics->snapshot();
  }
  return report;
}

}  // namespace nfv::core
