#include "nfv/core/failure_repair.h"

#include <algorithm>
#include <set>

#include "nfv/common/error.h"

namespace nfv::core {

RepairResult repair_after_node_failure(const SystemModel& model,
                                       const JointResult& result,
                                       NodeId failed, Rng& rng) {
  NFV_REQUIRE(result.feasible);
  NFV_REQUIRE(failed.index() < model.topology.compute_count());

  RepairResult out;
  out.placement = result.placement;

  // Residual capacity of survivors under the current assignment.
  std::vector<double> residual;
  residual.reserve(model.topology.compute_count());
  for (const NodeId v : model.topology.nodes()) {
    residual.push_back(model.topology.capacity(v));
  }
  std::vector<bool> used(model.topology.compute_count(), false);
  for (std::size_t f = 0; f < model.workload.vnfs.size(); ++f) {
    const NodeId host = *result.placement.assignment[f];
    if (host == failed) {
      out.displaced.push_back(model.workload.vnfs[f].id);
    } else {
      residual[host.index()] -= model.workload.vnfs[f].total_demand();
      used[host.index()] = true;
    }
  }
  {
    std::set<NodeId> before;
    for (const auto& a : result.placement.assignment) before.insert(*a);
    out.nodes_in_service_before = before.size();
  }
  if (out.displaced.empty()) {
    out.feasible = true;
    out.nodes_in_service_after = out.nodes_in_service_before;
    return out;
  }

  // BFDSU policy on the residuals: displaced VNFs by decreasing demand;
  // candidates are surviving used nodes first, spares second; weighted
  // tight-fit draw.
  std::vector<VnfId> order = out.displaced;
  std::stable_sort(order.begin(), order.end(), [&](VnfId a, VnfId b) {
    return model.workload.vnfs[a.index()].total_demand() >
           model.workload.vnfs[b.index()].total_demand();
  });
  std::vector<std::uint32_t> candidates;
  std::vector<double> weights;
  for (const VnfId f : order) {
    const double demand = model.workload.vnfs[f.index()].total_demand();
    candidates.clear();
    for (std::uint32_t v = 0; v < model.topology.compute_count(); ++v) {
      if (v == failed.index()) continue;
      if (used[v] && residual[v] >= demand - 1e-9) candidates.push_back(v);
    }
    if (candidates.empty()) {
      for (std::uint32_t v = 0; v < model.topology.compute_count(); ++v) {
        if (v == failed.index() || used[v]) continue;
        if (residual[v] >= demand - 1e-9) candidates.push_back(v);
      }
    }
    if (candidates.empty()) {
      out.placement = result.placement;  // leave the input untouched
      return out;                        // feasible stays false
    }
    weights.clear();
    for (const std::uint32_t v : candidates) {
      weights.push_back(1.0 / (1.0 + residual[v] - demand));
    }
    const std::uint32_t chosen = candidates[rng.weighted_index(weights)];
    residual[chosen] -= demand;
    used[chosen] = true;
    out.placement.assignment[f.index()] = NodeId{chosen};
  }
  out.feasible = true;
  std::set<NodeId> after;
  for (const auto& a : out.placement.assignment) after.insert(*a);
  out.nodes_in_service_after = after.size();
  return out;
}

}  // namespace nfv::core
