#include "nfv/core/energy.h"

#include <algorithm>

#include "nfv/common/error.h"

namespace nfv::core {

double PowerModel::node_power(double utilization) const {
  NFV_REQUIRE(utilization >= 0.0 && utilization <= 1.0 + 1e-9);
  return idle_watts + (peak_watts - idle_watts) * utilization;
}

EnergyReport evaluate_energy(const SystemModel& model,
                             const JointResult& result,
                             const PowerModel& power) {
  NFV_REQUIRE(result.feasible);
  NFV_REQUIRE(power.idle_watts >= 0.0);
  NFV_REQUIRE(power.peak_watts >= power.idle_watts);
  std::vector<double> load(model.topology.compute_count(), 0.0);
  for (std::size_t f = 0; f < model.workload.vnfs.size(); ++f) {
    load[result.placement.assignment[f]->index()] +=
        model.workload.vnfs[f].total_demand();
  }
  EnergyReport report;
  for (const NodeId v : model.topology.nodes()) {
    const double utilization =
        std::min(1.0, load[v.index()] / model.topology.capacity(v));
    const double watts = power.node_power(utilization);
    report.all_on_watts += watts;
    if (load[v.index()] <= 0.0) continue;  // powered off
    ++report.nodes_powered;
    report.total_watts += watts;
    report.idle_floor_watts += power.idle_watts;
    report.dynamic_watts += watts - power.idle_watts;
  }
  return report;
}

}  // namespace nfv::core
