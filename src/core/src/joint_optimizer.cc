#include "nfv/core/joint_optimizer.h"

#include <algorithm>
#include <set>

#include "nfv/common/error.h"
#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"

namespace nfv::core {

void SystemModel::validate() const {
  NFV_REQUIRE(topology.frozen());
  NFV_REQUIRE(!workload.vnfs.empty());
  NFV_REQUIRE(!workload.requests.empty());
  for (std::size_t i = 0; i < workload.vnfs.size(); ++i) {
    NFV_REQUIRE(workload.vnfs[i].id.index() == i);  // dense ids
  }
  for (const auto& r : workload.requests) {
    NFV_REQUIRE(!r.chain.empty());
    for (const VnfId f : r.chain) {
      NFV_REQUIRE(f.index() < workload.vnfs.size());
    }
  }
}

std::vector<VnfSchedulingContext> make_scheduling_contexts(
    const workload::Workload& workload) {
  std::vector<VnfSchedulingContext> contexts(workload.vnfs.size());
  for (std::size_t f = 0; f < workload.vnfs.size(); ++f) {
    VnfSchedulingContext& ctx = contexts[f];
    const workload::Vnf& vnf = workload.vnfs[f];
    ctx.problem.instance_count = vnf.instance_count;
    ctx.problem.service_rate = vnf.service_rate;
    bool have_p = false;
    for (const auto& r : workload.requests) {
      if (!r.uses(vnf.id)) continue;
      ctx.problem.arrival_rates.push_back(r.arrival_rate);
      ctx.members.push_back(r.id);
      if (!have_p) {
        ctx.problem.delivery_prob = r.delivery_prob;
        have_p = true;
      } else {
        NFV_REQUIRE(r.delivery_prob == ctx.problem.delivery_prob);
      }
    }
    ctx.problem.validate();
  }
  return contexts;
}

JointOptimizer::JointOptimizer(JointConfig config)
    : config_(std::move(config)) {
  NFV_REQUIRE(config_.rho_max > 0.0 && config_.rho_max <= 1.0);
  if (config_.link_latency) NFV_REQUIRE(*config_.link_latency >= 0.0);
}

JointResult JointOptimizer::run(const SystemModel& model,
                                std::uint64_t seed) const {
  const obs::ScopedSpan run_span("core.joint.run");
  obs::count("core.joint.runs");
  model.validate();
  const auto placer =
      placement::make_placement_algorithm(config_.placement_algorithm);
  NFV_REQUIRE(placer != nullptr);
  const auto scheduler =
      sched::make_scheduling_algorithm(config_.scheduling_algorithm);
  NFV_REQUIRE(scheduler != nullptr);

  JointResult result;
  Rng rng(seed);

  // Phase 1: placement (Algorithm 1 or a baseline).
  {
    const obs::ScopedSpan span("core.joint.placement");
    const placement::PlacementProblem pp =
        placement::make_problem(model.topology, model.workload);
    result.placement = placer->place(pp, rng);
    result.placement_metrics = placement::evaluate(pp, result.placement);
  }
  if (!result.placement.feasible) return result;  // feasible stays false

  // Phase 2: per-VNF request scheduling + admission control.
  {
    const obs::ScopedSpan span("core.joint.scheduling");
    result.contexts = make_scheduling_contexts(model.workload);
    result.schedules.reserve(result.contexts.size());
    result.admissions.reserve(result.contexts.size());
    for (const VnfSchedulingContext& ctx : result.contexts) {
      Rng child = rng.fork(result.schedules.size());
      sched::Schedule s = scheduler->schedule(ctx.problem, child);
      result.admissions.push_back(
          sched::apply_admission(ctx.problem, s, config_.rho_max));
      result.schedules.push_back(std::move(s));
    }
  }
  const obs::ScopedSpan eval_span("core.joint.evaluate");

  // Eq. 16 evaluation.  A request is admitted iff every VNF on its chain
  // admitted it; response latency sums the post-admission W(f, k) of its
  // assigned instances; link latency charges L per extra node traversed.
  const double link_l =
      config_.link_latency.value_or(model.topology.mean_link_latency());

  // Request id -> (per-VNF position) lookups.
  const std::size_t vnf_count = model.workload.vnfs.size();
  std::vector<std::vector<std::uint32_t>> position(
      vnf_count,
      std::vector<std::uint32_t>(model.workload.requests.size(), 0));
  for (std::size_t f = 0; f < vnf_count; ++f) {
    for (std::size_t pos = 0; pos < result.contexts[f].members.size(); ++pos) {
      position[f][result.contexts[f].members[pos].index()] =
          static_cast<std::uint32_t>(pos);
    }
  }

  result.requests.resize(model.workload.requests.size());
  std::size_t admitted_count = 0;
  double total = 0.0;
  for (const auto& r : model.workload.requests) {
    RequestOutcome& out = result.requests[r.id.index()];
    out.admitted = true;
    std::set<NodeId> nodes;
    double response = 0.0;
    for (const VnfId f : r.chain) {
      const std::uint32_t pos = position[f.index()][r.id.index()];
      const auto& admission = result.admissions[f.index()];
      if (!admission.admitted[pos]) {
        out.admitted = false;
        break;
      }
      const std::uint32_t k = result.schedules[f.index()].instance_of[pos];
      const auto& m = admission.admitted_metrics;
      const double mu_eff = result.contexts[f.index()].problem.delivery_prob *
                            result.contexts[f.index()].problem.service_rate;
      const double load = m.instance_load[k];
      NFV_CHECK(load < mu_eff);  // admission guarantees stability
      response += 1.0 / (mu_eff - load);  // W(f, k), Eq. 12
      nodes.insert(*result.placement.assignment[f.index()]);
    }
    if (!out.admitted) {
      out.response_latency = 0.0;
      out.link_latency = 0.0;
      out.nodes_traversed = 0;
      continue;
    }
    out.response_latency = response;
    out.nodes_traversed = static_cast<std::uint32_t>(nodes.size());
    out.link_latency =
        static_cast<double>(out.nodes_traversed - 1) * link_l;
    total += out.total_latency();
    ++admitted_count;
  }
  obs::count("core.joint.admitted", admitted_count);
  obs::count("core.joint.rejected",
             model.workload.requests.size() - admitted_count);
  result.total_latency = total;
  result.avg_total_latency =
      admitted_count > 0 ? total / static_cast<double>(admitted_count) : 0.0;
  result.job_rejection_rate =
      1.0 - static_cast<double>(admitted_count) /
                static_cast<double>(model.workload.requests.size());

  // Mean W over all service instances (post-admission loads).
  double response_sum = 0.0;
  std::size_t instance_count = 0;
  for (std::size_t f = 0; f < vnf_count; ++f) {
    const auto& m = result.admissions[f].admitted_metrics;
    const double mu_eff = result.contexts[f].problem.delivery_prob *
                          result.contexts[f].problem.service_rate;
    for (const double load : m.instance_load) {
      NFV_CHECK(load < mu_eff);
      response_sum += 1.0 / (mu_eff - load);
      ++instance_count;
    }
  }
  result.avg_response =
      instance_count > 0
          ? response_sum / static_cast<double>(instance_count)
          : 0.0;
  result.feasible = true;
  return result;
}

}  // namespace nfv::core
