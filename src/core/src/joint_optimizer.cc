#include "nfv/core/joint_optimizer.h"

#include <algorithm>
#include <optional>

#include "nfv/common/error.h"
#include "nfv/exec/thread_pool.h"
#include "nfv/obs/metrics.h"
#include "nfv/obs/trace.h"
#include "nfv/shard/merge.h"
#include "nfv/shard/placement.h"

namespace nfv::core {

void SystemModel::validate() const {
  NFV_REQUIRE(topology.frozen());
  NFV_REQUIRE(!workload.vnfs.empty());
  NFV_REQUIRE(!workload.requests.empty());
  for (std::size_t i = 0; i < workload.vnfs.size(); ++i) {
    NFV_REQUIRE(workload.vnfs[i].id.index() == i);  // dense ids
  }
  for (const auto& r : workload.requests) {
    NFV_REQUIRE(!r.chain.empty());
    for (const VnfId f : r.chain) {
      NFV_REQUIRE(f.index() < workload.vnfs.size());
    }
  }
}

std::vector<VnfSchedulingContext> make_scheduling_contexts(
    const workload::Workload& workload) {
  std::vector<VnfSchedulingContext> contexts(workload.vnfs.size());
  for (std::size_t f = 0; f < workload.vnfs.size(); ++f) {
    const workload::Vnf& vnf = workload.vnfs[f];
    contexts[f].problem.instance_count = vnf.instance_count;
    contexts[f].problem.service_rate = vnf.service_rate;
  }
  // One sweep over every chain — O(Σ|chain|) — instead of the |F|·|R|
  // membership scan of re-testing uses() per (VNF, request) pair.  The
  // stamp dedupes repeated VNFs inside one chain so each request joins a
  // VNF's member list once, in request order, exactly as before.
  constexpr std::uint32_t kNoRequest = 0xffffffffu;
  std::vector<std::uint32_t> seen_in(workload.vnfs.size(), kNoRequest);
  for (std::uint32_t r_idx = 0; r_idx < workload.requests.size(); ++r_idx) {
    const workload::Request& r = workload.requests[r_idx];
    for (const VnfId f : r.chain) {
      if (seen_in[f.index()] == r_idx) continue;
      seen_in[f.index()] = r_idx;
      VnfSchedulingContext& ctx = contexts[f.index()];
      if (ctx.members.empty()) {
        ctx.problem.delivery_prob = r.delivery_prob;
      } else {
        NFV_REQUIRE(r.delivery_prob == ctx.problem.delivery_prob);
      }
      ctx.problem.arrival_rates.push_back(r.arrival_rate);
      ctx.members.push_back(r.id);
    }
  }
  for (auto& ctx : contexts) ctx.problem.validate();
  return contexts;
}

namespace {

/// Positions of each request inside its chain VNFs' scheduling problems,
/// stored CSR-style aligned with the chains: entry offsets[r] + j is the
/// problem position of request r at chain offset j.  O(Σ|chain|) memory —
/// the dense |F|×|R| lookup this replaces is quadratic at scale.
struct ChainPositionIndex {
  std::vector<std::size_t> offsets;     // size |R| + 1
  std::vector<std::uint32_t> position;  // size Σ|chain|

  [[nodiscard]] std::uint32_t at(std::size_t request_index,
                                 std::size_t chain_offset) const {
    return position[offsets[request_index] + chain_offset];
  }
};

ChainPositionIndex make_chain_position_index(
    const workload::Workload& workload,
    const std::vector<VnfSchedulingContext>& contexts) {
  ChainPositionIndex index;
  index.offsets.resize(workload.requests.size() + 1, 0);
  for (std::size_t r = 0; r < workload.requests.size(); ++r) {
    index.offsets[r + 1] = index.offsets[r] + workload.requests[r].chain.size();
  }
  index.position.resize(index.offsets.back());
  // Member lists were appended in request order, so walking the requests
  // in the same order means "the next unconsumed member of VNF f is this
  // request"; cursor[f] tracks that.  Repeated VNFs in one chain reuse
  // the position claimed at their first occurrence (stamp + last_pos).
  constexpr std::uint32_t kNoRequest = 0xffffffffu;
  std::vector<std::uint32_t> cursor(contexts.size(), 0);
  std::vector<std::uint32_t> seen_in(contexts.size(), kNoRequest);
  std::vector<std::uint32_t> first_pos(contexts.size(), 0);
  for (std::uint32_t r_idx = 0; r_idx < workload.requests.size(); ++r_idx) {
    const auto& chain = workload.requests[r_idx].chain;
    for (std::size_t j = 0; j < chain.size(); ++j) {
      const std::size_t f = chain[j].index();
      if (seen_in[f] != r_idx) {
        seen_in[f] = r_idx;
        first_pos[f] = cursor[f]++;
      }
      index.position[index.offsets[r_idx] + j] = first_pos[f];
    }
  }
  return index;
}

/// Eq. 16 evaluation + aggregates, shared by the monolithic and sharded
/// paths: admitted iff admitted at every chain VNF, response sums the
/// post-admission W(f, k), link latency charges L per extra node.
/// Requires placement/contexts/schedules/admissions filled in; sets
/// requests, the aggregates, and feasible = true.
void evaluate_objective(const SystemModel& model, const JointConfig& config,
                        JointResult& result) {
  const obs::ScopedSpan eval_span("core.joint.evaluate");

  const double link_l =
      config.link_latency.value_or(model.topology.mean_link_latency());

  const ChainPositionIndex positions =
      make_chain_position_index(model.workload, result.contexts);

  result.requests.resize(model.workload.requests.size());
  std::size_t admitted_count = 0;
  double total = 0.0;
  // Distinct-node scratch reused across requests: chains are short, so a
  // sort+unique over a small vector beats a per-request std::set (one
  // node allocation per chain element) by a wide margin.
  std::vector<std::uint32_t> nodes_scratch;
  for (const auto& r : model.workload.requests) {
    RequestOutcome& out = result.requests[r.id.index()];
    out.admitted = true;
    nodes_scratch.clear();
    double response = 0.0;
    for (std::size_t j = 0; j < r.chain.size(); ++j) {
      const VnfId f = r.chain[j];
      const std::uint32_t pos = positions.at(r.id.index(), j);
      const auto& admission = result.admissions[f.index()];
      if (!admission.admitted[pos]) {
        out.admitted = false;
        break;
      }
      const std::uint32_t k = result.schedules[f.index()].instance_of[pos];
      const auto& m = admission.admitted_metrics;
      const double mu_eff = result.contexts[f.index()].problem.delivery_prob *
                            result.contexts[f.index()].problem.service_rate;
      const double load = m.instance_load[k];
      NFV_CHECK(load < mu_eff);  // admission guarantees stability
      response += 1.0 / (mu_eff - load);  // W(f, k), Eq. 12
      nodes_scratch.push_back(
          result.placement.assignment[f.index()]->value());
    }
    if (!out.admitted) {
      out.response_latency = 0.0;
      out.link_latency = 0.0;
      out.nodes_traversed = 0;
      continue;
    }
    std::sort(nodes_scratch.begin(), nodes_scratch.end());
    nodes_scratch.erase(
        std::unique(nodes_scratch.begin(), nodes_scratch.end()),
        nodes_scratch.end());
    out.response_latency = response;
    out.nodes_traversed = static_cast<std::uint32_t>(nodes_scratch.size());
    out.link_latency =
        static_cast<double>(out.nodes_traversed - 1) * link_l;
    total += out.total_latency();
    ++admitted_count;
  }
  obs::count("core.joint.admitted", admitted_count);
  obs::count("core.joint.rejected",
             model.workload.requests.size() - admitted_count);
  result.total_latency = total;
  result.avg_total_latency =
      admitted_count > 0 ? total / static_cast<double>(admitted_count) : 0.0;
  result.job_rejection_rate =
      1.0 - static_cast<double>(admitted_count) /
                static_cast<double>(model.workload.requests.size());

  // Mean W over all service instances (post-admission loads).
  const std::size_t vnf_count = model.workload.vnfs.size();
  double response_sum = 0.0;
  std::size_t instance_count = 0;
  for (std::size_t f = 0; f < vnf_count; ++f) {
    const auto& m = result.admissions[f].admitted_metrics;
    const double mu_eff = result.contexts[f].problem.delivery_prob *
                          result.contexts[f].problem.service_rate;
    for (const double load : m.instance_load) {
      NFV_CHECK(load < mu_eff);
      response_sum += 1.0 / (mu_eff - load);
      ++instance_count;
    }
  }
  result.avg_response =
      instance_count > 0
          ? response_sum / static_cast<double>(instance_count)
          : 0.0;
  result.feasible = true;
}

}  // namespace

JointOptimizer::JointOptimizer(JointConfig config)
    : config_(std::move(config)) {
  NFV_REQUIRE(config_.rho_max > 0.0 && config_.rho_max <= 1.0);
  if (config_.link_latency) NFV_REQUIRE(*config_.link_latency >= 0.0);
  config_.exec.validate();
  config_.shard.validate();
}

JointResult JointOptimizer::run(const SystemModel& model,
                                std::uint64_t seed) const {
  // Honor the configured thread count when no pool is installed yet; an
  // already-installed pool (CLI --threads, bench harness) wins so nested
  // runs share one fan-out width.
  if (config_.exec.threads > 1 && exec::pool() == nullptr &&
      !exec::ThreadPool::on_worker_thread()) {
    exec::ThreadPool local(config_.exec.threads);
    const exec::ScopedPool scope(local);
    return config_.shard.enabled() ? run_sharded(model, seed)
                                   : run_impl(model, seed);
  }
  return config_.shard.enabled() ? run_sharded(model, seed)
                                 : run_impl(model, seed);
}

JointResult JointOptimizer::run_impl(const SystemModel& model,
                                     std::uint64_t seed) const {
  const obs::ScopedSpan run_span("core.joint.run");
  obs::count("core.joint.runs");
  model.validate();
  const auto placer =
      config_.placement_factory
          ? config_.placement_factory()
          : placement::make_placement_algorithm(config_.placement_algorithm);
  NFV_REQUIRE(placer != nullptr);
  const auto scheduler =
      sched::make_scheduling_algorithm(config_.scheduling_algorithm);
  NFV_REQUIRE(scheduler != nullptr);

  JointResult result;
  Rng rng(seed);

  // Phase 1: placement (Algorithm 1 or a baseline).
  {
    const obs::ScopedSpan span("core.joint.placement");
    const placement::PlacementProblem pp =
        placement::make_problem(model.topology, model.workload);
    result.placement = placer->place(pp, rng);
    result.placement_metrics = placement::evaluate(pp, result.placement);
  }
  if (!result.placement.feasible) return result;  // feasible stays false

  // Phase 2: per-VNF request scheduling + admission control.  The per-VNF
  // problems are independent (Algorithm 2 runs once per VNF), so they fan
  // out over the pool; child RNGs are forked serially in index order
  // first, which keeps both the parent stream and each child stream
  // identical to the serial execution.
  {
    const obs::ScopedSpan span("core.joint.scheduling");
    result.contexts = make_scheduling_contexts(model.workload);
    std::vector<Rng> children;
    children.reserve(result.contexts.size());
    for (std::size_t f = 0; f < result.contexts.size(); ++f) {
      children.push_back(rng.fork(f));
    }
    struct VnfSolution {
      sched::Schedule schedule;
      sched::AdmissionResult admission;
    };
    std::vector<VnfSolution> solved =
        exec::parallel_map(result.contexts.size(), [&](std::size_t f) {
          const VnfSchedulingContext& ctx = result.contexts[f];
          VnfSolution s;
          s.schedule = scheduler->schedule(ctx.problem, children[f]);
          s.admission =
              sched::apply_admission(ctx.problem, s.schedule, config_.rho_max);
          return s;
        });
    result.schedules.reserve(solved.size());
    result.admissions.reserve(solved.size());
    for (VnfSolution& s : solved) {
      result.schedules.push_back(std::move(s.schedule));
      result.admissions.push_back(std::move(s.admission));
    }
  }
  evaluate_objective(model, config_, result);
  return result;
}

JointResult JointOptimizer::run_sharded(const SystemModel& model,
                                        std::uint64_t seed) const {
  model.validate();
  const placement::PlacementProblem pp =
      placement::make_problem(model.topology, model.workload);
  const shard::ShardPlan plan = shard::make_shard_plan(
      pp.vnf_count(), pp.chains, pp.demands,
      config_.shard.split_fraction * pp.total_capacity());
  // A connected instance is one shard: sharding is the identity, so take
  // the monolithic path before emitting any shard telemetry.
  if (plan.shard_count() <= 1) return run_impl(model, seed);

  const obs::ScopedSpan run_span("core.joint.shard.run");
  obs::count("core.joint.runs");
  obs::count("core.joint.shard.runs");
  obs::count("core.joint.shard.shards", plan.shard_count());
  obs::count("core.joint.shard.splits", plan.splits);
  const auto placer =
      config_.placement_factory
          ? config_.placement_factory()
          : placement::make_placement_algorithm(config_.placement_algorithm);
  NFV_REQUIRE(placer != nullptr);
  const auto scheduler =
      sched::make_scheduling_algorithm(config_.scheduling_algorithm);
  NFV_REQUIRE(scheduler != nullptr);

  JointResult result;
  shard::ShardStats& stats = result.shard_stats;
  stats.enabled = true;
  Rng rng(seed);

  // Phase 1: per-shard placement, merged and repaired.
  {
    const obs::ScopedSpan span("core.joint.shard.placement");
    result.placement =
        shard::place_with_plan(pp, plan, *placer, config_.shard, rng, stats);
  }
  if (!result.placement.feasible) {
    // Boundary repair failed; the monolithic solve sees the whole
    // instance at once.  Deterministic: the plan depends only on the
    // model, so every width reaches the same fallback.
    obs::count("core.joint.shard.fallbacks");
    shard::ShardStats fallback_stats = stats;
    fallback_stats.fallback_monolithic = true;
    JointResult mono = run_impl(model, seed);
    mono.shard_stats = fallback_stats;
    return mono;
  }
  result.placement_metrics = placement::evaluate(pp, result.placement);

  // Phase 2: each shard schedules the members its own requests contribute
  // to its own VNFs; members owned by other shards (boundary members of a
  // split component) are merged afterwards.
  {
    const obs::ScopedSpan span("core.joint.shard.scheduling");
    result.contexts = make_scheduling_contexts(model.workload);
    const std::size_t vnfs = result.contexts.size();
    const std::size_t shards = plan.shard_count();

    std::vector<std::uint32_t> owner_of_request(model.workload.requests.size());
    for (std::size_t r = 0; r < model.workload.requests.size(); ++r) {
      owner_of_request[r] =
          plan.shard_of_vnf[model.workload.requests[r].chain.front().index()];
    }
    // Per-VNF member positions split into locally-owned vs boundary.
    // Walk the member lists (request-id order) once — O(Σ|R_f|).
    std::vector<std::vector<std::uint32_t>> local_pos(vnfs);
    std::vector<std::vector<std::uint32_t>> boundary_pos(vnfs);
    for (std::size_t f = 0; f < vnfs; ++f) {
      const std::uint32_t s = plan.shard_of_vnf[f];
      const auto& members = result.contexts[f].members;
      const auto member_count = static_cast<std::uint32_t>(members.size());
      for (std::uint32_t p = 0; p < member_count; ++p) {
        if (owner_of_request[members[p].index()] == s) {
          local_pos[f].push_back(p);
        } else {
          boundary_pos[f].push_back(p);
        }
      }
    }

    // Fork per-shard streams up-front in index order, then fan out in
    // waves of the configured width — positional, so bit-identical for
    // any width/thread count.
    std::vector<Rng> children;
    children.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) children.push_back(rng.fork(s));
    std::vector<std::vector<sched::Schedule>> per_shard(shards);
    const std::size_t width =
        std::max<std::uint32_t>(1, config_.shard.fanout());
    std::size_t launched = 0;
    while (launched < shards) {
      const std::size_t wave = std::min(width, shards - launched);
      std::vector<std::vector<sched::Schedule>> got =
          exec::parallel_map(wave, [&, launched](std::size_t i) {
            const std::size_t s = launched + i;
            std::vector<sched::Schedule> out;
            out.reserve(plan.vnfs_of_shard[s].size());
            for (const std::uint32_t f : plan.vnfs_of_shard[s]) {
              const auto& ctx = result.contexts[f];
              sched::SchedulingProblem sub;
              sub.instance_count = ctx.problem.instance_count;
              sub.service_rate = ctx.problem.service_rate;
              sub.delivery_prob = ctx.problem.delivery_prob;
              sub.arrival_rates.reserve(local_pos[f].size());
              for (const std::uint32_t p : local_pos[f]) {
                sub.arrival_rates.push_back(ctx.problem.arrival_rates[p]);
              }
              sched::Schedule sc;  // all-boundary VNF: nothing local
              if (!sub.arrival_rates.empty()) {
                sc = scheduler->schedule(sub, children[s]);
              }
              out.push_back(std::move(sc));
            }
            return out;
          });
      for (std::size_t i = 0; i < wave; ++i) {
        per_shard[launched + i] = std::move(got[i]);
      }
      launched += wave;
    }

    // Merge in VNF index order: scatter the local assignments, append
    // boundary members greedily, rebalance toward a full re-solve when
    // the merged imbalance is out of band.
    std::vector<std::uint32_t> slot_in_shard(vnfs, 0);
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t j = 0; j < plan.vnfs_of_shard[s].size(); ++j) {
        slot_in_shard[plan.vnfs_of_shard[s][j]] =
            static_cast<std::uint32_t>(j);
      }
    }
    result.schedules.resize(vnfs);
    for (std::size_t f = 0; f < vnfs; ++f) {
      const auto& ctx = result.contexts[f];
      sched::Schedule& merged = result.schedules[f];
      const sched::Schedule& local =
          per_shard[plan.shard_of_vnf[f]][slot_in_shard[f]];
      merged.work = local.work;
      merged.instance_of.assign(ctx.problem.request_count(),
                                shard::kUnassigned);
      for (std::size_t i = 0; i < local_pos[f].size(); ++i) {
        merged.instance_of[local_pos[f][i]] = local.instance_of[i];
      }
      if (boundary_pos[f].empty()) continue;
      stats.boundary_requests += boundary_pos[f].size();
      shard::complete_schedule(ctx.problem, merged.instance_of,
                               boundary_pos[f]);
      merged.work += boundary_pos[f].size();
      const sched::Schedule target = scheduler->schedule(ctx.problem, rng);
      merged.work += target.work;
      const shard::RebalanceOutcome outcome = shard::rebalance_toward(
          ctx.problem, merged.instance_of, target,
          config_.shard.rebalance_threshold, config_.shard.migration_budget);
      if (outcome.triggered) {
        ++stats.rebalances;
        stats.migrations += outcome.migrations;
      }
    }
    obs::count("core.joint.shard.boundary_requests", stats.boundary_requests);
    obs::count("core.joint.shard.repair_moves", stats.repair_moves);
    obs::count("core.joint.shard.migrations", stats.migrations);

    result.admissions =
        exec::parallel_map(vnfs, [&](std::size_t f) {
          return sched::apply_admission(result.contexts[f].problem,
                                        result.schedules[f], config_.rho_max);
        });
  }
  evaluate_objective(model, config_, result);
  return result;
}

}  // namespace nfv::core
