#include "nfv/core/replication.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "nfv/common/error.h"

namespace nfv::core {

namespace {

/// Splits `instances` into `parts` nearly equal positive chunks.
std::vector<std::uint32_t> split_instances(std::uint32_t instances,
                                           std::uint32_t parts) {
  std::vector<std::uint32_t> out(parts, instances / parts);
  for (std::uint32_t i = 0; i < instances % parts; ++i) ++out[i];
  return out;
}

}  // namespace

ReplicationPlan split_oversized(const workload::Workload& w,
                                double max_footprint) {
  NFV_REQUIRE(max_footprint > 0.0);
  ReplicationPlan plan;
  plan.workload = w;
  plan.replicas_of.resize(w.vnfs.size());

  // Request membership per VNF, needed both for sizing and for re-pointing.
  std::vector<std::vector<std::uint32_t>> users(w.vnfs.size());
  for (std::uint32_t r = 0; r < w.requests.size(); ++r) {
    for (const VnfId f : w.requests[r].chain) {
      users[f.index()].push_back(r);
    }
  }

  for (std::uint32_t f = 0; f < w.vnfs.size(); ++f) {
    const workload::Vnf& vnf = w.vnfs[f];
    plan.replicas_of[f] = {vnf.id};
    if (vnf.total_demand() <= max_footprint) continue;
    if (vnf.demand_per_instance > max_footprint) {
      throw InfeasibleError("VNF " + vnf.name +
                            ": a single instance (demand " +
                            std::to_string(vnf.demand_per_instance) +
                            ") exceeds the replication budget " +
                            std::to_string(max_footprint));
    }
    plan.changed = true;

    // Smallest replica count whose per-replica footprint fits.
    auto replica_count = static_cast<std::uint32_t>(
        std::ceil(vnf.total_demand() / max_footprint));
    while (static_cast<double>((vnf.instance_count + replica_count - 1) /
                               replica_count) *
               vnf.demand_per_instance >
           max_footprint) {
      ++replica_count;
    }
    NFV_CHECK(replica_count <= vnf.instance_count);
    const std::vector<std::uint32_t> instance_split =
        split_instances(vnf.instance_count, replica_count);

    // Materialize replica VNFs: index 0 rewrites the original in place,
    // the rest are appended with fresh dense ids.
    std::vector<std::uint32_t> replica_vnf_index(replica_count);
    replica_vnf_index[0] = f;
    plan.workload.vnfs[f].instance_count = instance_split[0];
    plan.workload.vnfs[f].name = vnf.name + "/r0";
    for (std::uint32_t k = 1; k < replica_count; ++k) {
      workload::Vnf replica = vnf;
      replica.id = VnfId{static_cast<std::uint32_t>(plan.workload.vnfs.size())};
      replica.instance_count = instance_split[k];
      replica.name = vnf.name + "/r" + std::to_string(k);
      replica_vnf_index[k] =
          static_cast<std::uint32_t>(plan.workload.vnfs.size());
      plan.replicas_of[f].push_back(replica.id);
      plan.workload.vnfs.push_back(std::move(replica));
    }

    // Distribute the requests over the replicas: descending effective
    // rate; first satisfy each replica's Eq. 3 minimum (M_k requests),
    // then balance by load per instance.
    std::vector<std::uint32_t> order = users[f];
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return w.requests[a].effective_rate() >
                              w.requests[b].effective_rate();
                     });
    NFV_REQUIRE(order.size() >= vnf.instance_count);  // Eq. 3 on the input
    std::vector<double> load(replica_count, 0.0);
    std::vector<std::uint32_t> assigned_count(replica_count, 0);
    std::vector<std::uint32_t> replica_of_request(w.requests.size(), 0);
    for (const std::uint32_t r : order) {
      std::uint32_t chosen = replica_count;
      // Phase A: replicas still below their instance-count minimum take
      // priority (largest deficit first, then lightest weighted load).
      std::uint32_t best_deficit = 0;
      for (std::uint32_t k = 0; k < replica_count; ++k) {
        const std::uint32_t deficit =
            assigned_count[k] < instance_split[k]
                ? instance_split[k] - assigned_count[k]
                : 0;
        if (deficit == 0) continue;
        if (chosen == replica_count || deficit > best_deficit ||
            (deficit == best_deficit &&
             load[k] / instance_split[k] <
                 load[chosen] / instance_split[chosen])) {
          chosen = k;
          best_deficit = deficit;
        }
      }
      // Phase B: weighted LPT once every minimum is satisfied.
      if (chosen == replica_count) {
        chosen = 0;
        for (std::uint32_t k = 1; k < replica_count; ++k) {
          if (load[k] / instance_split[k] <
              load[chosen] / instance_split[chosen]) {
            chosen = k;
          }
        }
      }
      load[chosen] += w.requests[r].effective_rate();
      ++assigned_count[chosen];
      replica_of_request[r] = chosen;
    }
    for (std::uint32_t k = 0; k < replica_count; ++k) {
      NFV_CHECK(assigned_count[k] >= instance_split[k]);
    }

    // Re-point the chains.
    for (const std::uint32_t r : users[f]) {
      for (VnfId& hop : plan.workload.requests[r].chain) {
        if (hop == vnf.id) {
          hop = VnfId{replica_vnf_index[replica_of_request[r]]};
        }
      }
    }
  }
  return plan;
}

}  // namespace nfv::core
