#include "nfv/core/jackson_builder.h"

#include <vector>

#include "nfv/common/error.h"

namespace nfv::core {

JacksonBuildOutput build_jackson_network(const SystemModel& model,
                                         const JointResult& result) {
  NFV_REQUIRE(result.feasible);

  // Station index space (same layout as the simulator's).
  InstanceIndexMap index_map;
  index_map.base.resize(model.workload.vnfs.size());
  std::vector<double> service_rates;
  for (std::size_t f = 0; f < model.workload.vnfs.size(); ++f) {
    index_map.base[f] = static_cast<std::uint32_t>(service_rates.size());
    const workload::Vnf& vnf = model.workload.vnfs[f];
    service_rates.insert(service_rates.end(), vnf.instance_count,
                         vnf.service_rate);
  }
  const std::size_t stations = service_rates.size();

  // Request id -> per-VNF problem position.
  std::vector<std::vector<std::uint32_t>> position(
      model.workload.vnfs.size(),
      std::vector<std::uint32_t>(model.workload.requests.size(), 0));
  for (std::size_t f = 0; f < result.contexts.size(); ++f) {
    for (std::size_t pos = 0; pos < result.contexts[f].members.size(); ++pos) {
      position[f][result.contexts[f].members[pos].index()] =
          static_cast<std::uint32_t>(pos);
    }
  }

  // Accumulate flow-conserving transition rates.  Every hop of request r
  // carries its effective steady-state rate λ_r/P_r (retransmissions
  // traverse the whole chain); the final hop splits into exit (λ_r) and
  // feedback to the chain head (λ_r(1−P)/P).
  std::vector<double> external(stations, 0.0);
  std::vector<double> throughput(stations, 0.0);
  struct Transition {
    std::uint32_t from;
    std::uint32_t to;
    double rate;
  };
  std::vector<Transition> transitions;
  for (const auto& request : model.workload.requests) {
    const RequestOutcome& outcome = result.requests[request.id.index()];
    if (!outcome.admitted) continue;
    const double effective = request.effective_rate();
    std::uint32_t previous = 0;
    std::uint32_t head = 0;
    for (std::size_t hop = 0; hop < request.chain.size(); ++hop) {
      const VnfId f = request.chain[hop];
      const std::uint32_t pos = position[f.index()][request.id.index()];
      const InstanceIndex k = result.schedules[f.index()].instance_of[pos];
      const std::uint32_t station = index_map.station(f, k);
      throughput[station] += effective;
      if (hop == 0) {
        external[station] += request.arrival_rate;
        head = station;
      } else {
        transitions.push_back({previous, station, effective});
      }
      previous = station;
    }
    const double feedback =
        effective * (1.0 - request.delivery_prob);  // λ(1−P)/P
    if (feedback > 0.0) {
      transitions.push_back({previous, head, feedback});
    }
  }

  queueing::OpenJacksonNetwork network(std::move(service_rates));
  for (std::uint32_t s = 0; s < stations; ++s) {
    if (external[s] > 0.0) network.set_external_rate(s, external[s]);
  }
  // Merge duplicate (from, to) pairs before normalizing to probabilities.
  std::vector<std::vector<double>> merged(stations);
  for (auto& row : merged) row.assign(stations, 0.0);
  for (const Transition& t : transitions) {
    merged[t.from][t.to] += t.rate;
  }
  for (std::uint32_t s = 0; s < stations; ++s) {
    if (throughput[s] <= 0.0) continue;
    for (std::uint32_t t = 0; t < stations; ++t) {
      if (merged[s][t] > 0.0) {
        network.set_routing(s, t, merged[s][t] / throughput[s]);
      }
    }
  }
  return JacksonBuildOutput{std::move(network), std::move(index_map)};
}

}  // namespace nfv::core
