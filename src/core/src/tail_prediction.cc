#include "nfv/core/tail_prediction.h"

#include <algorithm>
#include <vector>

#include "nfv/common/error.h"
#include "nfv/common/rng.h"
#include "nfv/common/stats.h"
#include "nfv/queueing/hypoexp.h"

namespace nfv::core {

TailPrediction predict_request_tail(const SystemModel& model,
                                    const JointResult& result,
                                    RequestId request,
                                    const TailPredictionConfig& config) {
  NFV_REQUIRE(result.feasible);
  NFV_REQUIRE(request.index() < model.workload.requests.size());
  NFV_REQUIRE(config.samples >= 100);
  const auto& req = model.workload.requests[request.index()];
  const RequestOutcome& outcome = result.requests[request.index()];
  NFV_REQUIRE(outcome.admitted);

  // Per-hop slacks ν = μ − Λ (effective admitted load) of the assigned
  // instances.
  std::vector<double> slacks;
  slacks.reserve(req.chain.size());
  for (const VnfId f : req.chain) {
    const auto& ctx = result.contexts[f.index()];
    std::uint32_t pos = 0;
    for (std::size_t i = 0; i < ctx.members.size(); ++i) {
      if (ctx.members[i] == request) {
        pos = static_cast<std::uint32_t>(i);
        break;
      }
    }
    const auto k = result.schedules[f.index()].instance_of[pos];
    const auto& admitted = result.admissions[f.index()].admitted_metrics;
    const double slack =
        ctx.problem.service_rate - admitted.instance_effective_load[k];
    NFV_CHECK(slack > 0.0);
    slacks.push_back(slack);
  }

  TailPrediction out;
  const double link = outcome.link_latency;
  if (req.delivery_prob >= 1.0) {
    const queueing::Hypoexponential traversal(slacks);
    out.exact = true;
    out.mean = traversal.mean() + link;
    out.p50 = traversal.quantile(0.50) + link;
    out.p95 = traversal.quantile(0.95) + link;
    out.p99 = traversal.quantile(0.99) + link;
    return out;
  }

  // Geometric compound of traversals, sampled from the analytic model.
  // Every retransmission round re-traverses the chain's links, matching
  // the packet-level simulator (Eq. 16's mean counts the link term once;
  // under loss this predictor is therefore slightly above it, by design).
  Rng rng(config.seed);
  SampleSet samples;
  samples.reserve(config.samples);
  for (std::uint32_t s = 0; s < config.samples; ++s) {
    double total = 0.0;
    // Number of rounds ~ Geometric(P), at least one.
    do {
      total += link;
      for (const double nu : slacks) total += rng.exponential(nu);
    } while (!rng.chance(req.delivery_prob));
    samples.add(total);
  }
  out.exact = false;
  out.mean = samples.mean();
  out.p50 = samples.quantile(0.50);
  out.p95 = samples.quantile(0.95);
  out.p99 = samples.quantile(0.99);
  return out;
}

}  // namespace nfv::core
