// Fig. 16: average job rejection rate under a higher packet loss rate
// (P = 0.984).  Paper result: rejection uniformly higher than Fig. 15;
// averages RCKK 4.87% vs CGA 28.28%.  Protocol notes as in Fig. 15.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_fig16_rejection_high_loss",
                     "Job rejection rate vs. requests, P=0.984");
  const auto& runs = cli.add_int("runs", 'r', "runs per point", 1000);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 7);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Fig. 16 — job rejection rate (P = 0.984)",
      "Identical protocol to Fig. 15 with a higher loss rate: P·μ shrinks\n"
      "by 1.3%, eating most of the 2% balance headroom — so even RCKK\n"
      "rejects a little and CGA rejects much more.");

  nfv::Table table({"requests", "rej RCKK %", "rej CGA %"});
  table.set_precision(2);
  double rckk_sum = 0.0;
  double cga_sum = 0.0;
  int points = 0;
  for (const std::size_t requests : {20u, 40u, 60u, 80u, 100u}) {
    nfv::bench::SchedulingScenario s;
    s.requests = requests;
    s.instances = 5;
    s.delivery_prob = 0.984;
    s.headroom = 1.02;
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto rckk = nfv::bench::run_scheduling(s, "RCKK");
    const auto cga = nfv::bench::run_scheduling(s, "CGA-online");
    rckk_sum += rckk.rejection_rate;
    cga_sum += cga.rejection_rate;
    ++points;
    table.add_row({static_cast<long long>(requests),
                   100.0 * rckk.rejection_rate, 100.0 * cga.rejection_rate});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "fig16_rejection_high_loss", json);
  std::printf(
      "\naverages: RCKK %.2f%%, CGA %.2f%% "
      "(paper: 4.87%% vs 28.28%% — RCKK far lower)\n",
      100.0 * rckk_sum / points, 100.0 * cga_sum / points);
  return 0;
}
