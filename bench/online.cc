// Online-vs-offline optimality gap for the serving engine (not a paper
// figure): replay one event trace through serve::ServeEngine and, every
// --resolve-every events, re-solve the current live set from scratch with
// the offline two-phase pipeline (core::JointOptimizer).  The gap between
// the engine's predicted Eq. 16 mean latency and the offline optimum says
// how much the bounded-migration policy gives up by never mass-reshuffling.
//
//   bench_online --events 400 --resolve-every 50 --threads 4 --json o.json
//   bench_online -t smoke.topo -w smoke.wl -T smoke.trace.json --json o.json
//
// Rows follow the bench_micro convention: every wall-clock column has
// "wall" in its name (CI diffs those with a generous threshold) while the
// deterministic columns — `gap_pct` and `work`, bit-identical for any
// --threads — are gated tightly.  The serve_replay rows for 1 and N
// threads must agree on everything but wall time.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/rng.h"
#include "nfv/common/table.h"
#include "nfv/core/joint_optimizer.h"
#include "nfv/exec/thread_pool.h"
#include "nfv/serve/engine.h"
#include "nfv/topology/builders.h"
#include "nfv/topology/io.h"
#include "nfv/workload/event_stream.h"
#include "nfv/workload/generator.h"
#include "nfv/workload/io.h"

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point start, Clock::time_point stop) {
  return std::chrono::duration<double, std::micro>(stop - start).count();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Everything one replay needs; either loaded from files or generated.
struct Fixture {
  nfv::topo::Topology topology;
  nfv::workload::Workload workload;
  nfv::workload::EventTrace trace;
};

Fixture generated_fixture(std::int64_t nodes, std::int64_t vnfs,
                          std::int64_t events, std::uint64_t seed) {
  Fixture fx;
  nfv::Rng rng(seed);
  fx.topology = nfv::topo::make_star(static_cast<std::size_t>(nodes),
                                     {1000.0, 5000.0}, {}, rng);
  nfv::workload::WorkloadConfig wcfg;
  wcfg.vnf_count = static_cast<std::uint32_t>(vnfs);
  wcfg.request_count = 40;  // chain templates for the stream generator
  wcfg.chain_template_count = 8;
  fx.workload = nfv::workload::WorkloadGenerator(wcfg).generate(rng);
  nfv::workload::EventStreamConfig ecfg;
  ecfg.event_count = static_cast<std::size_t>(events);
  fx.trace =
      nfv::workload::EventStreamGenerator(fx.workload, ecfg).generate(rng);
  return fx;
}

/// One full replay at a given fan-out width, with offline re-solves of the
/// live set every `resolve_every` events (and after the last one).
struct ReplayResult {
  double replay_wall_us = 0.0;        ///< whole-trace replay
  double decision_wall_us_mean = 0.0; ///< per-event engine latency
  double decision_wall_us_p99 = 0.0;
  double offline_wall_us = 0.0;       ///< total across re-solves
  double gap_pct = 0.0;               ///< mean over comparable re-solves
  std::uint64_t resolves = 0;
  std::uint64_t serve_work = 0;       ///< deterministic engine effort
  std::uint64_t offline_work = 0;     ///< Σ scheduling work of re-solves
};

ReplayResult replay_once(const Fixture& fx, std::int64_t resolve_every,
                         std::uint64_t seed) {
  nfv::serve::ServeEngine engine(fx.topology, fx.workload.vnfs);

  // Same L as the engine (which defaults to the topology mean), so the
  // gap isolates partition quality rather than link-cost bookkeeping.
  nfv::core::JointConfig jcfg;
  jcfg.link_latency = fx.topology.mean_link_latency();
  const nfv::core::JointOptimizer offline(jcfg);

  ReplayResult out;
  std::vector<double> decision_us;
  decision_us.reserve(fx.trace.events.size());
  double gap_sum = 0.0;
  std::uint64_t gap_points = 0;

  const auto resolve_now = [&](double online_mean) {
    nfv::core::SystemModel model;
    model.topology = fx.topology;
    model.workload = engine.live_workload();
    if (model.workload.requests.empty()) return;
    const auto start = Clock::now();
    const auto result = offline.run(model, seed);
    out.offline_wall_us += us_between(start, Clock::now());
    ++out.resolves;
    for (const auto& schedule : result.schedules) {
      out.offline_work += schedule.work;
    }
    if (result.feasible && result.job_rejection_rate == 0.0 &&
        result.avg_total_latency > 0.0) {
      gap_sum += 100.0 * (online_mean - result.avg_total_latency) /
                 result.avg_total_latency;
      ++gap_points;
    }
  };

  const auto replay_start = Clock::now();
  double last_mean = 0.0;
  for (std::size_t i = 0; i < fx.trace.events.size(); ++i) {
    const auto start = Clock::now();
    const auto outcome = engine.on_event(fx.trace.events[i]);
    decision_us.push_back(us_between(start, Clock::now()));
    last_mean = outcome.mean_predicted_latency;
    if (resolve_every > 0 &&
        (i + 1) % static_cast<std::size_t>(resolve_every) == 0 &&
        i + 1 < fx.trace.events.size()) {
      resolve_now(last_mean);
    }
  }
  out.replay_wall_us = us_between(replay_start, Clock::now());
  resolve_now(last_mean);

  double total_us = 0.0;
  for (const double us : decision_us) total_us += us;
  if (!decision_us.empty()) {
    out.decision_wall_us_mean =
        total_us / static_cast<double>(decision_us.size());
    std::sort(decision_us.begin(), decision_us.end());
    const auto idx = static_cast<std::size_t>(std::ceil(
                         0.99 * static_cast<double>(decision_us.size()))) -
                     1;
    out.decision_wall_us_p99 = decision_us[idx];
  }
  out.gap_pct = gap_points > 0 ? gap_sum / static_cast<double>(gap_points)
                               : 0.0;
  out.serve_work = engine.work();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_online",
                     "serving engine vs repeated offline re-solves "
                     "(nfvpr.bench/1 JSON)");
  const auto& topo_file =
      cli.add_string("topology", 't', "topology file (empty: generate)", "");
  const auto& wl_file =
      cli.add_string("workload", 'w', "workload file (empty: generate)", "");
  const auto& trace_file =
      cli.add_string("trace", 'T', "event trace file (empty: generate)", "");
  const auto& nodes = cli.add_int("nodes", 'n', "generated topology size", 10);
  const auto& vnfs = cli.add_int("vnfs", 'f', "generated VNF count", 8);
  const auto& events =
      cli.add_int("events", 'e', "generated trace length", 400);
  const auto& resolve_every = cli.add_int(
      "resolve-every", 'R', "events between offline re-solves", 50);
  const auto& threads =
      cli.add_int("threads", 'j', "fan-out width for the threaded row", 4);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 7);
  const auto& json = cli.add_string("json", '\0', "write JSON table here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;
  if (nodes < 1 || vnfs < 1 || events < 1 || resolve_every < 1 ||
      threads < 1) {
    std::fputs("bench_online: numeric flags must be >= 1\n", stderr);
    return 2;
  }
  const auto base_seed = static_cast<std::uint64_t>(seed);

  Fixture fx;
  try {
    if (!topo_file.empty() || !wl_file.empty() || !trace_file.empty()) {
      if (topo_file.empty() || wl_file.empty() || trace_file.empty()) {
        std::fputs(
            "bench_online: --topology, --workload and --trace go together\n",
            stderr);
        return 2;
      }
      fx.topology = nfv::topo::load_topology_string(read_file(topo_file));
      fx.workload = nfv::workload::load_workload_string(read_file(wl_file));
      fx.trace = nfv::workload::load_event_trace(read_file(trace_file));
    } else {
      fx = generated_fixture(nodes, vnfs, events, base_seed);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_online: %s\n", e.what());
    return 2;
  }

  nfv::bench::print_banner(
      "online", "serve-engine replay vs repeated full offline re-solves");

  nfv::Table table({"case", "threads", "events", "wall_us",
                    "decision_wall_us_mean", "decision_wall_us_p99",
                    "gap_pct", "work"});
  table.set_precision(3);
  const auto event_count = static_cast<long long>(fx.trace.events.size());

  std::vector<std::uint32_t> widths = {1};
  if (threads > 1) widths.push_back(static_cast<std::uint32_t>(threads));
  for (const std::uint32_t width : widths) {
    ReplayResult r;
    if (width == 1) {
      r = replay_once(fx, resolve_every, base_seed);
    } else {
      nfv::exec::ThreadPool pool(width);
      const nfv::exec::ScopedPool scoped(pool);
      r = replay_once(fx, resolve_every, base_seed);
    }
    table.add_row({std::string("serve_replay"), static_cast<long long>(width),
                   event_count, r.replay_wall_us, r.decision_wall_us_mean,
                   r.decision_wall_us_p99, r.gap_pct,
                   static_cast<long long>(r.serve_work)});
    if (width == widths.back()) {
      // The offline comparator runs serially inside replay_once; report
      // the re-solve cost once, from the last replay.
      table.add_row({std::string("offline_resolve"), 1LL,
                     static_cast<long long>(r.resolves), r.offline_wall_us,
                     0.0, 0.0, r.gap_pct,
                     static_cast<long long>(r.offline_work)});
    }
  }

  std::fputs(table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "online", json);
  return 0;
}
