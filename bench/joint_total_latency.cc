// Eq. 16 joint objective (in-text claim): the full two-phase pipeline
// BFDSU+RCKK vs the baseline pipelines FFD+CGA and NAH+CGA on the average
// total latency (response + (Ση−1)·L) of admitted requests.  Paper claim:
// ≈19.9% lower average total latency than the state of the art.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_joint_total_latency",
                     "Eq. 16 total latency across pipeline combinations");
  const auto& runs = cli.add_int("runs", 'r', "Monte-Carlo repetitions", 50);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 11);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Eq. 16 — joint total latency",
      "12 nodes (A_v ~ U[400,800] so chains span nodes), 15 VNFs, 150\n"
      "requests, L = 1 ms; metric: per-admitted-request response + link\n"
      "latency, plus rejection and nodes-in-service for context.");

  nfv::Table table({"pipeline", "avg total latency", "avg response",
                    "avg link lat", "rejection %", "nodes used"});
  table.set_precision(6);
  const struct {
    const char* placer;
    const char* scheduler;
  } pipelines[] = {
      {"BFDSU", "RCKK"}, {"CABP", "RCKK"},  // CABP: chain-affinity extension
      {"BFDSU", "CGA-online"}, {"FFD", "RCKK"},
      {"FFD", "CGA-online"}, {"NAH", "CGA-online"}, {"NAH", "RCKK"},
  };
  double ours = 0.0;
  double best_baseline = 0.0;
  for (const auto& pl : pipelines) {
    nfv::bench::JointScenario s;
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto r = nfv::bench::run_joint(s, pl.placer, pl.scheduler);
    const std::string name = std::string(pl.placer) + "+" + pl.scheduler;
    table.add_row({name, r.avg_total_latency, r.avg_response,
                   r.avg_link_latency, 100.0 * r.rejection_rate,
                   r.nodes_in_service});
    if (name == "BFDSU+RCKK") ours = r.avg_total_latency;
    if (name == "NAH+CGA-online") best_baseline = r.avg_total_latency;
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "joint_total_latency", json);
  std::printf(
      "\nBFDSU+RCKK vs NAH+CGA (the paper's state of the art): %.1f%% lower "
      "avg total latency (paper claim: ~19.9%%)\n",
      nfv::bench::enhancement_percent(best_baseline, ours));
  return 0;
}
