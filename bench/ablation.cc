// Ablations of the two design choices the paper motivates but never
// isolates:
//  (a) BFDSU's weighted-random tight-fit + used-node preference, vs its
//      deterministic core (BFD), the spread policy (WFD) and FFD;
//  (b) RCKK's reverse-order combination, vs forward KK, plain LPT and
//      budgeted CKK search;
//  (c) post-placement link-locality refinement (Eq. 16 direct descent).
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/stats.h"
#include "nfv/common/table.h"
#include "nfv/core/locality_refiner.h"
#include "nfv/topology/builders.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_ablation", "Design-choice ablations");
  const auto& runs = cli.add_int("runs", 'r', "Monte-Carlo repetitions", 200);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 21);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  if (!cli.parse(argc, argv)) return 1;

  nfv::bench::print_banner(
      "Ablation A — placement policy (15 VNFs, 12 nodes, load 0.60)",
      "BFDSU = weighted-random best fit + used-first multi-start;\n"
      "BFD = its deterministic single-pass core; WFD = spread policy.");

  {
    nfv::Table table({"algorithm", "avg utilization", "nodes in service",
                      "occupation", "iterations"});
    table.set_precision(4);
    for (const auto* name :
         {"BFDSU", "CABP", "SA", "BFD", "FFD", "WFD", "NAH", "NFD"}) {
      nfv::bench::PlacementScenario s;
      s.nodes = 12;
      s.vnfs = 15;
      s.requests = 200;
      s.runs = static_cast<std::uint32_t>(runs);
      s.base_seed = static_cast<std::uint64_t>(seed);
      const auto r = nfv::bench::run_placement(s, name);
      table.add_row({std::string(name), r.avg_utilization, r.nodes_in_service,
                     r.occupation, r.iterations});
    }
    std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  }

  nfv::bench::print_banner(
      "Ablation B — scheduling policy (n = 50, m = 5, P = 0.98)",
      "RCKK = reverse-order m-way differencing; KK-fwd flips only the\n"
      "combination order; CKK adds budgeted search on top of RCKK.");

  {
    nfv::Table table({"algorithm", "avg W", "p99 W", "imbalance",
                      "work units"});
    table.set_precision(5);
    for (const auto* name : {"RCKK", "KK-fwd", "CKK", "LPT", "CGA", "CGA-online", "RR"}) {
      nfv::bench::SchedulingScenario s;
      s.requests = 50;
      s.instances = 5;
      s.delivery_prob = 0.98;
      s.runs = static_cast<std::uint32_t>(runs);
      s.base_seed = static_cast<std::uint64_t>(seed);
      const auto r = nfv::bench::run_scheduling(s, name);
      table.add_row({std::string(name), r.avg_response, r.p99_response,
                     r.imbalance, r.work});
    }
    std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  }
  nfv::bench::print_banner(
      "Ablation C — link-locality refinement (Eq. 16 direct descent)",
      "Greedy single-VNF moves after placement, shrinking the per-request\n"
      "(Ση−1)·L link term without touching schedules.");

  {
    nfv::Table table({"pipeline", "link cost before", "link cost after",
                      "moves", "reduction %"});
    table.set_precision(2);
    for (const auto* placer : {"BFDSU", "FFD", "NAH", "WFD"}) {
      nfv::OnlineStats before;
      nfv::OnlineStats after;
      nfv::OnlineStats moves;
      for (std::uint32_t run = 0; run < 20; ++run) {
        nfv::Rng rng(static_cast<std::uint64_t>(seed) + run);
        nfv::core::SystemModel model;
        model.topology = nfv::topo::make_star(
            10, nfv::topo::CapacitySpec{1500.0, 3000.0},
            nfv::topo::LinkSpec{1e-3}, rng);
        nfv::workload::WorkloadConfig wcfg;
        wcfg.vnf_count = 14;
        wcfg.request_count = 120;
        wcfg.fixed_demand_per_instance = 40.0;
        wcfg.chain_template_count = 10;
        model.workload =
            nfv::workload::WorkloadGenerator(wcfg).generate(rng);
        nfv::core::JointConfig cfg;
        cfg.placement_algorithm = placer;
        const auto result = nfv::core::JointOptimizer(cfg).run(
            model, static_cast<std::uint64_t>(seed) + run);
        if (!result.feasible) continue;
        const auto refined =
            nfv::core::refine_link_locality(model, result);
        before.add(refined.initial_link_cost);
        after.add(refined.final_link_cost);
        moves.add(static_cast<double>(refined.moves_applied));
      }
      const double reduction =
          before.mean() > 0.0
              ? 100.0 * (before.mean() - after.mean()) / before.mean()
              : 0.0;
      table.add_row({std::string(placer), before.mean(), after.mean(),
                     moves.mean(), reduction});
    }
    std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  }

  std::puts(
      "\nexpected: BFDSU tops utilization (randomized multi-start beats its\n"
      "deterministic core); RCKK beats KK-fwd decisively (reverse order is\n"
      "the load-balancing step) and approaches budgeted CKK at ~1/100 work;\n"
      "locality refinement recovers most of the link cost that spreading\n"
      "placements (NAH/WFD) leave on the table.");
  return 0;
}
