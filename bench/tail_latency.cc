// In-text tail statistics (Sec. V-C): the 99th-percentile of per-run
// average response across 1000 runs, requests 10 -> 200, m = 5, P = 0.98.
// Paper result: RCKK cuts the p99 by 44.5% (small n) down to 5.2% (large
// n); at n = 50 the p99 is 1.23 (RCKK) vs 1.60 (CGA), a 23.2% cut.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_tail_latency",
                     "99th-percentile response across runs, m=5, P=0.98");
  const auto& runs = cli.add_int("runs", 'r', "runs per point", 1000);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 7);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Tail latency — p99 of per-run avg W over 1000 runs",
      "m = 5, P = 0.98, μ = 1.2·Σλ/m; tail = 99th percentile across the\n"
      "Monte-Carlo runs (the paper's 'tail statistics').");

  nfv::Table table(
      {"requests", "p99 RCKK", "p99 CGA", "p99 cut %", "mean RCKK",
       "mean CGA"});
  table.set_precision(5);
  for (const std::size_t requests : {10u, 25u, 50u, 100u, 200u}) {
    nfv::bench::SchedulingScenario s;
    s.requests = requests;
    s.instances = 5;
    s.delivery_prob = 0.98;
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto rckk = nfv::bench::run_scheduling(s, "RCKK");
    const auto cga = nfv::bench::run_scheduling(s, "CGA-online");
    table.add_row({static_cast<long long>(requests), rckk.p99_response,
                   cga.p99_response,
                   nfv::bench::enhancement_percent(cga.p99_response,
                                                   rckk.p99_response),
                   rckk.avg_response, cga.avg_response});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "tail_latency", json);
  std::puts(
      "\npaper shape: p99 cut 44.5% -> 5.2% as requests grow "
      "(23.2% at n=50)");
  return 0;
}
