// Fig. 14: as Fig. 13 but lossless (P = 1.00).  Paper result: enhancement
// 3.2% -> 18.5%, below the lossy case point-for-point.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_fig14_latency_vs_instances_p100",
                     "Avg response W vs. instance count, P=1.00");
  const auto& runs = cli.add_int("runs", 'r', "runs per point", 1000);
  const auto& requests = cli.add_int("requests", 'n', "requests per run", 50);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 7);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Fig. 14 — avg response vs. instances (P = 1.00)",
      "Identical protocol to Fig. 13 with zero packet loss.");

  nfv::Table table({"instances", "W RCKK", "W CGA", "enhancement %"});
  table.set_precision(5);
  for (const std::uint32_t m : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u}) {
    nfv::bench::SchedulingScenario s;
    s.requests = static_cast<std::size_t>(requests);
    s.instances = m;
    s.delivery_prob = 1.00;
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto rckk = nfv::bench::run_scheduling(s, "RCKK");
    const auto cga = nfv::bench::run_scheduling(s, "CGA-online");
    table.add_row({static_cast<long long>(m), rckk.avg_response,
                   cga.avg_response,
                   nfv::bench::enhancement_percent(cga.avg_response,
                                                   rckk.avg_response)});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "fig14_latency_vs_instances_p100", json);
  std::puts("\npaper shape: enhancement ~3.2% -> ~18.5%, below the P=0.98 case");
  return 0;
}
