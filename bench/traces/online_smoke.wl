vnf NAT-0 0 34.7156 2 444.879
vnf FW-1 1 69.9397 2 620.912
vnf IDS-2 2 98.7554 2 531.904
vnf LB-3 3 44.5337 2 655.433
vnf WANOpt-4 4 157.362 2 493.33
vnf FlowMonitor-5 5 59.8092 2 558.956
vnf IPS-6 6 235.36 2 464.553
vnf IDS-7 2 130.405 2 524.385
request 85.2771 0.98 2
request 83.9695 0.98 2
request 20.6727 0.98 0
request 9.39472 0.98 1 2 6 7 0 5
request 68.4875 0.98 6 5
request 90.9266 0.98 1 2 0 3 5
request 50.5078 0.98 6 3 4
request 36.2648 0.98 6 4
request 53.1771 0.98 7 0 3 4 5
request 1.15877 0.98 0 3 4 5
request 89.0497 0.98 1 2 7 0 3 5
request 43.2647 0.98 7 3 4 5
request 22.631 0.98 0 3
request 3.63318 0.98 7 0 4
request 67.1937 0.98 3
request 51.3427 0.98 1
request 8.44313 0.98 5
request 77.3164 0.98 1 6 3 4 5
request 37.1045 0.98 6 7 3 5
request 41.2794 0.98 2 6 7 0 3 4
request 32.6987 0.98 1 7 3
request 98.8297 0.98 6 7
request 59.514 0.98 0 3 4
request 42.0752 0.98 1 2 6 7 0 4
request 34.4929 0.98 2 6 0 3 4 5
request 59.202 0.98 1 7 3
request 6.27729 0.98 0 4
request 22.1276 0.98 1 5
request 63.357 0.98 1 3
request 42.4492 0.98 1 7 5
request 37.412 0.98 2 7 5
request 27.9818 0.98 6 7
request 29.3353 0.98 1 2 0 3 4
request 84.2343 0.98 1 3 4 5
request 65.8003 0.98 1 2 6 7 0 4
request 47.6093 0.98 1 2 6 7 0 4
request 11.4725 0.98 2 6 7 3 4 5
request 79.8024 0.98 2 6 7 3 5
request 86.1287 0.98 1 2 4 5
request 80.5428 0.98 1 0
