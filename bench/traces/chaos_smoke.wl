vnf NAT-0 0 37.3047 2 506.041
vnf FW-1 1 84.1874 4 516.069
vnf IDS-2 2 222.9 3 541.661
vnf LB-3 3 85.724 3 427.351
vnf WANOpt-4 4 158.176 4 503.649
vnf FlowMonitor-5 5 50.3036 3 477.056
request 4.42781 0.98 1 2
request 39.1091 0.98 1 0 4 5
request 4.60643 0.98 1 2 0 3 4 5
request 58.1887 0.98 1 4
request 73.7579 0.98 1 2
request 42.9774 0.98 1 2 0 3 4 5
request 82.4101 0.98 1 4
request 55.8871 0.98 1 0 3 4 5
request 43.5703 0.98 1 2 4 5
request 26.4637 0.98 1 0 3 4 5
request 79.5203 0.98 1 2 0 3 4
request 99.7463 0.98 1 2 0 3 4 5
request 25.5586 0.98 1 2
request 99.2347 0.98 2 3 4 5
request 93.2763 0.98 2 3 4 5
request 85.4157 0.98 1 0 3 4 5
request 2.72903 0.98 1 0 4 5
request 99.8052 0.98 1 2 4 5
request 55.8975 0.98 2 3 4 5
request 16.2101 0.98 1 2 0 3 4 5
request 11.5264 0.98 1 0 3 4 5
request 30.9943 0.98 2 3 4 5
request 73.3507 0.98 1 2 0 3 4
request 9.72859 0.98 1 2
request 24.7873 0.98 1 2 0 3 4 5
request 43.5057 0.98 1 0 3 4 5
request 18.0421 0.98 2 3 4 5
request 64.3059 0.98 1 2 4 5
request 1.6515 0.98 1 2 0 3 4
request 25.7703 0.98 1 0 4 5
request 76.1404 0.98 1 2
request 98.2994 0.98 1 2
request 22.5253 0.98 2 3 4 5
request 31.6053 0.98 1 4
request 48.857 0.98 1 0 3 4 5
request 26.086 0.98 1 0 3 4 5
request 40.7051 0.98 1 0 4 5
request 71.0047 0.98 1 2
request 44.5671 0.98 1 2 0 3 4
request 86.1156 0.98 1 4
