// Telemetry-overhead bench for the serve engine (DESIGN.md §14): replay
// the same churn trace with streaming telemetry disabled, with timeline
// snapshots on, and with snapshots + lifecycle tracing on, and gate the
// snapshot overhead:
//
//   overhead_wall_pct = 100 · (wall_on − wall_off) / wall_off   (min of reps)
//
// The bench fails (exit 1) when the timeline row's overhead exceeds
// --max-overhead-pct (default 5) — the telemetry layer must stay out of
// the serve hot path.  Wall-clock columns carry "wall" in the name and are
// diffed generously in CI; windows/availability_min/shed_total/work are
// bit-identical for any --threads and gated tightly.
//
//   bench_timeline -t smoke.topo -w smoke.wl -T smoke.trace.json --json t.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"
#include "nfv/obs/timeline.h"
#include "nfv/serve/engine.h"
#include "nfv/topology/io.h"
#include "nfv/workload/event_stream.h"
#include "nfv/workload/io.h"

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point start, Clock::time_point stop) {
  return std::chrono::duration<double, std::micro>(stop - start).count();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct Fixture {
  nfv::topo::Topology topology;
  nfv::workload::Workload workload;
  nfv::workload::EventTrace trace;
};

struct Measured {
  double wall_us = 0.0;  ///< min over reps
  nfv::serve::ServeSummary summary;
  nfv::obs::TimelineAggregates agg;  ///< zeroed when telemetry is off
  bool has_timeline = false;
};

/// One timed replay; fills summary/aggregates on the first rep only.
void replay_once(const Fixture& fx, const nfv::serve::ServeConfig& cfg,
                 Measured& out) {
  nfv::serve::ServeEngine engine(fx.topology, fx.workload.vnfs, cfg);
  const auto start = Clock::now();
  engine.replay(fx.trace);
  const double wall = us_between(start, Clock::now());
  const bool first = out.wall_us < 0.0;
  if (first || wall < out.wall_us) out.wall_us = wall;
  if (first) {
    out.summary = engine.summary();
    if (cfg.snapshot_every > 0.0) {
      out.agg = nfv::obs::aggregate_timeline(engine.timeline_doc().records);
      out.has_timeline = true;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_timeline",
                     "serve-path overhead of streaming telemetry "
                     "(nfvpr.bench/1 JSON)");
  const auto& topo_file =
      cli.add_string("topology", 't', "topology file", "");
  const auto& wl_file = cli.add_string("workload", 'w', "workload file", "");
  const auto& trace_file =
      cli.add_string("trace", 'T', "event trace file", "");
  const auto& snapshot_every = cli.add_double(
      "snapshot-every", '\0', "timeline window width (trace time)", 0.5);
  const auto& reps =
      cli.add_int("reps", 'r', "replays per case (min wall wins)", 3);
  const auto& max_overhead = cli.add_double(
      "max-overhead-pct", '\0',
      "fail (exit 1) when timeline overhead exceeds this", 5.0);
  const auto& json = cli.add_string("json", '\0', "write JSON table here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;
  if (topo_file.empty() || wl_file.empty() || trace_file.empty()) {
    std::fputs("bench_timeline: --topology, --workload and --trace are "
               "required\n",
               stderr);
    return 2;
  }
  if (reps < 1 || !(snapshot_every > 0.0)) {
    std::fputs("bench_timeline: numeric flags out of range\n", stderr);
    return 2;
  }

  Fixture fx;
  try {
    fx.topology = nfv::topo::load_topology_string(read_file(topo_file));
    fx.workload = nfv::workload::load_workload_string(read_file(wl_file));
    fx.trace = nfv::workload::load_event_trace(read_file(trace_file));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_timeline: %s\n", e.what());
    return 2;
  }

  nfv::bench::print_banner(
      "timeline", "serve-path overhead of streaming telemetry");

  nfv::serve::ServeConfig off;
  nfv::serve::ServeConfig timeline = off;
  timeline.snapshot_every = snapshot_every;
  nfv::serve::ServeConfig full = timeline;
  full.lifecycle = true;

  // Reps are interleaved round-robin so slow machine drift (thermal,
  // noisy neighbours) biases every case equally before min-of-reps.
  Measured base, snap, traced;
  base.wall_us = snap.wall_us = traced.wall_us = -1.0;
  replay_once(fx, off, base);  // warm-up: caches, allocator arenas
  base.wall_us = -1.0;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    replay_once(fx, off, base);
    replay_once(fx, timeline, snap);
    replay_once(fx, full, traced);
  }

  const auto overhead_pct = [&](const Measured& m) {
    return base.wall_us > 0.0
               ? 100.0 * (m.wall_us - base.wall_us) / base.wall_us
               : 0.0;
  };

  nfv::Table table({"case", "events", "wall_us", "overhead_wall_pct",
                    "windows", "availability_min", "shed_total", "work"});
  table.set_precision(6);
  const auto events = static_cast<long long>(fx.trace.events.size());
  const auto shed_total = [](const nfv::serve::ServeSummary& s) {
    return static_cast<long long>(s.shed + s.shed_fault + s.shed_overload);
  };
  table.add_row({std::string("telemetry_off"), events, base.wall_us, 0.0,
                 0LL, base.summary.availability, shed_total(base.summary),
                 static_cast<long long>(base.summary.work)});
  table.add_row({std::string("timeline"), events, snap.wall_us,
                 overhead_pct(snap),
                 static_cast<long long>(snap.agg.windows),
                 snap.agg.availability_min, shed_total(snap.summary),
                 static_cast<long long>(snap.summary.work)});
  table.add_row({std::string("timeline_lifecycle"), events, traced.wall_us,
                 overhead_pct(traced),
                 static_cast<long long>(traced.agg.windows),
                 traced.agg.availability_min, shed_total(traced.summary),
                 static_cast<long long>(traced.summary.work)});

  std::fputs(table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "timeline", json);

  bool ok = true;
  // The telemetry-on replay must produce the exact same engine result —
  // the window integrals only split what the availability integral
  // already accumulates.
  if (snap.summary.availability != base.summary.availability ||
      snap.summary.work != base.summary.work) {
    std::fputs("bench_timeline: telemetry changed the replay result\n",
               stderr);
    ok = false;
  }
  if (overhead_pct(snap) > max_overhead) {
    std::fprintf(stderr,
                 "bench_timeline: timeline overhead %.2f%% exceeds "
                 "%.2f%% budget\n",
                 overhead_pct(snap), max_overhead);
    ok = false;
  }
  return ok ? 0 : 1;
}
