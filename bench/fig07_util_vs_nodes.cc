// Fig. 7: average resource utilization of used nodes for placing 15 VNFs
// as the available node count scales 6 -> 30 (fixed total demand).  Paper
// result: FFD and NAH decay as nodes are added; BFDSU stays stable.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_fig07_util_vs_nodes",
                     "Avg utilization for 15 VNFs vs. available nodes");
  const auto& runs = cli.add_int("runs", 'r', "Monte-Carlo repetitions", 100);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 42);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Fig. 7 — utilization vs. available nodes (15 VNFs)",
      "Demand pinned to what ~10 nodes carry (load 0.60 at 10 nodes); adding\n"
      "nodes only tempts spreading algorithms into lower per-node fill.");

  nfv::Table table({"nodes", "BFDSU", "FFD", "NAH"});
  table.set_precision(4);
  for (const std::size_t nodes : {10u, 14u, 18u, 22u, 26u, 30u}) {
    nfv::bench::PlacementScenario s;
    s.nodes = nodes;
    s.vnfs = 15;
    s.requests = 200;
    // Fixed absolute demand: 0.60 of a 10-node network's expected capacity,
    // expressed as a shrinking load factor as nodes grow.
    s.load_factor = 0.60 * 10.0 / static_cast<double>(nodes);
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto bfdsu = nfv::bench::run_placement(s, "BFDSU");
    const auto ffd = nfv::bench::run_placement(s, "FFD");
    const auto nah = nfv::bench::run_placement(s, "NAH");
    table.add_row({static_cast<long long>(nodes), bfdsu.avg_utilization,
                   ffd.avg_utilization, nah.avg_utilization});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "fig07_util_vs_nodes", json);
  std::puts("\npaper shape: FFD/NAH decay with node count; BFDSU stable");
  return 0;
}
