// Fig. 15: average job rejection rate under a low packet loss rate
// (P = 0.997), RCKK vs CGA.  Paper result: RCKK holds ≈0 rejection while
// CGA rejects substantially.
//
// Protocol note (see EXPERIMENTS.md): μ is scaled per run with only 2%
// headroom over perfect balance, which isolates *balance quality* — the
// quantity admission control punishes — from run-level load variance.
// With that protocol RCKK's rejection is ~0 and CGA's is material, as in
// the paper; our CGA gap narrows with n (the paper's widens), which we
// attribute to their CGA implementation degrading at scale.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_fig15_rejection_low_loss",
                     "Job rejection rate vs. requests, P=0.997");
  const auto& runs = cli.add_int("runs", 'r', "runs per point", 1000);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 7);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Fig. 15 — job rejection rate (P = 0.997)",
      "m = 5 instances, μ = 1.02·Σλ/m (2% headroom over perfect balance);\n"
      "admission drops requests that would push an instance to ρ >= 0.999.");

  nfv::Table table({"requests", "rej RCKK %", "rej CGA %"});
  table.set_precision(2);
  double rckk_sum = 0.0;
  double cga_sum = 0.0;
  int points = 0;
  for (const std::size_t requests : {20u, 40u, 60u, 80u, 100u}) {
    nfv::bench::SchedulingScenario s;
    s.requests = requests;
    s.instances = 5;
    s.delivery_prob = 0.997;
    s.headroom = 1.02;
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto rckk = nfv::bench::run_scheduling(s, "RCKK");
    const auto cga = nfv::bench::run_scheduling(s, "CGA-online");
    rckk_sum += rckk.rejection_rate;
    cga_sum += cga.rejection_rate;
    ++points;
    table.add_row({static_cast<long long>(requests),
                   100.0 * rckk.rejection_rate, 100.0 * cga.rejection_rate});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "fig15_rejection_low_loss", json);
  std::printf(
      "\naverages: RCKK %.2f%%, CGA %.2f%% "
      "(paper shape: RCKK ~0, CGA substantially higher)\n",
      100.0 * rckk_sum / points, 100.0 * cga_sum / points);
  return 0;
}
