// Fig. 6: average resource utilization of used nodes handling 1000
// requests as the VNF count scales 6 -> 30 and the node count 4 -> 20.
// Paper result: BFDSU ≈ +31.6% over FFD, +33.4% over NAH, stable across
// the sweep.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_fig06_util_vs_vnfs",
                     "Avg utilization at 1000 requests vs. VNF/node scale");
  const auto& runs = cli.add_int("runs", 'r', "Monte-Carlo repetitions", 60);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 42);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Fig. 6 — utilization vs. VNFs (1000 requests)",
      "VNFs 6->30 with nodes 4->20 (paper's paired scale-up), load 0.60.");

  nfv::Table table({"vnfs", "nodes", "BFDSU", "FFD", "NAH"});
  table.set_precision(4);
  const std::pair<std::uint32_t, std::size_t> sweep[] = {
      {6, 4}, {12, 8}, {18, 12}, {24, 16}, {30, 20}};
  double bfdsu_sum = 0.0;
  double ffd_sum = 0.0;
  double nah_sum = 0.0;
  for (const auto& [vnfs, nodes] : sweep) {
    nfv::bench::PlacementScenario s;
    s.nodes = nodes;
    s.vnfs = vnfs;
    s.requests = 1000;
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto bfdsu = nfv::bench::run_placement(s, "BFDSU");
    const auto ffd = nfv::bench::run_placement(s, "FFD");
    const auto nah = nfv::bench::run_placement(s, "NAH");
    bfdsu_sum += bfdsu.avg_utilization;
    ffd_sum += ffd.avg_utilization;
    nah_sum += nah.avg_utilization;
    table.add_row({static_cast<long long>(vnfs),
                   static_cast<long long>(nodes), bfdsu.avg_utilization,
                   ffd.avg_utilization, nah.avg_utilization});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "fig06_util_vs_vnfs", json);
  const double n = 5.0;
  std::printf(
      "\noverall: BFDSU %.4f, FFD %.4f, NAH %.4f -> BFDSU +%.1f%% vs FFD, "
      "+%.1f%% vs NAH\npaper: +31.6%% vs FFD, +33.4%% vs NAH\n",
      bfdsu_sum / n, ffd_sum / n, nah_sum / n,
      100.0 * (bfdsu_sum / ffd_sum - 1.0), 100.0 * (bfdsu_sum / nah_sum - 1.0));
  return 0;
}
