// Chaos resilience bench (robustness extension): subject the resilience
// controller to seeded failure storms and measure how the escalation
// ladder (local repair → replica split → full re-run → degradation)
// absorbs node churn.
//
// Reported per storm ensemble:
//   * how often each ladder rung resolved an event,
//   * availability (served fraction of the offered λ) mean / worst case,
//   * modelled time-to-recover per failure,
//   * a determinism check: the same seed must reproduce the exact same
//     RecoveryReport stream, field for field.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/stats.h"
#include "nfv/common/table.h"
#include "nfv/core/resilience.h"
#include "nfv/topology/builders.h"
#include "nfv/workload/generator.h"

namespace {

nfv::core::SystemModel make_model(std::size_t nodes, std::uint32_t vnfs,
                                  std::uint32_t requests, double demand,
                                  std::uint64_t seed) {
  nfv::Rng rng(seed);
  nfv::core::SystemModel model;
  model.topology = nfv::topo::make_star(
      nodes, nfv::topo::CapacitySpec{1000.0, 1800.0},
      nfv::topo::LinkSpec{2e-4}, rng);
  nfv::workload::WorkloadConfig wcfg;
  wcfg.vnf_count = vnfs;
  wcfg.request_count = requests;
  wcfg.fixed_demand_per_instance = demand;
  wcfg.chain_template_count = 10;
  model.workload = nfv::workload::WorkloadGenerator(wcfg).generate(rng);
  return model;
}

bool same_reports(const std::vector<nfv::core::RecoveryReport>& a,
                  const std::vector<nfv::core::RecoveryReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.time != y.time || x.node != y.node || x.node_up != y.node_up ||
        x.attempted != y.attempted || x.resolution != y.resolution ||
        x.recovered != y.recovered || x.vnfs_displaced != y.vnfs_displaced ||
        x.vnfs_migrated != y.vnfs_migrated ||
        x.replicas_added != y.replicas_added ||
        x.requests_shed != y.requests_shed ||
        x.requests_restored != y.requests_restored ||
        x.time_to_recover != y.time_to_recover ||
        x.availability != y.availability) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_chaos_resilience",
                     "Escalation ladder under seeded failure storms");
  const auto& nodes = cli.add_int("nodes", 'n', "compute nodes", 8);
  const auto& vnfs = cli.add_int("vnfs", 'f', "VNF count", 12);
  const auto& requests = cli.add_int("requests", 'r', "request count", 80);
  const auto& demand =
      cli.add_double("demand", 'D', "demand per service instance", 150.0);
  const auto& events = cli.add_int("events", 'e', "churn events per storm", 40);
  const auto& storms = cli.add_int("storms", 'm', "independent storms", 10);
  const auto& max_down =
      cli.add_int("max-down", 'd', "max concurrently down nodes", 6);
  const auto& interval =
      cli.add_double("interval", 'i', "mean inter-event seconds", 5.0);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 21);
  if (!cli.parse(argc, argv)) return 1;

  nfv::bench::print_banner(
      "Chaos resilience — escalation ladder under node churn",
      "Seeded failure storms over a star fabric; every DOWN/UP event runs\n"
      "the ladder local repair -> replica split -> full re-run -> shed, and\n"
      "the controller reports migrations, sheds and modelled recovery time.\n"
      "Same seed => byte-identical RecoveryReport stream.");

  const auto model = make_model(static_cast<std::size_t>(nodes),
                                static_cast<std::uint32_t>(vnfs),
                                static_cast<std::uint32_t>(requests), demand,
                                static_cast<std::uint64_t>(seed));

  std::map<nfv::core::RecoveryAction, std::size_t> resolved;
  std::size_t unrecovered = 0;
  std::size_t failures = 0;
  std::size_t recoveries = 0;
  nfv::OnlineStats availability;
  double worst_availability = 1.0;
  nfv::OnlineStats time_to_recover;
  nfv::OnlineStats migrations_per_failure;
  std::size_t total_shed = 0;
  std::size_t total_restored = 0;

  bool deterministic = true;
  for (std::uint32_t storm = 0; storm < static_cast<std::uint32_t>(storms);
       ++storm) {
    const std::uint64_t storm_seed = static_cast<std::uint64_t>(seed) + storm;
    nfv::Rng storm_rng(storm_seed);
    const auto churn = nfv::core::make_failure_storm(
        static_cast<std::size_t>(nodes), static_cast<std::size_t>(events),
        storm_rng, interval, static_cast<std::size_t>(max_down));

    nfv::core::ResilienceController controller(model, {}, storm_seed);
    const auto reports = controller.replay(churn);

    // Replay the identical storm on a fresh controller: the report
    // streams must match exactly.
    nfv::core::ResilienceController twin(model, {}, storm_seed);
    deterministic = deterministic && same_reports(reports, twin.replay(churn));

    for (const auto& report : reports) {
      availability.add(report.availability);
      worst_availability = std::min(worst_availability, report.availability);
      if (!report.recovered) ++unrecovered;
      ++resolved[report.resolution];
      if (report.node_up) {
        ++recoveries;
        total_restored += report.requests_restored;
      } else {
        ++failures;
        time_to_recover.add(report.time_to_recover);
        migrations_per_failure.add(static_cast<double>(report.vnfs_migrated));
        total_shed += report.requests_shed;
      }
    }
  }

  const auto total_events =
      static_cast<double>(storms) * static_cast<double>(events);
  nfv::Table table({"resolution", "events", "share"});
  table.set_precision(3);
  for (const auto& [action, count] : resolved) {
    table.add_row({std::string(nfv::core::to_string(action)),
                   static_cast<long long>(count),
                   static_cast<double>(count) / total_events});
  }
  std::fputs(table.markdown().c_str(), stdout);

  std::printf(
      "\nstorms %d x %d events (%zu failures, %zu recoveries), "
      "max %d nodes down\n",
      static_cast<int>(storms), static_cast<int>(events), failures,
      recoveries, static_cast<int>(max_down));
  std::printf("availability          : mean %.4f, worst %.4f\n",
              availability.mean(), worst_availability);
  std::printf("time-to-recover       : mean %.2f s per failure\n",
              time_to_recover.mean());
  std::printf("migrations            : mean %.2f per failure\n",
              migrations_per_failure.mean());
  std::printf("requests shed/restored: %zu / %zu\n", total_shed,
              total_restored);
  std::printf("unrecovered events    : %zu\n", unrecovered);
  std::printf("deterministic replay  : %s\n", deterministic ? "yes" : "NO");

  std::puts(
      "\nexpected: single-node failures resolve by local repair; deep\n"
      "storms (several nodes down) escalate to re-runs and shedding, and\n"
      "recoveries re-admit the shed requests.  Availability dips track\n"
      "max-down depth; the replay check must print 'yes'.");
  return deterministic ? 0 : 1;
}
