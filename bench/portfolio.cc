// Solver-portfolio quality-vs-budget frontier (DESIGN.md §17, not a
// paper figure): one deterministic fixture instance raced through every
// --solver backend at increasing deterministic work budgets.
//
//   bench_portfolio --reps 5 --threads 4 --json portfolio.json
//
// Rows pair wall-clock (`wall_us`, machine-noisy) with the deterministic
// race columns, bit-identical for any thread count under the
// deterministic budget:
//
//   budget      shared work budget W (--work-budget);
//   work        placement iterations charged by the row's winner;
//   rejected    rejected requests in the winning solution;
//   latency_us  Eq. 16 objective of the winning solution, in µs.
//
// The binary itself enforces the portfolio contracts (exit 1): at every
// budget the portfolio row's objective is <= every single backend's
// (racing never costs quality), and re-running the race single-threaded
// reproduces every deterministic column bit-for-bit.  JSON lands in the
// "nfvpr.bench/1" schema for baseline diffing against
// bench/baselines/portfolio.json: wall at 400% on shared runners,
// deterministic columns at 1%.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/rng.h"
#include "nfv/common/table.h"
#include "nfv/core/joint_optimizer.h"
#include "nfv/core/solver.h"
#include "nfv/topology/builders.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic fixture: a 10-node star with 8 VNFs and 40 chained
/// requests, enough slack that every backend places it but tight enough
/// that placement spread shows in the link-latency term of Eq. 16.
nfv::core::SystemModel make_fixture(std::uint64_t seed) {
  nfv::Rng rng(seed * 977 + 13);
  nfv::core::SystemModel model;
  model.topology = nfv::topo::make_star(
      10, nfv::topo::CapacitySpec{500.0, 500.0}, nfv::topo::LinkSpec{1e-4},
      rng);
  constexpr std::uint32_t kVnfs = 8;
  for (std::uint32_t f = 0; f < kVnfs; ++f) {
    nfv::workload::Vnf v;
    v.id = nfv::VnfId{f};
    v.name = "vnf" + std::to_string(f);
    v.catalog_index = f;
    v.demand_per_instance =
        40.0 + static_cast<double>((seed * 31 + f * 17) % 80);
    v.instance_count = 2;
    v.service_rate = 60.0;
    model.workload.vnfs.push_back(std::move(v));
  }
  for (std::uint32_t r = 0; r < 40; ++r) {
    nfv::workload::Request req;
    req.id = nfv::RequestId{r};
    // r walks every residue so each VNF heads at least one chain.
    const auto start = static_cast<std::uint32_t>((r + seed) % kVnfs);
    const std::uint32_t len = 2 + (r + seed) % 2;
    for (std::uint32_t k = 0; k < len; ++k) {
      req.chain.push_back(nfv::VnfId{(start + k) % kVnfs});
    }
    req.arrival_rate = 1.0 + static_cast<double>((r * 5 + seed) % 3);
    req.delivery_prob = 0.95;
    model.workload.requests.push_back(std::move(req));
  }
  return model;
}

nfv::core::JointConfig base_config(std::uint32_t threads) {
  nfv::core::JointConfig cfg;
  cfg.scheduling_algorithm = "DP2";
  cfg.link_latency = 0.005;
  cfg.exec.threads = threads;
  return cfg;
}

nfv::core::SolverConfig budgeted(const std::string& solver,
                                 std::uint64_t budget) {
  nfv::core::SolverConfig cfg;
  cfg.solver = solver;
  cfg.work_budget = budget;
  cfg.deterministic_budget = true;
  return cfg;
}

std::uint64_t rejected_count(const nfv::core::JointResult& r) {
  std::uint64_t rejected = 0;
  for (const auto& o : r.requests) {
    if (!o.admitted) ++rejected;
  }
  return rejected;
}

}  // namespace

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_portfolio",
                     "solver portfolio quality-vs-budget frontier "
                     "(nfvpr.bench/1 JSON)");
  const auto& reps = cli.add_int("reps", 'r', "timed repetitions per row", 5);
  const auto& threads =
      cli.add_int("threads", 'j', "worker threads for the race", 4);
  const auto& seed = cli.add_int("seed", 's', "fixture seed", 42);
  const auto& json = cli.add_string("json", '\0', "write JSON table here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;
  if (reps < 1 || threads < 1) {
    std::fputs("bench_portfolio: --reps and --threads must be >= 1\n", stderr);
    return 2;
  }

  nfv::bench::print_banner(
      "Solver portfolio — quality vs. deterministic work budget",
      "One fixture instance raced through every --solver backend at\n"
      "increasing --work-budget under --deterministic-budget (DESIGN.md\n"
      "§17).  Every column except wall_us is bit-identical for any\n"
      "thread count; the binary itself fails (exit 1) if the portfolio\n"
      "row ever loses to a single backend or if a single-threaded rerun\n"
      "diverges from the threaded race.");

  const auto model = make_fixture(static_cast<std::uint64_t>(seed));
  std::printf("instance: %zu nodes, %zu VNFs, %zu requests\n\n",
              model.topology.compute_count(), model.workload.vnfs.size(),
              model.workload.requests.size());

  const std::uint64_t budgets[] = {4, 16, 64};
  const std::vector<std::string> solvers = {"bfdsu", "pso", "lp", "portfolio"};

  nfv::Table table({"case", "budget", "threads", "reps", "wall_us", "work",
                    "rejected", "latency_us"});
  table.set_precision(3);
  for (const std::uint64_t budget : budgets) {
    double portfolio_latency = 0.0;
    bool portfolio_feasible = false;
    std::vector<double> single_latencies;
    for (const std::string& solver : solvers) {
      const nfv::core::PortfolioDriver driver(
          base_config(static_cast<std::uint32_t>(threads)),
          budgeted(solver, budget));
      nfv::core::SolverOutcome outcome;
      const auto start = Clock::now();
      for (long long rep = 0; rep < reps; ++rep) {
        outcome = driver.run(model, static_cast<std::uint64_t>(seed));
      }
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count() /
          static_cast<double>(reps);
      if (!outcome.result.feasible) {
        std::fprintf(stderr, "bench_portfolio: %s infeasible at budget %llu\n",
                     solver.c_str(),
                     static_cast<unsigned long long>(budget));
        return 1;
      }

      // Contract: the deterministic race is thread-count free — a
      // single-threaded rerun must reproduce every deterministic column.
      const nfv::core::SolverOutcome serial =
          nfv::core::PortfolioDriver(base_config(1), budgeted(solver, budget))
              .run(model, static_cast<std::uint64_t>(seed));
      if (serial.winner != outcome.winner ||
          serial.result.total_latency != outcome.result.total_latency ||
          serial.result.placement.assignment !=
              outcome.result.placement.assignment) {
        std::fprintf(stderr,
                     "bench_portfolio: %s race diverges across thread "
                     "counts at budget %llu\n",
                     solver.c_str(), static_cast<unsigned long long>(budget));
        return 1;
      }

      if (solver == "portfolio") {
        portfolio_latency = outcome.result.total_latency;
        portfolio_feasible = true;
      } else {
        single_latencies.push_back(outcome.result.total_latency);
      }
      std::uint64_t winner_work = 0;
      for (const auto& b : outcome.backends) {
        if (b.id == outcome.winner) winner_work = b.work;
      }
      table.add_row(
          {solver, static_cast<long long>(budget),
           static_cast<long long>(threads), static_cast<long long>(reps), us,
           static_cast<long long>(winner_work),
           static_cast<long long>(rejected_count(outcome.result)),
           outcome.result.total_latency * 1e6});
    }
    // Contract: racing never costs quality — the portfolio row matches
    // or beats every single backend at the same budget.
    if (!portfolio_feasible) {
      std::fputs("bench_portfolio: portfolio row missing\n", stderr);
      return 1;
    }
    for (const double single : single_latencies) {
      if (portfolio_latency > single) {
        std::fprintf(stderr,
                     "bench_portfolio: portfolio (%.9g) lost to a single "
                     "backend (%.9g) at budget %llu\n",
                     portfolio_latency, single,
                     static_cast<unsigned long long>(budget));
        return 1;
      }
    }
  }
  std::fputs(table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "portfolio", json);
  return 0;
}
