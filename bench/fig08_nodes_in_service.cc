// Fig. 8: average number of nodes in service for placing 15 VNFs as the
// available node count grows.  Paper result: BFDSU fewest (avg 8.56),
// NAH 10.55, FFD 10.80; all grow slightly with availability.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_fig08_nodes_in_service",
                     "Nodes in service for 15 VNFs vs. available nodes");
  const auto& runs = cli.add_int("runs", 'r', "Monte-Carlo repetitions", 100);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 42);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Fig. 8 — nodes in service (15 VNFs)",
      "Same protocol as Fig. 7; metric: Σ_v y_v (Eq. 14), averaged over runs.");

  nfv::Table table({"nodes avail", "BFDSU", "FFD", "NAH"});
  table.set_precision(2);
  double b_sum = 0.0;
  double f_sum = 0.0;
  double n_sum = 0.0;
  int points = 0;
  for (const std::size_t nodes : {10u, 14u, 18u, 22u, 26u, 30u}) {
    nfv::bench::PlacementScenario s;
    s.nodes = nodes;
    s.vnfs = 15;
    s.requests = 200;
    s.load_factor = 0.60 * 10.0 / static_cast<double>(nodes);
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto bfdsu = nfv::bench::run_placement(s, "BFDSU");
    const auto ffd = nfv::bench::run_placement(s, "FFD");
    const auto nah = nfv::bench::run_placement(s, "NAH");
    b_sum += bfdsu.nodes_in_service;
    f_sum += ffd.nodes_in_service;
    n_sum += nah.nodes_in_service;
    ++points;
    table.add_row({static_cast<long long>(nodes), bfdsu.nodes_in_service,
                   ffd.nodes_in_service, nah.nodes_in_service});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "fig08_nodes_in_service", json);
  std::printf(
      "\naverages: BFDSU %.2f, FFD %.2f, NAH %.2f "
      "(paper: 8.56, 10.80, 10.55 — BFDSU fewest)\n",
      b_sum / points, f_sum / points, n_sum / points);
  return 0;
}
