// Serve-ingest benchmarks (ROADMAP O2, DESIGN.md §15): how fast events get
// from bytes into the serving engine.
//
//   bench_ingest --events 2000000 --reps 3 --json ingest.json
//
// Rows (all single-threaded — ingest is a front-door, not a fan-out):
//   btrace_decode   streaming nfvpr.btrace/1 decode, zero steady-state
//                   allocation, no materialization (the serve hot path)
//   text_decode     full text load_event_trace (from_chars scanner +
//                   whole-trace validate) on the same events
//   json_dom_ref    generic obs::parse_json DOM build over the same text —
//                   the front-end cost of the pre-scanner loader, kept as a
//                   reference row for the scanner rewrite's win
//   btrace_serve    full serve replay from binary via replay_binary
//   text_serve      full serve replay from the materialized text trace
//
// Every row pairs noisy `wall_us` (CI diffs at 400%) with a deterministic
// `work` counter (CI diffs at 1%): decode rows count events + chain hops,
// serve rows the engine's own work counter.  The binary itself enforces
// the contracts CI cannot check from JSON alone and exits 1 on violation:
//   * btrace decode throughput >= --min-speedup x the text path
//   * text -> binary -> text and binary -> text -> binary byte-exact
//   * btrace_serve and text_serve end in byte-identical engine states
//     (compared via their checkpoint serializations)
#include <chrono>
#include <cstdio>
#include <string>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/rng.h"
#include "nfv/common/table.h"
#include "nfv/obs/json.h"
#include "nfv/serve/checkpoint.h"
#include "nfv/serve/engine.h"
#include "nfv/topology/builders.h"
#include "nfv/workload/btrace.h"
#include "nfv/workload/event_stream.h"
#include "nfv/workload/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Best (minimum) wall-clock microseconds per call over `reps` calls —
/// decode benches are memory-bound and the min is the steadiest estimator
/// of the true cost on a shared machine.
template <typename F>
double best_wall_us(std::int64_t reps, F&& f) {
  double best = 0.0;
  for (std::int64_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    f();
    const auto stop = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start).count();
    if (r == 0 || us < best) best = us;
  }
  return best;
}

nfv::workload::EventTrace make_trace(std::size_t events, std::size_t churn,
                                     std::uint64_t seed) {
  nfv::workload::WorkloadConfig wcfg;
  wcfg.vnf_count = 12;
  wcfg.request_count = 50;  // only the VNF catalog and rate ranges matter
  nfv::Rng wrng(seed);
  const auto base = nfv::workload::WorkloadGenerator(wcfg).generate(wrng);
  nfv::workload::EventStreamConfig cfg;
  cfg.event_count = events;
  cfg.target_population = 200;
  cfg.churn_node_count = churn;
  cfg.node_mtbf = 40.0;
  cfg.node_mttr = 2.0;
  nfv::Rng rng(seed + 1);
  return nfv::workload::EventStreamGenerator(base, cfg).generate(rng);
}

/// Deterministic decode-work metric: one unit per event plus one per chain
/// hop (what a consumer must at minimum look at).
std::uint64_t trace_work(const nfv::workload::EventTrace& trace) {
  std::uint64_t work = trace.events.size();
  for (const auto& e : trace.events) work += e.chain.size();
  return work;
}

}  // namespace

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_ingest",
                     "trace ingest throughput: binary vs text vs DOM "
                     "(nfvpr.bench/1 JSON)");
  const auto& events =
      cli.add_int("events", 'e', "events in the decode trace", 2000000);
  const auto& serve_events =
      cli.add_int("serve-events", '\0', "events in the serve trace", 60000);
  const auto& reps = cli.add_int("reps", 'r', "repetitions per case", 3);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 42);
  const auto& min_speedup = cli.add_double(
      "min-speedup", '\0',
      "fail (exit 1) when btrace decode is not at least this many times "
      "faster than the text path",
      10.0);
  const auto& json = cli.add_string("json", '\0', "write JSON table here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;
  if (events < 1 || serve_events < 1 || reps < 1) {
    std::fputs("bench_ingest: --events, --serve-events and --reps must be "
               ">= 1\n",
               stderr);
    return 2;
  }
  const auto base_seed = static_cast<std::uint64_t>(seed);

  nfv::Table table({"case", "reps", "wall_us", "work"});
  table.set_precision(1);
  const auto rows = static_cast<long long>(reps);

  // --- decode rows -------------------------------------------------------
  const auto trace =
      make_trace(static_cast<std::size_t>(events), 4, base_seed);
  const std::string text = nfv::workload::save_event_trace_string(trace);
  const std::string binary = nfv::workload::save_binary_trace_string(trace);
  const std::uint64_t decode_work = trace_work(trace);

  // Round-trip contracts: the transcoder depends on these byte-exact.
  {
    const auto from_binary = nfv::workload::load_binary_trace(binary);
    if (nfv::workload::save_event_trace_string(from_binary) != text) {
      std::fputs("bench_ingest: binary -> text round trip is not "
                 "byte-exact\n",
                 stderr);
      return 1;
    }
    const auto from_text = nfv::workload::load_event_trace(text);
    if (nfv::workload::save_binary_trace_string(from_text) != binary) {
      std::fputs("bench_ingest: text -> binary round trip is not "
                 "byte-exact\n",
                 stderr);
      return 1;
    }
  }

  double btrace_us = 0.0;
  {
    std::uint64_t work = 0;
    nfv::workload::StreamEvent event;  // chain capacity reused across reps
    btrace_us = best_wall_us(reps, [&] {
      nfv::workload::BinaryTraceDecoder decoder(binary);
      work = 0;
      while (decoder.next(event)) work += 1 + event.chain.size();
    });
    if (work != decode_work) {
      std::fputs("bench_ingest: btrace decode work mismatch\n", stderr);
      return 1;
    }
    table.add_row({std::string("btrace_decode"), rows, btrace_us,
                   static_cast<long long>(work)});
  }

  double text_us = 0.0;
  {
    std::uint64_t work = 0;
    text_us = best_wall_us(reps, [&] {
      const auto loaded = nfv::workload::load_event_trace(text);
      work = trace_work(loaded);
    });
    if (work != decode_work) {
      std::fputs("bench_ingest: text decode work mismatch\n", stderr);
      return 1;
    }
    table.add_row({std::string("text_decode"), rows, text_us,
                   static_cast<long long>(work)});
  }

  {
    // The old loader's front end (generic DOM build) on the same bytes;
    // its work counter is the event count the DOM must carry.
    std::uint64_t work = 0;
    const double us = best_wall_us(reps, [&] {
      std::string error;
      const auto doc = nfv::obs::parse_json(text, &error);
      if (!doc) {
        std::fputs("bench_ingest: DOM parse failed\n", stderr);
        std::exit(1);
      }
      work = doc->find("events")->as_array().size();
    });
    if (work != trace.events.size()) {
      std::fputs("bench_ingest: DOM event count mismatch\n", stderr);
      return 1;
    }
    table.add_row({std::string("json_dom_ref"), rows, us,
                   static_cast<long long>(work)});
  }

  // --- serve rows --------------------------------------------------------
  const auto serve_trace =
      make_trace(static_cast<std::size_t>(serve_events), 3, base_seed + 17);
  const std::string serve_text =
      nfv::workload::save_event_trace_string(serve_trace);
  const std::string serve_binary =
      nfv::workload::save_binary_trace_string(serve_trace);

  nfv::Rng trng(base_seed);
  const auto topology =
      nfv::topo::make_star(8, nfv::topo::CapacitySpec{}, nfv::topo::LinkSpec{},
                           trng);
  nfv::workload::WorkloadConfig wcfg;
  wcfg.vnf_count = 12;
  wcfg.request_count = 50;
  nfv::Rng wrng(base_seed);
  const auto catalog = nfv::workload::WorkloadGenerator(wcfg).generate(wrng);
  const nfv::serve::ServeConfig scfg;

  std::string text_state;
  {
    std::uint64_t work = 0;
    const double us = best_wall_us(reps, [&] {
      const auto loaded = nfv::workload::load_event_trace(serve_text);
      nfv::serve::ServeEngine engine(topology, catalog.vnfs, scfg);
      engine.replay(loaded);
      work = engine.work();
      text_state = nfv::serve::save_checkpoint_string(
          engine, loaded.events.size());
    });
    table.add_row({std::string("text_serve"), rows, us,
                   static_cast<long long>(work)});
  }
  {
    std::uint64_t work = 0;
    std::string state;
    const double us = best_wall_us(reps, [&] {
      nfv::workload::BinaryTraceDecoder decoder(serve_binary);
      nfv::serve::ServeEngine engine(topology, catalog.vnfs, scfg);
      engine.replay_binary(decoder);
      work = engine.work();
      state = nfv::serve::save_checkpoint_string(engine, decoder.decoded());
    });
    if (state != text_state) {
      std::fputs("bench_ingest: binary and text serve runs diverged "
                 "(checkpoint states differ)\n",
                 stderr);
      return 1;
    }
    table.add_row({std::string("btrace_serve"), rows, us,
                   static_cast<long long>(work)});
  }

  std::fputs(table.markdown().c_str(), stdout);
  const double speedup = text_us / btrace_us;
  const double ev = static_cast<double>(trace.events.size());
  std::printf("\nbtrace decode: %.1f Mev/s, text decode: %.1f Mev/s, "
              "speedup %.1fx (gate >= %.1fx)\n",
              ev / btrace_us, ev / text_us, speedup, min_speedup);
  nfv::bench::write_table_json(table, "ingest", json);
  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_ingest: FAIL btrace decode speedup %.2fx is below "
                 "the %.2fx gate\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
