// Fig. 12: as Fig. 11 but lossless (P = 1.00).  Paper result: RCKK still
// wins; enhancement ratio falls 33.5% -> 1.2%, and absolute W sits below
// the P = 0.98 curves.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_fig12_latency_p100",
                     "Avg response W vs. requests, P=1.00, m=5");
  const auto& runs = cli.add_int("runs", 'r', "runs per point", 1000);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 7);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Fig. 12 — avg response vs. requests (P = 1.00)",
      "Identical protocol to Fig. 11 with zero packet loss.");

  nfv::Table table({"requests", "W RCKK", "W CGA", "enhancement %"});
  table.set_precision(5);
  for (const std::size_t requests : {15u, 25u, 50u, 100u, 150u, 200u, 250u}) {
    nfv::bench::SchedulingScenario s;
    s.requests = requests;
    s.instances = 5;
    s.delivery_prob = 1.00;
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto rckk = nfv::bench::run_scheduling(s, "RCKK");
    const auto cga = nfv::bench::run_scheduling(s, "CGA-online");
    table.add_row({static_cast<long long>(requests), rckk.avg_response,
                   cga.avg_response,
                   nfv::bench::enhancement_percent(cga.avg_response,
                                                   rckk.avg_response)});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "fig12_latency_p100", json);
  std::puts(
      "\npaper shape: enhancement 33.5% -> 1.2%; W below the P=0.98 curves");
  return 0;
}
