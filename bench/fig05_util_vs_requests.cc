// Fig. 5: average resource utilization of used nodes on a 10-node network
// as the request count scales 30 -> 1000.  Paper result: all three curves
// flat; BFDSU ≈ 91.8% ≫ FFD ≈ 68.6% ≳ NAH ≈ 66.9%.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_fig05_util_vs_requests",
                     "Avg utilization of used nodes vs. request count");
  const auto& runs = cli.add_int("runs", 'r', "Monte-Carlo repetitions", 100);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 42);
  const auto& csv = cli.add_flag("csv", 'c', "emit CSV instead of Markdown");
  const auto& json = cli.add_string("json", 'j',
                                    "write summary rows as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Fig. 5 — utilization vs. requests",
      "10 nodes (A_v ~ U[1000,5000]), 15 VNFs, load factor 0.60, chains <= 6;\n"
      "metric: mean over used nodes of load/A_v, averaged over runs.");

  nfv::Table table({"requests", "BFDSU", "FFD", "NAH",
                    "BFDSU vs FFD %", "BFDSU vs NAH %"});
  table.set_precision(4);
  for (const std::uint32_t requests : {30u, 100u, 200u, 400u, 700u, 1000u}) {
    nfv::bench::PlacementScenario s;
    s.nodes = 10;
    s.vnfs = 15;
    s.requests = requests;
    s.runs = static_cast<std::uint32_t>(runs);
    s.base_seed = static_cast<std::uint64_t>(seed);
    const auto bfdsu = nfv::bench::run_placement(s, "BFDSU");
    const auto ffd = nfv::bench::run_placement(s, "FFD");
    const auto nah = nfv::bench::run_placement(s, "NAH");
    table.add_row({static_cast<long long>(requests),
                   bfdsu.avg_utilization, ffd.avg_utilization,
                   nah.avg_utilization,
                   100.0 * (bfdsu.avg_utilization / ffd.avg_utilization - 1.0),
                   100.0 * (bfdsu.avg_utilization / nah.avg_utilization - 1.0)});
  }
  std::fputs(csv ? table.csv().c_str() : table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "fig05_util_vs_requests", json);
  std::puts("\npaper shape: flat in requests; BFDSU ~0.92 >> FFD ~0.69 >~ NAH ~0.67");
  return 0;
}
