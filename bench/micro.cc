// Google-benchmark microbenchmarks: raw algorithm throughput and simulator
// event rate, for regression tracking (not a paper figure).
#include <benchmark/benchmark.h>

#include "nfv/common/rng.h"
#include "nfv/placement/algorithm.h"
#include "nfv/scheduling/algorithm.h"
#include "nfv/sim/des.h"
#include "nfv/topology/builders.h"
#include "nfv/workload/generator.h"

namespace {

nfv::placement::PlacementProblem placement_instance(std::uint32_t vnfs,
                                                    std::size_t nodes,
                                                    std::uint64_t seed) {
  nfv::Rng rng(seed);
  nfv::placement::PlacementProblem p;
  for (std::size_t v = 0; v < nodes; ++v) {
    p.capacities.push_back(rng.uniform(1000.0, 5000.0));
  }
  const double per_vnf =
      0.55 * p.total_capacity() / static_cast<double>(vnfs);
  for (std::uint32_t f = 0; f < vnfs; ++f) {
    p.demands.push_back(rng.uniform(0.5, 1.5) * per_vnf);
  }
  std::vector<std::uint32_t> chain(vnfs);
  for (std::uint32_t f = 0; f < vnfs; ++f) chain[f] = f;
  p.chains.push_back(chain);
  return p;
}

void BM_Placement(benchmark::State& state, const char* name) {
  const auto algo = nfv::placement::make_placement_algorithm(name);
  const auto problem = placement_instance(
      static_cast<std::uint32_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)), 42);
  nfv::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->place(problem, rng));
  }
}

nfv::sched::SchedulingProblem scheduling_instance(std::size_t n,
                                                  std::uint32_t m,
                                                  std::uint64_t seed) {
  nfv::Rng rng(seed);
  nfv::sched::SchedulingProblem p;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p.arrival_rates.push_back(rng.uniform(1.0, 100.0));
    total += p.arrival_rates.back();
  }
  p.instance_count = m;
  p.delivery_prob = 0.98;
  p.service_rate = 1.2 * total / m;
  return p;
}

void BM_Scheduling(benchmark::State& state, const char* name) {
  const auto algo = nfv::sched::make_scheduling_algorithm(name);
  const auto problem = scheduling_instance(
      static_cast<std::size_t>(state.range(0)), 5, 42);
  nfv::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->schedule(problem, rng));
  }
  state.SetComplexityN(state.range(0));
}

void BM_SimulatorEventRate(benchmark::State& state) {
  nfv::sim::SimNetwork net;
  net.stations = {nfv::sim::Station{200.0}, nfv::sim::Station{180.0}};
  nfv::sim::Flow flow;
  flow.rate = 100.0;
  flow.delivery_prob = 0.98;
  flow.path = {0, 1};
  net.flows.push_back(flow);
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    nfv::sim::SimConfig cfg;
    cfg.duration = 20.0;
    cfg.warmup = 1.0;
    cfg.seed = ++seed;
    const auto r = nfv::sim::simulate(net, cfg);
    events += r.events_processed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Placement, bfdsu, "BFDSU")->Arg(6)->Arg(15)->Arg(30);
BENCHMARK_CAPTURE(BM_Placement, ffd, "FFD")->Arg(6)->Arg(15)->Arg(30);
BENCHMARK_CAPTURE(BM_Placement, nah, "NAH")->Arg(6)->Arg(15)->Arg(30);
BENCHMARK_CAPTURE(BM_Scheduling, rckk, "RCKK")
    ->Arg(15)->Arg(50)->Arg(250)->Arg(1000)->Complexity();
BENCHMARK_CAPTURE(BM_Scheduling, cga, "CGA")
    ->Arg(15)->Arg(50)->Arg(250)->Arg(1000)->Complexity();
BENCHMARK_CAPTURE(BM_Scheduling, lpt, "LPT")->Arg(50)->Arg(1000);
BENCHMARK(BM_SimulatorEventRate);

BENCHMARK_MAIN();
