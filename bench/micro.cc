// Microbenchmarks for regression tracking (not a paper figure): raw
// algorithm throughput on the hot paths plus the parallel speedup of the
// Monte-Carlo joint pipeline.
//
//   bench_micro --reps 5 --threads 4 --json micro.json
//
// Every row pairs a wall-clock measurement (`wall_us`, noisy across
// machines — CI diffs it with a generous threshold) with a deterministic
// work counter (`work`, bit-identical for any thread count — CI diffs it
// tightly).  The JSON lands in the "nfvpr.bench/1" schema, so
// `nfvpr report --in new.json --baseline bench/baselines/micro.json`
// flags regressions.
#include <chrono>
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/rng.h"
#include "nfv/common/table.h"
#include "nfv/core/joint_optimizer.h"
#include "nfv/placement/algorithm.h"
#include "nfv/scheduling/algorithm.h"
#include "nfv/workload/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Mean wall-clock microseconds per call over `reps` calls.
template <typename F>
double wall_us(std::int64_t reps, F&& f) {
  const auto start = Clock::now();
  for (std::int64_t r = 0; r < reps; ++r) f();
  const auto stop = Clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count() /
         static_cast<double>(reps);
}

nfv::placement::PlacementProblem placement_instance(std::uint32_t vnfs,
                                                    std::size_t nodes,
                                                    std::uint64_t seed) {
  nfv::Rng rng(seed);
  nfv::placement::PlacementProblem p;
  for (std::size_t v = 0; v < nodes; ++v) {
    p.capacities.push_back(rng.uniform(1000.0, 5000.0));
  }
  const double per_vnf = 0.55 * p.total_capacity() / static_cast<double>(vnfs);
  for (std::uint32_t f = 0; f < vnfs; ++f) {
    p.demands.push_back(rng.uniform(0.5, 1.5) * per_vnf);
  }
  std::vector<std::uint32_t> chain(vnfs);
  for (std::uint32_t f = 0; f < vnfs; ++f) chain[f] = f;
  p.chains.push_back(chain);
  return p;
}

nfv::sched::SchedulingProblem scheduling_instance(std::size_t n,
                                                  std::uint32_t m,
                                                  std::uint64_t seed) {
  nfv::Rng rng(seed);
  nfv::sched::SchedulingProblem p;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p.arrival_rates.push_back(rng.uniform(1.0, 100.0));
    total += p.arrival_rates.back();
  }
  p.instance_count = m;
  p.delivery_prob = 0.98;
  p.service_rate = 1.2 * total / m;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_micro",
                     "hot-path microbenchmarks (nfvpr.bench/1 JSON)");
  const auto& reps = cli.add_int("reps", 'r', "repetitions per case", 5);
  const auto& threads =
      cli.add_int("threads", 'j', "fan-out width for the _par cases", 4);
  const auto& seed = cli.add_int("seed", 's', "base RNG seed", 42);
  const auto& json = cli.add_string("json", '\0', "write JSON table here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;
  if (reps < 1 || threads < 1) {
    std::fputs("bench_micro: --reps and --threads must be >= 1\n", stderr);
    return 2;
  }
  const auto base_seed = static_cast<std::uint64_t>(seed);

  nfv::Table table({"case", "threads", "reps", "wall_us", "work"});
  table.set_precision(1);

  // BFDSU multi-start placement on one coarse instance.
  {
    const auto algo = nfv::placement::make_placement_algorithm("BFDSU");
    const auto problem = placement_instance(30, 30, base_seed);
    std::uint64_t work = 0;  // per-call, identical every rep
    const double us = wall_us(reps, [&] {
      nfv::Rng rng(base_seed + 1);
      work = algo->place(problem, rng).iterations;
    });
    table.add_row({std::string("bfdsu_place"), 1LL, static_cast<long long>(reps), us,
                   static_cast<long long>(work)});
  }

  // RCKK differencing at the paper's largest request count.
  {
    const auto algo = nfv::sched::make_scheduling_algorithm("RCKK");
    const auto problem = scheduling_instance(1000, 5, base_seed);
    std::uint64_t work = 0;
    const double us = wall_us(reps, [&] {
      nfv::Rng rng(base_seed + 1);
      work = algo->schedule(problem, rng).work;
    });
    table.add_row({std::string("rckk_schedule"), 1LL, static_cast<long long>(reps), us,
                   static_cast<long long>(work)});
  }

  // Context building: one sweep over a wide workload (many requests per
  // VNF); work counts the member slots produced.
  {
    nfv::workload::WorkloadConfig cfg;
    cfg.vnf_count = 50;
    cfg.request_count = 5000;
    cfg.chain_template_count = 64;
    nfv::Rng rng(base_seed);
    const auto w = nfv::workload::WorkloadGenerator(cfg).generate(rng);
    std::uint64_t work = 0;
    const double us = wall_us(reps, [&] {
      const auto contexts = nfv::core::make_scheduling_contexts(w);
      work = 0;
      for (const auto& ctx : contexts) work += ctx.members.size();
    });
    table.add_row({std::string("contexts"), 1LL, static_cast<long long>(reps), us,
                   static_cast<long long>(work)});
  }

  // Monte-Carlo joint pipeline, serial vs. fanned out.  The summaries are
  // bit-identical by construction, so `work` (feasible runs, scaled) must
  // match between the two rows — CI catches determinism breaks for free.
  nfv::bench::JointScenario scenario;
  scenario.runs = 20;
  scenario.base_seed = base_seed;
  std::vector<std::uint32_t> widths = {1};
  if (threads > 1) widths.push_back(static_cast<std::uint32_t>(threads));
  for (const std::uint32_t t : widths) {
    scenario.threads = t;
    std::uint64_t work = 0;
    const double us = wall_us(reps, [&] {
      const auto summary = nfv::bench::run_joint(scenario, "BFDSU", "RCKK");
      work = summary.feasible_runs;
    });
    table.add_row({t == 1 ? std::string("joint_serial")
                          : std::string("joint_par"),
                   static_cast<long long>(t), static_cast<long long>(reps), us,
                   static_cast<long long>(work)});
  }

  std::fputs(table.markdown().c_str(), stdout);
  nfv::bench::write_table_json(table, "micro", json);
  return 0;
}
