// Scalability bench — empirical check of the paper's Sec. IV-D complexity
// claims: BFDSU is O(m(log m + n log n)) in the VNF count m and node
// count n, RCKK is O(n·m·log m) in requests n and instances m.  Reports
// wall-clock per solve and the growth ratio between successive sizes.
#include <chrono>
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"
#include "nfv/placement/algorithm.h"
#include "nfv/scheduling/algorithm.h"

namespace {

using Clock = std::chrono::steady_clock;

double time_placement(const char* name, std::uint32_t vnfs, std::size_t nodes,
                      int reps) {
  const auto algo = nfv::placement::make_placement_algorithm(name);
  nfv::Rng gen(9);
  nfv::placement::PlacementProblem p;
  for (std::size_t v = 0; v < nodes; ++v) {
    p.capacities.push_back(gen.uniform(1000.0, 5000.0));
  }
  const double mean_piece = 0.6 * p.total_capacity() / vnfs;
  for (std::uint32_t f = 0; f < vnfs; ++f) {
    p.demands.push_back(gen.uniform(0.4, 1.6) * mean_piece);
  }
  std::vector<std::uint32_t> chain(vnfs);
  for (std::uint32_t f = 0; f < vnfs; ++f) chain[f] = f;
  p.chains.push_back(std::move(chain));
  nfv::Rng rng(1);
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) {
    volatile bool feasible = algo->place(p, rng).feasible;
    (void)feasible;
  }
  const auto elapsed = std::chrono::duration<double, std::micro>(
                           Clock::now() - start)
                           .count();
  return elapsed / reps;
}

double time_scheduling(const char* name, std::size_t requests,
                       std::uint32_t instances, int reps) {
  const auto algo = nfv::sched::make_scheduling_algorithm(name);
  nfv::Rng gen(9);
  nfv::sched::SchedulingProblem p;
  double total = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    p.arrival_rates.push_back(gen.uniform(1.0, 100.0));
    total += p.arrival_rates.back();
  }
  p.instance_count = instances;
  p.delivery_prob = 0.98;
  p.service_rate = 1.2 * total / instances;
  nfv::Rng rng(1);
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) {
    volatile std::size_t size = algo->schedule(p, rng).instance_of.size();
    (void)size;
  }
  const auto elapsed = std::chrono::duration<double, std::micro>(
                           Clock::now() - start)
                           .count();
  return elapsed / reps;
}

}  // namespace

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_scalability",
                     "Wall-clock scaling of the core algorithms");
  const auto& reps = cli.add_int("reps", 'r', "repetitions per point", 50);
  const auto& json_placement = cli.add_string(
      "json-placement", '\0', "write the placement table as JSON here", "");
  const auto& json_scheduling = cli.add_string(
      "json-scheduling", '\0', "write the scheduling table as JSON here", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  nfv::bench::print_banner(
      "Scalability A — placement solve time vs. problem size",
      "Square instances (|F| VNFs on |F| nodes); paper claim: BFDSU is\n"
      "O(m(log m + n log n)) — near-linear growth per doubling.");
  {
    nfv::Table table({"size", "BFDSU us", "FFD us", "NAH us",
                      "BFDSU growth"});
    table.set_precision(1);
    double previous = 0.0;
    for (const std::uint32_t size : {8u, 16u, 32u, 64u, 128u, 256u}) {
      const double bfdsu =
          time_placement("BFDSU", size, size, static_cast<int>(reps));
      const double ffd =
          time_placement("FFD", size, size, static_cast<int>(reps));
      const double nah =
          time_placement("NAH", size, size, static_cast<int>(reps));
      table.add_row({static_cast<long long>(size), bfdsu, ffd, nah,
                     previous > 0.0 ? bfdsu / previous : 0.0});
      previous = bfdsu;
    }
    std::fputs(table.markdown().c_str(), stdout);
    nfv::bench::write_table_json(table, "scalability_placement",
                                 json_placement);
  }

  nfv::bench::print_banner(
      "Scalability B — scheduling solve time vs. request count",
      "m = 5 instances; paper claim: RCKK is O(n·m·log m) — linear in n —\n"
      "while full CGA search is exponential (shown here budget-capped).");
  {
    nfv::sched::CgaScheduling::Options searching;
    searching.node_budget = 10'000;
    nfv::Table table({"requests", "RCKK us", "LPT us", "CGA(10k) us",
                      "RCKK growth"});
    table.set_precision(1);
    double previous = 0.0;
    for (const std::size_t n : {50u, 100u, 200u, 400u, 800u, 1600u}) {
      const double rckk = time_scheduling("RCKK", n, 5, static_cast<int>(reps));
      const double lpt = time_scheduling("LPT", n, 5, static_cast<int>(reps));
      // Budgeted CGA timed separately (constructed locally; the registry
      // default is first-descent).
      nfv::Rng gen(9);
      nfv::sched::SchedulingProblem p;
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        p.arrival_rates.push_back(gen.uniform(1.0, 100.0));
        total += p.arrival_rates.back();
      }
      p.instance_count = 5;
      p.delivery_prob = 0.98;
      p.service_rate = 1.2 * total / 5.0;
      const nfv::sched::CgaScheduling cga(searching);
      nfv::Rng rng(1);
      const auto start = std::chrono::steady_clock::now();
      const int cga_reps = std::max(1, static_cast<int>(reps) / 10);
      for (int i = 0; i < cga_reps; ++i) {
        volatile std::size_t size = cga.schedule(p, rng).instance_of.size();
        (void)size;
      }
      const double cga_us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count() /
                            cga_reps;
      table.add_row({static_cast<long long>(n), rckk, lpt, cga_us,
                     previous > 0.0 ? rckk / previous : 0.0});
      previous = rckk;
    }
    std::fputs(table.markdown().c_str(), stdout);
    nfv::bench::write_table_json(table, "scalability_scheduling",
                                 json_scheduling);
  }
  std::puts(
      "\nexpected: BFDSU ~4x per row (both m and n double, so m·n·log n\n"
      "quadruples); RCKK ~2-3x per doubling of n (linear with list-insert\n"
      "overhead); budget-capped CGA flat (the budget, not n, dominates).");
  return 0;
}
