// Shared Monte-Carlo harness for the figure-reproduction benches.
//
// Every bench binary is a thin main() that sweeps one paper axis, calls
// these runners, and prints a Markdown table whose rows mirror the figure's
// series.  All runs are seeded: run i uses seed base_seed + i.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nfv/common/stats.h"
#include "nfv/common/table.h"
#include "nfv/core/joint_optimizer.h"
#include "nfv/scheduling/algorithm.h"
#include "nfv/scheduling/metrics.h"
#include "nfv/workload/generator.h"

namespace nfv::bench {

// ---------------------------------------------------------------------------
// Placement experiments (Figs. 5-10)
// ---------------------------------------------------------------------------

/// One placement sweep point.
struct PlacementScenario {
  std::size_t nodes = 10;
  double capacity_min = 1000.0;  ///< paper: A_v scales 1..5000
  double capacity_max = 5000.0;
  std::uint32_t vnfs = 15;
  std::uint32_t requests = 200;
  /// Total VNF demand is rescaled to this fraction of total node capacity.
  double load_factor = 0.60;
  /// Footprint profile: when true (default), VNF footprints are redrawn
  /// uniformly in [1−spread, 1+spread] × (target/|F|) — the coarse-grained
  /// regime of the paper's Figs. 5-10 (~1.5 VNFs per node, where packing
  /// quality matters).  When false the catalog's per-type heterogeneity is
  /// kept (many small pieces; every fit algorithm packs well).
  bool uniform_demands = true;
  double demand_spread = 0.8;
  std::uint32_t runs = 100;
  std::uint64_t base_seed = 42;
  /// Monte-Carlo fan-out width; 1 = serial.  Summaries are bit-identical
  /// for any value (runs are independently seeded, folded in run order).
  std::uint32_t threads = 1;
};

/// Averages over feasible runs.
struct PlacementSummary {
  double avg_utilization = 0.0;   ///< Figs. 5-7 metric
  double nodes_in_service = 0.0;  ///< Fig. 8 metric
  double occupation = 0.0;        ///< Fig. 9 metric
  double iterations = 0.0;        ///< Fig. 10 metric
  std::uint32_t feasible_runs = 0;
};

/// Runs `algorithm` over the scenario's Monte-Carlo repetitions.
[[nodiscard]] PlacementSummary run_placement(const PlacementScenario& scenario,
                                             std::string_view algorithm);

// ---------------------------------------------------------------------------
// Scheduling experiments (Figs. 11-16 and the tail table)
// ---------------------------------------------------------------------------

/// One scheduling sweep point (single-VNF view, as in the paper's Sec. V-C).
struct SchedulingScenario {
  std::size_t requests = 50;
  std::uint32_t instances = 5;
  double delivery_prob = 0.98;   ///< P
  /// μ = headroom · Σλ / m ("we scale μ_f with the number of requests").
  double headroom = 1.2;
  /// If > 0, use this absolute μ instead of scaling (Figs. 15-16 fix μ so
  /// that load grows with the request count).
  double service_rate_override = 0.0;
  double arrival_min = 1.0;      ///< λ ∈ [1, 100] pps (Sec. V-A.3)
  double arrival_max = 100.0;
  /// Heavy-tail parameter for the trace-driven rate sampler (lognormal
  /// inter-arrivals, Benson et al. [9]); 0 (default) = plain uniform
  /// rates, which is what reproduces the paper's Figs. 11-16 shapes.
  double rate_sigma_log = 0.0;
  double rho_max = 0.999;        ///< admission ceiling
  std::uint32_t runs = 1000;     ///< paper: "execute both algorithms 1000 times"
  std::uint64_t base_seed = 7;
  std::uint32_t threads = 1;     ///< Monte-Carlo fan-out width (see above)
};

/// Distribution of per-run results.
struct SchedulingSummary {
  double avg_response = 0.0;   ///< mean over runs of per-run avg W (Eq. 15)
  double p99_response = 0.0;   ///< 99th percentile across runs (tail table)
  double rejection_rate = 0.0; ///< mean job rejection rate (Figs. 15-16)
  double imbalance = 0.0;      ///< mean max-min load gap
  double work = 0.0;           ///< mean algorithm work units
  std::uint32_t stable_runs = 0;  ///< runs whose raw schedule was stable
};

[[nodiscard]] SchedulingSummary run_scheduling(
    const SchedulingScenario& scenario, std::string_view algorithm);

// ---------------------------------------------------------------------------
// Joint pipeline experiments (Eq. 16)
// ---------------------------------------------------------------------------

struct JointScenario {
  std::size_t nodes = 12;
  double capacity_min = 400.0;   ///< small caps force multi-node chains
  double capacity_max = 800.0;
  std::uint32_t vnfs = 15;
  std::uint32_t requests = 150;
  double link_latency = 1e-3;    ///< L of Eq. 16
  /// Workload service-rate headroom (μ·M_f over offered load); the paper's
  /// latency experiments run close to saturation.
  double service_headroom = 1.12;
  /// Target requests sharing one instance (drives M_f).
  std::uint32_t requests_per_instance = 12;
  std::uint32_t runs = 50;
  std::uint64_t base_seed = 11;
  std::uint32_t threads = 1;     ///< Monte-Carlo fan-out width (see above)
};

struct JointSummary {
  double avg_total_latency = 0.0;  ///< Eq. 16 per admitted request
  double avg_response = 0.0;       ///< instance-level mean W
  double avg_link_latency = 0.0;   ///< mean (η−1)·L per admitted request
  double rejection_rate = 0.0;
  double nodes_in_service = 0.0;
  std::uint32_t feasible_runs = 0;
};

[[nodiscard]] JointSummary run_joint(const JointScenario& scenario,
                                     std::string_view placement_algorithm,
                                     std::string_view scheduling_algorithm);

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Rescales every VNF's per-instance demand so total demand equals
/// `target_total`, then clamps any single VNF footprint to `max_piece`
/// (keeping the instance count intact).
void scale_workload_demand(workload::Workload& w, double target_total,
                           double max_piece);

/// Prints the standard bench banner (figure id + protocol description).
void print_banner(std::string_view figure, std::string_view description);

/// Writes the table's summary rows as JSON (schema "nfvpr.bench/1"):
///   {"schema": "nfvpr.bench/1", "bench": <name>,
///    "rows": [{<header>: <cell>, ...}, ...]}
/// No-op when `path` is empty, so mains can pass a --json flag through
/// unconditionally.  Throws std::runtime_error if the file cannot open.
void write_table_json(const Table& table, std::string_view bench,
                      const std::string& path);

/// (baseline − ours) / baseline as a percentage string-friendly double.
[[nodiscard]] double enhancement_percent(double baseline, double ours);

}  // namespace nfv::bench
