#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "nfv/common/error.h"
#include "nfv/exec/thread_pool.h"
#include "nfv/obs/json.h"
#include "nfv/placement/algorithm.h"
#include "nfv/placement/metrics.h"
#include "nfv/topology/builders.h"
#include "nfv/workload/trace.h"

namespace nfv::bench {

namespace {

/// Installs a pool of `threads` workers for the caller's scope, unless one
/// is already installed (CLI --threads wins) or we are on a worker thread
/// (nested fan-outs run inline).
struct BenchPool {
  explicit BenchPool(std::uint32_t threads) {
    if (threads > 1 && exec::pool() == nullptr &&
        !exec::ThreadPool::on_worker_thread()) {
      local.emplace(threads);
      scope.emplace(*local);
    }
  }
  std::optional<exec::ThreadPool> local;
  std::optional<exec::ScopedPool> scope;
};

}  // namespace

void scale_workload_demand(workload::Workload& w, double target_total,
                           double max_piece) {
  NFV_REQUIRE(target_total > 0.0);
  NFV_REQUIRE(max_piece > 0.0);
  const double current = w.total_demand();
  NFV_REQUIRE(current > 0.0);
  const double factor = target_total / current;
  for (auto& f : w.vnfs) {
    f.demand_per_instance *= factor;
    const double footprint = f.total_demand();
    if (footprint > max_piece) {
      f.demand_per_instance = max_piece / static_cast<double>(f.instance_count);
    }
  }
}

PlacementSummary run_placement(const PlacementScenario& scenario,
                               std::string_view algorithm) {
  const auto algo = placement::make_placement_algorithm(algorithm);
  NFV_REQUIRE(algo != nullptr);
  struct RunResult {
    bool feasible = false;
    placement::PlacementMetrics metrics;
    std::uint64_t iterations = 0;
  };
  const BenchPool pool(scenario.threads);
  // Each run seeds its own Rng, so replications are independent; the fold
  // below consumes them in run order, keeping summaries bit-identical to
  // the serial loop for any thread count.
  const std::vector<RunResult> runs =
      exec::parallel_map(scenario.runs, [&](std::size_t run) {
    RunResult out;
    Rng rng(scenario.base_seed + run);
    const auto topology = topo::make_star(
        scenario.nodes,
        topo::CapacitySpec{scenario.capacity_min, scenario.capacity_max},
        topo::LinkSpec{}, rng);
    workload::WorkloadConfig cfg;
    cfg.vnf_count = scenario.vnfs;
    cfg.request_count = scenario.requests;
    // Trace-driven regime: a datacenter offers a bounded set of service
    // chain types (this is what keeps NAH's per-chain cost near the
    // paper's Fig. 10 scale).
    cfg.chain_template_count = 32;
    workload::Workload w = workload::WorkloadGenerator(cfg).generate(rng);
    // Pin the offered load so sweeps vary only the intended axis; cap each
    // footprint just under the largest node so single-piece fits exist.
    double max_capacity = 0.0;
    for (const NodeId v : topology.nodes()) {
      max_capacity = std::max(max_capacity, topology.capacity(v));
    }
    const double target =
        scenario.load_factor * topology.total_capacity();
    if (scenario.uniform_demands) {
      // Redraw footprints around the mean piece size; the scale call below
      // renormalizes them to hit the target exactly.
      const double mean_piece = target / static_cast<double>(w.vnfs.size());
      for (auto& f : w.vnfs) {
        const double footprint =
            mean_piece * rng.uniform(1.0 - scenario.demand_spread,
                                     1.0 + scenario.demand_spread);
        f.demand_per_instance =
            footprint / static_cast<double>(f.instance_count);
      }
    }
    scale_workload_demand(w, target, 0.9 * max_capacity);
    const placement::PlacementProblem problem =
        placement::make_problem(topology, w);
    const placement::Placement result = algo->place(problem, rng);
    if (!result.feasible) return out;
    out.feasible = true;
    out.metrics = placement::evaluate(problem, result);
    out.iterations = result.iterations;
    return out;
  });
  PlacementSummary summary;
  OnlineStats util;
  OnlineStats nodes;
  OnlineStats occupation;
  OnlineStats iterations;
  for (const RunResult& r : runs) {
    if (!r.feasible) continue;
    util.add(r.metrics.avg_utilization_of_used);
    nodes.add(static_cast<double>(r.metrics.nodes_in_service));
    occupation.add(r.metrics.resource_occupation);
    iterations.add(static_cast<double>(r.iterations));
    ++summary.feasible_runs;
  }
  summary.avg_utilization = util.mean();
  summary.nodes_in_service = nodes.mean();
  summary.occupation = occupation.mean();
  summary.iterations = iterations.mean();
  return summary;
}

SchedulingSummary run_scheduling(const SchedulingScenario& scenario,
                                 std::string_view algorithm) {
  const auto algo = sched::make_scheduling_algorithm(algorithm);
  NFV_REQUIRE(algo != nullptr);
  const workload::LognormalTraceSampler trace_sampler(
      {0.04, scenario.rate_sigma_log > 0.0 ? scenario.rate_sigma_log : 1.0,
       scenario.arrival_min, scenario.arrival_max});
  struct RunResult {
    double response = 0.0;
    double rejection = 0.0;
    double imbalance = 0.0;
    double work = 0.0;
    bool stable = false;
  };
  const BenchPool pool(scenario.threads);
  const std::vector<RunResult> results =
      exec::parallel_map(scenario.runs, [&](std::size_t run) {
    Rng rng(scenario.base_seed + run);
    sched::SchedulingProblem p;
    double total = 0.0;
    for (std::size_t i = 0; i < scenario.requests; ++i) {
      p.arrival_rates.push_back(
          scenario.rate_sigma_log > 0.0
              ? trace_sampler.sample_rate(rng)
              : rng.uniform(scenario.arrival_min, scenario.arrival_max));
      total += p.arrival_rates.back();
    }
    p.instance_count = scenario.instances;
    p.delivery_prob = scenario.delivery_prob;
    p.service_rate =
        scenario.service_rate_override > 0.0
            ? scenario.service_rate_override
            : scenario.headroom * total /
                  static_cast<double>(scenario.instances);
    const sched::Schedule schedule = algo->schedule(p, rng);
    const sched::ScheduleMetrics raw = sched::evaluate(p, schedule);
    const sched::AdmissionResult admission =
        sched::apply_admission(p, schedule, scenario.rho_max);
    // W is measured on the admitted traffic (what the instances actually
    // carry); with stable raw schedules the two coincide.
    return RunResult{admission.admitted_metrics.avg_response,
                     admission.rejection_rate, raw.imbalance,
                     static_cast<double>(schedule.work), raw.stable};
  });
  SchedulingSummary summary;
  OnlineStats response;
  SampleSet response_samples;
  OnlineStats rejection;
  OnlineStats imbalance;
  OnlineStats work;
  for (const RunResult& r : results) {
    response.add(r.response);
    response_samples.add(r.response);
    rejection.add(r.rejection);
    imbalance.add(r.imbalance);
    work.add(r.work);
    if (r.stable) ++summary.stable_runs;
  }
  summary.avg_response = response.mean();
  summary.p99_response = response_samples.p99();
  summary.rejection_rate = rejection.mean();
  summary.imbalance = imbalance.mean();
  summary.work = work.mean();
  return summary;
}

JointSummary run_joint(const JointScenario& scenario,
                       std::string_view placement_algorithm,
                       std::string_view scheduling_algorithm) {
  core::JointConfig cfg;
  cfg.placement_algorithm = std::string(placement_algorithm);
  cfg.scheduling_algorithm = std::string(scheduling_algorithm);
  cfg.link_latency = scenario.link_latency;
  const core::JointOptimizer optimizer(cfg);
  struct RunResult {
    bool feasible = false;
    double total_latency = 0.0;
    double response = 0.0;
    double link = 0.0;
    double rejection = 0.0;
    double nodes = 0.0;
  };
  const BenchPool pool(scenario.threads);
  const std::vector<RunResult> results =
      exec::parallel_map(scenario.runs, [&](std::size_t run) {
    RunResult out;
    Rng rng(scenario.base_seed + run);
    core::SystemModel model;
    model.topology = topo::make_star(
        scenario.nodes,
        topo::CapacitySpec{scenario.capacity_min, scenario.capacity_max},
        topo::LinkSpec{scenario.link_latency}, rng);
    workload::WorkloadConfig wcfg;
    wcfg.vnf_count = scenario.vnfs;
    wcfg.request_count = scenario.requests;
    wcfg.service_headroom = scenario.service_headroom;
    wcfg.requests_per_instance = scenario.requests_per_instance;
    wcfg.chain_template_count = 32;
    model.workload = workload::WorkloadGenerator(wcfg).generate(rng);
    double max_capacity = 0.0;
    for (const NodeId v : model.topology.nodes()) {
      max_capacity = std::max(max_capacity, model.topology.capacity(v));
    }
    scale_workload_demand(model.workload,
                          0.55 * model.topology.total_capacity(),
                          0.9 * max_capacity);
    const core::JointResult result =
        optimizer.run(model, scenario.base_seed + run);
    if (!result.feasible) return out;
    double link_sum = 0.0;
    std::size_t admitted = 0;
    for (const auto& r : result.requests) {
      if (r.admitted) {
        link_sum += r.link_latency;
        ++admitted;
      }
    }
    out.feasible = true;
    out.total_latency = result.avg_total_latency;
    out.response = result.avg_response;
    out.link = admitted > 0 ? link_sum / static_cast<double>(admitted) : 0.0;
    out.rejection = result.job_rejection_rate;
    out.nodes = static_cast<double>(result.placement_metrics.nodes_in_service);
    return out;
  });
  JointSummary summary;
  OnlineStats total_latency;
  OnlineStats response;
  OnlineStats link;
  OnlineStats rejection;
  OnlineStats nodes;
  for (const RunResult& r : results) {
    if (!r.feasible) continue;
    total_latency.add(r.total_latency);
    response.add(r.response);
    link.add(r.link);
    rejection.add(r.rejection);
    nodes.add(r.nodes);
    ++summary.feasible_runs;
  }
  summary.avg_total_latency = total_latency.mean();
  summary.avg_response = response.mean();
  summary.avg_link_latency = link.mean();
  summary.rejection_rate = rejection.mean();
  summary.nodes_in_service = nodes.mean();
  return summary;
}

void print_banner(std::string_view figure, std::string_view description) {
  std::printf("\n=== %.*s ===\n%.*s\n\n",
              static_cast<int>(figure.size()), figure.data(),
              static_cast<int>(description.size()), description.data());
}

double enhancement_percent(double baseline, double ours) {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

void write_table_json(const Table& table, std::string_view bench,
                      const std::string& path) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open --json output " + path);
  }
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "nfvpr.bench/1");
  w.kv("bench", bench);
  w.key("rows");
  w.begin_array();
  for (std::size_t r = 0; r < table.rows(); ++r) {
    w.begin_object();
    for (std::size_t c = 0; c < table.columns(); ++c) {
      w.key(table.header(c));
      const Cell& cell = table.at(r, c);
      if (const auto* s = std::get_if<std::string>(&cell)) {
        w.value(*s);
      } else if (const auto* i = std::get_if<long long>(&cell)) {
        w.value(static_cast<std::int64_t>(*i));
      } else {
        w.value(std::get<double>(cell));
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace nfv::bench
