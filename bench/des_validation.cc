// Validation bench: the packet-level discrete-event simulator against the
// paper's Jackson/M/M/1 analytics — per-load-level M/M/1 agreement, the
// Fig. 3 loss-feedback chain, and a full pipeline instance end to end.
#include <cstdio>

#include "harness.h"
#include "nfv/common/cli.h"
#include "nfv/common/table.h"
#include "nfv/core/sim_builder.h"
#include "nfv/queueing/mm1.h"
#include "nfv/sim/des.h"
#include "nfv/topology/builders.h"

int main(int argc, char** argv) {
  nfv::CliParser cli("bench_des_validation",
                     "Discrete-event simulation vs. analytic model");
  const auto& duration = cli.add_double("duration", 'd',
                                        "simulated seconds per point", 2000.0);
  const auto& seed = cli.add_int("seed", 's', "RNG seed", 99);
  if (!cli.parse(argc, argv)) return 1;

  nfv::bench::print_banner(
      "DES validation 1 — M/M/1 closed forms",
      "Single queue, μ = 10; W = 1/(μ−λ) and ρ = λ/μ vs. simulation.");
  {
    nfv::Table table({"rho", "W analytic", "W simulated", "err %",
                      "util analytic", "util simulated"});
    table.set_precision(4);
    for (const double lambda : {1.0, 3.0, 5.0, 7.0, 9.0}) {
      nfv::sim::SimConfig cfg;
      cfg.duration = duration;
      cfg.warmup = duration * 0.1;
      cfg.seed = static_cast<std::uint64_t>(seed);
      const auto r = nfv::sim::simulate_mm1(lambda, 10.0, cfg);
      const double w = nfv::queueing::mm1_mean_response(lambda, 10.0);
      table.add_row({lambda / 10.0, w, r.stations[0].response.mean(),
                     100.0 * (r.stations[0].response.mean() - w) / w,
                     lambda / 10.0, r.stations[0].utilization});
    }
    std::fputs(table.markdown().c_str(), stdout);
  }

  nfv::bench::print_banner(
      "DES validation 2 — Fig. 3 loss-feedback chain",
      "Two VNFs (μ = 15, 12), λ0 = 4; per-attempt NACK feedback.  Paper\n"
      "closed form: E[T] = Σ 1/(P·μ_i − λ0).");
  {
    nfv::Table table({"P", "E[T] analytic", "E[T] simulated", "err %",
                      "station rate λ0/P"});
    table.set_precision(4);
    for (const double p : {1.0, 0.99, 0.95, 0.9, 0.8}) {
      nfv::sim::SimNetwork net;
      net.stations = {nfv::sim::Station{15.0}, nfv::sim::Station{12.0}};
      nfv::sim::Flow flow;
      flow.rate = 4.0;
      flow.delivery_prob = p;
      flow.path = {0, 1};
      net.flows.push_back(flow);
      nfv::sim::SimConfig cfg;
      cfg.duration = duration;
      cfg.warmup = duration * 0.1;
      cfg.seed = static_cast<std::uint64_t>(seed);
      const auto r = nfv::sim::simulate(net, cfg);
      const double expected =
          1.0 / (p * 15.0 - 4.0) + 1.0 / (p * 12.0 - 4.0);
      const double measured = r.flows[0].end_to_end.mean();
      table.add_row({p, expected, measured,
                     100.0 * (measured - expected) / expected,
                     r.stations[0].arrival_rate});
    }
    std::fputs(table.markdown().c_str(), stdout);
  }

  nfv::bench::print_banner(
      "DES validation 3 — full pipeline instance",
      "BFDSU+RCKK on 8 nodes / 10 VNFs / 80 requests; analytic Eq. 12 per\n"
      "instance vs. measured station response (visit-weighted means).");
  {
    nfv::Rng rng(static_cast<std::uint64_t>(seed));
    nfv::core::SystemModel model;
    model.topology = nfv::topo::make_star(
        8, nfv::topo::CapacitySpec{2000.0, 5000.0}, nfv::topo::LinkSpec{1e-4},
        rng);
    nfv::workload::WorkloadConfig wcfg;
    wcfg.vnf_count = 10;
    wcfg.request_count = 80;
    model.workload = nfv::workload::WorkloadGenerator(wcfg).generate(rng);
    const nfv::core::JointResult result =
        nfv::core::JointOptimizer{nfv::core::JointConfig{}}.run(
            model, static_cast<std::uint64_t>(seed));
    if (!result.feasible) {
      std::puts("pipeline infeasible for this seed — rerun with --seed");
      return 1;
    }
    const auto out = nfv::core::build_sim_network(model, result);
    nfv::sim::SimConfig cfg;
    cfg.duration = duration * 0.2;
    cfg.warmup = duration * 0.02;
    cfg.seed = static_cast<std::uint64_t>(seed) + 1;
    const auto sim_result = nfv::sim::simulate(out.network, cfg);
    double analytic_weighted = 0.0;
    double measured_weighted = 0.0;
    double weight = 0.0;
    for (std::size_t f = 0; f < model.workload.vnfs.size(); ++f) {
      const auto& ctx = result.contexts[f];
      for (std::uint32_t k = 0; k < ctx.problem.instance_count; ++k) {
        const auto& sr = sim_result.stations[out.index_map.base[f] + k];
        if (sr.visits < 100) continue;
        const double eff =
            result.admissions[f].admitted_metrics.instance_load[k] /
            ctx.problem.delivery_prob;
        const double w = static_cast<double>(sr.visits);
        analytic_weighted += w / (ctx.problem.service_rate - eff);
        measured_weighted += w * sr.response.mean();
        weight += w;
      }
    }
    std::printf(
        "instance-level mean response: analytic %.6f vs simulated %.6f "
        "(err %.1f%%)\n",
        analytic_weighted / weight, measured_weighted / weight,
        100.0 * (measured_weighted - analytic_weighted) / analytic_weighted);
  }
  return 0;
}
